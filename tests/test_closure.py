"""Tests for the all-pairs reachability closure (repro.core.closure)."""

import networkx as nx
import numpy as np
import pytest

from repro.core.automaton import CellularAutomaton
from repro.core.closure import ReachabilityClosure
from repro.core.interleaving import interleaving_capture_report
from repro.core.nondet import NondetPhaseSpace
from repro.core.rules import MajorityRule, WolframRule, XorRule
from repro.spaces.graph import GraphSpace
from repro.spaces.line import Ring


@pytest.fixture(scope="module")
def majority8_closure():
    ca = CellularAutomaton(Ring(8), MajorityRule())
    nps = NondetPhaseSpace.from_automaton(ca)
    return nps, ReachabilityClosure(nps)


class TestAgainstBFS:
    def test_random_pairs_agree(self, majority8_closure):
        nps, closure = majority8_closure
        rng = np.random.default_rng(7)
        for _ in range(300):
            a, b = int(rng.integers(256)), int(rng.integers(256))
            assert closure.can_reach(a, b) == nps.can_reach(a, b)

    def test_reachable_counts_agree(self, majority8_closure):
        nps, closure = majority8_closure
        for code in range(0, 256, 17):
            assert closure.reachable_count(code) == len(
                nps.reachable_from(code)
            )

    def test_cyclic_graph_closure(self):
        # XOR has SCCs: the closure must treat whole components correctly.
        ca = CellularAutomaton(GraphSpace(nx.path_graph(2)), XorRule())
        nps = NondetPhaseSpace.from_automaton(ca)
        closure = ReachabilityClosure(nps)
        # Inside the cycling component {01, 10, 11} everything reaches
        # everything; nothing reaches 00.
        for a in (1, 2, 3):
            for b in (1, 2, 3):
                assert closure.can_reach(a, b)
            assert not closure.can_reach(a, 0)
        assert closure.can_reach(0, 0)

    def test_rule110_closure_matches_bfs(self):
        ca = CellularAutomaton(Ring(7), WolframRule(110))
        nps = NondetPhaseSpace.from_automaton(ca)
        closure = ReachabilityClosure(nps)
        rng = np.random.default_rng(3)
        for _ in range(150):
            a, b = int(rng.integers(128)), int(rng.integers(128))
            assert closure.can_reach(a, b) == nps.can_reach(a, b)


class TestGuards:
    def test_size_cap(self):
        ca = CellularAutomaton(Ring(16), MajorityRule())
        nps = NondetPhaseSpace.from_automaton(ca)
        with pytest.raises(ValueError):
            ReachabilityClosure(nps)

    def test_can_reach_all(self, majority8_closure):
        _, closure = majority8_closure
        # A lone 1 dies: it reaches both itself and the all-zero FP.
        assert closure.can_reach_all(0b00000001, [0, 0b00000001])
        assert not closure.can_reach_all(0, [0, 1])


class TestReportUsesClosure:
    def test_report_identical_with_and_without_closure(self, monkeypatch):
        ca = CellularAutomaton(Ring(8), MajorityRule())
        with_closure = interleaving_capture_report(ca)

        import repro.core.closure as closure_mod

        monkeypatch.setattr(closure_mod, "_MAX_NODES", 0)  # force BFS path
        without_closure = interleaving_capture_report(ca)
        assert with_closure == without_closure

    def test_report_scales_to_n12(self):
        ca = CellularAutomaton(Ring(12), MajorityRule())
        rep = interleaving_capture_report(ca)
        assert rep.total_configs == 4096
        assert not rep.interleavings_capture_concurrency
        assert rep.parallel_two_cycle_configs == 2
