"""Tests for the shared-memory machine and interleaving explorer."""

import pytest

from repro.interleave.explorer import (
    count_interleavings,
    explore_outcomes,
    outcome_schedules,
)
from repro.interleave.machine import (
    AddI,
    Load,
    MachineState,
    Store,
    Thread,
    run_schedule,
)


def incr_thread(name: str, amount: int) -> Thread:
    return Thread(name, (Load("r", "x"), AddI("r", amount), Store("x", "r")))


class TestMachine:
    def test_single_thread_runs_to_completion(self):
        t = incr_thread("T0", 5)
        out = run_schedule([t], ["T0"] * 3, {"x": 0})
        assert out == {"x": 5}

    def test_lost_update_schedule(self):
        # Both threads read before either writes: one update is lost.
        t0, t1 = incr_thread("A", 1), incr_thread("B", 2)
        out = run_schedule([t0, t1], ["A", "B", "A", "B", "A", "B"], {"x": 0})
        assert out == {"x": 2}  # B's store lands last

    def test_serial_schedule(self):
        t0, t1 = incr_thread("A", 1), incr_thread("B", 2)
        out = run_schedule([t0, t1], ["A"] * 3 + ["B"] * 3, {"x": 0})
        assert out == {"x": 3}

    def test_incomplete_schedule_rejected(self):
        t = incr_thread("T0", 1)
        with pytest.raises(ValueError):
            run_schedule([t], ["T0"] * 2, {"x": 0})

    def test_unknown_thread_rejected(self):
        t = incr_thread("T0", 1)
        with pytest.raises(KeyError):
            run_schedule([t], ["T9"] * 3, {"x": 0})

    def test_undefined_variable_rejected(self):
        t = Thread("T0", (Load("r", "y"),))
        with pytest.raises(KeyError):
            run_schedule([t], ["T0"], {"x": 0})

    def test_register_before_load_rejected(self):
        t = Thread("T0", (Store("x", "r"),))
        with pytest.raises(KeyError):
            run_schedule([t], ["T0"], {"x": 0})

    def test_duplicate_thread_names_rejected(self):
        t = incr_thread("T0", 1)
        with pytest.raises(ValueError):
            MachineState.initial([t, t], {"x": 0})

    def test_snapshot_hashable_and_stable(self):
        t = incr_thread("T0", 1)
        s1 = MachineState.initial([t], {"x": 0})
        s2 = MachineState.initial([t], {"x": 0})
        assert s1.snapshot() == s2.snapshot()
        assert hash(s1.snapshot()) == hash(s2.snapshot())

    def test_copy_is_deep(self):
        t = incr_thread("T0", 1)
        s = MachineState.initial([t], {"x": 0})
        c = s.copy()
        c.shared["x"] = 9
        c.registers["T0"]["r"] = 1
        assert s.shared["x"] == 0 and "r" not in s.registers["T0"]


class TestExplorer:
    def test_count_interleavings(self):
        t0, t1 = incr_thread("A", 1), incr_thread("B", 2)
        assert count_interleavings([t0, t1]) == 20  # C(6, 3)

    def test_count_three_threads(self):
        ts = [incr_thread(f"T{k}", 1) for k in range(3)]
        assert count_interleavings(ts) == 1680  # 9! / (3!)^3

    def test_explore_outcomes_x1_x2(self):
        t0, t1 = incr_thread("A", 1), incr_thread("B", 2)
        outs = {dict(o)["x"] for o in explore_outcomes([t0, t1], {"x": 0})}
        assert outs == {1, 2, 3}

    def test_single_thread_single_outcome(self):
        outs = explore_outcomes([incr_thread("A", 7)], {"x": 0})
        assert len(outs) == 1

    def test_outcome_schedules_are_witnesses(self):
        t0, t1 = incr_thread("A", 1), incr_thread("B", 2)
        threads = [t0, t1]
        for outcome, schedule in outcome_schedules(threads, {"x": 0}).items():
            replay = run_schedule(threads, schedule, {"x": 0})
            assert frozenset(replay.items()) == outcome

    def test_three_increments_outcomes(self):
        # Three x+=1 threads: final x in {1, 2, 3}.
        ts = [incr_thread(f"T{k}", 1) for k in range(3)]
        outs = {dict(o)["x"] for o in explore_outcomes(ts, {"x": 0})}
        assert outs == {1, 2, 3}

    def test_disjoint_variables_single_outcome(self):
        a = Thread("A", (Load("r", "x"), AddI("r", 1), Store("x", "r")))
        b = Thread("B", (Load("r", "y"), AddI("r", 2), Store("y", "r")))
        outs = explore_outcomes([a, b], {"x": 0, "y": 0})
        assert outs == {frozenset({("x", 1), ("y", 2)})}
