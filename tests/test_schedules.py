"""Tests for update schedules (repro.core.schedules)."""

import itertools

import pytest

from repro.core.schedules import (
    BlockSequential,
    FixedPermutation,
    FixedWord,
    RandomPermutationSweeps,
    RandomSingleNode,
    Synchronous,
)


def take(schedule, n, k):
    return list(itertools.islice(schedule.blocks(n), k))


class TestSynchronous:
    def test_yields_full_blocks(self):
        blocks = take(Synchronous(), 4, 3)
        assert blocks == [(0, 1, 2, 3)] * 3

    def test_not_sequential(self):
        assert not Synchronous().is_sequential

    def test_fairness_bound(self):
        assert Synchronous().fairness_bound(5) == 1


class TestFixedPermutation:
    def test_identity_default(self):
        blocks = take(FixedPermutation(), 3, 6)
        assert blocks == [(0,), (1,), (2,), (0,), (1,), (2,)]

    def test_custom_order(self):
        blocks = take(FixedPermutation([2, 0, 1]), 3, 3)
        assert blocks == [(2,), (0,), (1,)]

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            take(FixedPermutation([0, 0, 1]), 3, 1)

    def test_is_sequential(self):
        assert FixedPermutation().is_sequential

    def test_fairness_bound(self):
        assert FixedPermutation().fairness_bound(4) == 7


class TestFixedWord:
    def test_repeats_word(self):
        blocks = take(FixedWord([0, 0, 2]), 3, 6)
        assert blocks == [(0,), (0,), (2,), (0,), (0,), (2,)]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FixedWord([])

    def test_rejects_out_of_range_letter(self):
        with pytest.raises(ValueError):
            take(FixedWord([0, 7]), 3, 1)

    def test_unfair_word_has_no_bound(self):
        assert FixedWord([0, 0]).fairness_bound(2) is None

    def test_fair_word_bound(self):
        assert FixedWord([0, 1]).fairness_bound(2) == 2


class TestBlockSequential:
    def test_blocks_cycle(self):
        sched = BlockSequential([(0, 2), (1, 3)])
        blocks = take(sched, 4, 4)
        assert blocks == [(0, 2), (1, 3), (0, 2), (1, 3)]

    def test_rejects_non_partition(self):
        with pytest.raises(ValueError):
            take(BlockSequential([(0, 1), (1, 2)]), 3, 1)
        with pytest.raises(ValueError):
            take(BlockSequential([(0,), (1,)]), 3, 1)

    def test_rejects_empty_block(self):
        with pytest.raises(ValueError):
            BlockSequential([(0,), ()])

    def test_sequential_detection(self):
        assert BlockSequential([(0,), (1,)]).is_sequential
        assert not BlockSequential([(0, 1)]).is_sequential

    def test_single_block_is_synchronous_like(self):
        sched = BlockSequential([(0, 1, 2)])
        assert take(sched, 3, 2) == [(0, 1, 2), (0, 1, 2)]


class TestRandomSchedules:
    def test_sweeps_are_permutations(self):
        blocks = take(RandomPermutationSweeps(seed=4), 5, 15)
        flat = [b[0] for b in blocks]
        for start in range(0, 15, 5):
            assert sorted(flat[start : start + 5]) == list(range(5))

    def test_sweeps_deterministic_given_seed(self):
        a = take(RandomPermutationSweeps(seed=1), 4, 12)
        b = take(RandomPermutationSweeps(seed=1), 4, 12)
        assert a == b

    def test_sweeps_differ_across_seeds(self):
        a = take(RandomPermutationSweeps(seed=1), 6, 18)
        b = take(RandomPermutationSweeps(seed=2), 6, 18)
        assert a != b

    def test_single_node_in_range(self):
        blocks = take(RandomSingleNode(seed=0), 4, 50)
        assert all(len(b) == 1 and 0 <= b[0] < 4 for b in blocks)

    def test_single_node_deterministic(self):
        assert take(RandomSingleNode(seed=9), 3, 20) == take(
            RandomSingleNode(seed=9), 3, 20
        )

    def test_describe_strings(self):
        assert "seed" in RandomSingleNode(seed=3).describe()
        assert "FixedWord" in FixedWord([0]).describe()


class TestAlphaAsynchronous:
    def test_blocks_nonempty_and_in_range(self):
        from repro.core.schedules import AlphaAsynchronous

        blocks = take(AlphaAsynchronous(0.4, seed=2), 6, 30)
        for b in blocks:
            assert b and all(0 <= i < 6 for i in b)
            assert len(set(b)) == len(b)  # no duplicates within a block

    def test_alpha_one_is_synchronous(self):
        from repro.core.schedules import AlphaAsynchronous

        blocks = take(AlphaAsynchronous(1.0, seed=0), 5, 4)
        assert blocks == [(0, 1, 2, 3, 4)] * 4

    def test_not_sequential(self):
        from repro.core.schedules import AlphaAsynchronous

        assert not AlphaAsynchronous(0.5).is_sequential

    def test_rejects_bad_alpha(self):
        from repro.core.schedules import AlphaAsynchronous

        with pytest.raises(ValueError):
            AlphaAsynchronous(0.0)
        with pytest.raises(ValueError):
            AlphaAsynchronous(1.5)

    def test_deterministic_given_seed(self):
        from repro.core.schedules import AlphaAsynchronous

        a = take(AlphaAsynchronous(0.6, seed=9), 7, 20)
        b = take(AlphaAsynchronous(0.6, seed=9), 7, 20)
        assert a == b

    def test_oscillation_destroyed_for_alpha_below_one(self):
        import numpy as np

        from repro.core.automaton import CellularAutomaton
        from repro.core.evolution import sequential_converge
        from repro.core.rules import MajorityRule
        from repro.core.schedules import AlphaAsynchronous
        from repro.spaces.line import Ring

        ca = CellularAutomaton(Ring(10), MajorityRule())
        alt = (np.arange(10) % 2).astype(np.uint8)
        res = sequential_converge(
            ca, alt, AlphaAsynchronous(0.5, seed=3), max_updates=5_000
        )
        assert res.converged
