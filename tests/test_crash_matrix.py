"""Kill-at-every-write-site crash matrix.

For every site in :data:`repro.core.durable.WRITE_SITES` (plus a sample
of the ``@rename``/``@dirsync`` sub-phase windows inside the durable
protocol), a subprocess runs a real workload with
``REPRO_FAULTS=<site>:crash:1.0:0`` armed — the process SIGKILLs itself
mid-write, the closest an injected fault gets to a power cut.  The test
then asserts the contract the durability layer sells:

1. the process actually died by SIGKILL at the armed site;
2. ``repro doctor`` classifies the surviving tree as consistent or
   repairs it into consistency (exit 0 or 1 — never 2);
3. re-running the same command (``--resume`` where applicable) completes
   cleanly, losing at most the record that was in flight.

The companion completeness test pins the driver table to the write-site
registry, so adding a durable write site without adding a crash driver
fails loudly here.
"""

from __future__ import annotations

import importlib
import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.cli import main
from repro.contracts import run_doctor
from repro.core import durable
from repro.harness import faults
from repro.harness.checkpoint import Checkpoint

ROOT = Path(__file__).resolve().parents[1]

#: Sub-phase crash windows worth exercising beyond the base sites: after
#: the durable temp is synced but before the rename lands, and after the
#: rename but before the directory fsync.
SUBPHASE_SITES = (
    "artifacts.manifest@rename",
    "checkpoint.snapshot@dirsync",
    "checkpoint.frontier@rename",
    "mc.artifact@rename",
)


def _subprocess_env(site: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    env["REPRO_FAULTS"] = f"{site}:crash:1.0:0"
    env.pop("REPRO_TRACE", None)
    return env


def _crash_cli(site: str, argv: list[str], cwd: Path) -> None:
    """Run the CLI in a subprocess with a crash armed; must die -SIGKILL."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=cwd,
        env=_subprocess_env(site),
        capture_output=True,
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, (
        f"expected SIGKILL at {site}, got rc={proc.returncode}\n"
        f"stdout: {proc.stdout!r}\nstderr: {proc.stderr!r}"
    )


def _crash_snippet(site: str, code: str, cwd: Path) -> None:
    """Run a library snippet in a subprocess with a crash armed."""
    prelude = "from repro.harness import faults\nfaults.install_from_env()\n"
    proc = subprocess.run(
        [sys.executable, "-c", prelude + code],
        cwd=cwd,
        env=_subprocess_env(site),
        capture_output=True,
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, (
        f"expected SIGKILL at {site}, got rc={proc.returncode}\n"
        f"stderr: {proc.stderr!r}"
    )


def _run_clean(argv: list[str]) -> int:
    """Run the CLI in-process with no faults armed."""
    faults.clear_faults()
    import io

    return main(argv, out=io.StringIO())


def _doctor_consistent(tree: Path) -> dict:
    report = run_doctor(tree)
    assert report["exit_code"] in (0, 1), (
        f"doctor could not restore consistency: "
        f"{json.dumps(report, indent=2)}"
    )
    return report


@pytest.fixture(autouse=True)
def clean_state():
    faults.clear_faults()
    obs.disable()
    obs.clear_sinks()
    obs.REGISTRY.reset()
    yield
    faults.clear_faults()
    obs.disable()
    obs.clear_sinks()
    obs.REGISTRY.reset()


# -- drivers -------------------------------------------------------------------


def _run_argv(tree: Path) -> list[str]:
    return [
        "run", "E1",
        "--resume", str(tree / "ckpt"),
        "--artifacts-dir", str(tree / "art"),
        "--trace",
    ]


def _drive_run(site: str, tree: Path) -> None:
    _crash_cli(site, _run_argv(tree), tree)
    _doctor_consistent(tree)
    assert _run_clean(_run_argv(tree)) == 0
    cp = Checkpoint(tree / "ckpt")
    try:
        assert "E1" in cp.completed()
    finally:
        cp.close()


def _sweep_argv(tree: Path, budget: bool) -> list[str]:
    argv = ["phase-space", "--n", "10", "--resume", str(tree / "sweep")]
    if budget:
        argv += ["--budget-states", "200"]
    return argv


def _drive_sweep(site: str, tree: Path) -> None:
    # The budget truncates the sweep, which is what saves a frontier —
    # the crash lands inside save_frontier.
    _crash_cli(site, _sweep_argv(tree, budget=True), tree)
    _doctor_consistent(tree)
    # The unbudgeted resume completes the enumeration (from the saved
    # frontier when it survived, from scratch when the doctor dropped a
    # torn one).
    assert _run_clean(_sweep_argv(tree, budget=False)) == 0


def _drive_findings(site: str, tree: Path) -> None:
    code = (
        "from repro.qa.findings import Finding\n"
        "Finding(check='differential.step_all', detail={}, "
        "spec={'n': 4, 'rule': 'majority'}, backends=['numpy'])"
        f".save({str(tree / 'findings')!r})\n"
    )
    _crash_snippet(site, code, tree)
    _doctor_consistent(tree)
    faults.clear_faults()
    from repro.qa.findings import Finding

    path = Finding(
        check="differential.step_all", detail={},
        spec={"n": 4, "rule": "majority"}, backends=["numpy"],
    ).save(tree / "findings")
    assert json.loads(path.read_text())["check"] == "differential.step_all"


def _drive_bench(site: str, tree: Path) -> None:
    payload = {
        "schema": "repro-bench/1", "module": "bench_demo",
        "generated": "2026-01-01T00:00:00+0000", "exit_status": 0,
        "environment": {}, "benchmarks": [], "metrics": {},
    }
    code = (
        "from repro.core import durable\n"
        f"durable.durable_write_json({str(tree / 'BENCH_demo.json')!r}, "
        f"{payload!r}, site='bench.write', checksum=False)\n"
    )
    _crash_snippet(site, code, tree)
    _doctor_consistent(tree)
    faults.clear_faults()
    durable.durable_write_json(
        tree / "BENCH_demo.json", payload, site="bench.write", checksum=False
    )
    assert json.loads((tree / "BENCH_demo.json").read_text())["module"] == (
        "bench_demo"
    )


def _mc_argv(tree: Path) -> list[str]:
    return [
        "mc", "--n", "12", "--samples", "256", "--seed", "1",
        "--artifact", str(tree / "mc.json"),
    ]


def _drive_mc(site: str, tree: Path) -> None:
    # The estimate completes and the crash lands inside the durable
    # artifact write; the doctor must never see a torn mc.json, and the
    # (deterministic) re-run rewrites the identical artifact.
    _crash_cli(site, _mc_argv(tree), tree)
    _doctor_consistent(tree)
    assert _run_clean(_mc_argv(tree)) == 0
    payload = json.loads((tree / "mc.json").read_text())
    assert payload["schema"] == "repro-mc/1"
    assert payload["counts"]["samples"] == payload["samples"]


def _drive_index(site: str, tree: Path) -> None:
    # Seed an artifact so the ingestion has something to walk.
    cp = Checkpoint(tree / "ckpt")
    cp.record_start("E1")
    cp.record_finish("E1", {"status": "ok", "duration_s": 0.1})
    cp.close()
    argv = [
        "runs", "index", str(tree / "ckpt"),
        "--db", str(tree / "runs_index.sqlite"),
    ]
    _crash_cli(site, argv, tree)
    _doctor_consistent(tree)
    assert _run_clean(argv) == 0


DRIVERS = {
    "checkpoint.journal": _drive_run,
    "checkpoint.snapshot": _drive_run,
    "artifacts.manifest": _drive_run,
    "artifacts.write_event": _drive_run,
    "export.prom": _drive_run,
    "checkpoint.frontier_array": _drive_sweep,
    "checkpoint.frontier": _drive_sweep,
    "findings.save": _drive_findings,
    "bench.write": _drive_bench,
    "index.write": _drive_index,
    "mc.artifact": _drive_mc,
    "artifacts.manifest@rename": _drive_run,
    "checkpoint.snapshot@dirsync": _drive_run,
    "checkpoint.frontier@rename": _drive_sweep,
    "mc.artifact@rename": _drive_mc,
}


def _registered_sites() -> set[str]:
    for mod in (
        "repro.harness.checkpoint",
        "repro.obs.artifacts",
        "repro.obs.export",
        "repro.obs.index",
        "repro.qa.findings",
        "repro.mc.engine",
    ):
        importlib.import_module(mod)
    if str(ROOT) not in sys.path:
        sys.path.insert(0, str(ROOT))
    importlib.import_module("benchmarks.conftest")  # registers bench.write
    return set(durable.registered_write_sites())


def test_matrix_covers_every_registered_site():
    """A new durable write site must come with a crash driver."""
    sites = _registered_sites()
    base_drivers = {s for s in DRIVERS if "@" not in s}
    assert sites == base_drivers, (
        f"write-site registry and crash-matrix drivers diverge: "
        f"only-registered={sorted(sites - base_drivers)}, "
        f"only-drivers={sorted(base_drivers - sites)}"
    )
    for sub in SUBPHASE_SITES:
        assert sub in DRIVERS


@pytest.mark.parametrize("site", sorted(DRIVERS))
def test_kill_then_doctor_then_resume(site, tmp_path):
    DRIVERS[site](site, tmp_path)
