"""Tests for functional-graph machinery (repro.analysis.cycles)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cycles import (
    FunctionalGraph,
    scc_labels,
    strongly_connected_sizes,
)


class TestFunctionalGraph:
    def test_identity_map_all_fixed(self):
        fg = FunctionalGraph(np.arange(5))
        assert fg.fixed_points.tolist() == [0, 1, 2, 3, 4]
        assert fg.on_cycle.all()
        assert len(fg.cycles) == 5
        assert fg.proper_cycles == []

    def test_single_cycle(self):
        # 0 -> 1 -> 2 -> 0
        fg = FunctionalGraph(np.array([1, 2, 0]))
        assert len(fg.cycles) == 1
        assert sorted(fg.cycles[0]) == [0, 1, 2]
        assert fg.proper_cycles == fg.cycles

    def test_rho_shape(self):
        # 3 -> 2 -> 0 <-> 1 (two-cycle with a tail)
        succ = np.array([1, 0, 0, 2])
        fg = FunctionalGraph(succ)
        assert sorted(fg.cycles[0]) == [0, 1]
        assert fg.on_cycle.tolist() == [True, True, False, False]
        assert fg.steps_to_cycle.tolist() == [0, 0, 1, 2]
        assert fg.attractor_of.tolist() == [0, 0, 0, 0]
        assert fg.max_transient() == 2

    def test_two_attractors_and_basins(self):
        # 0 fixed; 1 fixed; 2->0, 3->1, 4->3
        succ = np.array([0, 1, 0, 1, 3])
        fg = FunctionalGraph(succ)
        assert len(fg.cycles) == 2
        basins = fg.basin_sizes()
        assert sorted(basins.tolist()) == [2, 3]

    def test_gardens_of_eden(self):
        succ = np.array([0, 0, 1, 1])
        fg = FunctionalGraph(succ)
        assert fg.gardens_of_eden.tolist() == [2, 3]

    def test_in_degrees(self):
        succ = np.array([0, 0, 0, 1])
        fg = FunctionalGraph(succ)
        assert fg.in_degrees.tolist() == [3, 1, 0, 0]

    def test_cycle_listed_in_successor_order(self):
        succ = np.array([2, 0, 1])  # 0 -> 2 -> 1 -> 0
        fg = FunctionalGraph(succ)
        cyc = fg.cycles[0]
        for a, b in zip(cyc, cyc[1:] + cyc[:1]):
            assert succ[a] == b

    def test_rejects_bad_successors(self):
        with pytest.raises(ValueError):
            FunctionalGraph(np.array([0, 5]))
        with pytest.raises(ValueError):
            FunctionalGraph(np.array([], dtype=np.int64))

    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=32,
                    max_size=32))
    @settings(max_examples=30, deadline=None)
    def test_invariants_random_maps(self, succ_list):
        fg = FunctionalGraph(np.array(succ_list))
        # Partition: every node is on a cycle or a transient tree node.
        cyc_nodes = {v for c in fg.cycles for v in c}
        assert cyc_nodes == set(np.flatnonzero(fg.on_cycle).tolist())
        # Walking steps_to_cycle steps lands on a cycle node.
        for v in range(32):
            w = v
            for _ in range(int(fg.steps_to_cycle[v])):
                w = succ_list[w]
            assert fg.on_cycle[w]
        # Attractor labels are consistent along edges.
        for v in range(32):
            assert fg.attractor_of[v] == fg.attractor_of[succ_list[v]]
        # Basin sizes sum to the number of nodes.
        assert fg.basin_sizes().sum() == 32


class TestSCC:
    def test_two_cycle(self):
        sizes = strongly_connected_sizes(
            np.array([0, 1]), np.array([1, 0]), 3
        )
        assert sorted(sizes.tolist()) == [1, 2]

    def test_dag_all_singletons(self):
        rows = np.array([0, 1, 2])
        cols = np.array([1, 2, 3])
        sizes = strongly_connected_sizes(rows, cols, 4)
        assert sizes.tolist() == [1, 1, 1, 1]

    def test_labels_count(self):
        n_comp, labels = scc_labels(np.array([0, 1, 2]), np.array([1, 2, 0]), 4)
        assert n_comp == 2  # the triangle plus the isolated node
        assert len(set(labels[:3].tolist())) == 1

    def test_empty_edges(self):
        sizes = strongly_connected_sizes(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64), 5
        )
        assert sizes.tolist() == [1] * 5

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            scc_labels(np.array([0]), np.array([0, 1]), 2)
