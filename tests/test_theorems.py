"""Tests for the executable theorems (repro.core.theorems)."""

import numpy as np
import pytest

from repro.core.automaton import CellularAutomaton
from repro.core.rules import MajorityRule
from repro.core.theorems import (
    TheoremReport,
    alternating_config,
    block_config,
    check_bipartite_two_cycles,
    check_corollary1,
    check_lemma1_parallel,
    check_lemma1_sequential,
    check_lemma2_parallel,
    check_lemma2_sequential,
    check_proposition1,
    check_theorem1,
)
from repro.spaces.graph import star_space
from repro.spaces.grid import Grid2D
from repro.spaces.hypercube import Hypercube
from repro.spaces.line import Ring


class TestWitnessConstructions:
    def test_alternating(self):
        np.testing.assert_array_equal(alternating_config(6), [0, 1, 0, 1, 0, 1])

    def test_block(self):
        np.testing.assert_array_equal(
            block_config(8, 2), [0, 0, 1, 1, 0, 0, 1, 1]
        )

    def test_block_rejects_bad_size(self):
        with pytest.raises(ValueError):
            block_config(9, 2)

    def test_alternating_is_two_cycle_on_even_ring(self):
        ca = CellularAutomaton(Ring(10), MajorityRule())
        alt = alternating_config(10)
        one = ca.step(alt)
        np.testing.assert_array_equal(one, 1 - alt)
        np.testing.assert_array_equal(ca.step(one), alt)

    def test_alternating_fixed_for_even_radius(self):
        # For r=2 the alternating configuration is a FIXED point (each
        # window holds only 2 of 5 ones) — why Corollary 1 needs the block
        # witness for even radii.
        ca = CellularAutomaton(Ring(8, radius=2), MajorityRule())
        alt = alternating_config(8)
        assert ca.is_fixed_point(alt)


class TestLemma1:
    def test_parallel_holds(self):
        report = check_lemma1_parallel(ring_sizes=(4, 6, 8), exhaustive_limit=8)
        assert report.holds
        assert report.counterexamples == ()
        assert any(w[0] == "infinite" for w in report.witnesses)

    def test_parallel_rejects_odd_sizes(self):
        with pytest.raises(ValueError):
            check_lemma1_parallel(ring_sizes=(5,))

    def test_sequential_holds(self):
        report = check_lemma1_sequential(ring_sizes=(3, 4, 5, 6, 7, 8))
        assert report.holds
        assert all(
            not v for k, v in report.details.items() if k.endswith("has_cycle")
        )

    def test_report_is_truthy(self):
        assert bool(check_lemma1_sequential(ring_sizes=(4,)))

    def test_report_dataclass_fields(self):
        report = check_lemma1_parallel(ring_sizes=(6,), exhaustive_limit=6)
        assert isinstance(report, TheoremReport)
        assert "MAJORITY" in report.statement
        assert report.parameters["radius"] == 1


class TestTheorem1:
    def test_holds_default_class(self):
        report = check_theorem1(ring_sizes=(3, 4, 5, 6, 7))
        assert report.holds
        assert report.details["rules_checked"] == 5  # arity-3 thresholds

    def test_radius2_class(self):
        report = check_theorem1(ring_sizes=(5, 6, 7), radius=2)
        assert report.holds
        assert report.details["rules_checked"] == 7  # arity-5 thresholds


class TestLemma2:
    def test_parallel(self):
        report = check_lemma2_parallel(ring_sizes=(8, 12), exhaustive_limit=12)
        assert report.holds

    def test_parallel_rejects_bad_size(self):
        with pytest.raises(ValueError):
            check_lemma2_parallel(ring_sizes=(10,))

    def test_sequential(self):
        report = check_lemma2_sequential(ring_sizes=(5, 6, 7, 8, 9))
        assert report.holds


class TestCorollary1:
    def test_holds_radii_1_to_4(self):
        report = check_corollary1(radii=(1, 2, 3, 4))
        assert report.holds
        kinds = {(w[0], w[2]) for w in report.witnesses}
        assert (1, "block") in kinds
        assert (3, "alternating") in kinds  # odd radius second cycle

    def test_even_radius_has_block_only(self):
        report = check_corollary1(radii=(2,))
        assert report.holds
        assert all(w[2] == "block" for w in report.witnesses)


class TestProposition1:
    def test_default_spaces(self):
        report = check_proposition1(
            spaces=[Ring(8), Ring(9), Grid2D(3, 3), Hypercube(3)]
        )
        assert report.holds
        for value in report.details.values():
            assert value["max_cycle_length"] <= 2

    def test_explicit_thresholds(self):
        report = check_proposition1(spaces=[Ring(7)], thresholds=(1, 2, 3))
        assert report.holds

    def test_irregular_graph(self):
        report = check_proposition1(spaces=[star_space(4)])
        assert report.holds


class TestBipartite:
    def test_default_spaces_hold(self):
        report = check_bipartite_two_cycles()
        assert report.holds
        assert len(report.witnesses) >= 5

    def test_non_bipartite_rejected(self):
        report = check_bipartite_two_cycles(spaces=[Ring(5)])
        assert not report.holds
        assert "not bipartite" in report.counterexamples[0][1]

    def test_min_degree_guard(self):
        # The star is bipartite but its leaves have degree 1: the
        # construction legitimately does not apply.
        report = check_bipartite_two_cycles(spaces=[star_space(3)])
        assert not report.holds
        assert "degree" in report.counterexamples[0][1]

    def test_hypercube_witness(self):
        report = check_bipartite_two_cycles(spaces=[Hypercube(3)])
        assert report.holds
        ca = CellularAutomaton(Hypercube(3), MajorityRule())
        even, _ = Hypercube(3).parity_classes()
        state = np.zeros(8, dtype=np.uint8)
        for i in even:
            state[i] = 1
        np.testing.assert_array_equal(ca.step(state), 1 - state)
