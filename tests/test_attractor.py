"""Tests for the attractor-direct SWAR kernel and the symmetry quotient.

The load-bearing property: for every automaton the kernel supports, the
weighted counts it produces over orbit representatives are byte-identical
to classifying the materialized functional graph
(:func:`repro.analysis.cycles.cycle_length_counts`) — that equivalence is
what licenses the exact census past the materialized ceiling.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.census import (
    AttractorCensusRow,
    attractor_ring_census,
    build_attractor_census,
    majority_ring_census,
)
from repro.analysis.cycles import FunctionalGraph, cycle_length_counts
from repro.analysis.quotient import (
    QuotientSpec,
    canonical_update_order,
    orbit_reps_in_range,
    orbit_weights,
    quotient_mode,
    update_order_reps,
)
from repro.core.automaton import CellularAutomaton
from repro.core.heterogeneous import HeterogeneousCA
from repro.core.rules import MajorityRule, WolframRule, XorRule
from repro.perf.attractor import (
    COUNT_FIELDS,
    K_COUNTS,
    AttractorKernel,
    merge_counts,
    zero_counts,
)
from repro.perf.base import MAX_ATTRACTOR_N, BackendUnsupported
from repro.spaces.line import Line, Ring


def _automata():
    """A spread of spaces / rules / quotient modes (n kept materializable)."""
    return [
        ("ring-majority-mem", CellularAutomaton(Ring(9), MajorityRule(), memory=True)),
        ("ring-majority", CellularAutomaton(Ring(10), MajorityRule(), memory=False)),
        ("ring-xor", CellularAutomaton(Ring(8), XorRule(), memory=True)),
        ("ring-wolfram110", CellularAutomaton(Ring(9), WolframRule(110), memory=True)),
        ("line-majority", CellularAutomaton(Line(9), MajorityRule(), memory=True)),
        (
            "ring-hetero",
            HeterogeneousCA(
                Ring(8),
                [MajorityRule() if i % 2 else XorRule() for i in range(8)],
                memory=True,
            ),
        ),
    ]


def _expected_counts(ca) -> dict:
    return cycle_length_counts(FunctionalGraph(ca.step_all()))


class TestKernelVsMaterialized:
    @pytest.mark.parametrize("label,ca", _automata(), ids=[a[0] for a in _automata()])
    def test_census_matches_functional_graph(self, label, ca):
        partial = build_attractor_census(ca)
        assert partial.complete, partial.reason
        row = partial.value
        expected = _expected_counts(ca)
        assert row.fixed_points == expected["fixed_points"]
        assert row.cycle_configs == expected["cycle_configs"]
        assert row.two_cycle_configs == expected["two_cycle_configs"]
        assert row.max_cycle_len == expected["max_cycle_len"]
        assert row.configurations == 1 << ca.n

    def test_classify_matches_brute_force(self):
        ca = CellularAutomaton(Ring(7), MajorityRule(), memory=True)
        succ = ca.step_all()
        graph = FunctionalGraph(succ)
        cycle_len = np.array(
            [len(graph.cycles[k]) for k in graph.attractor_of], dtype=np.int64
        )
        codes = np.arange(1 << 7, dtype=np.uint64)
        lam, on_cycle = AttractorKernel(ca).classify(codes)
        np.testing.assert_array_equal(lam, cycle_len)
        np.testing.assert_array_equal(on_cycle, graph.on_cycle)

    def test_split_ranges_merge_exactly(self):
        ca = CellularAutomaton(Ring(10), MajorityRule(), memory=True)
        kernel = AttractorKernel(ca)
        whole = kernel.census_range(0, 1 << 10)
        acc = zero_counts()
        for lo in range(0, 1 << 10, 177):
            merge_counts(acc, kernel.census_range(lo, min(lo + 177, 1 << 10)))
        np.testing.assert_array_equal(acc, whole)

    def test_agrees_with_materialized_census_rows(self):
        sizes = range(4, 10)
        direct = attractor_ring_census(sizes)
        full = majority_ring_census(sizes)
        for d, f in zip(direct, full):
            assert (d.n, d.fixed_points, d.cycle_configs) == (
                f.n,
                f.fixed_points,
                f.cycle_configs,
            )

    def test_counts_vector_shape(self):
        assert len(COUNT_FIELDS) == K_COUNTS
        assert zero_counts().shape == (K_COUNTS,)

    def test_merge_counts_maxes_cycle_len(self):
        a, b = zero_counts(), zero_counts()
        a[6], b[6] = 3, 5
        a[3], b[3] = 2, 7
        merge_counts(a, b)
        assert a[6] == 5 and a[3] == 9

    def test_rejects_oversized_ring(self):
        ca = CellularAutomaton(Ring(MAX_ATTRACTOR_N + 1), MajorityRule())
        with pytest.raises(BackendUnsupported):
            AttractorKernel(ca)


class TestConfigurationQuotient:
    @given(st.integers(min_value=1, max_value=14), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_weights_cover_space(self, n, reflections):
        reps = orbit_reps_in_range(n, 0, 1 << n, reflections)
        weights = orbit_weights(reps, n, reflections)
        assert int(weights.sum()) == 1 << n

    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_union_is_exact(self, n, pieces):
        full = orbit_reps_in_range(n, 0, 1 << n)
        cuts = np.linspace(0, 1 << n, pieces + 1).astype(int)
        parts = [
            orbit_reps_in_range(n, int(lo), int(hi))
            for lo, hi in zip(cuts[:-1], cuts[1:])
        ]
        np.testing.assert_array_equal(np.concatenate(parts), full)

    def test_reps_are_canonical_minima(self):
        from repro.util.bitops import canonical_ring_form

        n = 11
        reps = orbit_reps_in_range(n, 0, 1 << n)
        np.testing.assert_array_equal(canonical_ring_form(reps, n), reps)
        # and every code canonicalizes onto exactly this set
        codes = np.arange(1 << n, dtype=np.uint64)
        assert set(canonical_ring_form(codes, n).tolist()) == set(reps.tolist())

    def test_mode_selection(self):
        assert quotient_mode(CellularAutomaton(Ring(8), MajorityRule())) == "dihedral"
        assert (
            quotient_mode(
                CellularAutomaton(Ring(8), WolframRule(110), memory=True)
            )
            == "cyclic"
        )
        assert quotient_mode(CellularAutomaton(Line(8), MajorityRule())) == "trivial"
        assert (
            quotient_mode(
                HeterogeneousCA(
                    Ring(6),
                    [MajorityRule() if i % 2 else XorRule() for i in range(6)],
                )
            )
            == "trivial"
        )

    def test_census_identical_across_modes(self):
        """Dihedral, cyclic and trivial quotients must agree exactly."""
        ca = CellularAutomaton(Ring(10), MajorityRule(), memory=True)
        rows = []
        for mode in ("dihedral", "cyclic", "trivial"):
            kernel = AttractorKernel(ca, quotient=QuotientSpec(10, mode))
            partial = build_attractor_census(ca, kernel=kernel)
            assert partial.complete, partial.reason
            rows.append(partial.value)
        base = rows[0]
        for row in rows[1:]:
            assert (
                row.fixed_points,
                row.cycle_configs,
                row.two_cycle_configs,
                row.max_cycle_len,
            ) == (
                base.fixed_points,
                base.cycle_configs,
                base.two_cycle_configs,
                base.max_cycle_len,
            )
        # the quotient earns its keep: strictly fewer reps than configs
        assert rows[0].orbit_reps < rows[2].orbit_reps == 1 << 10


class TestScheduleQuotient:
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_canonical_is_conjugation_invariant(self, n, seed):
        rng = np.random.default_rng(seed)
        order = tuple(int(i) for i in rng.permutation(n))
        rep = canonical_update_order(order, n)
        for s in range(n):
            rotated = tuple((i + s) % n for i in order)
            mirrored = tuple((n - 1 - i + s) % n for i in order)
            assert canonical_update_order(rotated, n) == rep
            assert canonical_update_order(mirrored, n) == rep

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_weights_cover_all_orders(self, n):
        import math

        reps, weights = update_order_reps(n)
        assert int(weights.sum()) == math.factorial(n)
        assert all(
            canonical_update_order(r, n) == r for r in reps
        )

    def test_rejects_large_n(self):
        with pytest.raises(ValueError):
            update_order_reps(9)

    def test_conjugate_orders_share_attractor_stats(self):
        """The justification for quotienting the sequential census."""
        n = 5
        ca = CellularAutomaton(Ring(n), MajorityRule(), memory=True)
        node_succ = ca.all_node_successors()

        def sweep_map(order):
            codes = np.arange(1 << n, dtype=np.int64)
            for i in order:
                codes = node_succ[i][codes]
            return codes

        order = (2, 0, 4, 1, 3)
        base = cycle_length_counts(FunctionalGraph(sweep_map(order)))
        for s in range(n):
            rotated = tuple((i + s) % n for i in order)
            mirrored = tuple((n - 1 - i + s) % n for i in order)
            assert cycle_length_counts(FunctionalGraph(sweep_map(rotated))) == base
            assert cycle_length_counts(FunctionalGraph(sweep_map(mirrored))) == base


class TestAttractorCensusRow:
    def test_summary_keys(self):
        row = AttractorCensusRow(4, 16, 6, 6, 2, 2, 2, "dihedral")
        assert row.summary()["configurations"] == 16
        assert row.summary()["quotient"] == "dihedral"
