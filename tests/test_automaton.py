"""Tests for the CellularAutomaton engine (repro.core.automaton)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.automaton import CellularAutomaton
from repro.core.rules import (
    MajorityRule,
    SimpleThresholdRule,
    WolframRule,
    XorRule,
    majority_table_rule,
)
from repro.spaces.grid import Grid2D
from repro.spaces.hypercube import Hypercube
from repro.spaces.line import Line, Ring


class TestConstruction:
    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CellularAutomaton(Ring(7, radius=2), majority_table_rule(3))

    def test_symmetric_rule_fits_any_space(self):
        for space in (Ring(5), Line(5), Grid2D(3, 3), Hypercube(3)):
            CellularAutomaton(space, MajorityRule())

    def test_describe_mentions_parts(self):
        ca = CellularAutomaton(Ring(5), MajorityRule())
        assert "Ring" in ca.describe() and "Majority" in ca.describe()


class TestSynchronousStep:
    def test_majority_smooths_isolated_one(self):
        ca = CellularAutomaton(Ring(7), MajorityRule())
        state = np.zeros(7, dtype=np.uint8)
        state[3] = 1
        np.testing.assert_array_equal(ca.step(state), np.zeros(7))

    def test_majority_keeps_solid_block(self):
        ca = CellularAutomaton(Ring(8), MajorityRule())
        state = np.array([1, 1, 1, 1, 0, 0, 0, 0], dtype=np.uint8)
        np.testing.assert_array_equal(ca.step(state), state)

    def test_alternating_flips(self):
        ca = CellularAutomaton(Ring(8), MajorityRule())
        alt = (np.arange(8) % 2).astype(np.uint8)
        np.testing.assert_array_equal(ca.step(alt), 1 - alt)

    def test_step_does_not_mutate_input(self):
        ca = CellularAutomaton(Ring(8), MajorityRule())
        alt = (np.arange(8) % 2).astype(np.uint8)
        before = alt.copy()
        ca.step(alt)
        np.testing.assert_array_equal(alt, before)

    def test_line_boundary_quiescent(self):
        # On the line, the leftmost node sees a quiescent 0 beyond the edge:
        # MAJORITY(0, 1, 0) = 0.
        ca = CellularAutomaton(Line(3), MajorityRule())
        state = np.array([1, 0, 0], dtype=np.uint8)
        assert ca.step(state)[0] == 0

    def test_memoryless_window(self):
        # Memoryless XOR on a ring: next = left XOR right.
        ca = CellularAutomaton(Ring(5), XorRule(), memory=False)
        state = np.array([1, 0, 0, 0, 0], dtype=np.uint8)
        expected = np.array([0, 1, 0, 0, 1], dtype=np.uint8)
        np.testing.assert_array_equal(ca.step(state), expected)

    def test_rejects_wrong_length(self):
        ca = CellularAutomaton(Ring(5), MajorityRule())
        with pytest.raises(ValueError):
            ca.step(np.zeros(4, dtype=np.uint8))


class TestStepNaiveAgreement:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_vectorized_equals_naive_majority(self, seed):
        rng = np.random.default_rng(seed)
        ca = CellularAutomaton(Ring(11, radius=2), MajorityRule())
        state = rng.integers(0, 2, ca.n).astype(np.uint8)
        np.testing.assert_array_equal(ca.step(state), ca.step_naive(state))

    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_vectorized_equals_naive_wolfram(self, rule_number, seed):
        rng = np.random.default_rng(seed)
        ca = CellularAutomaton(Ring(9), WolframRule(rule_number))
        state = rng.integers(0, 2, ca.n).astype(np.uint8)
        np.testing.assert_array_equal(ca.step(state), ca.step_naive(state))

    def test_agreement_on_irregular_graph(self):
        from repro.spaces.graph import star_space

        ca = CellularAutomaton(star_space(5), MajorityRule())
        rng = np.random.default_rng(3)
        for _ in range(10):
            state = rng.integers(0, 2, ca.n).astype(np.uint8)
            np.testing.assert_array_equal(ca.step(state), ca.step_naive(state))


class TestSequentialPrimitive:
    def test_node_next(self):
        ca = CellularAutomaton(Ring(5), MajorityRule())
        state = np.array([1, 1, 0, 0, 0], dtype=np.uint8)
        assert ca.node_next(state, 0) == 1  # window (0,1,1)
        assert ca.node_next(state, 2) == 0  # window (1,0,0)

    def test_update_node_copies(self):
        ca = CellularAutomaton(Ring(5), MajorityRule())
        # Node 1 reads window (x0, x1, x2) = (1, 0, 1) -> majority 1.
        state = np.array([1, 0, 1, 0, 0], dtype=np.uint8)
        new = ca.update_node(state, 1)
        assert new[1] == 1 and state[1] == 0

    def test_update_node_inplace_reports_change(self):
        ca = CellularAutomaton(Ring(5), MajorityRule())
        state = np.array([1, 0, 1, 0, 0], dtype=np.uint8)
        assert ca.update_node_inplace(state, 1) is True
        assert state[1] == 1
        assert ca.update_node_inplace(state, 1) is False

    def test_fixed_point_predicate(self):
        ca = CellularAutomaton(Ring(8), MajorityRule())
        assert ca.is_fixed_point(np.zeros(8, dtype=np.uint8))
        assert ca.is_fixed_point(np.ones(8, dtype=np.uint8))
        alt = (np.arange(8) % 2).astype(np.uint8)
        assert not ca.is_fixed_point(alt)

    def test_with_memory_fp_iff_all_node_updates_fixed(self):
        ca = CellularAutomaton(Ring(7), MajorityRule())
        rng = np.random.default_rng(5)
        for _ in range(30):
            state = rng.integers(0, 2, 7).astype(np.uint8)
            parallel_fp = ca.is_fixed_point(state)
            node_fp = all(
                ca.node_next(state, i) == state[i] for i in range(7)
            )
            assert parallel_fp == node_fp


class TestWholeSpaceSweeps:
    def test_step_all_matches_step(self):
        ca = CellularAutomaton(Ring(6), MajorityRule())
        succ = ca.step_all()
        for code in range(64):
            expected = ca.pack(ca.step(ca.unpack(code)))
            assert int(succ[code]) == expected

    def test_step_all_wolfram(self):
        ca = CellularAutomaton(Ring(5), WolframRule(110))
        succ = ca.step_all()
        for code in range(32):
            assert int(succ[code]) == ca.pack(ca.step(ca.unpack(code)))

    def test_node_successors_match_update_node(self):
        ca = CellularAutomaton(Ring(5), MajorityRule())
        for i in range(5):
            succ = ca.node_successors(i)
            for code in range(32):
                expected = ca.pack(ca.update_node(ca.unpack(code), i))
                assert int(succ[code]) == expected

    def test_node_successors_touch_only_their_bit(self):
        ca = CellularAutomaton(Ring(6), MajorityRule())
        codes = np.arange(64)
        for i in range(6):
            diff = ca.node_successors(i) ^ codes
            assert np.all((diff == 0) | (diff == (1 << i)))

    def test_all_node_successors_shape(self):
        ca = CellularAutomaton(Ring(4, radius=1), MajorityRule())
        mat = ca.all_node_successors()
        assert mat.shape == (4, 16)

    def test_step_all_spans_chunks(self):
        # Force the chunked path (> _CHUNK configs) with a large ring.
        import repro.core.automaton as auto_mod

        old_chunk = auto_mod._CHUNK
        auto_mod._CHUNK = 64
        try:
            ca = CellularAutomaton(Ring(9), MajorityRule())
            succ = ca.step_all()
        finally:
            auto_mod._CHUNK = old_chunk
        ca2 = CellularAutomaton(Ring(9), MajorityRule())
        np.testing.assert_array_equal(succ, ca2.step_all())

    def test_step_all_refuses_huge(self):
        ca = CellularAutomaton(Ring(5), MajorityRule())
        ca.space._n = 30  # simulate a huge space without allocating
        with pytest.raises(ValueError):
            ca.step_all()


class TestPackUnpack:
    def test_roundtrip(self):
        ca = CellularAutomaton(Ring(6), MajorityRule())
        for code in (0, 1, 21, 63):
            assert ca.pack(ca.unpack(code)) == code

    def test_threshold_rule_on_hypercube(self):
        ca = CellularAutomaton(Hypercube(3), SimpleThresholdRule(1))
        # Threshold 1 (OR): a single 1 spreads to its neighbors.
        state = np.zeros(8, dtype=np.uint8)
        state[0] = 1
        out = ca.step(state)
        assert out[0] == 1
        assert all(out[j] == 1 for j in Hypercube(3).neighbors(0))
