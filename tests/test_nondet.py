"""Tests for sequential (nondeterministic) phase spaces (repro.core.nondet)."""

import numpy as np
import pytest

from repro.core.automaton import CellularAutomaton
from repro.core.nondet import NondetPhaseSpace
from repro.core.phase_space import PhaseSpace
from repro.core.rules import MajorityRule, XorRule
from repro.spaces.line import Ring


@pytest.fixture(scope="module")
def xor2_nps(request):
    import networkx as nx

    from repro.spaces.graph import GraphSpace

    ca = CellularAutomaton(GraphSpace(nx.path_graph(2)), XorRule())
    return NondetPhaseSpace.from_automaton(ca)


@pytest.fixture(scope="module")
def majority6_nps():
    ca = CellularAutomaton(Ring(6), MajorityRule())
    return NondetPhaseSpace.from_automaton(ca)


class TestConstruction:
    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            NondetPhaseSpace(np.zeros((3, 4), dtype=np.int64), 2)

    def test_transitions_listing(self, xor2_nps):
        # From 11, node 0 -> 10 (code 2), node 1 -> 01 (code 1).
        assert xor2_nps.transitions(0b11) == [(0, 0b10), (1, 0b01)]


class TestFigure1bStructure:
    """The paper's Fig. 1(b), checked fact by fact."""

    def test_00_is_the_only_fixed_point(self, xor2_nps):
        assert xor2_nps.fixed_points.tolist() == [0]

    def test_pseudo_fixed_points(self, xor2_nps):
        assert sorted(xor2_nps.pseudo_fixed_points.tolist()) == [1, 2]

    def test_00_unreachable(self, xor2_nps):
        assert xor2_nps.unreachable_configs().tolist() == [0]
        for start in (1, 2, 3):
            assert not xor2_nps.can_reach(start, 0)

    def test_proper_cycles_exist(self, xor2_nps):
        assert xor2_nps.has_proper_cycle()
        comps = xor2_nps.proper_cycle_components()
        assert len(comps) == 1
        assert sorted(comps[0].tolist()) == [1, 2, 3]

    def test_two_cycle_witness(self, xor2_nps):
        witness = xor2_nps.find_two_cycle()
        assert witness is not None
        a, i, b, j = witness
        assert int(xor2_nps.node_succ[i, a]) == b
        assert int(xor2_nps.node_succ[j, b]) == a


class TestThresholdSequential:
    def test_no_proper_cycle(self, majority6_nps):
        assert not majority6_nps.has_proper_cycle()
        assert majority6_nps.proper_cycle_components() == []
        assert majority6_nps.find_two_cycle() is None

    def test_fixed_points_match_parallel(self, majority6_nps):
        ca = CellularAutomaton(Ring(6), MajorityRule())
        ps = PhaseSpace.from_automaton(ca)
        np.testing.assert_array_equal(
            majority6_nps.fixed_points, ps.fixed_points
        )

    def test_every_config_reaches_a_fixed_point(self, majority6_nps):
        fps = set(majority6_nps.fixed_points.tolist())
        for code in range(majority6_nps.size):
            reach = set(majority6_nps.reachable_from(code).tolist())
            assert reach & fps, f"config {code} cannot reach any fixed point"

    def test_alternating_cannot_return(self, majority6_nps):
        # From the alternating config, after any effective update the
        # config is never seen again (cycle-freeness in action).
        alt = 0b010101
        for node in range(6):
            nxt = int(majority6_nps.node_succ[node, alt])
            if nxt != alt:
                assert not majority6_nps.can_reach(nxt, alt)


class TestReachability:
    def test_reachable_includes_self(self, majority6_nps):
        assert 7 in majority6_nps.reachable_from(7).tolist()

    def test_can_reach_reflexive(self, majority6_nps):
        assert majority6_nps.can_reach(5, 5)

    def test_coreachable_inverse_of_reachable(self, majority6_nps):
        nps = majority6_nps
        target = 0
        co = set(nps.coreachable_to(target).tolist())
        for code in range(nps.size):
            assert (target in set(nps.reachable_from(code).tolist())) == (
                code in co
            )

    def test_fixed_points_reach_only_themselves(self, majority6_nps):
        for fp in majority6_nps.fixed_points.tolist():
            assert majority6_nps.reachable_from(fp).tolist() == [fp]


class TestExports:
    def test_networkx_multigraph(self, xor2_nps):
        g = xor2_nps.to_networkx()
        assert g.number_of_nodes() == 4
        # Change edges only: 01->11, 10->11, 11->10, 11->01.
        assert g.number_of_edges() == 4
        with_loops = xor2_nps.to_networkx(include_self_loops=True)
        assert with_loops.number_of_edges() == 8

    def test_summary(self, majority6_nps):
        s = majority6_nps.summary()
        assert s["has_proper_cycle"] is False
        assert s["configurations"] == 64


class TestMemorylessVariant:
    def test_memoryless_majority_sequential_also_cycle_free(self):
        # The energy argument extends to memoryless threshold SCA with
        # integer weights: still cycle-free (see repro.core.energy notes).
        ca = CellularAutomaton(Ring(7), MajorityRule(), memory=False)
        nps = NondetPhaseSpace.from_automaton(ca)
        assert not nps.has_proper_cycle()
