"""Unit and property tests for repro.util.bitops."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitops import (
    all_configurations,
    bits_to_int,
    config_str,
    int_to_bits,
    parse_config,
    popcount,
    popcount_array,
    reverse_bits,
    rotate_bits,
)


class TestBitsToInt:
    def test_empty(self):
        assert bits_to_int([]) == 0

    def test_single_bits(self):
        assert bits_to_int([1]) == 1
        assert bits_to_int([0, 1]) == 2
        assert bits_to_int([0, 0, 1]) == 4

    def test_little_endian_convention(self):
        # Node 0 is bit 0: "110" -> 1 + 2 = 3.
        assert bits_to_int([1, 1, 0]) == 3

    def test_accepts_numpy(self):
        assert bits_to_int(np.array([1, 0, 1], dtype=np.uint8)) == 5


class TestIntToBits:
    def test_roundtrip_small(self):
        for n in range(1, 9):
            for code in range(1 << n):
                assert bits_to_int(int_to_bits(code, n)) == code

    def test_dtype(self):
        assert int_to_bits(3, 4).dtype == np.uint8

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_roundtrip_property(self, code):
        assert bits_to_int(int_to_bits(code, 20)) == code


class TestAllConfigurations:
    def test_shape(self):
        mat = all_configurations(5)
        assert mat.shape == (32, 5)

    def test_rows_are_codes(self):
        mat = all_configurations(4)
        for code in range(16):
            assert bits_to_int(mat[code]) == code

    def test_zero_nodes(self):
        mat = all_configurations(0)
        assert mat.shape == (1, 0)

    def test_refuses_huge(self):
        with pytest.raises(ValueError):
            all_configurations(30)


class TestPopcount:
    def test_values(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount((1 << 63) | 1) == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            popcount(-3)

    @given(st.lists(st.integers(min_value=0, max_value=2**62), min_size=1,
                    max_size=50))
    def test_vectorized_matches_scalar(self, values):
        arr = np.array(values, dtype=np.uint64)
        expected = [popcount(v) for v in values]
        assert popcount_array(arr).tolist() == expected


class TestRotateBits:
    def test_identity(self):
        assert rotate_bits(0b0110, 4, 0) == 0b0110

    def test_basic_rotation(self):
        # bit i moves to bit i+1 (mod 4)
        assert rotate_bits(0b0001, 4, 1) == 0b0010
        assert rotate_bits(0b1000, 4, 1) == 0b0001

    def test_full_cycle(self):
        assert rotate_bits(0b1011, 4, 4) == 0b1011

    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=16))
    def test_inverse(self, value, shift):
        assert rotate_bits(rotate_bits(value, 8, shift), 8, -shift) == value

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            rotate_bits(16, 4, 1)


class TestReverseBits:
    def test_basic(self):
        assert reverse_bits(0b0011, 4) == 0b1100

    @given(st.integers(min_value=0, max_value=1023))
    def test_involution(self, value):
        assert reverse_bits(reverse_bits(value, 10), 10) == value


class TestConfigStr:
    def test_rendering(self):
        assert config_str(0b101, 4) == "1010"
        assert config_str(0, 3) == "000"

    def test_roundtrip_with_parse(self):
        for code in range(32):
            s = config_str(code, 5)
            assert bits_to_int(parse_config(s)) == code


class TestParseConfig:
    def test_string(self):
        np.testing.assert_array_equal(parse_config("0110"), [0, 1, 1, 0])

    def test_separators_ignored(self):
        np.testing.assert_array_equal(parse_config("01 10"), [0, 1, 1, 0])

    def test_iterable(self):
        np.testing.assert_array_equal(parse_config([1, 0]), [1, 0])

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_config("01a0")

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            parse_config([0, 2, 1])
