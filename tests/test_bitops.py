"""Unit and property tests for repro.util.bitops."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitops import (
    all_configurations,
    bits_to_int,
    canonical_ring_form,
    config_str,
    int_to_bits,
    parse_config,
    popcount,
    popcount_array,
    reverse_bits,
    reverse_bits_array,
    rotate_bits,
    rotate_bits_array,
)


class TestBitsToInt:
    def test_empty(self):
        assert bits_to_int([]) == 0

    def test_single_bits(self):
        assert bits_to_int([1]) == 1
        assert bits_to_int([0, 1]) == 2
        assert bits_to_int([0, 0, 1]) == 4

    def test_little_endian_convention(self):
        # Node 0 is bit 0: "110" -> 1 + 2 = 3.
        assert bits_to_int([1, 1, 0]) == 3

    def test_accepts_numpy(self):
        assert bits_to_int(np.array([1, 0, 1], dtype=np.uint8)) == 5


class TestIntToBits:
    def test_roundtrip_small(self):
        for n in range(1, 9):
            for code in range(1 << n):
                assert bits_to_int(int_to_bits(code, n)) == code

    def test_dtype(self):
        assert int_to_bits(3, 4).dtype == np.uint8

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_roundtrip_property(self, code):
        assert bits_to_int(int_to_bits(code, 20)) == code


class TestAllConfigurations:
    def test_shape(self):
        mat = all_configurations(5)
        assert mat.shape == (32, 5)

    def test_rows_are_codes(self):
        mat = all_configurations(4)
        for code in range(16):
            assert bits_to_int(mat[code]) == code

    def test_zero_nodes(self):
        mat = all_configurations(0)
        assert mat.shape == (1, 0)

    def test_refuses_huge(self):
        with pytest.raises(ValueError):
            all_configurations(30)


class TestPopcount:
    def test_values(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount((1 << 63) | 1) == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            popcount(-3)

    @given(st.lists(st.integers(min_value=0, max_value=2**62), min_size=1,
                    max_size=50))
    def test_vectorized_matches_scalar(self, values):
        arr = np.array(values, dtype=np.uint64)
        expected = [popcount(v) for v in values]
        assert popcount_array(arr).tolist() == expected


class TestRotateBits:
    def test_identity(self):
        assert rotate_bits(0b0110, 4, 0) == 0b0110

    def test_basic_rotation(self):
        # bit i moves to bit i+1 (mod 4)
        assert rotate_bits(0b0001, 4, 1) == 0b0010
        assert rotate_bits(0b1000, 4, 1) == 0b0001

    def test_full_cycle(self):
        assert rotate_bits(0b1011, 4, 4) == 0b1011

    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=16))
    def test_inverse(self, value, shift):
        assert rotate_bits(rotate_bits(value, 8, shift), 8, -shift) == value

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            rotate_bits(16, 4, 1)


class TestReverseBits:
    def test_basic(self):
        assert reverse_bits(0b0011, 4) == 0b1100

    @given(st.integers(min_value=0, max_value=1023))
    def test_involution(self, value):
        assert reverse_bits(reverse_bits(value, 10), 10) == value


#: a spread of ring widths: tiny, byte-straddling, word-edge
_WIDTHS = st.sampled_from([1, 3, 7, 8, 9, 16, 23, 33, 63, 64])


def _codes_for(n, data):
    count = data.draw(st.integers(min_value=1, max_value=32))
    draw_code = st.integers(min_value=0, max_value=(1 << n) - 1)
    return np.array(
        [data.draw(draw_code) for _ in range(count)], dtype=np.uint64
    )


class TestRotateBitsArray:
    def test_matches_scalar(self):
        codes = np.arange(16, dtype=np.uint64)
        got = rotate_bits_array(codes, 4, 1)
        expected = [rotate_bits(int(c), 4, 1) for c in codes]
        assert got.tolist() == expected

    @given(_WIDTHS, st.integers(min_value=-70, max_value=70), st.data())
    def test_property_vs_scalar(self, n, shift, data):
        codes = _codes_for(n, data)
        got = rotate_bits_array(codes, n, shift)
        expected = [rotate_bits(int(c), n, shift) for c in codes]
        assert got.tolist() == expected

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            rotate_bits_array(np.zeros(1, dtype=np.uint64), 0, 1)
        with pytest.raises(ValueError):
            rotate_bits_array(np.zeros(1, dtype=np.uint64), 65, 1)


class TestReverseBitsArray:
    def test_matches_scalar(self):
        codes = np.arange(32, dtype=np.uint64)
        got = reverse_bits_array(codes, 5)
        expected = [reverse_bits(int(c), 5) for c in codes]
        assert got.tolist() == expected

    @given(_WIDTHS, st.data())
    def test_property_vs_scalar(self, n, data):
        codes = _codes_for(n, data)
        got = reverse_bits_array(codes, n)
        expected = [reverse_bits(int(c), n) for c in codes]
        assert got.tolist() == expected

    @given(_WIDTHS, st.data())
    def test_involution(self, n, data):
        codes = _codes_for(n, data)
        np.testing.assert_array_equal(
            reverse_bits_array(reverse_bits_array(codes, n), n), codes
        )


class TestCanonicalRingForm:
    @staticmethod
    def _scalar(code, n, reflections):
        best = min(
            rotate_bits(code, n, s) for s in range(n)
        )
        if reflections:
            refl = reverse_bits(code, n)
            best = min(
                best, min(rotate_bits(refl, n, s) for s in range(n))
            )
        return best

    @given(_WIDTHS.filter(lambda n: n <= 23), st.booleans(), st.data())
    def test_property_vs_scalar(self, n, reflections, data):
        codes = _codes_for(n, data)
        got = canonical_ring_form(codes, n, reflections=reflections)
        expected = [
            self._scalar(int(c), n, reflections) for c in codes
        ]
        assert got.tolist() == expected

    def test_idempotent(self):
        codes = np.arange(1 << 8, dtype=np.uint64)
        canon = canonical_ring_form(codes, 8)
        np.testing.assert_array_equal(canonical_ring_form(canon, 8), canon)

    def test_invariant_under_group_action(self):
        codes = np.arange(1 << 7, dtype=np.uint64)
        canon = canonical_ring_form(codes, 7)
        np.testing.assert_array_equal(
            canonical_ring_form(rotate_bits_array(codes, 7, 3), 7), canon
        )
        np.testing.assert_array_equal(
            canonical_ring_form(reverse_bits_array(codes, 7), 7), canon
        )


class TestConfigStr:
    def test_rendering(self):
        assert config_str(0b101, 4) == "1010"
        assert config_str(0, 3) == "000"

    def test_roundtrip_with_parse(self):
        for code in range(32):
            s = config_str(code, 5)
            assert bits_to_int(parse_config(s)) == code


class TestParseConfig:
    def test_string(self):
        np.testing.assert_array_equal(parse_config("0110"), [0, 1, 1, 0])

    def test_separators_ignored(self):
        np.testing.assert_array_equal(parse_config("01 10"), [0, 1, 1, 0])

    def test_iterable(self):
        np.testing.assert_array_equal(parse_config([1, 0]), [1, 0])

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_config("01a0")

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            parse_config([0, 2, 1])
