"""Tests for phase-space statistics (repro.analysis.statistics)."""

from repro.analysis.statistics import nondet_stats, phase_space_stats
from repro.core.automaton import CellularAutomaton
from repro.core.nondet import NondetPhaseSpace
from repro.core.phase_space import PhaseSpace
from repro.core.rules import MajorityRule, XorRule
from repro.spaces.line import Ring


class TestPhaseSpaceStats:
    def test_majority8(self):
        ps = PhaseSpace.from_automaton(
            CellularAutomaton(Ring(8), MajorityRule())
        )
        stats = phase_space_stats(ps)
        assert stats.configurations == 256
        assert stats.proper_cycles == 1
        assert stats.max_cycle_length == 2
        assert stats.cycle_configs == 2
        assert stats.fixed_points + stats.cycle_configs + stats.transient_configs == 256
        assert stats.largest_basin >= stats.mean_basin_size

    def test_as_dict_roundtrip(self):
        ps = PhaseSpace.from_automaton(
            CellularAutomaton(Ring(6), MajorityRule())
        )
        d = phase_space_stats(ps).as_dict()
        assert d["configurations"] == 64
        assert isinstance(d["mean_basin_size"], float)

    def test_xor_stats(self):
        ps = PhaseSpace.from_automaton(CellularAutomaton(Ring(4), XorRule()))
        stats = phase_space_stats(ps)
        # Non-monotone rule: many proper cycles (vs. exactly one for
        # majority on an even ring), and no transients at all (linearity).
        assert stats.proper_cycles >= 2
        assert stats.transient_configs == 0


class TestNondetStats:
    def test_majority_stats(self):
        nps = NondetPhaseSpace.from_automaton(
            CellularAutomaton(Ring(6), MajorityRule())
        )
        stats = nondet_stats(nps)
        assert stats.configurations == 64
        assert not stats.has_proper_cycle
        assert stats.proper_cycle_components == 0
        assert stats.largest_cycle_component == 0
        assert stats.change_edges > 0

    def test_xor_stats_have_cycles(self):
        import networkx as nx

        from repro.spaces.graph import GraphSpace

        nps = NondetPhaseSpace.from_automaton(
            CellularAutomaton(GraphSpace(nx.path_graph(2)), XorRule())
        )
        stats = nondet_stats(nps)
        assert stats.has_proper_cycle
        assert stats.largest_cycle_component == 3
        assert stats.pseudo_fixed_points == 2
        assert stats.as_dict()["unreachable_configs"] == 1
