"""End-to-end integration tests: the paper's storyline, executed.

Each test here crosses several subsystems — spaces, rules, engines, phase
spaces, energies, ACA — rather than exercising one module.
"""

import networkx as nx
import numpy as np
import pytest

from repro.aca.subsumption import replay_parallel, replay_sequential
from repro.core.automaton import CellularAutomaton
from repro.core.evolution import parallel_orbit, sequential_converge
from repro.core.energy import ThresholdNetwork
from repro.core.interleaving import interleaving_capture_report
from repro.core.nondet import NondetPhaseSpace
from repro.core.phase_space import PhaseSpace
from repro.core.rules import MajorityRule, SimpleThresholdRule, XorRule
from repro.core.schedules import FixedPermutation, RandomPermutationSweeps
from repro.sds.sds import SDS
from repro.spaces.graph import GraphSpace
from repro.spaces.grid import Grid2D
from repro.spaces.hypercube import Hypercube
from repro.spaces.infinite import SupportConfig, infinite_orbit
from repro.spaces.line import Ring


class TestThePapersStory:
    """The complete argument of the paper, as one narrative of assertions."""

    def test_act1_parallel_threshold_ca_can_oscillate(self):
        ca = CellularAutomaton(Ring(10), MajorityRule())
        alt = (np.arange(10) % 2).astype(np.uint8)
        orbit = parallel_orbit(ca, alt)
        assert orbit.is_two_cycle

    def test_act2_no_sequential_order_ever_cycles(self):
        ca = CellularAutomaton(Ring(10), MajorityRule())
        nps = NondetPhaseSpace.from_automaton(ca)
        assert not nps.has_proper_cycle()

    def test_act3_hence_interleavings_cannot_capture_concurrency(self):
        ca = CellularAutomaton(Ring(8), MajorityRule())
        rep = interleaving_capture_report(ca)
        assert not rep.interleavings_capture_concurrency

    def test_act4_every_fair_sequential_run_converges_instead(self):
        ca = CellularAutomaton(Ring(10), MajorityRule())
        alt = (np.arange(10) % 2).astype(np.uint8)
        res = sequential_converge(ca, alt, RandomPermutationSweeps(1))
        assert res.converged
        assert ca.is_fixed_point(res.final_state)

    def test_act5_energy_explains_why(self):
        ca = CellularAutomaton(Ring(10), MajorityRule())
        net = ThresholdNetwork.from_automaton(ca)
        # Strictly decreasing, bounded-below energy => finitely many flips.
        assert net.min_flip_decrease() > 0
        assert net.max_flip_bound() < np.inf

    def test_act6_the_story_holds_on_the_infinite_line_too(self):
        rule = MajorityRule().with_arity(3)
        t, p, _ = infinite_orbit(rule, SupportConfig.periodic("01"))
        assert p == 2  # the infinite parallel CA oscillates


class TestCrossSubsystemConsistency:
    def test_phase_space_counts_vs_orbit_sampling(self):
        ca = CellularAutomaton(Ring(9), MajorityRule())
        ps = PhaseSpace.from_automaton(ca)
        fps = set(ps.fixed_points.tolist())
        rng = np.random.default_rng(0)
        for _ in range(30):
            x0 = rng.integers(0, 2, 9).astype(np.uint8)
            orbit = parallel_orbit(ca, x0)
            if orbit.period == 1:
                assert orbit.cycle[0] in fps

    def test_sds_identity_sweep_equals_sca_identity_word(self):
        g = nx.cycle_graph(6)
        sds = SDS(g, MajorityRule())
        ca = CellularAutomaton(GraphSpace(g), MajorityRule())
        rng = np.random.default_rng(1)
        for _ in range(10):
            x = rng.integers(0, 2, 6).astype(np.uint8)
            via_sds = sds.apply(x.copy())
            state = x.copy()
            sched = FixedPermutation()
            stream = sched.blocks(6)
            for _ in range(6):
                (node,) = next(stream)
                ca.update_node_inplace(state, node)
            np.testing.assert_array_equal(via_sds, state)

    def test_aca_replays_agree_with_both_engines(self):
        ca = CellularAutomaton(Grid2D(3, 3), MajorityRule())
        rng = np.random.default_rng(2)
        x0 = rng.integers(0, 2, 9).astype(np.uint8)
        par_a, par_b = replay_parallel(ca, x0, 5)
        np.testing.assert_array_equal(par_a, par_b)
        word = rng.integers(0, 9, size=25).tolist()
        seq_a, seq_b = replay_sequential(ca, x0, word)
        np.testing.assert_array_equal(seq_a, seq_b)

    def test_bipartite_two_cycle_on_hypercube_end_to_end(self):
        space = Hypercube(4)
        ca = CellularAutomaton(space, MajorityRule())
        even, odd = space.parity_classes()
        state = np.zeros(space.n, dtype=np.uint8)
        for i in even:
            state[i] = 1
        orbit = parallel_orbit(ca, state)
        assert orbit.is_two_cycle
        # And sequentially it converges instead.
        res = sequential_converge(ca, state, RandomPermutationSweeps(3))
        assert res.converged

    def test_threshold_sweep_grid(self):
        """Threshold rules from OR (t=1) to AND (t=window) on a grid: all
        obey period <= 2 in parallel and cycle-freeness sequentially."""
        space = Grid2D(3, 3)
        for t in range(1, 6):
            ca = CellularAutomaton(space, SimpleThresholdRule(t))
            ps = PhaseSpace.from_automaton(ca)
            assert max(ps.cycle_lengths()) <= 2
            nps = NondetPhaseSpace.from_automaton(ca)
            assert not nps.has_proper_cycle()

    def test_xor_contrast_structured(self):
        """The XOR contrast: sequential phase space *does* cycle, parallel
        reaches a sink — opposite of the threshold situation."""
        ca = CellularAutomaton(GraphSpace(nx.path_graph(2)), XorRule())
        ps = PhaseSpace.from_automaton(ca)
        nps = NondetPhaseSpace.from_automaton(ca)
        assert not ps.has_proper_cycle()
        assert nps.has_proper_cycle()


class TestScaleSmoke:
    def test_large_ring_simulation(self):
        """A 100k-node synchronous run completes quickly (vectorized path)."""
        ca = CellularAutomaton(Ring(100_000, radius=2), MajorityRule())
        rng = np.random.default_rng(7)
        state = rng.integers(0, 2, ca.n).astype(np.uint8)
        for _ in range(10):
            state = ca.step(state)
        assert state.shape == (100_000,)

    def test_medium_phase_space(self):
        """Full 2**16 phase space builds and classifies."""
        ca = CellularAutomaton(Ring(16), MajorityRule())
        ps = PhaseSpace.from_automaton(ca)
        assert ps.size == 65536
        assert max(ps.cycle_lengths()) <= 2
