"""Tests for the fault-tolerant experiment harness (repro.harness).

Covers the fault-injection layer itself, crash-safe checkpointing with
journal recovery, the resilient runner (error capture, timeouts,
retries, subprocess isolation), and the end-to-end resilience claim:
with faults injected into two experiments, ``repro run all`` still
completes the other twenty, exits 2, and ``--resume`` re-runs only the
incomplete two.
"""

from __future__ import annotations

import io
import json

import pytest

from repro import obs
from repro.cli import main
from repro.harness import (
    Checkpoint,
    ExperimentRunner,
    Fault,
    FaultError,
    FaultPlan,
    RunnerConfig,
    batch_exit_code,
    check,
    clear_faults,
    inject,
    install,
    parse_faults,
    read_journal,
)
from repro.harness.runner import CHILD_SENTINEL


@pytest.fixture(autouse=True)
def clean_state():
    """Every test starts and ends with no faults armed and clean obs."""
    clear_faults()
    obs.disable()
    obs.clear_sinks()
    obs.REGISTRY.reset()
    yield
    clear_faults()
    obs.disable()
    obs.clear_sinks()
    obs.REGISTRY.reset()


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestFaultGrammar:
    def test_parse_full_spec_round_trips(self):
        plan = parse_faults("experiment.E5:raise:0.5:7:3")
        assert len(plan) == 1
        f = plan.faults[0]
        assert (f.site, f.kind, f.prob, f.seed, f.max_fires) == (
            "experiment.E5", "raise", 0.5, 7, 3,
        )
        assert plan.spec() == "experiment.E5:raise:0.5:7:3"

    def test_parse_defaults_and_multiple(self):
        plan = parse_faults("a:raise, b:hang:0.5 ,c:partial-write:1.0:9")
        assert [f.site for f in plan.faults] == ["a", "b", "c"]
        assert plan.faults[0].prob == 1.0 and plan.faults[0].seed == 0
        assert plan.faults[1].prob == 0.5
        assert plan.faults[2].seed == 9

    @pytest.mark.parametrize("bad", [
        "siteonly",                  # too few fields
        "a:explode",                 # unknown kind
        "a:raise:1.5",               # probability out of range
        "a:raise:1.0:0:0",           # max_fires < 1
        "a:raise:1.0:0:1:extra",     # too many fields
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_faults(bad)

    def test_wildcard_site_prefix_matches(self):
        f = Fault("experiment.*", "raise")
        assert f.matches("experiment.E1") and f.matches("experiment.E22")
        assert not f.matches("runner.attempt")
        exact = Fault("experiment.E1", "raise")
        assert exact.matches("experiment.E1")
        assert not exact.matches("experiment.E12")

    def test_probability_is_seeded_and_deterministic(self):
        a = Fault("s", "raise", 0.5, 42)
        b = Fault("s", "raise", 0.5, 42)
        seq_a = [a.should_fire() for _ in range(50)]
        seq_b = [b.should_fire() for _ in range(50)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)

    def test_prob_zero_never_fires_prob_one_always(self):
        never = Fault("s", "raise", 0.0, 1)
        always = Fault("s", "raise", 1.0, 1)
        assert not any(never.should_fire() for _ in range(20))
        assert all(always.should_fire() for _ in range(20))

    def test_max_fires_disarms(self):
        f = Fault("s", "raise", 1.0, 0, max_fires=2)
        assert [f.should_fire() for _ in range(4)] == [True, True, False, False]


class TestInjection:
    def test_no_plan_is_noop(self):
        assert inject("anywhere") is None
        assert check("anywhere") is None

    def test_raise_kind_raises(self):
        install("boom:raise:1.0:0")
        with pytest.raises(FaultError, match="injected fault at 'boom'"):
            inject("boom")
        assert inject("elsewhere") is None

    def test_hang_kind_sleeps_then_raises(self, monkeypatch, fake_clock):
        monkeypatch.setenv("REPRO_FAULT_HANG_S", "0.05")
        install("slow:hang:1.0:0")
        with pytest.raises(FaultError, match="kind=hang"):
            inject("slow")
        assert fake_clock.sleeps == [0.05]

    def test_partial_write_kind_returned_not_acted(self):
        install("w:partial-write:1.0:0")
        fault = inject("w")
        assert fault is not None and fault.kind == "partial-write"

    def test_check_probes_without_acting(self):
        install("boom:raise:1.0:0")
        fault = check("boom")  # does not raise
        assert fault is not None and fault.kind == "raise"

    def test_install_returns_previous_and_clear(self):
        first = parse_faults("a:raise")
        assert install(first) is None
        assert install("b:raise") is first
        clear_faults()
        assert inject("a") is None and inject("b") is None

    def test_install_from_env(self, monkeypatch):
        from repro.harness import faults as faults_mod

        monkeypatch.setenv("REPRO_FAULTS", "x:raise:1.0:0")
        assert faults_mod.install_from_env() is True
        with pytest.raises(FaultError):
            inject("x")
        clear_faults()
        monkeypatch.delenv("REPRO_FAULTS")
        assert faults_mod.install_from_env() is False


class TestArtifactsUnderFaults:
    def test_partial_write_truncates_and_read_events_recovers(self, tmp_path):
        run_dir = tmp_path / "run"
        with obs.RunArtifacts(run_dir, command="t") as run:
            run.write_event({"event": "span", "name": "good"})
            install("artifacts.write_event:partial-write:1.0:0")
            with pytest.raises(FaultError, match="artifacts.write_event"):
                run.write_event({"event": "span", "name": "torn-record"})
            clear_faults()
        raw = (run_dir / "events.jsonl").read_text()
        assert "good" in raw
        # The stream now ends in a truncated record with no newline.
        assert not raw.endswith("\n")
        events = list(obs.read_events(run_dir))
        assert [e["name"] for e in events] == ["good"]
        assert obs.REGISTRY.snapshot()["counters"]["artifacts.partial_events"] == 1
        with pytest.raises(json.JSONDecodeError):
            list(obs.read_events(run_dir, strict=True))

    def test_unfinalized_manifest_is_flagged_not_keyerror(self, tmp_path):
        run_dir = tmp_path / "crashed"
        obs.RunArtifacts(run_dir, command="doomed")  # never finalized
        manifest = obs.load_manifest(run_dir)
        assert manifest["finalized"] is False
        assert "metrics" not in manifest and "finished" not in manifest
        code, text = run_cli("stats", "--artifacts-dir", str(run_dir))
        assert code == 0
        assert "NOT FINALIZED" in text

    def test_finalized_manifest_flagged_true(self, tmp_path):
        with obs.RunArtifacts(tmp_path / "ok", command="fine"):
            pass
        assert obs.load_manifest(tmp_path / "ok")["finalized"] is True


class TestCheckpoint:
    def test_completed_requires_ok_status(self, tmp_path):
        with Checkpoint(tmp_path) as cp:
            cp.record_start("E1")
            cp.record_finish("E1", {"holds": True, "status": "ok"})
            cp.record_start("E2")
            cp.record_finish("E2", {"holds": False, "status": "error"})
            cp.record_start("E3")  # started, never finished (crash)
        cp2 = Checkpoint(tmp_path)
        assert set(cp2.completed()) == {"E1"}
        assert set(cp2.results()) == {"E1", "E2"}
        cp2.close()

    def test_truncated_final_journal_line_tolerated(self, tmp_path):
        with Checkpoint(tmp_path) as cp:
            cp.record_start("E1")
            cp.record_finish("E1", {"holds": True, "status": "ok"})
            cp.record_start("E2")
            cp.record_finish("E2", {"holds": True, "status": "ok"})
        journal = tmp_path / "journal.jsonl"
        lines = journal.read_text().splitlines()
        # Simulate SIGKILL mid-append: chop the final line in half.
        journal.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:10])
        events, skipped = read_journal(tmp_path)
        assert skipped == 1
        cp2 = Checkpoint(tmp_path)
        assert cp2.journal_skipped == 1
        # E2's finish was the torn line: it must be re-run, E1 kept.
        assert set(cp2.completed()) == {"E1"}
        cp2.close()

    def test_missing_dir_starts_empty(self, tmp_path):
        cp = Checkpoint(tmp_path / "fresh")
        assert cp.completed() == {} and cp.journal_skipped == 0
        cp.close()

    def test_snapshot_write_is_atomic_under_fault(self, tmp_path):
        with Checkpoint(tmp_path) as cp:
            cp.record_finish("E1", {"holds": True, "status": "ok"})
            install("checkpoint.snapshot:partial-write:1.0:0")
            with pytest.raises(FaultError):
                cp.record_finish("E2", {"holds": True, "status": "ok"})
            clear_faults()
        # The torn snapshot went to the tmp file; checkpoint.json still
        # holds the previous complete state, and E2's journal line exists
        # but its snapshot result does not -> E2 re-runs, E1 survives.
        cp2 = Checkpoint(tmp_path)
        assert set(cp2.completed()) == {"E1"}
        cp2.close()

    def test_journal_partial_write_fault(self, tmp_path):
        with Checkpoint(tmp_path) as cp:
            cp.record_finish("E1", {"holds": True, "status": "ok"})
            install("checkpoint.journal:partial-write:1.0:0")
            with pytest.raises(FaultError):
                cp.record_start("E2")
            clear_faults()
        cp2 = Checkpoint(tmp_path)
        assert cp2.journal_skipped == 1
        assert set(cp2.completed()) == {"E1"}
        cp2.close()


class TestRunner:
    def test_error_capture_shape(self):
        install("experiment.E1:raise:1.0:0")
        res = ExperimentRunner().run_one("E1")
        assert res["holds"] is False
        assert res["status"] == "error"
        assert res["attempts"] == 1
        err = res["error"]
        assert err["type"] == "FaultError"
        assert "experiment.E1" in err["message"]
        assert "FaultError" in err["traceback"]
        assert obs.REGISTRY.snapshot()["counters"]["harness.errors"] == 1

    def test_success_shape(self):
        res = ExperimentRunner().run_one("E1")
        assert res["holds"] is True and res["status"] == "ok"
        assert res["attempts"] == 1 and res["duration_s"] > 0

    def test_unknown_id_still_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            ExperimentRunner().run_one("E99")

    def test_transient_fault_retried_to_success(self, fake_clock):
        install("experiment.E1:raise:1.0:0:1")  # fires once, then disarms
        cfg = RunnerConfig(retries=2, backoff_base_s=0.01, backoff_cap_s=0.02)
        res = ExperimentRunner(cfg).run_one("E1")
        assert res["status"] == "ok" and res["holds"] is True
        assert res["attempts"] == 2
        assert len(fake_clock.sleeps) == 1  # exactly one backoff, recorded
        assert (
            cfg.backoff_base_s
            <= fake_clock.sleeps[0]
            <= cfg.backoff_cap_s * (1 + cfg.jitter)
        )
        counters = obs.REGISTRY.snapshot()["counters"]
        assert counters["harness.retries"] == 1
        assert counters["harness.errors"] == 1

    def test_retries_exhausted_is_error(self, fake_clock):
        install("experiment.E1:raise:1.0:0")
        cfg = RunnerConfig(retries=2, backoff_base_s=0.01, backoff_cap_s=0.02)
        res = ExperimentRunner(cfg).run_one("E1")
        assert res["status"] == "error" and res["attempts"] == 3
        assert len(fake_clock.sleeps) == 2  # one backoff per retry
        assert all(
            cfg.backoff_base_s <= s <= cfg.backoff_cap_s * (1 + cfg.jitter)
            for s in fake_clock.sleeps
        )
        counters = obs.REGISTRY.snapshot()["counters"]
        assert counters["harness.retries"] == 2
        assert counters["harness.errors"] == 3

    def test_timeout_abandons_hung_experiment(self, monkeypatch, fake_clock):
        monkeypatch.setenv("REPRO_FAULT_HANG_S", "5")
        install("experiment.E1:hang:1.0:0")
        # Hold the injected hang on a real event (released at teardown)
        # so the worker genuinely outlives the watchdog join without the
        # test paying the nominal 5-second hang.
        fake_clock.hold_from(1.0)
        res = ExperimentRunner(RunnerConfig(timeout_s=0.3)).run_one("E1")
        assert res["status"] == "timeout" and res["holds"] is False
        assert res["timeout_s"] == 0.3
        assert obs.REGISTRY.snapshot()["counters"]["harness.timeouts"] == 1

    def test_backoff_is_bounded_and_jittered(self):
        cfg = RunnerConfig(
            retries=5, backoff_base_s=0.1, backoff_cap_s=0.3, jitter=0.5
        )
        runner = ExperimentRunner(cfg)
        delays = [runner._backoff(k) for k in range(1, 7)]
        assert all(d >= 0.1 for d in delays)
        assert all(d <= 0.3 * 1.5 + 1e-9 for d in delays)
        assert delays[2] >= delays[0]  # exponential region grows

    def test_spans_annotated_with_attempt_numbers(self):
        obs.enable()
        events = []
        obs.add_sink(events.append)
        install("experiment.E1:raise:1.0:0:1")
        cfg = RunnerConfig(retries=1, backoff_base_s=0.01)
        ExperimentRunner(cfg).run_one("E1")
        attempts = [
            e["attrs"]["attempt"]
            for e in events
            if e["name"] == "harness.attempt"
        ]
        assert attempts == [1, 2]
        assert all(
            e["attrs"]["experiment"] == "E1"
            for e in events
            if e["name"] == "harness.attempt"
        )

    def test_batch_exit_code(self):
        ok = {"holds": True, "status": "ok"}
        fail = {"holds": False, "status": "ok"}
        err = {"holds": False, "status": "error"}
        tmo = {"holds": False, "status": "timeout"}
        assert batch_exit_code({"A": ok}) == 0
        assert batch_exit_code({"A": ok, "B": fail}) == 1
        assert batch_exit_code({"A": ok, "B": err}) == 2
        assert batch_exit_code({"A": fail, "B": tmo}) == 2

    def test_run_many_skips_checkpointed(self, tmp_path):
        cp = Checkpoint(tmp_path)
        runner = ExperimentRunner(checkpoint=cp)
        first = runner.run_many(["E1", "E3"])
        assert {r["status"] for r in first.values()} == {"ok"}
        cp.close()
        cp2 = Checkpoint(tmp_path)
        second = ExperimentRunner(checkpoint=cp2).run_many(["E1", "E3"])
        assert all(r.get("resumed") for r in second.values())
        cp2.close()
        # No new start events were journaled for the resumed pair.
        events, _ = read_journal(tmp_path)
        starts = [e for e in events if e["ev"] == "start"]
        assert len(starts) == 2


class TestIsolation:
    def test_isolated_run_succeeds_and_merges_metrics(self):
        res = ExperimentRunner(RunnerConfig(isolate=True)).run_one("E1")
        assert res["status"] == "ok" and res["holds"] is True
        # The child's experiment timer crossed the pipe into our registry.
        timers = obs.REGISTRY.snapshot()["timers"]
        assert timers["experiment.E1"]["count"] == 1

    def test_isolated_fault_crosses_boundary_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "experiment.E1:raise:1.0:0")
        res = ExperimentRunner(RunnerConfig(isolate=True)).run_one("E1")
        assert res["status"] == "error"
        assert res["error"]["type"] == "FaultError"

    def test_child_hard_crash_is_structured_error(self, monkeypatch):
        import subprocess

        class DeadProc:
            returncode = -11
            stdout = ""
            stderr = "Segmentation fault (core dumped)"

        monkeypatch.setattr(subprocess, "run", lambda *a, **k: DeadProc())
        res = ExperimentRunner(RunnerConfig(isolate=True)).run_one("E1")
        assert res["status"] == "error"
        assert res["error"]["type"] == "ChildCrash"
        assert "-11" in res["error"]["message"]
        assert "Segmentation fault" in res["error"]["traceback"]

    def test_child_output_parsing_ignores_experiment_noise(self):
        payload = {"ok": True, "result": {"holds": True}, "metrics": {}}
        stdout = "experiment prints stuff\n" + CHILD_SENTINEL + json.dumps(payload)
        parsed = ExperimentRunner._parse_child_output(stdout)
        assert parsed == payload
        assert ExperimentRunner._parse_child_output("garbage") is None
        assert ExperimentRunner._parse_child_output(CHILD_SENTINEL + "{oops") is None


class TestMetricsMerge:
    def test_merge_snapshot_folds_counters_gauges_timers(self):
        child = obs.MetricsRegistry()
        child.counter("harness.errors").inc(2)
        child.gauge("depth").set(3.0)
        child.timer("op").observe(0.5)
        child.timer("op").observe(1.5)
        obs.REGISTRY.counter("harness.errors").inc(1)
        obs.REGISTRY.timer("op").observe(0.1)
        obs.REGISTRY.merge_snapshot(child.snapshot())
        snap = obs.REGISTRY.snapshot()
        assert snap["counters"]["harness.errors"] == 3
        assert snap["gauges"]["depth"] == 3.0
        op = snap["timers"]["op"]
        assert op["count"] == 3
        assert op["total_s"] == pytest.approx(2.1)
        assert op["min_s"] == pytest.approx(0.1)
        assert op["max_s"] == pytest.approx(1.5)
        assert op["last_s"] == pytest.approx(1.5)

    def test_merge_empty_snapshot_is_noop(self):
        obs.REGISTRY.merge_snapshot({})
        assert obs.REGISTRY.is_empty()


class TestEndToEndResilience:
    """The acceptance scenario: 2 of 22 experiments faulted, run all."""

    FAULTS = "experiment.E5:raise:1.0:0,experiment.E9:raise:1.0:0"

    def test_run_all_survives_two_faults_then_resumes(
        self, tmp_path, monkeypatch
    ):
        run_dir = tmp_path / "runs"
        monkeypatch.setenv("REPRO_FAULTS", self.FAULTS)
        code, text = run_cli("run", "all", "--resume", str(run_dir))
        assert code == 2
        lines = [ln for ln in text.splitlines() if ln.strip()]
        assert len(lines) == 22
        assert sum("ERROR" in ln for ln in lines) == 2
        assert sum("HOLDS" in ln for ln in lines) == 20
        assert "E5" in text and "E9" in text
        counters = obs.REGISTRY.snapshot()["counters"]
        assert counters["harness.errors"] == 2
        assert "harness.timeouts" not in counters

        # Crash over — faults disarmed, resume the batch.
        monkeypatch.delenv("REPRO_FAULTS")
        clear_faults()
        obs.REGISTRY.reset()
        code, text = run_cli("run", "all", "--resume", str(run_dir))
        assert code == 0
        assert text.count("(resumed)") == 20
        assert text.count("HOLDS") == 22

        # The journal confirms only E5/E9 ran twice.
        events, skipped = read_journal(run_dir)
        assert skipped == 0
        starts: dict[str, int] = {}
        for ev in events:
            if ev["ev"] == "start":
                starts[ev["id"]] = starts.get(ev["id"], 0) + 1
        assert starts["E5"] == 2 and starts["E9"] == 2
        assert all(
            count == 1 for eid, count in starts.items() if eid not in ("E5", "E9")
        )
        counters = obs.REGISTRY.snapshot()["counters"]
        assert counters["harness.resumed"] == 20
        assert "harness.errors" not in counters

    def test_report_is_partial_not_absent_under_faults(self, monkeypatch):
        install("experiment.E1:raise:1.0:0")
        code, text = run_cli("report")
        assert code == 2
        assert "partial report" in text
        assert "Verdict: **ERROR**" in text
        assert "21 / 22 experiments hold" in text
        assert text.count("## E") == 22


class TestSeededBackoff:
    """Satellite: the retry-backoff jitter is seedable and reproducible."""

    # Pinned schedule for RunnerConfig defaults (base 0.1s, cap 5s,
    # jitter 0.25) under seed 42 — a regression anchor: if the jitter
    # formula or RNG stream changes, this fails loudly.
    PINNED_42 = [0.1159856699614471, 0.20125053776113333, 0.42750293183691196]

    def _schedule(self, **kwargs):
        runner = ExperimentRunner(RunnerConfig(retries=3, **kwargs))
        return [runner._backoff(a) for a in (1, 2, 3)]

    def test_schedule_pinned_for_seed_42(self):
        assert self._schedule(seed=42) == pytest.approx(self.PINNED_42)

    def test_same_seed_same_schedule(self):
        assert self._schedule(seed=7) == self._schedule(seed=7)

    def test_different_seed_different_schedule(self):
        assert self._schedule(seed=7) != self._schedule(seed=8)

    def test_env_seed_used_when_config_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "42")
        assert self._schedule() == pytest.approx(self.PINNED_42)

    def test_default_seed_is_zero(self, monkeypatch):
        monkeypatch.delenv("REPRO_SEED", raising=False)
        assert self._schedule() == self._schedule(seed=0)


class TestBudgetGovernance:
    """Satellite: budget trips through the runner — cooperative deadlines
    beat the watchdog, deterministic trips are terminal."""

    def test_stall_fault_winds_down_cooperatively(self, monkeypatch):
        # A governed loop that *stalls* (slow, not dead): the cooperative
        # deadline fires at the next budget check, long before the
        # watchdog backstop (grace set absurdly high to prove which one
        # acted).
        monkeypatch.setenv("REPRO_FAULT_HANG_S", "0.6")
        install("phase_space.chunk:stall:1.0:0")
        cfg = RunnerConfig(timeout_s=0.25, grace_s=30.0)
        res = ExperimentRunner(cfg).run_one("E1")
        assert res["status"] == "timeout"
        assert res["cooperative"] is True
        assert res["truncation"].startswith("deadline")
        assert res["duration_s"] < 5  # nowhere near the 30s watchdog
        counters = obs.REGISTRY.snapshot()["counters"]
        assert counters["harness.timeouts"] == 1

    def test_budget_trip_is_terminal_not_retried(self, monkeypatch):
        import repro.experiments.registry as registry
        from repro.core.budget import BudgetExceeded, Partial

        def boom(exp_id):
            raise BudgetExceeded(
                "memory: test ceiling",
                partial=Partial.truncated("memory: test ceiling", explored=7),
            )

        monkeypatch.setattr(registry, "run_experiment", boom)
        res = ExperimentRunner(RunnerConfig(retries=3)).run_one("E1")
        assert res["status"] == "budget"
        assert res["attempts"] == 1  # deterministic trip: no retries burned
        assert res["truncation"] == "memory: test ceiling"
        assert res["partial"]["explored"] == 7
        assert batch_exit_code({"E1": res}) == 2
        counters = obs.REGISTRY.snapshot()["counters"]
        assert counters["harness.budget"] == 1
        assert "harness.retries" not in counters

    def test_cancelled_token_stops_batch_cleanly(self):
        from repro.core.budget import CancelToken

        tok = CancelToken()
        tok.cancel("SIGTERM")
        results = ExperimentRunner(token=tok).run_many(["E1", "E2"])
        assert results == {}

    def test_report_renders_budget_verdict(self, monkeypatch):
        import repro.experiments.registry as registry
        from repro.core.budget import BudgetExceeded, Partial
        from repro.experiments.report import render_markdown

        real = registry.run_experiment

        def sometimes(exp_id):
            if exp_id == "E1":
                raise BudgetExceeded(
                    "memory: ceiling",
                    partial=Partial.truncated(
                        "memory: ceiling", explored=5, total=10,
                        frontier={"kind": "t"},
                    ),
                )
            return real(exp_id)

        monkeypatch.setattr(registry, "run_experiment", sometimes)
        res = ExperimentRunner().run_one("E1")
        text = render_markdown({"E1": res})
        assert "Verdict: **BUDGET**" in text
        assert "Truncated: memory: ceiling" in text
        assert "explored 5/10 states, resumable" in text


class TestFrontierCheckpointFaults:
    """Satellite: partial-write faults during frontier checkpointing
    never leave an inconsistent resume state."""

    @pytest.fixture()
    def truncated_partial(self):
        from repro.core.automaton import CellularAutomaton
        from repro.core.budget import Budget
        from repro.core.phase_space import build_phase_space
        from repro.core.rules import MajorityRule
        from repro.spaces.line import Ring

        # numpy backend: the 12M ceiling is calibrated to its transients.
        ca = CellularAutomaton(Ring(18), MajorityRule(), backend="numpy")
        partial = build_phase_space(ca, budget=Budget(mem_bytes=12 << 20))
        assert not partial.complete and partial.frontier is not None
        return ca, partial

    def test_partial_write_torn_first_save_reads_as_absent(
        self, tmp_path, truncated_partial
    ):
        from repro.harness.checkpoint import load_frontier, save_frontier

        ca, partial = truncated_partial
        install("checkpoint.frontier:partial-write:1.0:0:1")
        with pytest.raises(FaultError):
            save_frontier(tmp_path, partial)
        # The torn metadata never reached os.replace: no frontier.json,
        # so the loader reports "nothing to resume", not garbage.
        assert load_frontier(tmp_path) is None

        # Retry (fault disarmed after one fire) succeeds; the resumed
        # build completes under the same ceiling that truncated it.
        from repro.core.budget import Budget
        from repro.core.phase_space import build_phase_space

        save_frontier(tmp_path, partial)
        frontier = load_frontier(tmp_path)
        assert frontier is not None
        resumed = build_phase_space(
            ca, budget=Budget(mem_bytes=12 << 20), frontier=frontier
        )
        assert resumed.complete

    def test_partial_write_resave_keeps_previous_frontier(
        self, tmp_path, truncated_partial
    ):
        from repro.harness.checkpoint import load_frontier, save_frontier

        _, partial = truncated_partial
        save_frontier(tmp_path, partial)
        before = load_frontier(tmp_path)
        assert before is not None

        install("checkpoint.frontier:partial-write:1.0:0:1")
        with pytest.raises(FaultError):
            save_frontier(tmp_path, partial)
        after = load_frontier(tmp_path)
        # Crash mid-rewrite degrades to the *older* consistent frontier.
        assert after is not None
        assert after["next_lo"] == before["next_lo"]
