"""Tests for ring-symmetry analysis (repro.analysis.symmetry) and the
constructive interleaving witnesses (NondetPhaseSpace.shortest_schedule)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.symmetry import (
    canonical_code,
    check_reflection_equivariance,
    check_translation_equivariance,
    reflect_config,
    rotate_config,
    symmetry_classes,
)
from repro.core.automaton import CellularAutomaton
from repro.core.nondet import NondetPhaseSpace
from repro.core.phase_space import PhaseSpace
from repro.core.rules import MajorityRule, TableRule, WolframRule, XorRule
from repro.spaces.line import Ring


class TestGroupAction:
    def test_rotate_and_reflect(self):
        assert rotate_config(0b0001, 4, 1) == 0b0010
        assert reflect_config(0b0011, 4) == 0b1100

    def test_canonical_is_orbit_minimum(self):
        n = 6
        code = 0b010110
        canon = canonical_code(code, n)
        orbit = set()
        for s in range(n):
            r = rotate_config(code, n, s)
            orbit.add(r)
            orbit.add(reflect_config(r, n))
        assert canon == min(orbit)

    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=7))
    @settings(max_examples=50)
    def test_canonical_invariant_under_action(self, code, shift):
        n = 8
        assert canonical_code(rotate_config(code, n, shift), n) == canonical_code(
            code, n
        )
        assert canonical_code(reflect_config(code, n), n) == canonical_code(code, n)

    def test_symmetry_classes_partition(self):
        classes = symmetry_classes(range(64), 6)
        total = sum(len(v) for v in classes.values())
        assert total == 64
        # Necklace + reflection count for n=6: 13 binary bracelets.
        assert len(classes) == 13


class TestEquivariance:
    def test_majority_translation_equivariant_exhaustive(self):
        ca = CellularAutomaton(Ring(8), MajorityRule())
        assert check_translation_equivariance(ca)

    def test_majority_translation_equivariant_sampled(self):
        ca = CellularAutomaton(Ring(64), MajorityRule())
        assert check_translation_equivariance(ca, exhaustive_limit=10)

    def test_all_wolfram_rules_translation_equivariant(self):
        # Spot-check a spread of elementary rules exhaustively on a 7-ring.
        for number in (30, 90, 110, 150, 184, 232):
            ca = CellularAutomaton(Ring(7), WolframRule(number))
            assert check_translation_equivariance(ca)

    def test_majority_reflection_equivariant(self):
        ca = CellularAutomaton(Ring(10), MajorityRule())
        assert check_reflection_equivariance(ca)

    def test_shift_rule_not_reflection_equivariant(self):
        shift = TableRule([0, 1] * 4, name="left-shift")
        ca = CellularAutomaton(Ring(10), shift)
        assert check_translation_equivariance(ca)
        assert not check_reflection_equivariance(ca)

    def test_phase_space_features_closed_under_rotation(self):
        ca = CellularAutomaton(Ring(8), MajorityRule())
        ps = PhaseSpace.from_automaton(ca)
        fps = set(ps.fixed_points.tolist())
        for code in list(fps):
            for s in range(8):
                assert rotate_config(code, 8, s) in fps

    def test_two_cycle_is_one_symmetry_class(self):
        ca = CellularAutomaton(Ring(8), MajorityRule())
        ps = PhaseSpace.from_automaton(ca)
        classes = symmetry_classes(ps.cycle_configs.tolist(), 8)
        assert len(classes) == 1  # 01010101 and 10101010 are one bracelet


class TestShortestSchedule:
    @pytest.fixture(scope="class")
    def majority6(self):
        ca = CellularAutomaton(Ring(6), MajorityRule())
        return ca, NondetPhaseSpace.from_automaton(ca)

    def test_empty_for_self(self, majority6):
        _, nps = majority6
        assert nps.shortest_schedule(5, 5) == []

    def test_none_for_unreachable(self, majority6):
        _, nps = majority6
        # 0 is a fixed point: nothing else reachable from it.
        assert nps.shortest_schedule(0, 1) is None

    def test_witness_replays(self, majority6):
        ca, nps = majority6
        rng = np.random.default_rng(4)
        checked = 0
        for _ in range(40):
            src = int(rng.integers(64))
            reach = nps.reachable_from(src)
            dst = int(reach[rng.integers(len(reach))])
            word = nps.shortest_schedule(src, dst)
            assert word is not None
            state = ca.unpack(src)
            for node in word:
                ca.update_node_inplace(state, node)
            assert ca.pack(state) == dst
            checked += 1
        assert checked == 40

    def test_every_step_is_effective(self, majority6):
        ca, nps = majority6
        word = nps.shortest_schedule(0b010101, 0b111111)
        if word is not None:
            state = ca.unpack(0b010101)
            for node in word:
                assert ca.update_node_inplace(state, node)  # all effective

    def test_xor_witness_to_cycle(self):
        import networkx as nx

        from repro.spaces.graph import GraphSpace

        ca = CellularAutomaton(GraphSpace(nx.path_graph(2)), XorRule())
        nps = NondetPhaseSpace.from_automaton(ca)
        # Reach 01 from 11 by updating node 0 (paper's node 1).
        word = nps.shortest_schedule(0b11, 0b10)
        assert word == [0]

    def test_rejects_out_of_range(self, majority6):
        _, nps = majority6
        with pytest.raises(ValueError):
            nps.shortest_schedule(0, 1 << 10)
