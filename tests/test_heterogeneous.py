"""Tests for non-homogeneous CA (repro.core.heterogeneous) and the
Section 4 extension theorems."""

import networkx as nx
import numpy as np
import pytest

from repro.core.automaton import CellularAutomaton
from repro.core.heterogeneous import HeterogeneousCA
from repro.core.nondet import NondetPhaseSpace
from repro.core.phase_space import PhaseSpace
from repro.core.rules import (
    MajorityRule,
    SimpleThresholdRule,
    TableRule,
    XorRule,
)
from repro.core.theorems import (
    check_monotone_boundary,
    check_nonhomogeneous_threshold,
)
from repro.spaces.graph import GraphSpace, star_space
from repro.spaces.line import Line, Ring


class TestConstruction:
    def test_rule_count_must_match(self):
        with pytest.raises(ValueError):
            HeterogeneousCA(Ring(5), [MajorityRule()] * 4)

    def test_arity_checked_per_node(self):
        rules = [MajorityRule().with_arity(5)] * 5
        with pytest.raises(ValueError):
            HeterogeneousCA(Ring(5), rules)  # windows have width 3

    def test_describe_single_vs_many(self):
        same = HeterogeneousCA(Ring(4, radius=1), [MajorityRule()] * 4)
        assert "Majority" in same.describe()
        mixed = HeterogeneousCA(
            Ring(4, radius=1),
            [MajorityRule(), XorRule(), MajorityRule(), XorRule()],
        )
        assert "2 rules" in mixed.describe()


class TestSemantics:
    def test_homogeneous_degenerate_case_matches_plain_ca(self):
        rng = np.random.default_rng(0)
        het = HeterogeneousCA(Ring(7), [MajorityRule()] * 7)
        homo = CellularAutomaton(Ring(7), MajorityRule())
        for _ in range(10):
            x = rng.integers(0, 2, 7).astype(np.uint8)
            np.testing.assert_array_equal(het.step(x), homo.step(x))
        np.testing.assert_array_equal(het.step_all(), homo.step_all())

    def test_step_matches_naive(self):
        rng = np.random.default_rng(1)
        rules = [
            MajorityRule(), XorRule(), SimpleThresholdRule(1),
            SimpleThresholdRule(3), MajorityRule(), XorRule(),
        ]
        het = HeterogeneousCA(Ring(6), rules)
        for _ in range(20):
            x = rng.integers(0, 2, 6).astype(np.uint8)
            np.testing.assert_array_equal(het.step(x), het.step_naive(x))

    def test_mixed_fixed_arity_rules(self):
        # Per-node table rules of differing arity on an irregular graph.
        space = star_space(3)  # centre degree 3, leaves degree 1
        rules = []
        for i in range(space.n):
            width = len(space.input_window(i, True))
            rules.append(MajorityRule().with_arity(width))
        het = HeterogeneousCA(space, rules)
        homo = CellularAutomaton(space, MajorityRule())
        rng = np.random.default_rng(2)
        for _ in range(10):
            x = rng.integers(0, 2, space.n).astype(np.uint8)
            np.testing.assert_array_equal(het.step(x), homo.step(x))

    def test_node_successors_per_rule(self):
        rules = [SimpleThresholdRule(1), SimpleThresholdRule(3),
                 MajorityRule(), MajorityRule(), MajorityRule()]
        het = HeterogeneousCA(Ring(5), rules)
        for i in range(5):
            succ = het.node_successors(i)
            for code in range(32):
                expected = het.pack(het.update_node(het.unpack(code), i))
                assert int(succ[code]) == expected

    def test_line_boundary(self):
        rules = [SimpleThresholdRule(1)] * 4
        het = HeterogeneousCA(Line(4), rules)
        # OR over the window: a lone interior 1 spreads both ways.
        x = np.array([0, 1, 0, 0], dtype=np.uint8)
        np.testing.assert_array_equal(het.step(x), [1, 1, 1, 0])


class TestNonHomogeneousDichotomy:
    def test_mixed_thresholds_parallel_period_le_2(self):
        rng = np.random.default_rng(3)
        for _ in range(5):
            thetas = rng.integers(0, 5, size=8)
            het = HeterogeneousCA(
                Ring(8), [SimpleThresholdRule(int(t)) for t in thetas]
            )
            ps = PhaseSpace(het.step_all(), 8)
            assert max(ps.cycle_lengths()) <= 2

    def test_mixed_thresholds_sequential_cycle_free(self):
        rng = np.random.default_rng(4)
        for _ in range(5):
            thetas = rng.integers(0, 5, size=7)
            het = HeterogeneousCA(
                Ring(7), [SimpleThresholdRule(int(t)) for t in thetas]
            )
            nps = NondetPhaseSpace(het.all_node_successors(), 7)
            assert not nps.has_proper_cycle()

    def test_theorem_check(self):
        report = check_nonhomogeneous_threshold(
            ring_sizes=(6, 8), assignments_per_size=4
        )
        assert report.holds

    def test_mixed_monotone_and_xor_can_cycle(self):
        # Heterogeneity with a NON-monotone rule in the mix breaks the
        # guarantee: XOR nodes can oscillate sequentially.
        g = GraphSpace(nx.path_graph(2))
        het = HeterogeneousCA(g, [XorRule(), XorRule()])
        nps = NondetPhaseSpace(het.all_node_successors(), 2)
        assert nps.has_proper_cycle()


class TestMonotoneBoundary:
    def test_boundary_report_holds(self):
        report = check_monotone_boundary(ring_sizes=(3, 4, 5))
        assert report.holds
        assert report.details["monotone_rules"] == 20

    def test_shift_rule_sequential_cycle_witness(self):
        # x_i' = x_{i-1}: sequentially walk a lone 1 around the 4-ring.
        shift = TableRule([0, 1] * 4, name="left-shift")
        ca = CellularAutomaton(Ring(4), shift, memory=True)
        state = np.array([1, 0, 0, 0], dtype=np.uint8)
        code0 = ca.pack(state)
        # Update order 1,0,2,1,3,2,0,3 rotates the 1 fully around.
        for node in (1, 0, 2, 1, 3, 2, 0, 3):
            ca.update_node_inplace(state, node)
        assert ca.pack(state) == code0

    def test_shift_rule_is_monotone_not_symmetric(self):
        shift = TableRule([0, 1] * 4)
        assert shift.is_monotone()
        assert not shift.is_symmetric()

    def test_nonsymmetric_self_dependent_rules_stay_cycle_free(self):
        # "left AND self" is monotone, non-symmetric, self-dependent:
        # still sequentially cycle-free (positive energy diagonal).
        land_self = TableRule([0, 0, 0, 1, 0, 0, 0, 1], name="left-and-self")
        assert land_self.is_monotone() and not land_self.is_symmetric()
        for n in (3, 4, 5, 6):
            ca = CellularAutomaton(Ring(n), land_self, memory=True)
            assert not NondetPhaseSpace.from_automaton(ca).has_proper_cycle()
