"""Tests for the differential fuzzing / invariant-oracle subsystem."""

import numpy as np
import pytest

from repro import qa
from repro.core.budget import Budget
from repro.qa.differential import CHECKS, Instance, applicable_backends
from repro.qa.findings import Finding, canonical_json, spec_digest
from repro.qa.generators import build_automaton, sample_spec
from repro.qa.shrink import shrink_candidates, shrink_spec


class TestGenerators:
    def test_sampled_specs_build_and_roundtrip(self, fuzz_seed):
        for case in range(40):
            spec = sample_spec(qa.case_seed(fuzz_seed, case), Budget())
            ca = build_automaton(spec, backend="numpy")
            assert ca.n == spec.n
            clone = type(spec).from_dict(spec.to_dict())
            assert clone.to_dict() == spec.to_dict()
            assert spec_digest(clone) == spec_digest(spec)

    def test_sampling_is_deterministic(self, fuzz_seed):
        a = sample_spec(fuzz_seed, Budget()).to_dict()
        b = sample_spec(fuzz_seed, Budget()).to_dict()
        assert a == b

    def test_budget_caps_instance_size(self):
        tight = Budget(max_states=2**6)
        for case in range(20):
            spec = sample_spec(qa.case_seed(1, case), tight)
            assert spec.n <= 6

    def test_schedule_variety_appears(self):
        kinds = {
            sample_spec(qa.case_seed(7, case), Budget()).schedule["kind"]
            for case in range(120)
        }
        assert {"perm", "word", "block", "sweeps"} <= kinds


class TestDifferential:
    def test_clean_head_passes_all_checks(self, fuzz_seed):
        for case in range(25):
            spec = sample_spec(qa.case_seed(fuzz_seed, case), Budget())
            backends = applicable_backends(spec)
            inst = Instance(spec, backends)
            for name, checkfn in CHECKS.items():
                assert checkfn(inst) is None, f"{name} on case {case}"

    def test_backend_applicability_filters_bitplane(self):
        small = None
        for case in range(200):
            spec = sample_spec(qa.case_seed(3, case), Budget())
            if spec.n < 6:
                small = spec
                break
        assert small is not None
        assert "bitplane" not in applicable_backends(small)


class TestMutantsAndShrinking:
    @pytest.mark.parametrize("mutant", sorted(qa.MUTANTS))
    def test_mutant_caught_and_shrunk(self, mutant):
        with qa.active_mutant(mutant):
            report = qa.run_fuzz(seed=0, cases=400, max_findings=1)
        assert report.findings, f"mutant {mutant} not caught in 400 cases"
        finding = report.findings[0]
        assert finding.spec["n"] <= 6
        # the shrunk spec must still fail with the mutant active...
        spec = type(sample_spec(0, Budget())).from_dict(finding.spec)
        with qa.active_mutant(mutant):
            assert qa.replay_spec(spec, check=finding.check) is not None
        # ...and pass on the healthy kernels.
        assert qa.replay_spec(spec, check=finding.check) is None

    def test_shrink_candidates_only_shrink(self, fuzz_seed):
        spec = sample_spec(fuzz_seed, Budget())
        for cand in shrink_candidates(spec):
            assert cand.n <= spec.n
            build_automaton(cand, backend="numpy")  # stays well-formed

    def test_shrink_requires_deterministic_failure(self):
        spec = sample_spec(qa.case_seed(0, 0), Budget())
        # no violation at all -> shrinker returns the spec unchanged
        shrunk, steps = shrink_spec(spec, "differential.step_all", ["numpy"])
        assert steps == 0 and shrunk.to_dict() == spec.to_dict()


class TestFindings:
    def test_same_seed_byte_identical_finding(self):
        blobs = []
        for _ in range(2):
            with qa.active_mutant("table-wrap-rotation"):
                report = qa.run_fuzz(seed=0, cases=200, max_findings=1)
            assert report.findings
            blobs.append(report.findings[0].to_bytes())
        assert blobs[0] == blobs[1]

    def test_finding_save_load_replay_roundtrip(self, tmp_path):
        with qa.active_mutant("table-wrap-rotation"):
            report = qa.run_fuzz(
                seed=0, cases=200, max_findings=1,
                findings_dir=str(tmp_path),
            )
        path = tmp_path / f"{report.findings[0].name}.json"
        assert path.exists()
        loaded = Finding.load(str(path))
        assert loaded.to_bytes() == report.findings[0].to_bytes()
        with qa.active_mutant("table-wrap-rotation"):
            assert qa.replay_finding(str(path)) is not None
        assert qa.replay_finding(str(path)) is None  # healthy HEAD passes

    def test_finding_embeds_runnable_pytest_snippet(self):
        with qa.active_mutant("table-stale-bit"):
            report = qa.run_fuzz(seed=0, cases=200, max_findings=1)
        snippet = report.findings[0].pytest_snippet()
        assert snippet.startswith("def test_qa_")
        assert "replay_spec" in snippet
        compile(snippet, "<finding>", "exec")  # syntactically valid

    def test_canonical_json_is_stable_and_sorted(self):
        a = canonical_json({"b": np.int64(2), "a": [np.uint8(1)]})
        b = canonical_json({"a": [1], "b": 2})
        assert a == b == b'{"a":[1],"b":2}'


class TestFuzzLoop:
    def test_clean_run_summary(self):
        report = qa.run_fuzz(seed=0, cases=30)
        assert report.clean and report.cases_run == 30
        assert set(report.backends_seen) <= {"numpy", "table", "bitplane"}

    def test_wall_budget_truncates(self):
        report = qa.run_fuzz(seed=0, cases=10**6, budget=Budget(wall_s=1))
        assert report.truncated
        assert 0 < report.cases_run < 10**6

    def test_self_test_catches_every_mutant(self):
        results = qa.run_self_test(seed=0, cases=400)
        assert set(results) == set(qa.MUTANTS)
        for name, res in results.items():
            assert res["caught"], f"mutant {name} escaped"
            assert res["shrunk_n"] <= 6
