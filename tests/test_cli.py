"""Tests for the command-line interface (repro.cli)."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_all_experiments(self):
        code, text = run_cli("list")
        assert code == 0
        for k in range(1, 17):
            assert f"E{k} " in text or f"E{k} " in text or f"E{k}  " in text


class TestRun:
    def test_run_single(self):
        code, text = run_cli("run", "E1")
        assert code == 0
        assert "HOLDS" in text

    def test_run_multiple(self):
        code, text = run_cli("run", "E1", "E3")
        assert code == 0
        assert text.count("HOLDS") == 2

    def test_run_json(self):
        code, text = run_cli("run", "E1", "--json")
        assert code == 0
        data = json.loads(text)
        assert data["E1"]["holds"] is True

    def test_unknown_experiment_is_clean_exit_2(self, capsys):
        code, text = run_cli("run", "E42")
        assert code == 2
        assert text == ""  # nothing on the report stream
        err = capsys.readouterr().err
        assert "unknown experiment 'E42'" in err
        assert "known: E1" in err

    def test_unknown_experiment_mixed_with_known(self, capsys):
        code, _ = run_cli("run", "E1", "nope")
        assert code == 2
        assert "unknown experiment 'nope'" in capsys.readouterr().err

    def test_run_resilience_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["run", "all", "--timeout", "30", "--retries", "2",
             "--isolate", "--resume", "/tmp/r"]
        )
        assert args.timeout == 30.0 and args.retries == 2
        assert args.isolate is True and args.resume == "/tmp/r"


class TestSimulate:
    def test_parallel_raster(self):
        code, text = run_cli(
            "simulate", "--space", "ring", "--n", "12", "--steps", "5",
            "--init", "alternating",
        )
        assert code == 0
        lines = text.splitlines()
        assert "CA[Ring(n=12" in lines[0]
        # Alternating under parallel majority flips every step.
        assert ".#.#.#.#.#.#" in text and "#.#.#.#.#.#." in text

    def test_explicit_init_string(self):
        code, text = run_cli(
            "simulate", "--n", "8", "--steps", "2", "--init", "11110000"
        )
        assert code == 0
        assert "####...." in text

    def test_init_length_mismatch(self):
        with pytest.raises(SystemExit):
            run_cli("simulate", "--n", "8", "--init", "101")

    def test_wolfram_rule(self):
        code, text = run_cli(
            "simulate", "--n", "16", "--rule", "wolfram", "--wolfram", "90",
            "--steps", "4", "--init", "one",
        )
        assert code == 0
        assert "Wolfram" in text

    def test_wolfram_requires_number(self):
        with pytest.raises(SystemExit):
            run_cli("simulate", "--rule", "wolfram")

    def test_threshold_requires_value(self):
        with pytest.raises(SystemExit):
            run_cli("simulate", "--rule", "threshold")

    def test_sequential_schedule(self):
        code, text = run_cli(
            "simulate", "--n", "10", "--schedule", "random-sweeps",
            "--steps", "30", "--seed", "5",
        )
        assert code == 0
        assert "RandomPermutationSweeps" in text

    def test_hypercube_space(self):
        code, text = run_cli(
            "simulate", "--space", "hypercube", "--dimension", "3",
            "--steps", "3",
        )
        assert code == 0
        assert "Hypercube" in text


class TestPhaseSpace:
    def test_parallel_summary(self):
        code, text = run_cli("phase-space", "--n", "8")
        assert code == 0
        assert "proper_cycles: 1" in text

    def test_sequential_summary(self):
        code, text = run_cli("phase-space", "--n", "6", "--mode", "sequential")
        assert code == 0
        assert "has_proper_cycle: False" in text

    def test_dot_export(self, tmp_path):
        dot_file = tmp_path / "ps.dot"
        code, text = run_cli(
            "phase-space", "--n", "4", "--rule", "xor", "--dot", str(dot_file)
        )
        assert code == 0
        content = dot_file.read_text()
        assert content.startswith("digraph")

    def test_too_large_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("phase-space", "--n", "24")


class TestInputValidation:
    """Out-of-domain numeric flags die with one-line usage errors, not
    deep numpy/space-construction tracebacks."""

    @pytest.mark.parametrize("argv, fragment", [
        (["simulate", "--n", "0"], "--n must be >= 1"),
        (["simulate", "--n", "-3"], "--n must be >= 1"),
        (["simulate", "--radius", "0"], "--radius must be >= 1"),
        (["simulate", "--steps", "-1"], "--steps must be >= 0"),
        (["simulate", "--space", "hypercube", "--dimension", "0"],
         "--dimension must be >= 1"),
        (["simulate", "--space", "grid", "--rows", "0"], "--rows must be >= 1"),
        (["simulate", "--rule", "wolfram", "--wolfram", "256"],
         "--wolfram must be an elementary rule number in 0..255"),
        (["simulate", "--rule", "wolfram", "--wolfram", "-1"],
         "--wolfram must be an elementary rule number in 0..255"),
        (["run", "E1", "--timeout", "0"], "--timeout must be positive"),
        (["run", "E1", "--retries", "-1"], "--retries must be >= 0"),
        (["phase-space", "--n", "0"], "--n must be >= 1"),
    ])
    def test_bad_values_rejected(self, argv, fragment):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(*argv)
        assert fragment in str(excinfo.value)

    def test_boundary_values_accepted(self):
        code, _ = run_cli("simulate", "--n", "3", "--steps", "0")
        assert code == 0
        code, _ = run_cli(
            "simulate", "--n", "8", "--rule", "wolfram", "--wolfram", "0",
            "--steps", "1",
        )
        assert code == 0


class TestParser:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["simulate", "--n", "9"])
        assert args.command == "simulate" and args.n == 9

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_obs_flags_on_every_subcommand(self):
        parser = build_parser()
        for argv in (
            ["list", "--trace"],
            ["run", "E1", "--trace"],
            ["phase-space", "--n", "10", "--trace", "--artifacts-dir", "/tmp/r"],
            ["stats", "--artifacts-dir", "/tmp/r"],
        ):
            args = parser.parse_args(argv)
            assert hasattr(args, "trace") and hasattr(args, "artifacts_dir")
        args = parser.parse_args(["phase-space", "--trace-memory", "--trace"])
        assert args.trace_memory is True


class TestCensusCommand:
    def test_table_and_recurrence(self):
        code, text = run_cli("census", "--min-n", "3", "--max-n", "8")
        assert code == 0
        assert "fixed-point recurrence" in text
        assert " 46 " in text  # n=8 fixed points

    def test_rejects_bad_range(self):
        with pytest.raises(SystemExit):
            run_cli("census", "--min-n", "10", "--max-n", "4")


class TestSurveyCommand:
    def test_summary(self):
        code, text = run_cli("survey", "--max-ring", "6")
        assert code == 0
        assert "monotone: 20" in text
        assert "theorem1_violations: []" in text

    def test_full_table(self):
        code, text = run_cli("survey", "--max-ring", "6", "--full-table")
        assert code == 0
        assert text.count("\n") > 256


class TestReportCommand:
    def test_report_to_stdout(self):
        code, text = run_cli("report")
        assert code == 0
        assert "Measured reproduction report" in text
        assert "22 / 22 experiments hold" in text
        assert "**FAILS**" not in text

    def test_report_to_file(self, tmp_path):
        target = tmp_path / "report.md"
        code, text = run_cli("report", "--output", str(target))
        assert code == 0
        assert "wrote" in text
        content = target.read_text()
        assert content.count("## E") == 22


class TestBackendErrorPaths:
    """An explicit --backend that cannot run dies with a one-line error
    (no traceback), and subcommands without backend selection reject the
    flag at the argparse layer with the conventional usage exit code."""

    def test_unsupported_backend_is_one_line_systemexit(self):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("phase-space", "--n", "5", "--backend", "bitplane")
        message = str(excinfo.value)
        assert "bitplane backend cannot run" in message
        assert "needs n >= 6" in message
        assert "\n" not in message  # one line, not a traceback dump

    def test_bad_workers_rejected_before_any_work(self):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(
                "phase-space", "--n", "6", "--backend", "process",
                "--workers", "0",
            )
        assert str(excinfo.value) == "--workers must be >= 1, got 0"
        with pytest.raises(SystemExit) as excinfo:
            run_cli("census", "--backend", "process", "--workers", "-2")
        assert str(excinfo.value) == "--workers must be >= 1, got -2"

    @pytest.mark.parametrize("argv", [
        ["simulate", "--n", "8", "--backend", "table"],
        ["run", "E1", "--backend", "table"],
        ["list", "--backend", "numpy"],
    ])
    def test_backend_flag_rejected_by_non_sweep_subcommands(
        self, argv, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(*argv)
        assert excinfo.value.code == 2  # argparse usage error
        err = capsys.readouterr().err
        assert "unrecognized arguments: --backend" in err

    def test_unknown_backend_name_listed_in_error(self):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("phase-space", "--n", "6", "--backend", "cuda")
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            run_cli("fuzz", "--cases", "1", "--backends", "numpy,cuda")
        assert "unknown sweep backend 'cuda'" in str(excinfo.value)
