"""Tests for the experiment registry (repro.experiments)."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    get_experiment,
    run_experiment,
)


class TestRegistryShape:
    def test_registry_complete(self):
        assert len(EXPERIMENTS) == 22
        assert set(EXPERIMENTS) == {f"E{k}" for k in range(1, 23)}

    def test_lookup_case_insensitive(self):
        assert get_experiment("e4").id == "E4"

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_all_have_paper_refs(self):
        for exp in EXPERIMENTS.values():
            assert exp.paper_ref
            assert exp.title


class TestIndividualExperiments:
    """Each experiment runs and its verdict HOLDS.

    These double as the paper-vs-measured record behind EXPERIMENTS.md.
    """

    @pytest.mark.parametrize("exp_id", sorted(EXPERIMENTS, key=lambda s: int(s[1:])))
    def test_experiment_holds(self, exp_id):
        result = run_experiment(exp_id)
        assert result["holds"], f"{exp_id} failed: {result}"


class TestExperimentDetails:
    def test_fig1a_successors(self):
        res = run_experiment("E1")
        assert res["successors"] == [0, 3, 3, 0]

    def test_fig1b_unreachable_sink(self):
        res = run_experiment("E2")
        assert res["unreachable"] == [0]
        assert res["reach_00_from_11"] is False

    def test_granularity_values(self):
        res = run_experiment("E3")
        assert res["high_level_sequential_x"] == [3]
        assert res["parallel_x"] == [1, 2]
        assert res["machine_x"] == [1, 2, 3]

    def test_interleaving_failure_quantified(self):
        res = run_experiment("E11")
        assert res["orbit_failures"] > 0
        assert res["sequential_has_cycle"] is False
        assert 0 < res["step_capture_rate"] < 1

    def test_fair_convergence_within_bound(self):
        res = run_experiment("E12")
        assert res["converged"] == res["runs"]
        assert res["worst_effective_flips"] <= res["energy_flip_bound"]

    def test_engine_scaling_speedup(self):
        res = run_experiment("E15")
        assert res["speedup"] > 1

    def test_infinite_line_details(self):
        res = run_experiment("E16")
        assert res["alternating_orbit"] == {"transient": 0, "period": 2}
        assert res["invading_block_diverges"] is True


class TestReportRendering:
    def test_render_markdown_shapes(self):
        from repro.experiments.report import render_markdown

        text = render_markdown(
            {"E1": {"holds": True, "value": 3, "nested": {"a": [1, 2]}}}
        )
        assert "## E1" in text
        assert "HOLDS" in text
        assert "**value**: 3" in text

    def test_render_flags_failures(self):
        from repro.experiments.report import render_markdown

        text = render_markdown({"EX": {"holds": False}})
        assert "**FAILS**" in text
        assert "0 / 1 experiments hold" in text


class TestExtensionExperimentDetails:
    def test_e17_assignments_counted(self):
        res = run_experiment("E17")
        assert res["parameters"]["assignments_checked"] == 24

    def test_e18_shift_rules_identified(self):
        res = run_experiment("E18")
        assert res["shift_sequential_has_cycles"] is True
        assert len(res["witnesses"]) == 2

    def test_e19_unique_cyclic_partition(self):
        res = run_experiment("E19")
        assert res["details"]["ring6_ordered_partitions"] == "4683"
        assert res["details"]["ring6_cyclic_partitions"] == "1"

    def test_e20_recurrence_and_parity(self):
        res = run_experiment("E20")
        assert res["fp_recurrence_order"] == 4
        assert res["fp_recurrence"] == ["2", "-1", "0", "1"]
        assert res["cycle_configs"] == [2 if n % 2 == 0 else 0
                                        for n in res["sizes"]]

    def test_e21_landscape_counts(self):
        res = run_experiment("E21")
        assert res["monotone"] == 20
        assert res["monotone_sequential_cyclers"] == [170, 240]
        assert res["threshold_but_cycling"] > 0

    def test_e22_alpha_one_is_the_exception(self):
        res = run_experiment("E22")
        assert res["alpha_1_converges"] is False
        assert all(v > 0 for v in
                   res["mean_steps_to_fixed_point_by_alpha"].values())

    def test_e11_capture_decays(self):
        res = run_experiment("E11")
        assert res["capture_rates_decay_with_n"] is True
        series = res["step_capture_by_size"]
        assert series[6] > series[12]
