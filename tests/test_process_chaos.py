"""Chaos matrix for the self-healing ``process`` backend.

The paper's order-independence results license transparent healing:
shards may be recomputed by any worker in any order and the merged sweep
is byte-identical.  These tests *earn* that guarantee — they SIGKILL
workers at every phase of a shard's life (dispatch receipt, mid-chunk,
pre-merge), poison shards deterministically, hang workers past their
lease deadline, and collapse the whole pool — and assert the sweep
either completes byte-identical to the serial ``numpy`` backend, returns
an honest budget-truncated frontier, or raises the typed
:class:`~repro.perf.supervise.ShardFailed`.  Never a hang, never a bare
``RuntimeError``.

Geometry: ``Ring(17)`` with 2 workers gives exactly two CHUNK-aligned
shards, so both workers hold work and the wid-targeted fault sites
(``perf.worker.w0.*`` hits the first spawned worker only, never its
respawned replacement) are deterministic.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import warnings

import numpy as np
import pytest

from repro import obs
from repro.core.automaton import CellularAutomaton
from repro.core.budget import Budget
from repro.core.rules import MajorityRule
from repro.harness import faults
from repro.perf import process as procmod
from repro.perf import supervise
from repro.perf.process import ProcessBackend, default_workers
from repro.perf.supervise import (
    ShardFailed,
    ShardLease,
    Supervisor,
    WorkerHandle,
    default_max_shard_retries,
    default_max_worker_deaths,
    default_shard_timeout_s,
)
from repro.spaces.line import Ring

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="process backend requires the fork start method",
)

N = 17  # exactly two CHUNK-aligned shards at workers=2


def make_ca(backend: str, workers: int | None = None) -> CellularAutomaton:
    return CellularAutomaton(
        Ring(N), MajorityRule(), backend=backend, workers=workers
    )


@pytest.fixture(scope="module")
def serial_ref() -> np.ndarray:
    return make_ca("numpy").step_all()


@pytest.fixture(autouse=True)
def clean_slate():
    """Disarm faults and zero the metrics registry around every test."""
    faults.clear_faults()
    obs.REGISTRY.reset()
    yield
    faults.clear_faults()
    obs.REGISTRY.reset()


def counters() -> dict:
    return obs.REGISTRY.snapshot().get("counters", {})


def gauges() -> dict:
    return obs.REGISTRY.snapshot().get("gauges", {})


class TestCrashMatrix:
    """SIGKILL each worker role at each phase: heal, stay byte-identical."""

    @pytest.mark.parametrize("wid", [0, 1])
    @pytest.mark.parametrize("phase", ["dispatch", "chunk", "premerge"])
    def test_single_worker_sigkill_heals(self, phase, wid, serial_ref):
        faults.install(f"perf.worker.w{wid}.{phase}:worker-crash:1.0:0:1")
        got = make_ca("process", workers=2).step_all()
        assert np.array_equal(got, serial_ref)
        snap = counters()
        assert snap.get("perf.process.worker_deaths", 0) >= 1
        assert snap.get("perf.process.redispatches", 0) >= 1
        assert snap.get("perf.process.shards_done", 0) == 2
        assert "perf.process.degraded" not in gauges()

    def test_respawn_replaces_dead_worker(self, serial_ref):
        faults.install("perf.worker.w0.chunk:worker-crash:1.0:0:1")
        got = make_ca("process", workers=2).step_all()
        assert np.array_equal(got, serial_ref)
        assert counters().get("perf.process.respawns", 0) >= 1

    def test_clean_run_records_no_failures(self, serial_ref):
        got = make_ca("process", workers=2).step_all()
        assert np.array_equal(got, serial_ref)
        snap = counters()
        assert snap.get("perf.process.worker_deaths", 0) == 0
        assert snap.get("perf.process.redispatches", 0) == 0
        assert snap.get("perf.process.snapshots_lost", 0) == 0


class TestPoison:
    """Deterministic kernel failure: retry budget, quarantine, fallback."""

    def test_poison_shard_falls_back_to_serial(self, serial_ref):
        # Every worker attempt raises; after max_shard_retries failures the
        # parent must recompute the shard inline and still succeed.
        faults.install("perf.worker.*:worker-poison:1.0:0")
        got = make_ca("process", workers=2).step_all()
        assert np.array_equal(got, serial_ref)
        snap = counters()
        assert snap.get("perf.process.poison_shards", 0) == 2
        assert snap.get("perf.process.shard_errors", 0) >= 2

    def test_poison_respects_retry_budget(self, monkeypatch, serial_ref):
        monkeypatch.setenv(supervise.MAX_SHARD_RETRIES_ENV, "3")
        faults.install("perf.worker.*:worker-poison:1.0:0")
        got = make_ca("process", workers=2).step_all()
        assert np.array_equal(got, serial_ref)
        # 2 shards x 3 failed attempts each before quarantine
        assert counters().get("perf.process.shard_errors", 0) == 6

    def test_poison_plus_fallback_failure_raises_shard_failed(self):
        faults.install(
            "perf.worker.*:worker-poison:1.0:0,"
            "perf.process.fallback:raise:1.0:0"
        )
        with pytest.raises(ShardFailed) as excinfo:
            make_ca("process", workers=2).step_all()
        err = excinfo.value
        assert err.hi - err.lo > 0
        # worker attempts + the serial fallback, never past the budget
        assert err.attempts == default_max_shard_retries() + 1
        assert "serial fallback" in str(err)
        assert err.errors and "FaultError" in err.errors[0][0]
        assert "FaultError" in err.traceback_text

    def test_transient_error_is_retried_without_poisoning(self, serial_ref):
        # One single-shot raise: the retry succeeds on another worker and
        # the poison path never engages.
        faults.install("perf.worker.w0.dispatch:worker-poison:1.0:0:1")
        got = make_ca("process", workers=2).step_all()
        assert np.array_equal(got, serial_ref)
        snap = counters()
        assert snap.get("perf.process.poison_shards", 0) == 0
        assert snap.get("perf.process.redispatches", 0) == 1


class TestDegradation:
    """Death budget exhausted: finish serially, flagged, still identical."""

    def test_pool_collapse_degrades_to_serial(self, monkeypatch, serial_ref):
        monkeypatch.setenv(supervise.MAX_WORKER_DEATHS_ENV, "1")
        # keep the retry budget out of the way so healing exercises the
        # collapse path, not poison quarantine
        monkeypatch.setenv(supervise.MAX_SHARD_RETRIES_ENV, "100")
        faults.install("perf.worker.*:worker-crash:1.0:0")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            got = make_ca("process", workers=2).step_all()
        assert np.array_equal(got, serial_ref)
        assert gauges().get("perf.process.degraded") == 1
        assert counters().get("perf.process.worker_deaths", 0) >= 2
        messages = [
            str(w.message)
            for w in caught
            if issubclass(w.category, RuntimeWarning)
        ]
        assert any("death budget exhausted" in m for m in messages)

    def test_degraded_sweep_keeps_budget_frontier(self, monkeypatch, serial_ref):
        # Collapse the pool *and* cap states below the full space: the
        # degraded serial completion must still trip honestly mid-way.
        monkeypatch.setenv(supervise.MAX_WORKER_DEATHS_ENV, "1")
        monkeypatch.setenv(supervise.MAX_SHARD_RETRIES_ENV, "100")
        faults.install("perf.worker.*:worker-crash:1.0:0")
        backend = ProcessBackend(make_ca("numpy"), inner="numpy", workers=2)
        out = np.empty(1 << N, dtype=np.int64)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            next_lo, reason = backend.governed_sweep(
                out, Budget(max_states=1 << 16), per_state=8
            )
        assert reason is not None and reason.startswith("states")
        assert 0 < next_lo < (1 << N)
        assert np.array_equal(out[:next_lo], serial_ref[:next_lo])


class TestHangs:
    """Stuck workers: lease deadlines and bounded deadline wind-down."""

    def test_stuck_worker_is_killed_and_shard_redispatched(
        self, monkeypatch, serial_ref
    ):
        monkeypatch.setenv(faults.HANG_ENV_VAR, "60")
        monkeypatch.setenv(supervise.SHARD_TIMEOUT_ENV, "1")
        faults.install("perf.worker.w0.chunk:worker-hang:1.0:0:1")
        start = time.monotonic()
        got = make_ca("process", workers=2).step_all()
        assert time.monotonic() - start < 30
        assert np.array_equal(got, serial_ref)
        snap = counters()
        assert snap.get("perf.process.worker_deaths", 0) >= 1
        assert snap.get("perf.process.redispatches", 0) >= 1

    def test_deadline_trip_is_bounded_with_hung_worker(
        self, monkeypatch, serial_ref
    ):
        # A hung worker never acknowledges the cancel Event; the wind-down
        # grace bounds the trip anyway (never hangs past the deadline).
        monkeypatch.setenv(faults.HANG_ENV_VAR, "60")
        monkeypatch.setattr(procmod, "_WINDDOWN_GRACE_S", 0.5)
        monkeypatch.setattr(procmod, "_SHUTDOWN_GRACE_S", 0.5)
        faults.install("perf.worker.w0.chunk:worker-hang:1.0:0:1")
        backend = ProcessBackend(make_ca("numpy"), inner="numpy", workers=2)
        out = np.empty(1 << N, dtype=np.int64)
        start = time.monotonic()
        next_lo, reason = backend.governed_sweep(
            out, Budget(wall_s=1.0), per_state=8
        )
        assert time.monotonic() - start < 20
        assert reason is not None and reason.startswith("deadline")
        assert np.array_equal(out[:next_lo], serial_ref[:next_lo])

    def test_memory_trip_lets_inflight_shards_finish(self, serial_ref):
        # The old pragma-no-cover trip-race path: a states trip between
        # the two shards must merge the in-flight shard and clean up its
        # shared memory (the finally sweep owns any leftovers).
        backend = ProcessBackend(make_ca("numpy"), inner="numpy", workers=2)
        out = np.empty(1 << N, dtype=np.int64)
        next_lo, reason = backend.governed_sweep(
            out, Budget(max_states=1 << 16), per_state=8
        )
        assert reason is not None and reason.startswith("states")
        assert next_lo == 1 << 16
        assert np.array_equal(out[:next_lo], serial_ref[:next_lo])


class TestSnapshots:
    """Worker metrics flush per shard; abnormal deaths are counted."""

    def test_crash_counts_lost_snapshot(self, serial_ref):
        faults.install("perf.worker.w0.chunk:worker-crash:1.0:0:1")
        got = make_ca("process", workers=2).step_all()
        assert np.array_equal(got, serial_ref)
        assert counters().get("perf.process.snapshots_lost", 0) == 1

    def test_collapse_counts_every_lost_snapshot(self, monkeypatch, serial_ref):
        monkeypatch.setenv(supervise.MAX_WORKER_DEATHS_ENV, "1")
        monkeypatch.setenv(supervise.MAX_SHARD_RETRIES_ENV, "100")
        faults.install("perf.worker.*:worker-crash:1.0:0")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            got = make_ca("process", workers=2).step_all()
        assert np.array_equal(got, serial_ref)
        assert counters().get("perf.process.snapshots_lost", 0) == 2


class TestKnobValidation:
    """Env/CLI knobs fail as one-line usage errors, not tracebacks."""

    def test_workers_env_non_numeric(self, monkeypatch):
        monkeypatch.setenv(procmod.DEFAULT_WORKERS_ENV, "two")
        with pytest.raises(ValueError, match="positive integer"):
            default_workers()

    def test_workers_env_nonpositive(self, monkeypatch):
        monkeypatch.setenv(procmod.DEFAULT_WORKERS_ENV, "0")
        with pytest.raises(ValueError, match=">= 1"):
            default_workers()

    def test_workers_env_valid(self, monkeypatch):
        monkeypatch.setenv(procmod.DEFAULT_WORKERS_ENV, " 3 ")
        assert default_workers() == 3

    def test_max_shard_retries_env(self, monkeypatch):
        monkeypatch.setenv(supervise.MAX_SHARD_RETRIES_ENV, "5")
        assert default_max_shard_retries() == 5
        monkeypatch.setenv(supervise.MAX_SHARD_RETRIES_ENV, "zero")
        with pytest.raises(ValueError, match="positive integer"):
            default_max_shard_retries()

    def test_max_worker_deaths_default_scales(self, monkeypatch):
        monkeypatch.delenv(supervise.MAX_WORKER_DEATHS_ENV, raising=False)
        assert default_max_worker_deaths(1) == 4
        assert default_max_worker_deaths(8) == 16

    def test_shard_timeout_env(self, monkeypatch):
        monkeypatch.setenv(supervise.SHARD_TIMEOUT_ENV, "0")
        assert default_shard_timeout_s() == 0.0
        monkeypatch.setenv(supervise.SHARD_TIMEOUT_ENV, "-1")
        with pytest.raises(ValueError, match=">= 0"):
            default_shard_timeout_s()
        monkeypatch.setenv(supervise.SHARD_TIMEOUT_ENV, "soon")
        with pytest.raises(ValueError, match="number of seconds"):
            default_shard_timeout_s()

    def test_backend_rejects_bad_retry_kwarg(self):
        with pytest.raises(ValueError, match="max_shard_retries"):
            ProcessBackend(make_ca("numpy"), inner="numpy", max_shard_retries=0)

    def test_cli_workers_env_is_one_line_error(self, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv(procmod.DEFAULT_WORKERS_ENV, "banana")
        with pytest.raises(SystemExit) as excinfo:
            main(["phase-space", "--n", "4"])
        assert "REPRO_WORKERS must be a positive integer" in str(excinfo.value)

    def test_cli_max_shard_retries_flag_validated(self, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv(supervise.MAX_SHARD_RETRIES_ENV, raising=False)
        with pytest.raises(SystemExit) as excinfo:
            main(["phase-space", "--n", "4", "--max-shard-retries", "0"])
        assert str(excinfo.value) == "--max-shard-retries must be >= 1, got 0"

    def test_cli_max_shard_retries_flag_threads_env(self, monkeypatch):
        import io

        from repro.cli import main

        monkeypatch.delenv(supervise.MAX_SHARD_RETRIES_ENV, raising=False)
        code = main(
            ["phase-space", "--n", "4", "--max-shard-retries", "5"],
            out=io.StringIO(),
        )
        assert code == 0
        assert os.environ.get(supervise.MAX_SHARD_RETRIES_ENV) == "5"
        monkeypatch.delenv(supervise.MAX_SHARD_RETRIES_ENV, raising=False)


class _FakeProcess:
    def __init__(self, pid: int):
        self.pid = pid
        self.exitcode = None
        self._alive = True

    def is_alive(self) -> bool:
        return self._alive

    def join(self, timeout=None) -> None:
        pass

    def kill(self) -> None:
        self._alive = False
        self.exitcode = -9

    def die(self, exitcode: int = -9) -> None:
        self._alive = False
        self.exitcode = exitcode


class _FakeQueue:
    def __init__(self):
        self.items: list = []

    def put(self, item) -> None:
        self.items.append(item)

    def get(self):
        return self.items.pop(0)

    def empty(self) -> bool:
        return not self.items


class TestSupervisorUnit:
    """Pool mechanics against fake processes — no forking, microseconds."""

    @staticmethod
    def make_supervisor(workers=2, max_deaths=4, timeout=300.0, kills=None):
        def spawn(wid: int) -> WorkerHandle:
            return WorkerHandle(wid, _FakeProcess(1000 + wid), _FakeQueue())

        sup = Supervisor(
            spawn,
            workers=workers,
            max_worker_deaths=max_deaths,
            lease_timeout_s=timeout,
            clock=lambda: 0.0,
            kill=(lambda pid, sig: kills.append(pid))
            if kills is not None
            else (lambda pid, sig: None),
        )
        sup.start()
        return sup

    def test_assign_balances_load(self):
        sup = self.make_supervisor()
        l0, l1 = ShardLease(0, 0, 10), ShardLease(1, 10, 20)
        assert sup.assign(l0, ("t0",)) and sup.assign(l1, ("t1",))
        assert sup.owner_pid(0) != sup.owner_pid(1)
        assert l0.attempt == 1

    def test_assign_prefers_untried_worker(self):
        sup = self.make_supervisor()
        lease = ShardLease(0, 0, 10)
        lease.fail(1000, "boom")  # wid 0's pid already failed this shard
        assert sup.assign(lease, ("t0",))
        assert sup.owner_pid(0) == 1001

    def test_capacity_is_depth_bounded(self):
        sup = self.make_supervisor(workers=1)
        assert sup.assign(ShardLease(0, 0, 1), ("t0",))
        assert sup.assign(ShardLease(1, 1, 2), ("t1",))
        assert not sup.has_capacity()
        assert not sup.assign(ShardLease(2, 2, 3), ("t2",))

    def test_reap_separates_started_from_queued(self):
        sup = self.make_supervisor(workers=1)
        assert sup.assign(ShardLease(0, 0, 1), (0, "t"))
        assert sup.assign(ShardLease(1, 1, 2), (1, "t"))
        handle = sup.handles[0]
        handle.task_q.get()  # the worker consumed shard 0 ...
        handle.process.die()  # ... and died mid-compute
        orphans = sup.reap()
        assert sorted(orphans) == [(0, True), (1, False)]
        assert sup.deaths == 1
        assert sup.outstanding() == []

    def test_reap_never_double_reports_unconsumed_tasks(self):
        sup = self.make_supervisor(workers=1)
        assert sup.assign(ShardLease(0, 0, 1), (0, "t"))
        sup.handles[0].process.die()
        assert sup.reap() == [(0, False)]

    def test_collapse_stops_respawns(self):
        sup = self.make_supervisor(workers=2, max_deaths=1)
        for handle in list(sup.handles):
            handle.process.die()
        sup.reap()
        assert sup.collapsed
        assert sup.maybe_respawn(10) == 0
        assert sup.live_handles() == []

    def test_respawn_gets_fresh_wid(self):
        sup = self.make_supervisor(workers=2, max_deaths=10)
        sup.handles[0].process.die()
        sup.reap()
        assert sup.maybe_respawn(10) == 1
        assert sorted(h.wid for h in sup.handles) == [1, 2]
        assert sup.respawns == 1

    def test_kill_stuck_targets_expired_leases_only(self):
        kills: list[int] = []
        now = [0.0]
        sup = Supervisor(
            lambda wid: WorkerHandle(wid, _FakeProcess(1000 + wid), _FakeQueue()),
            workers=2,
            max_worker_deaths=4,
            lease_timeout_s=5.0,
            clock=lambda: now[0],
            kill=lambda pid, sig: kills.append(pid),
        )
        sup.start()
        fresh, stale = ShardLease(0, 0, 1), ShardLease(1, 1, 2)
        assert sup.assign(stale, (1, "t")) and sup.assign(fresh, (0, "t"))
        sup.note_started(stale, sup.owner_pid(1))
        now[0] = 10.0
        sup.note_started(fresh, sup.owner_pid(0))
        assert sup.kill_stuck({0: fresh, 1: stale}) == [
            h.wid for h in sup.handles if h.pid == sup.owner_pid(1)
        ]
        assert kills == [sup.owner_pid(1)]

    def test_zero_timeout_disables_deadlines(self):
        sup = self.make_supervisor(timeout=0.0)
        lease = ShardLease(0, 0, 1)
        assert sup.assign(lease, (0, "t"))
        sup.note_started(lease, sup.owner_pid(0))
        assert lease.deadline is None
        assert sup.kill_stuck({0: lease}) == []

    def test_shutdown_sends_sentinels_then_kills_stragglers(self):
        sup = self.make_supervisor(workers=2)
        sup.shutdown(grace_s=0.0)
        for handle in sup.handles:
            assert handle.sentinel_sent
            assert not handle.is_alive()  # fake join never exits: killed


class TestShardFailedType:
    def test_message_and_fields(self):
        err = ShardFailed(0, 65536, 3, [("ValueError('x')", "tb-text")])
        assert err.lo == 0 and err.hi == 65536 and err.attempts == 3
        assert isinstance(err, RuntimeError)
        assert "failed 3 attempt(s)" in str(err)
        assert err.traceback_text == "tb-text"

    def test_empty_history_defaults(self):
        err = ShardFailed(5, 6, 1)
        assert "worker died" in str(err)
        assert err.traceback_text == ""
