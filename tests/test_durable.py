"""Tests for the durable-write layer (repro.core.durable).

Covers the whole-file protocol (temp + fsync + replace + directory
fsync + sidecar), the CRC-framed JSONL record format, the memmap prefix
checksum, the ``crash``/``partial-write`` fault semantics at a durable
site, and — via the recorded-syscall replay at the bottom — the
power-cut property the protocol exists for: after a crash at *any*
prefix of the (write, fsync, rename, dir-fsync) sequence, a reader sees
either the old complete payload or the new complete payload, never a
torn one.
"""

from __future__ import annotations

import json
import os
import signal
from pathlib import Path

import numpy as np
import pytest

from repro.core import durable
from repro.harness import faults


@pytest.fixture(autouse=True)
def no_faults():
    faults.clear_faults()
    yield
    faults.clear_faults()


class TestDurableWrite:
    def test_bytes_roundtrip_with_sidecar(self, tmp_path):
        target = tmp_path / "artifact.json"
        payload = b'{"v": 1}\n'
        assert durable.durable_write_bytes(target, payload) == target
        assert target.read_bytes() == payload
        assert durable.sidecar_path(target).exists()
        assert durable.verify_sidecar(target) == "ok"
        assert not target.with_name("artifact.json.tmp").exists()

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "a.txt"
        durable.durable_write_text(target, "old")
        durable.durable_write_text(target, "new")
        assert target.read_text() == "new"
        assert durable.verify_sidecar(target) == "ok"

    def test_json_writer_trailing_newline(self, tmp_path):
        target = tmp_path / "doc.json"
        durable.durable_write_json(target, {"n": 4, "ok": True})
        raw = target.read_text()
        assert raw.endswith("\n")
        assert json.loads(raw) == {"n": 4, "ok": True}

    def test_checksum_false_writes_no_sidecar(self, tmp_path):
        target = tmp_path / "metrics.prom"
        durable.durable_write_text(target, "repro_x 1\n", checksum=False)
        assert not durable.sidecar_path(target).exists()

    def test_fsync_false_still_atomic(self, tmp_path):
        target = tmp_path / "fast.json"
        durable.durable_write_json(target, {"x": 1}, fsync=False)
        assert json.loads(target.read_text()) == {"x": 1}

    def test_site_registry(self):
        site = durable.register_write_site("test.site", "a test site")
        try:
            assert site == "test.site"
            assert durable.registered_write_sites()["test.site"] == "a test site"
        finally:
            durable.WRITE_SITES.pop("test.site", None)

    def test_real_sites_are_registered(self):
        # Importing the writers registers their sites; the crash matrix
        # enumerates this registry, so presence here is load-bearing.
        import repro.harness.checkpoint  # noqa: F401
        import repro.obs.artifacts  # noqa: F401
        import repro.obs.export  # noqa: F401
        import repro.obs.index  # noqa: F401
        import repro.qa.findings  # noqa: F401

        sites = durable.registered_write_sites()
        for expected in (
            "checkpoint.journal", "checkpoint.snapshot",
            "checkpoint.frontier_array", "checkpoint.frontier",
            "artifacts.manifest", "artifacts.write_event",
            "export.prom", "findings.save", "index.write",
        ):
            assert expected in sites


class TestSidecars:
    def test_missing(self, tmp_path):
        target = tmp_path / "x.json"
        target.write_bytes(b"{}")
        assert durable.verify_sidecar(target) == "missing"

    def test_stale_after_payload_rewrite(self, tmp_path):
        target = tmp_path / "x.json"
        durable.durable_write_bytes(target, b'{"v": 1}')
        # Simulate the crash window: payload replaced, sidecar not yet.
        target.write_bytes(b'{"v": 2}')
        assert durable.verify_sidecar(target) == "stale"

    def test_unreadable_payload(self, tmp_path):
        target = tmp_path / "x.json"
        durable.durable_write_bytes(target, b"{}")
        target.unlink()
        assert durable.verify_sidecar(target) == "unreadable"

    def test_garbled_sidecar_is_ignored(self, tmp_path):
        target = tmp_path / "x.json"
        durable.durable_write_bytes(target, b"{}")
        durable.sidecar_path(target).write_text("not a sidecar at all")
        assert durable.read_sidecar(target) is None
        assert durable.verify_sidecar(target) == "missing"


class TestJsonl:
    def test_roundtrip_ok(self):
        payload = {"ev": "finish", "id": "E1", "status": "ok", "n": 3.5}
        line = durable.jsonl_line(payload)
        decoded, status = durable.decode_jsonl_line(line)
        assert status == "ok"
        assert decoded == payload

    def test_line_is_plain_json_with_trailing_crc(self):
        line = durable.jsonl_line({"a": 1})
        obj = json.loads(line)
        assert list(obj)[-1] == durable.CRC_KEY
        assert obj["a"] == 1

    def test_empty_payload(self):
        decoded, status = durable.decode_jsonl_line(durable.jsonl_line({}))
        assert (decoded, status) == ({}, "ok")

    def test_legacy_line_unchecked(self):
        decoded, status = durable.decode_jsonl_line('{"ev": "start"}')
        assert status == "unchecked"
        assert decoded == {"ev": "start"}

    def test_tampered_line_mismatch(self):
        line = durable.jsonl_line({"id": "E1", "status": "ok"})
        tampered = line.replace('"ok"', '"failed"')
        decoded, status = durable.decode_jsonl_line(tampered)
        assert status == "mismatch"
        assert decoded["status"] == "failed"

    def test_torn_line_garbled(self):
        line = durable.jsonl_line({"id": "E1", "status": "ok"})
        assert durable.decode_jsonl_line(line[: len(line) // 2]) == (
            None, "garbled"
        )

    def test_non_object_garbled(self):
        assert durable.decode_jsonl_line("[1, 2, 3]") == (None, "garbled")

    def test_unicode_payload(self):
        payload = {"name": "café ∧ ∨", "vals": [1, 2]}
        decoded, status = durable.decode_jsonl_line(
            durable.jsonl_line(payload)
        )
        assert status == "ok"
        assert decoded == payload


class TestArrayPrefixCrc:
    def test_stable_across_chunk_sizes(self):
        arr = np.arange(1000, dtype=np.int64)
        full = durable.crc32_of_array_prefix(arr, 1000)
        assert durable.crc32_of_array_prefix(arr, 1000, chunk_rows=7) == full

    def test_prefix_only(self):
        arr = np.arange(100, dtype=np.int64)
        crc = durable.crc32_of_array_prefix(arr, 50)
        arr[99] = -1  # outside the prefix
        assert durable.crc32_of_array_prefix(arr, 50) == crc
        arr[10] = -1  # inside it
        assert durable.crc32_of_array_prefix(arr, 50) != crc


class TestFaultsAtSites:
    def test_partial_write_leaves_target_intact(self, tmp_path):
        target = tmp_path / "a.json"
        durable.durable_write_bytes(target, b'{"v": 1}', site="t.site")
        faults.install("t.site:partial-write:1.0:0")
        with pytest.raises(faults.FaultError):
            durable.durable_write_bytes(target, b'{"v": 2}', site="t.site")
        assert target.read_bytes() == b'{"v": 1}'
        tmp = target.with_name("a.json.tmp")
        assert tmp.exists() and len(tmp.read_bytes()) < len(b'{"v": 2}')

    def test_crash_kind_sigkills(self, monkeypatch):
        killed = []
        monkeypatch.setattr(
            faults, "_kill", lambda pid, sig: killed.append((pid, sig))
        )
        faults.install("t.site:crash:1.0:0")
        with pytest.raises(faults.FaultError) as err:
            faults.inject("t.site")
        assert err.value.kind == "crash"
        assert killed == [(os.getpid(), signal.SIGKILL)]

    def test_crash_at_rename_window_keeps_old_payload(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(faults, "_kill", lambda pid, sig: None)
        target = tmp_path / "a.json"
        durable.durable_write_bytes(target, b'{"v": 1}', site="t.site")
        faults.install("t.site@rename:crash:1.0:0")
        with pytest.raises(faults.FaultError):
            durable.durable_write_bytes(target, b'{"v": 2}', site="t.site")
        # The replace never ran: the old payload is still what readers see.
        assert target.read_bytes() == b'{"v": 1}'
        assert target.with_name("a.json.tmp").read_bytes() == b'{"v": 2}'


# -- power-cut replay ----------------------------------------------------------


class _SyscallLog:
    """Record the protocol's (fsync, replace) sequence with content."""

    def __init__(self, real_fsync, real_replace):
        self.ops: list[tuple] = []
        self._fsync = real_fsync
        self._replace = real_replace

    def fsync(self, fd):
        try:
            path = os.readlink(f"/proc/self/fd/{fd}")
        except OSError:
            path = None
        if path is not None and os.path.isfile(path):
            self.ops.append(("fsync", path, Path(path).read_bytes()))
        else:
            self.ops.append(("dirsync", path, None))
        self._fsync(fd)

    def replace(self, src, dst):
        self.ops.append(
            ("replace", str(src), str(dst), Path(src).read_bytes())
        )
        self._replace(src, dst)


def _replay(prefix, initial, apply_unsynced_renames):
    """Crash-state simulation: the durable view after ``prefix`` ops.

    ``initial`` maps path -> bytes that were durable before the write.
    Renames are metadata updates: until the containing directory is
    fsynced they may or may not have reached disk, so the caller replays
    both ``apply_unsynced_renames`` branches.  File content only becomes
    durable at its fsync (an un-fsynced temp is modelled as absent — the
    worst case).
    """
    state = dict(initial)
    synced: dict[str, bytes] = dict(initial)
    pending_renames: list[tuple[str, str, bytes]] = []
    for op in prefix:
        if op[0] == "fsync":
            synced[op[1]] = op[2]
        elif op[0] == "dirsync":
            for src, dst, content in pending_renames:
                state.pop(src, None)
                state[dst] = content
            pending_renames = []
        elif op[0] == "replace":
            src, dst, content = op[1], op[2], op[3]
            # Protocol invariant: never rename content that was not
            # fsynced first — otherwise the crash state could be torn.
            assert synced.get(src) == content, (
                f"replace of un-fsynced content: {src}"
            )
            pending_renames.append((src, dst, content))
    if apply_unsynced_renames:
        for src, dst, content in pending_renames:
            state.pop(src, None)
            state[dst] = content
    return state


class TestPowerCut:
    @pytest.mark.skipif(
        not os.path.isdir("/proc/self/fd"), reason="needs /proc fd links"
    )
    def test_every_crash_prefix_leaves_old_or_new(self, tmp_path, monkeypatch):
        log = _SyscallLog(durable._fsync, durable._replace)
        target = tmp_path / "artifact.json"
        old, new = b'{"v": 1}\n', b'{"v": 2, "payload": "abcdef"}\n'
        durable.durable_write_bytes(target, old)
        initial = {
            str(target): old,
            str(durable.sidecar_path(target)):
                durable.sidecar_path(target).read_bytes(),
        }
        monkeypatch.setattr(durable, "_fsync", log.fsync)
        monkeypatch.setattr(durable, "_replace", log.replace)
        durable.durable_write_bytes(target, new)
        monkeypatch.undo()
        assert any(op[0] == "replace" for op in log.ops)
        assert any(op[0] == "dirsync" for op in log.ops)

        for cut in range(len(log.ops) + 1):
            for renames_land in (False, True):
                state = _replay(log.ops[:cut], initial, renames_land)
                content = state.get(str(target))
                # The payload is never torn, whatever the crash point.
                assert content in (old, new), (cut, renames_land, content)
                # And a stale sidecar never *vouches* for a mismatched
                # payload: rebuild the state on disk and check.
                probe = tmp_path / f"replay-{cut}-{int(renames_land)}"
                probe.mkdir()
                for path, data in state.items():
                    name = Path(path).name
                    if name.endswith(durable.TMP_SUFFIX):
                        continue
                    (probe / name).write_bytes(data)
                replayed = probe / target.name
                if replayed.exists():
                    verdict = durable.verify_sidecar(replayed)
                    if verdict == "ok":
                        side = durable.read_sidecar(replayed)
                        assert side is not None
                        assert len(replayed.read_bytes()) == side[2]
                    else:
                        assert verdict in ("missing", "stale")

    def test_full_sequence_lands_new_payload(self, tmp_path, monkeypatch):
        log = _SyscallLog(durable._fsync, durable._replace)
        target = tmp_path / "b.json"
        monkeypatch.setattr(durable, "_fsync", log.fsync)
        monkeypatch.setattr(durable, "_replace", log.replace)
        durable.durable_write_bytes(target, b'{"fresh": true}')
        state = _replay(log.ops, {}, apply_unsynced_renames=False)
        assert state.get(str(target)) == b'{"fresh": true}'
