"""Tests for trajectory engines (repro.core.evolution)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.automaton import CellularAutomaton
from repro.core.evolution import (
    block_step,
    brent_orbit,
    parallel_orbit,
    parallel_trajectory,
    run_schedule,
    sequential_converge,
    sequential_trajectory,
)
from repro.core.rules import MajorityRule, WolframRule, XorRule
from repro.core.schedules import (
    BlockSequential,
    FixedPermutation,
    FixedWord,
    RandomPermutationSweeps,
    Synchronous,
)
from repro.spaces.line import Ring


class TestBlockStep:
    def test_full_block_equals_synchronous(self):
        ca = CellularAutomaton(Ring(8), MajorityRule())
        rng = np.random.default_rng(0)
        for _ in range(10):
            state = rng.integers(0, 2, 8).astype(np.uint8)
            np.testing.assert_array_equal(
                block_step(ca, state, range(8)), ca.step(state)
            )

    def test_block_reads_pre_state(self):
        # Both nodes of the XOR pair update against the OLD values.
        import networkx as nx

        from repro.spaces.graph import GraphSpace

        ca = CellularAutomaton(GraphSpace(nx.path_graph(2)), XorRule())
        state = np.array([1, 1], dtype=np.uint8)
        np.testing.assert_array_equal(block_step(ca, state, [0, 1]), [0, 0])

    def test_singleton_block_is_node_update(self):
        ca = CellularAutomaton(Ring(5), MajorityRule())
        state = np.array([1, 0, 1, 0, 0], dtype=np.uint8)
        np.testing.assert_array_equal(
            block_step(ca, state, [1]), ca.update_node(state, 1)
        )


class TestParallelOrbit:
    def test_fixed_point_orbit(self):
        ca = CellularAutomaton(Ring(8), MajorityRule())
        orbit = parallel_orbit(ca, np.zeros(8, dtype=np.uint8))
        assert orbit.transient == 0 and orbit.period == 1
        assert orbit.is_fixed_point and not orbit.is_two_cycle

    def test_two_cycle_orbit(self):
        ca = CellularAutomaton(Ring(8), MajorityRule())
        alt = (np.arange(8) % 2).astype(np.uint8)
        orbit = parallel_orbit(ca, alt)
        assert orbit.period == 2 and orbit.is_two_cycle
        assert set(orbit.cycle) == {0b01010101, 0b10101010}

    def test_transient_then_fixed(self):
        ca = CellularAutomaton(Ring(8), MajorityRule())
        state = np.array([1, 0, 0, 0, 0, 0, 0, 0], dtype=np.uint8)
        orbit = parallel_orbit(ca, state)
        assert orbit.transient == 1 and orbit.period == 1
        assert orbit.cycle == (0,)

    def test_max_steps_guard(self):
        ca = CellularAutomaton(Ring(8), MajorityRule())
        alt = (np.arange(8) % 2).astype(np.uint8)
        with pytest.raises(RuntimeError):
            parallel_orbit(ca, alt, max_steps=0)

    @given(st.integers(min_value=0, max_value=2**14 - 1))
    @settings(max_examples=40, deadline=None)
    def test_brent_matches_hashing(self, code):
        ca = CellularAutomaton(Ring(14), WolframRule(110))
        state = ca.unpack(code)
        a = parallel_orbit(ca, state)
        b = brent_orbit(ca, state)
        assert (a.transient, a.period) == (b.transient, b.period)
        # Cycles are the same set (Brent may start at a different phase).
        assert set(a.cycle) == set(b.cycle)


class TestTrajectories:
    def test_parallel_trajectory_shape_and_rows(self):
        ca = CellularAutomaton(Ring(6), MajorityRule())
        x0 = np.array([1, 1, 0, 0, 1, 0], dtype=np.uint8)
        traj = parallel_trajectory(ca, x0, 4)
        assert traj.shape == (5, 6)
        np.testing.assert_array_equal(traj[0], x0)
        np.testing.assert_array_equal(traj[1], ca.step(x0))

    def test_sequential_trajectory_records_each_block(self):
        ca = CellularAutomaton(Ring(5), MajorityRule())
        x0 = np.array([1, 0, 1, 0, 0], dtype=np.uint8)
        traj = sequential_trajectory(ca, x0, FixedPermutation(), 5)
        assert traj.shape == (6, 5)
        state = x0.copy()
        for t, node in enumerate(range(5)):
            ca.update_node_inplace(state, node)
            np.testing.assert_array_equal(traj[t + 1], state)

    def test_run_schedule_synchronous_fast_path(self):
        ca = CellularAutomaton(Ring(7), MajorityRule())
        x0 = np.random.default_rng(1).integers(0, 2, 7).astype(np.uint8)
        states = list(run_schedule(ca, x0, Synchronous(), 3))
        np.testing.assert_array_equal(states[0], ca.step(x0))
        np.testing.assert_array_equal(states[2], ca.trajectory_steps(x0, 3)[3])

    def test_block_sequential_interpolates(self):
        # Even/odd block schedule on the alternating config: the even
        # block flips first (reading old odd values), then the odd block
        # reads the *new* even values.
        ca = CellularAutomaton(Ring(6), MajorityRule())
        alt = (np.arange(6) % 2).astype(np.uint8)
        sched = BlockSequential([(0, 2, 4), (1, 3, 5)])
        states = list(run_schedule(ca, alt, sched, 2))
        # After even block: evens become 1 (each saw two 1s).
        np.testing.assert_array_equal(states[0], np.ones(6, dtype=np.uint8))
        # After odd block: all-ones is fixed.
        np.testing.assert_array_equal(states[1], np.ones(6, dtype=np.uint8))


class TestSequentialConverge:
    def test_converges_to_fixed_point(self):
        ca = CellularAutomaton(Ring(10), MajorityRule())
        rng = np.random.default_rng(2)
        for _ in range(20):
            x0 = rng.integers(0, 2, 10).astype(np.uint8)
            res = sequential_converge(ca, x0, RandomPermutationSweeps(5))
            assert res.converged
            assert ca.is_fixed_point(res.final_state)

    def test_immediate_fixed_point(self):
        ca = CellularAutomaton(Ring(6), MajorityRule())
        res = sequential_converge(ca, np.zeros(6, dtype=np.uint8),
                                  FixedPermutation())
        assert res.converged and res.updates_used == 0
        assert res.fixed_point_code == 0

    def test_unfair_schedule_may_stall(self):
        # Only node 0 ever updates: the alternating config cannot converge,
        # but also never changes (node 0 keeps seeing majority-0 window...).
        ca = CellularAutomaton(Ring(6), MajorityRule())
        alt = (np.arange(6) % 2).astype(np.uint8)
        res = sequential_converge(ca, alt, FixedWord([0]), max_updates=100)
        assert not res.converged

    def test_flip_recording(self):
        ca = CellularAutomaton(Ring(8), MajorityRule())
        x0 = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        res = sequential_converge(
            ca, x0, FixedPermutation(), record_flips=True
        )
        assert res.converged
        assert len(res.flip_times) == res.effective_flips

    def test_fixed_point_code_none_when_stalled(self):
        ca = CellularAutomaton(Ring(6), MajorityRule())
        alt = (np.arange(6) % 2).astype(np.uint8)
        res = sequential_converge(ca, alt, FixedWord([0]), max_updates=10)
        assert res.fixed_point_code is None

    def test_synchronous_schedule_may_oscillate_forever(self):
        # The same driver under the synchronous schedule does NOT converge
        # from the alternating config — the parallel two-cycle in action.
        ca = CellularAutomaton(Ring(6), MajorityRule())
        alt = (np.arange(6) % 2).astype(np.uint8)
        res = sequential_converge(ca, alt, Synchronous(), max_updates=500)
        assert not res.converged
