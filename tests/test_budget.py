"""Tests for resource governance (repro.core.budget) and its wiring:
governed builders, frontier checkpoint/resume, ambient budgets, and the
CLI's budget flags / interrupt handling."""

import dataclasses
import io
import sys

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.automaton import CellularAutomaton
from repro.core.budget import (
    Budget,
    BudgetExceeded,
    CancelToken,
    Partial,
    ambient_budget,
    estimate_nondet_bytes,
    estimate_phase_space_bytes,
    estimate_succ_bytes,
    format_bytes,
    format_pow2,
    parse_size,
    resolve_budget,
    set_ambient,
    use_budget,
)
from repro.core.evolution import brent_orbit, parallel_orbit, sequential_converge
from repro.core.interleaving import InterleavingReport, interleaving_capture_report
from repro.core.nondet import NondetPhaseSpace, build_nondet_phase_space
from repro.core.phase_space import PhaseSpace, build_phase_space
from repro.core.rules import MajorityRule, XorRule
from repro.core.schedules import FixedPermutation
from repro.harness.checkpoint import load_frontier, save_frontier
from repro.interleave.explorer import explore_outcomes
from repro.interleave.machine import AddI, Load, Store, Thread
from repro.spaces.line import Ring
from repro.util.validation import check_memory_budget


def run_cli(*argv):
    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture(autouse=True)
def _clean_ambient():
    """Every test starts and ends with an empty ambient budget stack."""
    set_ambient(None)
    yield
    set_ambient(None)


class TestParseSize:
    def test_suffixes(self):
        assert parse_size("256M") == 256 << 20
        assert parse_size("256MB") == 256 << 20
        assert parse_size("2G") == 2 << 30
        assert parse_size("1.5GB") == int(1.5 * (1 << 30))
        assert parse_size("4096") == 4096
        assert parse_size(4096) == 4096
        assert parse_size("1 kb") == 1024

    @pytest.mark.parametrize("bad", ["", "MB", "xyz", "12Q", "-5", 0, -1])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)

    def test_format_round_trips_readably(self):
        assert format_bytes(256 << 20) == "256.0MB"
        assert format_pow2(1 << 24) == "2^24"
        assert format_pow2(11534336) == "2^23.5"

    def test_estimates_scale(self):
        assert estimate_succ_bytes(24) == (1 << 24) * 8
        assert estimate_phase_space_bytes(10) > estimate_succ_bytes(10)
        assert estimate_nondet_bytes(10) == 10 * (1 << 10) * 24


class TestCancelToken:
    def test_first_reason_wins(self):
        tok = CancelToken()
        assert not tok.cancelled and tok.reason is None
        assert tok.cancel("SIGTERM") is True
        assert tok.cancel("later") is False
        assert tok.cancelled and tok.reason == "SIGTERM"


class TestPartial:
    def test_done_and_describe(self):
        p = Partial.done("v", explored=1 << 10, total=1 << 10)
        assert p.complete and p.value == "v"
        assert p.describe() == "explored 2^10/2^10 configs (complete)"

    def test_truncated_describe_and_summary(self):
        p = Partial.truncated(
            "memory: over", explored=3 << 20, total=1 << 24,
            stats={"fixed_points": 7}, frontier={"succ": np.zeros(4)},
        )
        assert not p.complete
        assert "truncated: memory: over" in p.describe()
        d = p.summary_dict()
        assert d["resumable"] is True
        assert d["stats"] == {"fixed_points": 7}
        assert "frontier" not in d  # arrays never leak into JSON results


class TestBudget:
    def test_unlimited_never_trips(self):
        b = Budget()
        assert b.is_unlimited
        b.charge(states=10**9, bytes_=10**12)
        assert b.over() is None
        b.check()  # does not raise

    def test_state_cap(self):
        b = Budget(max_states=10)
        b.charge(states=10)
        assert "states" in b.over()
        with pytest.raises(BudgetExceeded, match="states"):
            b.check()

    def test_memory_ceiling_and_pending_projection(self):
        b = Budget(mem_bytes=100)
        b.charge(bytes_=60)
        assert b.over() is None
        assert b.fits_memory(40) and not b.fits_memory(41)
        assert "memory" in b.over(pending_bytes=41)
        b.release_bytes(60)
        assert b.over(pending_bytes=41) is None

    def test_deadline(self):
        b = Budget(wall_s=1e-9)
        assert "deadline" in b.over()
        assert b.remaining_s < 1

    def test_cancellation_beats_everything(self):
        tok = CancelToken()
        b = Budget(wall_s=1e-9, token=tok)
        tok.cancel("SIGTERM")
        assert b.over() == "cancelled: SIGTERM"

    def test_check_carries_partial(self):
        b = Budget(max_states=1)
        b.charge(states=1)
        snap = Partial.truncated("states", explored=1)
        with pytest.raises(BudgetExceeded) as err:
            b.check(partial=snap)
        assert err.value.partial is snap

    def test_from_env(self):
        env = {"REPRO_BUDGET_WALL_S": "5", "REPRO_BUDGET_MEM": "64M",
               "REPRO_BUDGET_STATES": "1000"}
        b = Budget.from_env(env)
        assert b.wall_s == 5.0
        assert b.mem_bytes == 64 << 20
        assert b.max_states == 1000
        assert Budget.from_env({}).is_unlimited

    def test_rejects_nonpositive_limits(self):
        for kwargs in ({"wall_s": 0}, {"mem_bytes": 0}, {"max_states": -1}):
            with pytest.raises(ValueError):
                Budget(**kwargs)


class TestAmbientStack:
    def test_default_is_unlimited(self):
        assert ambient_budget().is_unlimited

    def test_use_budget_nests_and_restores(self):
        outer, inner = Budget(max_states=5), Budget(max_states=2)
        with use_budget(outer):
            assert ambient_budget() is outer
            assert resolve_budget(None) is outer
            with use_budget(inner):
                assert ambient_budget() is inner
            assert ambient_budget() is outer
        assert ambient_budget().is_unlimited

    def test_explicit_budget_wins_over_ambient(self):
        explicit = Budget(max_states=1)
        with use_budget(Budget(max_states=99)):
            assert resolve_budget(explicit) is explicit

    def test_set_ambient_installs_sole(self):
        b = Budget(max_states=3)
        assert set_ambient(b) is None
        assert ambient_budget() is b
        assert set_ambient(None) is b
        assert ambient_budget().is_unlimited


class TestCheckMemoryBudget:
    def test_no_ceiling_passes(self):
        assert check_memory_budget(30, None) == 30

    def test_fits(self):
        assert check_memory_budget(24, 256 << 20) == 24  # table is 128MB

    def test_rejects_with_remedies(self):
        with pytest.raises(ValueError) as err:
            check_memory_budget(28, 256 << 20)
        msg = str(err.value)
        assert "--budget-mem" in msg and "simulate" in msg


class TestGovernedPhaseSpace:
    def test_complete_build_matches_ungoverned(self, majority_ring8):
        exact = PhaseSpace.from_automaton(majority_ring8)
        partial = build_phase_space(majority_ring8, budget=Budget())
        assert partial.complete
        assert partial.explored == partial.total == 256
        assert partial.value.summary() == exact.summary()

    def test_memory_trip_yields_frontier_and_resume_completes(self, tmp_path):
        # Pinned to the numpy backend: the trip point is calibrated to its
        # chunk-transient size (the compiled backends fit in far less).
        ca = CellularAutomaton(Ring(18), MajorityRule(), backend="numpy")
        exact = PhaseSpace.from_automaton(ca)
        # 12MB: enough for the chunk transients, not for the full build —
        # trips mid-sweep with a consistent explored prefix.
        p1 = build_phase_space(ca, budget=Budget(mem_bytes=12 << 20))
        assert not p1.complete
        assert "memory" in p1.reason
        assert 0 < p1.explored < p1.total == 1 << 18
        assert p1.frontier is not None

        save_frontier(tmp_path, p1)
        frontier = load_frontier(tmp_path)
        assert frontier is not None
        assert frontier["next_lo"] == p1.explored
        assert isinstance(frontier["succ"], np.memmap)

        # The resumed build streams to disk, so the same ceiling now fits.
        p2 = build_phase_space(
            ca, budget=Budget(mem_bytes=12 << 20), frontier=frontier
        )
        assert p2.complete
        assert p2.value.summary() == exact.summary()

    def test_ambient_budget_governs_from_automaton(self):
        ca = CellularAutomaton(Ring(12), MajorityRule())
        with use_budget(Budget(mem_bytes=1024)):
            with pytest.raises(BudgetExceeded) as err:
                PhaseSpace.from_automaton(ca)
        assert err.value.partial is not None
        assert not err.value.partial.complete

    def test_frontier_mismatch_rejected(self, majority_ring8):
        with pytest.raises(ValueError):
            build_phase_space(
                majority_ring8, frontier={"kind": "nondet", "n": 8}
            )


class TestGovernedNondet:
    def test_complete_build_matches_ungoverned(self, majority_ring8):
        exact = NondetPhaseSpace.from_automaton(majority_ring8)
        partial = build_nondet_phase_space(majority_ring8, budget=Budget())
        assert partial.complete
        assert partial.value.summary() == exact.summary()

    def test_truncates_at_row_boundary_and_resumes(self, tmp_path):
        ca = CellularAutomaton(Ring(10), MajorityRule())
        exact = NondetPhaseSpace.from_automaton(ca)
        # A state cap covering three per-node rows, not all ten; the
        # partial row in flight at the trip is discarded, so the frontier
        # sits exactly on a row boundary.
        p1 = build_nondet_phase_space(
            ca, budget=Budget(max_states=3 * (1 << 10))
        )
        assert not p1.complete
        rows_done = p1.stats["rows_done"]
        assert 0 < rows_done < 10
        assert p1.explored == rows_done * (1 << 10)

        save_frontier(tmp_path, p1)
        frontier = load_frontier(tmp_path)
        assert frontier["next_row"] == rows_done
        p2 = build_nondet_phase_space(ca, budget=Budget(), frontier=frontier)
        assert p2.complete
        assert p2.value.summary() == exact.summary()


class TestGovernedDynamics:
    def test_parallel_orbit_raises_with_progress(self):
        ca = CellularAutomaton(Ring(10), XorRule())
        state = np.zeros(10, dtype=np.uint8)
        state[0] = 1
        with pytest.raises(BudgetExceeded) as err:
            parallel_orbit(ca, state, budget=Budget(max_states=3))
        assert err.value.partial is not None
        assert err.value.partial.explored >= 3

    def test_brent_orbit_deadline(self):
        ca = CellularAutomaton(Ring(10), XorRule())
        state = np.zeros(10, dtype=np.uint8)
        state[0] = 1  # long orbit, so the per-step check actually runs
        with pytest.raises(BudgetExceeded):
            brent_orbit(ca, state, budget=Budget(wall_s=1e-9))

    def test_sequential_converge_partial_carries_state(self):
        ca = CellularAutomaton(Ring(8), MajorityRule())
        state = (np.arange(8) % 2).astype(np.uint8)
        with pytest.raises(BudgetExceeded) as err:
            sequential_converge(
                ca, state, FixedPermutation(), budget=Budget(wall_s=1e-9)
            )
        partial = err.value.partial
        assert partial is not None and partial.value is not None
        assert partial.value.converged is False

    def test_explorer_dfs_governed(self):
        def inc(name):
            return Thread(name, (Load("r", "x"), AddI("r", 1), Store("x", "r")))

        with pytest.raises(BudgetExceeded) as err:
            explore_outcomes([inc("A"), inc("B")], {"x": 0},
                             budget=Budget(max_states=2))
        assert err.value.partial.stats["states_seen"] >= 2


class TestGovernedInterleaving:
    def test_report_properties_with_truncation(self, majority_ring8):
        full = interleaving_capture_report(majority_ring8)
        assert full.complete and full.truncation is None
        assert full.audited_configs == full.total_configs
        half = dataclasses.replace(
            full, explored_configs=full.total_configs // 2,
            truncation="deadline: test",
        )
        assert not half.complete
        assert half.audited_configs == full.total_configs // 2
        empty = dataclasses.replace(full, explored_configs=0, truncation="x")
        assert empty.step_capture_rate == 0.0  # no div-by-zero

    def test_audit_loop_trips_on_budget(self, majority_ring8):
        calls = []

        class Counting(Budget):
            def over(self, pending_bytes=0):
                calls.append(1)
                return super().over(pending_bytes=pending_bytes)

        interleaving_capture_report(majority_ring8, budget=Counting())
        total_calls = len(calls)

        class TripLast(Budget):
            def __init__(self):
                super().__init__()
                self.n = 0

            def over(self, pending_bytes=0):
                self.n += 1
                if self.n >= total_calls:  # the audit-loop check
                    return "deadline: test trip"
                return None

        report = interleaving_capture_report(majority_ring8, budget=TripLast())
        assert not report.complete
        assert report.truncation == "deadline: test trip"
        assert report.audited_configs < report.total_configs


class TestBudgetCLI:
    def test_large_n_requires_budget_or_resume(self):
        with pytest.raises(SystemExit, match="too large"):
            run_cli("phase-space", "--n", "22", "--rule", "majority")

    def test_over_ceiling_rejected_even_governed(self):
        with pytest.raises(SystemExit, match="too large"):
            run_cli("phase-space", "--n", "29", "--rule", "majority",
                    "--budget-mem", "8G")

    def test_succ_table_over_ceiling_rejected_actionably(self):
        with pytest.raises(SystemExit, match="successor table"):
            run_cli("phase-space", "--n", "24", "--rule", "majority",
                    "--budget-mem", "64M")

    def test_bad_budget_mem_spec(self):
        with pytest.raises(SystemExit, match="budget-mem"):
            run_cli("phase-space", "--n", "8", "--budget-mem", "lots")

    def test_governed_truncation_exits_3_then_resume_completes(self, tmp_path):
        # --backend numpy: the trip point is calibrated to the reference
        # kernel's transient size; compiled backends fit in 12M outright.
        args = ("phase-space", "--n", "18", "--rule", "majority",
                "--backend", "numpy",
                "--budget-mem", "12M", "--resume", str(tmp_path))
        code, text = run_cli(*args)
        assert code == 3
        assert "truncated: memory" in text
        assert "frontier saved" in text
        assert (tmp_path / "frontier.json").exists()
        assert (tmp_path / "frontier_succ.npy").exists()

        code2, text2 = run_cli(*args)
        assert code2 == 0
        assert "resuming from" in text2
        assert "explored 2^18/2^18 configs (complete)" in text2
        assert "fixed_points: 5780" in text2  # exact despite the detour

    def test_small_n_unaffected_by_default(self):
        code, text = run_cli("phase-space", "--n", "8", "--rule", "majority")
        assert code == 0
        assert "(complete)" in text

    def test_budget_states_trips(self):
        code, text = run_cli("phase-space", "--n", "12", "--rule", "majority",
                             "--budget-states", "100")
        assert code == 3
        assert "truncated: states" in text

    def test_keyboard_interrupt_is_one_line_130(self, monkeypatch, capsys):
        import repro.cli as cli_mod

        def boom(args, out):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_mod, "_dispatch", boom)
        code, _ = run_cli("list")
        assert code == 130
        err = capsys.readouterr().err
        assert err.strip() == "interrupted"
        assert "Traceback" not in err

    def test_keyboard_interrupt_names_artifact_dir(
        self, monkeypatch, capsys, tmp_path
    ):
        import repro.cli as cli_mod

        def boom(args, out):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_mod, "_dispatch", boom)
        code, _ = run_cli("phase-space", "--n", "8",
                          "--resume", str(tmp_path / "ck"))
        assert code == 130
        assert f"partial artifacts in {tmp_path / 'ck'}" in capsys.readouterr().err


class TestGovernedAttractorCensus:
    """The attractor-direct census under the same governance contract."""

    @staticmethod
    def _ca(n, **kw):
        return CellularAutomaton(Ring(n), MajorityRule(), memory=True, **kw)

    def test_states_trip_mid_sweep_then_resume_is_byte_identical(self):
        from repro.analysis.census import build_attractor_census

        ca = self._ca(17)  # two serial chunks: the trip lands mid-sweep
        reference = build_attractor_census(ca)
        assert reference.complete

        tripped = build_attractor_census(ca, budget=Budget(max_states=70_000))
        assert not tripped.complete
        assert "states" in tripped.reason
        frontier = tripped.frontier
        assert frontier["kind"] == "attractor_census"
        assert 0 < frontier["next_lo"] < 1 << 17
        # the frontier is pure JSON: counts ride inline, no array
        assert "succ" not in frontier
        assert frontier["counts"][0] == frontier["next_lo"]  # codes scanned

        resumed = build_attractor_census(self._ca(17), frontier=frontier)
        assert resumed.complete
        assert resumed.value == reference.value

    def test_memory_trip_is_honest(self):
        from repro.analysis.census import build_attractor_census
        from repro.perf.attractor import AttractorKernel

        ca = self._ca(12)
        scratch = AttractorKernel(ca).transient_bytes()
        partial = build_attractor_census(
            ca, budget=Budget(mem_bytes=scratch // 2)
        )
        assert not partial.complete
        assert "memory" in partial.reason
        assert partial.frontier["next_lo"] == 0

    def test_frontier_checkpoint_roundtrip(self, tmp_path):
        from repro.analysis.census import build_attractor_census

        tripped = build_attractor_census(
            self._ca(17), budget=Budget(max_states=70_000)
        )
        save_frontier(tmp_path, tripped)
        assert (tmp_path / "frontier.json").exists()
        assert not (tmp_path / "frontier_succ.npy").exists()
        loaded = load_frontier(tmp_path)
        assert loaded["kind"] == "attractor_census"
        assert loaded["next_lo"] == tripped.frontier["next_lo"]
        resumed = build_attractor_census(self._ca(17), frontier=loaded)
        assert resumed.complete

    def test_mismatched_frontier_rejected(self):
        from repro.analysis.census import build_attractor_census

        tripped = build_attractor_census(
            self._ca(17), budget=Budget(max_states=70_000)
        )
        with pytest.raises(ValueError, match="frontier"):
            build_attractor_census(self._ca(12), frontier=tripped.frontier)

    def test_cli_trip_exits_3_then_resume_completes(self, tmp_path):
        plain_code, plain_text = run_cli("census", "--n", "17")
        assert plain_code == 0

        args = ("census", "--n", "17", "--budget-states", "70000",
                "--resume", str(tmp_path))
        code, text = run_cli(*args)
        assert code == 3
        assert "truncated: states" in text
        assert "frontier saved" in text
        assert (tmp_path / "frontier.json").exists()
        assert not (tmp_path / "frontier_succ.npy").exists()

        code2, text2 = run_cli("census", "--n", "17",
                               "--resume", str(tmp_path))
        assert code2 == 0
        assert "resuming from" in text2
        # the resumed row is identical to the uninterrupted one
        assert plain_text.splitlines()[-1] == text2.splitlines()[-1]
