"""Tests for the observability layer (repro.obs) and its CLI surface."""

from __future__ import annotations

import io
import json
import time

import pytest

from repro import obs
from repro.cli import main
from repro.core.automaton import CellularAutomaton
from repro.core.evolution import parallel_orbit, sequential_converge
from repro.core.phase_space import PhaseSpace
from repro.core.rules import MajorityRule
from repro.core.schedules import FixedPermutation
from repro.experiments.report import render_markdown
from repro.obs import trace
from repro.spaces.line import Ring


@pytest.fixture(autouse=True)
def clean_obs():
    """Each test starts and ends with tracing off and an empty registry."""
    obs.disable()
    obs.clear_sinks()
    obs.REGISTRY.reset()
    yield
    obs.disable()
    obs.clear_sinks()
    obs.REGISTRY.reset()


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestSpans:
    def test_nesting_depths_and_timers(self):
        obs.enable()
        events = []
        obs.add_sink(events.append)
        with obs.span("outer", n=8):
            with obs.span("inner"):
                pass
        # Inner closes first; depths reflect the nesting at entry.
        assert [e["name"] for e in events] == ["inner", "outer"]
        assert events[0]["depth"] == 1 and events[1]["depth"] == 0
        timers = obs.REGISTRY.snapshot()["timers"]
        assert timers["outer"]["count"] == 1
        assert timers["inner"]["count"] == 1
        assert timers["outer"]["total_s"] >= timers["inner"]["total_s"]

    def test_attrs_and_set(self):
        obs.enable()
        events = []
        obs.add_sink(events.append)
        with obs.span("work", n=4) as sp:
            sp.set(result=7)
        assert events[0]["attrs"] == {"n": 4, "result": 7}

    def test_exception_safety(self):
        obs.enable()
        events = []
        obs.add_sink(events.append)
        with pytest.raises(ValueError):
            with obs.span("outer"):
                with obs.span("boom"):
                    raise ValueError("no")
        # Both spans closed, both recorded, error annotated.
        assert [e["name"] for e in events] == ["boom", "outer"]
        assert events[0]["error"] == "ValueError"
        assert obs.REGISTRY.snapshot()["timers"]["outer"]["count"] == 1
        # The nesting stack recovered: a fresh span sits at depth 0.
        with obs.span("after"):
            pass
        assert events[-1]["name"] == "after" and events[-1]["depth"] == 0

    def test_disabled_span_is_shared_noop(self):
        assert not obs.is_enabled()
        assert obs.span("a") is obs.span("b", n=3) is obs.NOOP_SPAN
        with obs.span("a") as sp:
            sp.set(anything=1)
        assert obs.REGISTRY.is_empty()

    def test_noop_overhead_is_branch_only(self):
        """The disabled path must stay cheap enough to leave in hot code.

        Structural guarantee (no allocation) is checked above; here we
        bound the wall cost of a large batch of disabled spans very
        generously — a regression to real clock reads or registry
        traffic would blow well past it.
        """
        count = 100_000
        t0 = time.perf_counter()
        for _ in range(count):
            with obs.span("hot"):
                pass
        elapsed = time.perf_counter() - t0
        assert elapsed < 1.0, f"{count} no-op spans took {elapsed:.3f}s"
        assert obs.REGISTRY.is_empty()

    def test_memory_tracing_annotates_events(self):
        obs.enable(trace_memory=True)
        events = []
        obs.add_sink(events.append)
        with obs.span("alloc"):
            _ = [0] * 50_000
        assert "mem_peak_kb" in events[0] and events[0]["mem_peak_kb"] > 0

    def test_enable_from_env(self):
        assert trace.enable_from_env({"REPRO_TRACE": "1"}) is True
        assert obs.is_enabled()
        obs.disable()
        assert trace.enable_from_env({"REPRO_TRACE": "0"}) is False
        assert trace.enable_from_env({}) is False
        assert not obs.is_enabled()


class TestMetrics:
    def test_counter_gauge_timer_accumulate(self):
        obs.inc("jobs")
        obs.inc("jobs", 3)
        obs.set_gauge("depth", 2.5)
        obs.observe("op", 0.5)
        obs.observe("op", 1.5)
        snap = obs.REGISTRY.snapshot()
        assert snap["counters"]["jobs"] == 4
        assert snap["gauges"]["depth"] == 2.5
        op = snap["timers"]["op"]
        assert op["count"] == 2
        assert op["total_s"] == pytest.approx(2.0)
        assert op["mean_s"] == pytest.approx(1.0)
        assert op["min_s"] == 0.5 and op["max_s"] == 1.5 and op["last_s"] == 1.5

    def test_reset_clears_everything(self):
        obs.inc("x")
        obs.observe("y", 1.0)
        obs.REGISTRY.reset()
        assert obs.REGISTRY.is_empty()

    def test_to_json_round_trips(self):
        obs.inc("n", 2)
        data = json.loads(obs.REGISTRY.to_json())
        assert data["counters"]["n"] == 2

    def test_timed_measures_even_when_tracing_disabled(self):
        assert not obs.is_enabled()
        with obs.timed("block") as sw:
            time.sleep(0.002)
        assert sw.elapsed >= 0.002
        assert obs.REGISTRY.snapshot()["timers"]["block"]["count"] == 1

    def test_timed_records_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.timed("failing"):
                raise RuntimeError
        assert obs.REGISTRY.snapshot()["timers"]["failing"]["count"] == 1


class TestArtifacts:
    def test_jsonl_round_trip(self, tmp_path):
        run_dir = tmp_path / "run"
        obs.enable()
        with obs.RunArtifacts(run_dir, command="test", argv=["--x"]):
            with obs.span("phase_space.build", n=4):
                pass
        manifest = obs.load_manifest(run_dir)
        assert manifest["command"] == "test"
        assert manifest["argv"] == ["--x"]
        assert manifest["exit_code"] == 0
        assert manifest["finished"] >= manifest["started"]
        assert manifest["metrics"]["timers"]["phase_space.build"]["count"] == 1
        events = obs.read_events(run_dir)
        assert len(events) == 1
        assert events[0]["name"] == "phase_space.build"
        assert events[0]["attrs"] == {"n": 4}

    def test_untraced_run_still_leaves_valid_artifacts(self, tmp_path):
        with obs.RunArtifacts(tmp_path / "r", command="noop"):
            pass
        assert obs.read_events(tmp_path / "r") == []
        assert obs.load_manifest(tmp_path / "r")["metrics"] == {
            "counters": {},
            "gauges": {},
            "timers": {},
        }

    def test_finalize_detaches_sink_and_is_idempotent(self, tmp_path):
        obs.enable()
        run = obs.RunArtifacts(tmp_path / "r")
        run.activate()
        with obs.span("before"):
            pass
        run.finalize(exit_code=0)
        run.finalize(exit_code=0)
        with obs.span("after"):
            pass
        names = [e["name"] for e in obs.read_events(tmp_path / "r")]
        assert names == ["before"]

    def test_failed_run_records_exit_code(self, tmp_path):
        with pytest.raises(ValueError):
            with obs.RunArtifacts(tmp_path / "r"):
                raise ValueError
        assert obs.load_manifest(tmp_path / "r")["exit_code"] == 1


class TestInstrumentedPaths:
    def test_phase_space_emits_build_and_global_map_spans(self):
        obs.enable()
        events = []
        obs.add_sink(events.append)
        ca = CellularAutomaton(Ring(8), MajorityRule(), memory=True)
        PhaseSpace.from_automaton(ca)
        names = [e["name"] for e in events]
        assert names == ["phase_space.global_map", "phase_space.build"]
        build = events[1]
        assert build["attrs"]["n"] == 8 and build["attrs"]["configs"] == 256
        assert build["duration_s"] >= events[0]["duration_s"]

    def test_orbit_and_convergence_span_attrs(self):
        obs.enable()
        events = []
        obs.add_sink(events.append)
        ca = CellularAutomaton(Ring(6), MajorityRule(), memory=True)
        state = ca.unpack(0b010101)
        info = parallel_orbit(ca, state)
        res = sequential_converge(ca, state, FixedPermutation())
        orbit_ev = next(e for e in events if e["name"] == "orbit.parallel")
        assert orbit_ev["attrs"]["period"] == info.period
        assert orbit_ev["attrs"]["transient"] == info.transient
        conv_ev = next(e for e in events if e["name"] == "converge.sequential")
        assert conv_ev["attrs"]["converged"] is res.converged
        assert conv_ev["attrs"]["flips"] == res.effective_flips

    def test_hot_paths_silent_when_disabled(self):
        ca = CellularAutomaton(Ring(6), MajorityRule(), memory=True)
        PhaseSpace.from_automaton(ca)
        parallel_orbit(ca, ca.unpack(0b010101))
        assert obs.REGISTRY.is_empty()


class TestReportRuntimes:
    def test_render_markdown_includes_runtime_lines(self):
        results = {"E1": {"holds": True, "detail": 1}}
        text = render_markdown(results, runtimes={"E1": 0.0123})
        assert "Runtime: 12.3 ms" in text
        assert "Total measured runtime: 12.3 ms" in text

    def test_run_experiment_times_into_registry(self):
        from repro.experiments.registry import run_experiment

        run_experiment("E1")
        timers = obs.REGISTRY.snapshot()["timers"]
        assert timers["experiment.E1"]["count"] == 1
        assert timers["experiment.E1"]["last_s"] > 0


class TestCliStats:
    def test_trace_then_stats_in_process(self):
        code, _ = run_cli("phase-space", "--n", "6", "--trace")
        assert code == 0
        # Tracing was scoped to the command, but the metrics persist.
        assert not obs.is_enabled()
        code, text = run_cli("stats")
        assert code == 0
        assert "phase_space.build" in text
        row = next(
            line for line in text.splitlines() if "phase_space.build" in line
        )
        assert "0.000ms" not in row.split()[2]

    def test_stats_json(self):
        run_cli("phase-space", "--n", "6", "--trace")
        code, text = run_cli("stats", "--json")
        assert code == 0
        data = json.loads(text)
        assert data["timers"]["phase_space.build"]["count"] == 1

    def test_stats_empty_registry(self):
        code, text = run_cli("stats")
        assert code == 0
        assert "empty" in text

    def test_artifacts_dir_implies_trace_and_round_trips(self, tmp_path):
        run_dir = tmp_path / "run1"
        code, _ = run_cli(
            "phase-space", "--n", "6", "--artifacts-dir", str(run_dir)
        )
        assert code == 0
        assert (run_dir / "manifest.json").exists()
        names = {e["name"] for e in obs.read_events(run_dir)}
        assert {"phase_space.build", "phase_space.global_map"} <= names
        code, text = run_cli("stats", "--artifacts-dir", str(run_dir))
        assert code == 0
        assert "phase_space.build" in text and "command: phase-space" in text

    def test_untraced_command_stays_silent(self):
        code, _ = run_cli("phase-space", "--n", "6")
        assert code == 0
        assert "phase_space.build" not in obs.REGISTRY.snapshot()["timers"]

    def test_stats_missing_run_dir_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read run directory"):
            run_cli("stats", "--artifacts-dir", str(tmp_path / "nope"))

    def test_artifacts_dir_collision_is_clean_error(self, tmp_path):
        blocker = tmp_path / "afile"
        blocker.write_text("x")
        with pytest.raises(SystemExit, match="cannot create artifacts"):
            run_cli("list", "--artifacts-dir", str(blocker))
