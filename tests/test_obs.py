"""Tests for the observability layer (repro.obs) and its CLI surface."""

from __future__ import annotations

import io
import json
import time

import pytest

from repro import obs
from repro.cli import main
from repro.core.automaton import CellularAutomaton
from repro.core.evolution import parallel_orbit, sequential_converge
from repro.core.phase_space import PhaseSpace
from repro.core.rules import MajorityRule
from repro.core.schedules import FixedPermutation
from repro.experiments.report import render_markdown
from repro.obs import trace
from repro.spaces.line import Ring


@pytest.fixture(autouse=True)
def clean_obs():
    """Each test starts and ends with tracing off and an empty registry."""
    obs.disable()
    obs.clear_sinks()
    obs.REGISTRY.reset()
    yield
    obs.disable()
    obs.clear_sinks()
    obs.REGISTRY.reset()


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestSpans:
    def test_nesting_depths_and_timers(self):
        obs.enable()
        events = []
        obs.add_sink(events.append)
        with obs.span("outer", n=8):
            with obs.span("inner"):
                pass
        # Inner closes first; depths reflect the nesting at entry.
        assert [e["name"] for e in events] == ["inner", "outer"]
        assert events[0]["depth"] == 1 and events[1]["depth"] == 0
        timers = obs.REGISTRY.snapshot()["timers"]
        assert timers["outer"]["count"] == 1
        assert timers["inner"]["count"] == 1
        assert timers["outer"]["total_s"] >= timers["inner"]["total_s"]

    def test_attrs_and_set(self):
        obs.enable()
        events = []
        obs.add_sink(events.append)
        with obs.span("work", n=4) as sp:
            sp.set(result=7)
        assert events[0]["attrs"] == {"n": 4, "result": 7}

    def test_exception_safety(self):
        obs.enable()
        events = []
        obs.add_sink(events.append)
        with pytest.raises(ValueError):
            with obs.span("outer"):
                with obs.span("boom"):
                    raise ValueError("no")
        # Both spans closed, both recorded, error annotated.
        assert [e["name"] for e in events] == ["boom", "outer"]
        assert events[0]["error"] == "ValueError"
        assert obs.REGISTRY.snapshot()["timers"]["outer"]["count"] == 1
        # The nesting stack recovered: a fresh span sits at depth 0.
        with obs.span("after"):
            pass
        assert events[-1]["name"] == "after" and events[-1]["depth"] == 0

    def test_disabled_span_is_shared_noop(self):
        assert not obs.is_enabled()
        assert obs.span("a") is obs.span("b", n=3) is obs.NOOP_SPAN
        with obs.span("a") as sp:
            sp.set(anything=1)
        assert obs.REGISTRY.is_empty()

    def test_noop_overhead_is_branch_only(self):
        """The disabled path must stay cheap enough to leave in hot code.

        Structural guarantee (no allocation) is checked above; here we
        bound the wall cost of a large batch of disabled spans very
        generously — a regression to real clock reads or registry
        traffic would blow well past it.
        """
        count = 100_000
        t0 = time.perf_counter()
        for _ in range(count):
            with obs.span("hot"):
                pass
        elapsed = time.perf_counter() - t0
        assert elapsed < 1.0, f"{count} no-op spans took {elapsed:.3f}s"
        assert obs.REGISTRY.is_empty()

    def test_memory_tracing_annotates_events(self):
        obs.enable(trace_memory=True)
        events = []
        obs.add_sink(events.append)
        with obs.span("alloc"):
            _ = [0] * 50_000
        assert "mem_peak_kb" in events[0] and events[0]["mem_peak_kb"] > 0

    def test_enable_from_env(self):
        assert trace.enable_from_env({"REPRO_TRACE": "1"}) is True
        assert obs.is_enabled()
        obs.disable()
        assert trace.enable_from_env({"REPRO_TRACE": "0"}) is False
        assert trace.enable_from_env({}) is False
        assert not obs.is_enabled()


class TestMetrics:
    def test_counter_gauge_timer_accumulate(self):
        obs.inc("jobs")
        obs.inc("jobs", 3)
        obs.set_gauge("depth", 2.5)
        obs.observe("op", 0.5)
        obs.observe("op", 1.5)
        snap = obs.REGISTRY.snapshot()
        assert snap["counters"]["jobs"] == 4
        assert snap["gauges"]["depth"] == 2.5
        op = snap["timers"]["op"]
        assert op["count"] == 2
        assert op["total_s"] == pytest.approx(2.0)
        assert op["mean_s"] == pytest.approx(1.0)
        assert op["min_s"] == 0.5 and op["max_s"] == 1.5 and op["last_s"] == 1.5

    def test_reset_clears_everything(self):
        obs.inc("x")
        obs.observe("y", 1.0)
        obs.REGISTRY.reset()
        assert obs.REGISTRY.is_empty()

    def test_to_json_round_trips(self):
        obs.inc("n", 2)
        data = json.loads(obs.REGISTRY.to_json())
        assert data["counters"]["n"] == 2

    def test_timed_measures_even_when_tracing_disabled(self):
        assert not obs.is_enabled()
        with obs.timed("block") as sw:
            time.sleep(0.002)
        assert sw.elapsed >= 0.002
        assert obs.REGISTRY.snapshot()["timers"]["block"]["count"] == 1

    def test_timed_records_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.timed("failing"):
                raise RuntimeError
        assert obs.REGISTRY.snapshot()["timers"]["failing"]["count"] == 1


class TestArtifacts:
    def test_jsonl_round_trip(self, tmp_path):
        run_dir = tmp_path / "run"
        obs.enable()
        with obs.RunArtifacts(run_dir, command="test", argv=["--x"]):
            with obs.span("phase_space.build", n=4):
                pass
        manifest = obs.load_manifest(run_dir)
        assert manifest["command"] == "test"
        assert manifest["argv"] == ["--x"]
        assert manifest["exit_code"] == 0
        assert manifest["finished"] >= manifest["started"]
        assert manifest["metrics"]["timers"]["phase_space.build"]["count"] == 1
        events = list(obs.read_events(run_dir))
        assert len(events) == 1
        assert events[0]["name"] == "phase_space.build"
        assert events[0]["attrs"] == {"n": 4}

    def test_untraced_run_still_leaves_valid_artifacts(self, tmp_path):
        with obs.RunArtifacts(tmp_path / "r", command="noop"):
            pass
        assert list(obs.read_events(tmp_path / "r")) == []
        assert obs.load_manifest(tmp_path / "r")["metrics"] == {
            "counters": {},
            "gauges": {},
            "timers": {},
        }

    def test_finalize_detaches_sink_and_is_idempotent(self, tmp_path):
        obs.enable()
        run = obs.RunArtifacts(tmp_path / "r")
        run.activate()
        with obs.span("before"):
            pass
        run.finalize(exit_code=0)
        run.finalize(exit_code=0)
        with obs.span("after"):
            pass
        names = [e["name"] for e in obs.read_events(tmp_path / "r")]
        assert names == ["before"]

    def test_failed_run_records_exit_code(self, tmp_path):
        with pytest.raises(ValueError):
            with obs.RunArtifacts(tmp_path / "r"):
                raise ValueError
        assert obs.load_manifest(tmp_path / "r")["exit_code"] == 1


class TestInstrumentedPaths:
    def test_phase_space_emits_build_and_global_map_spans(self):
        obs.enable()
        events = []
        obs.add_sink(events.append)
        ca = CellularAutomaton(Ring(8), MajorityRule(), memory=True)
        PhaseSpace.from_automaton(ca)
        names = [e["name"] for e in events]
        assert names == ["phase_space.global_map", "phase_space.build"]
        build = events[1]
        assert build["attrs"]["n"] == 8 and build["attrs"]["configs"] == 256
        assert build["duration_s"] >= events[0]["duration_s"]

    def test_orbit_and_convergence_span_attrs(self):
        obs.enable()
        events = []
        obs.add_sink(events.append)
        ca = CellularAutomaton(Ring(6), MajorityRule(), memory=True)
        state = ca.unpack(0b010101)
        info = parallel_orbit(ca, state)
        res = sequential_converge(ca, state, FixedPermutation())
        orbit_ev = next(e for e in events if e["name"] == "orbit.parallel")
        assert orbit_ev["attrs"]["period"] == info.period
        assert orbit_ev["attrs"]["transient"] == info.transient
        conv_ev = next(e for e in events if e["name"] == "converge.sequential")
        assert conv_ev["attrs"]["converged"] is res.converged
        assert conv_ev["attrs"]["flips"] == res.effective_flips

    def test_hot_paths_silent_when_disabled(self):
        ca = CellularAutomaton(Ring(6), MajorityRule(), memory=True)
        PhaseSpace.from_automaton(ca)
        parallel_orbit(ca, ca.unpack(0b010101))
        assert obs.REGISTRY.is_empty()


class TestReportRuntimes:
    def test_render_markdown_includes_runtime_lines(self):
        results = {"E1": {"holds": True, "detail": 1}}
        text = render_markdown(results, runtimes={"E1": 0.0123})
        assert "Runtime: 12.3 ms" in text
        assert "Total measured runtime: 12.3 ms" in text

    def test_run_experiment_times_into_registry(self):
        from repro.experiments.registry import run_experiment

        run_experiment("E1")
        timers = obs.REGISTRY.snapshot()["timers"]
        assert timers["experiment.E1"]["count"] == 1
        assert timers["experiment.E1"]["last_s"] > 0


class TestCliStats:
    def test_trace_then_stats_in_process(self):
        code, _ = run_cli("phase-space", "--n", "6", "--trace")
        assert code == 0
        # Tracing was scoped to the command, but the metrics persist.
        assert not obs.is_enabled()
        code, text = run_cli("stats")
        assert code == 0
        assert "phase_space.build" in text
        row = next(
            line for line in text.splitlines() if "phase_space.build" in line
        )
        assert "0.000ms" not in row.split()[2]

    def test_stats_json(self):
        run_cli("phase-space", "--n", "6", "--trace")
        code, text = run_cli("stats", "--json")
        assert code == 0
        data = json.loads(text)
        assert data["timers"]["phase_space.build"]["count"] == 1

    def test_stats_empty_registry(self):
        code, text = run_cli("stats")
        assert code == 0
        assert "empty" in text

    def test_artifacts_dir_implies_trace_and_round_trips(self, tmp_path):
        run_dir = tmp_path / "run1"
        code, _ = run_cli(
            "phase-space", "--n", "6", "--artifacts-dir", str(run_dir)
        )
        assert code == 0
        assert (run_dir / "manifest.json").exists()
        names = {e["name"] for e in obs.read_events(run_dir)}
        assert {"phase_space.build", "phase_space.global_map"} <= names
        code, text = run_cli("stats", "--artifacts-dir", str(run_dir))
        assert code == 0
        assert "phase_space.build" in text and "command: phase-space" in text

    def test_untraced_command_stays_silent(self):
        code, _ = run_cli("phase-space", "--n", "6")
        assert code == 0
        assert "phase_space.build" not in obs.REGISTRY.snapshot()["timers"]

    def test_stats_missing_run_dir_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read run directory"):
            run_cli("stats", "--artifacts-dir", str(tmp_path / "nope"))

    def test_artifacts_dir_collision_is_clean_error(self, tmp_path):
        blocker = tmp_path / "afile"
        blocker.write_text("x")
        with pytest.raises(SystemExit, match="cannot create artifacts"):
            run_cli("list", "--artifacts-dir", str(blocker))


class TestTimerQuantiles:
    def test_quantiles_appear_in_snapshot(self):
        for ms in range(1, 101):
            obs.observe("work", ms / 1000.0)
        stats = obs.REGISTRY.snapshot()["timers"]["work"]
        assert stats["count"] == 100
        # 1..100ms uniformly: the reservoir holds every sample, so the
        # quantiles are exact linear interpolations.
        assert stats["p50_s"] == pytest.approx(0.0505, rel=1e-6)
        assert stats["p95_s"] == pytest.approx(0.09505, rel=1e-6)
        assert stats["p99_s"] == pytest.approx(0.09901, rel=1e-6)

    def test_reservoir_is_seeded_and_deterministic(self, monkeypatch):
        from repro.obs.metrics import MetricsRegistry

        def fill(registry):
            timer = registry.timer("hot.loop")
            for i in range(5000):  # > RESERVOIR_SIZE: eviction kicks in
                timer.observe((i % 97) / 1000.0)
            return registry.snapshot()["timers"]["hot.loop"]

        a = fill(MetricsRegistry())
        b = fill(MetricsRegistry())
        assert a == b  # same name -> same reservoir seed -> same quantiles
        monkeypatch.setenv("REPRO_SEED", "7")
        c = fill(MetricsRegistry())
        assert c["count"] == a["count"] and c["total_s"] == a["total_s"]

    def test_merge_keeps_extremes_not_quantiles(self):
        from repro.obs.metrics import Timer

        a, b = Timer(seed=1), Timer(seed=2)
        a.observe(0.1)
        b.observe(0.3)
        a.merge(b.as_dict())
        d = a.as_dict()
        assert d["count"] == 2 and d["max_s"] == 0.3


class TestSelfTime:
    def test_nested_span_self_time_excludes_children(self):
        events = []
        obs.enable()
        obs.add_sink(events.append)
        with obs.span("parent"):
            time.sleep(0.01)
            with obs.span("child"):
                time.sleep(0.02)
        child, parent = events  # exit order
        assert child["name"] == "child"
        assert child["self_s"] == pytest.approx(child["duration_s"])
        assert parent["self_s"] == pytest.approx(
            parent["duration_s"] - child["duration_s"], abs=5e-3
        )
        assert parent["self_s"] < parent["duration_s"]


class TestPromExport:
    def test_render_counters_gauges_timers(self):
        obs.inc("qa.cases", 3)
        obs.set_gauge("space.n", 12)
        obs.observe("phase_space.build", 0.25)
        text = obs.render_prometheus(obs.REGISTRY.snapshot())
        assert "# TYPE repro_qa_cases_total counter" in text
        assert "repro_qa_cases_total 3" in text
        assert "repro_space_n 12" in text
        assert "# TYPE repro_phase_space_build_seconds summary" in text
        assert 'repro_phase_space_build_seconds{quantile="0.5"} 0.25' in text
        assert "repro_phase_space_build_seconds_sum 0.25" in text
        assert "repro_phase_space_build_seconds_count 1" in text

    def test_labels_render_and_escape(self):
        obs.inc("x")
        text = obs.render_prometheus(
            obs.REGISTRY.snapshot(), labels={"run_id": 'a"b\\c\nd'}
        )
        assert 'run_id="a\\"b\\\\c\\nd"' in text

    def test_stats_format_prom(self):
        obs.enable()
        with obs.span("phase_space.build"):
            pass
        obs.disable()
        code, text = run_cli("stats", "--format", "prom")
        assert code == 0
        assert "# TYPE repro_phase_space_build_seconds summary" in text

    def test_finalized_run_writes_textfile(self, tmp_path):
        run_dir = tmp_path / "r"
        obs.enable()
        with obs.RunArtifacts(run_dir, command="demo"):
            with obs.span("phase_space.build"):
                pass
        prom = (run_dir / "metrics.prom").read_text()
        assert 'command="demo"' in prom
        assert "repro_phase_space_build_seconds" in prom

    def test_stats_prom_from_run_dir_carries_run_labels(self, tmp_path):
        run_dir = tmp_path / "r"
        obs.enable()
        with obs.RunArtifacts(run_dir, command="demo") as run:
            run_id = run.manifest["run_id"]
            with obs.span("phase_space.build"):
                pass
        obs.disable()
        code, text = run_cli(
            "stats", "--artifacts-dir", str(run_dir), "--format", "prom"
        )
        assert code == 0
        assert f'run_id="{run_id}"' in text


class TestProfiler:
    def _events(self):
        # exit order: leaf first.  outer(0.5s total) > a(0.2) > b(0.1 in a)
        return [
            {"event": "span", "name": "b", "depth": 2, "duration_s": 0.1,
             "self_s": 0.1},
            {"event": "span", "name": "a", "depth": 1, "duration_s": 0.2,
             "self_s": 0.1},
            {"event": "span", "name": "outer", "depth": 0, "duration_s": 0.5,
             "self_s": 0.3},
        ]

    def test_build_profile_tree(self):
        roots = obs.build_profile(self._events())
        assert [r.name for r in roots] == ["outer"]
        outer = roots[0]
        assert outer.total_s == pytest.approx(0.5)
        assert outer.self_s == pytest.approx(0.3)
        a = outer.children["a"]
        assert a.children["b"].total_s == pytest.approx(0.1)

    def test_same_named_siblings_merge(self):
        events = [
            {"event": "span", "name": "chunk", "depth": 1, "duration_s": 0.1,
             "self_s": 0.1},
            {"event": "span", "name": "chunk", "depth": 1, "duration_s": 0.2,
             "self_s": 0.2},
            {"event": "span", "name": "sweep", "depth": 0, "duration_s": 0.4,
             "self_s": 0.1},
        ]
        roots = obs.build_profile(events)
        chunk = roots[0].children["chunk"]
        assert chunk.calls == 2
        assert chunk.total_s == pytest.approx(0.3)

    def test_speedscope_document_shape(self):
        doc = obs.to_speedscope(obs.build_profile(self._events()), name="t")
        assert doc["$schema"].endswith("file-format-schema.json")
        prof = doc["profiles"][0]
        assert prof["type"] == "evented" and prof["unit"] == "seconds"
        opens = [e for e in prof["events"] if e["type"] == "O"]
        closes = [e for e in prof["events"] if e["type"] == "C"]
        assert len(opens) == len(closes) == 3
        assert prof["endValue"] == pytest.approx(0.5)
        # events are properly nested: every close >= its open
        assert json.dumps(doc)  # serialisable

    def test_collapsed_lines(self):
        text = obs.to_collapsed(obs.build_profile(self._events()))
        lines = dict(
            (ln.rsplit(" ", 1)[0], int(ln.rsplit(" ", 1)[1]))
            for ln in text.strip().splitlines()
        )
        assert lines["outer"] == 300000
        assert lines["outer;a"] == 100000
        assert lines["outer;a;b"] == 100000

    def test_write_profile_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="unknown profile format"):
            obs.write_profile(tmp_path / "x", [], fmt="pprof")

    def test_profile_from_run_round_trip(self, tmp_path):
        run_dir = tmp_path / "r"
        obs.enable()
        with obs.RunArtifacts(run_dir, command="demo"):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        roots = obs.profile_from_run(run_dir)
        assert [r.name for r in roots] == ["outer"]
        assert "inner" in roots[0].children


class TestProgressReporter:
    def _reporter(self, **kw):
        from repro.obs.progress import ProgressReporter

        clock = {"t": 0.0}
        kw.setdefault("stream", io.StringIO())
        rep = ProgressReporter(
            "t", clock=lambda: clock["t"], **kw
        )
        return rep, clock

    def test_throttled_to_interval(self):
        rep, clock = self._reporter(total=100)
        for i in range(50):
            clock["t"] += 0.001
            rep.on_charge(None, 1)
        assert rep.heartbeats == 0  # under 1s: nothing emitted
        clock["t"] += 2.0
        # One stride's worth of charges guarantees a clock check lands
        # after the jump (the stride adapted upward during the burst).
        for _ in range(rep._stride):
            rep.update(1)
        assert rep.heartbeats == 1
        rep.finish()
        assert rep.heartbeats == 2

    def test_stride_adapts_upward(self):
        rep, clock = self._reporter()
        for _ in range(10000):
            rep.on_charge(None, 1)  # clock frozen: checks come back early
        assert rep._stride > 1
        assert rep.done == 10000

    def test_zero_state_ping_still_checks_clock(self):
        rep, clock = self._reporter(total=10)
        rep._stride = 1024
        rep._since_check = 0
        clock["t"] += 5.0
        rep.on_charge(None, 0)  # a ping must not wait out the stride
        assert rep.heartbeats == 1

    def test_jsonl_sink_and_iter_progress(self, tmp_path):
        from repro.obs.progress import iter_progress

        rep, clock = self._reporter(
            total=4, path=tmp_path / "progress.jsonl"
        )
        clock["t"] += 2.0
        rep.update(4)
        rep.finish()
        events = list(iter_progress(tmp_path))
        assert events[-1]["final"] is True
        assert events[-1]["done"] == 4
        assert events[-1]["frac"] == 1.0

    def test_format_heartbeat(self):
        from repro.obs.progress import format_heartbeat

        line = format_heartbeat(
            {"label": "census", "done": 50, "total": 200, "frac": 0.25,
             "rate": 10.0, "eta_s": 15.0}
        )
        assert line == "[census] 50/200 (25.0%) 10/s ETA 15.0s"

    def test_finish_is_idempotent(self):
        rep, clock = self._reporter()
        rep.finish()
        rep.finish()
        assert rep.heartbeats == 1


class TestProgressCli:
    def test_phase_space_progress_writes_heartbeats(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        code, _ = run_cli(
            "phase-space", "--n", "8", "--progress",
            "--artifacts-dir", str(run_dir),
        )
        assert code == 0
        events = [
            json.loads(line)
            for line in (run_dir / "progress.jsonl").read_text().splitlines()
        ]
        assert events[-1]["final"] is True
        assert events[-1]["done"] >= 1 << 8
        assert events[-1]["total"] == 1 << 8
        assert "[phase-space n=8]" in capsys.readouterr().err

    def test_tail_replays_heartbeats(self, tmp_path):
        run_dir = tmp_path / "run"
        code, _ = run_cli(
            "phase-space", "--n", "8", "--progress",
            "--artifacts-dir", str(run_dir),
        )
        assert code == 0
        code, text = run_cli("tail", str(run_dir))
        assert code == 0
        assert "[phase-space n=8]" in text and "finished" in text

    def test_tail_without_progress_file_explains(self, tmp_path):
        run_dir = tmp_path / "run"
        code, _ = run_cli("phase-space", "--n", "6",
                          "--artifacts-dir", str(run_dir))
        assert code == 0
        code, text = run_cli("tail", str(run_dir))
        assert code == 0
        assert "no progress heartbeats" in text

    def test_run_progress_counts_experiments(self, tmp_path, capsys):
        code, _ = run_cli("run", "E1", "E2", "--progress")
        assert code == 0
        assert "[run]" in capsys.readouterr().err


class TestAtexitFinalizer:
    def test_interrupted_status_on_atexit(self, tmp_path):
        run = obs.RunArtifacts(tmp_path / "r", command="doomed")
        run._finalize_at_exit()
        manifest = obs.load_manifest(tmp_path / "r")
        assert manifest["finalized"] is True
        assert manifest["status"] == "interrupted"
        assert manifest["exit_code"] is None

    def test_atexit_noop_after_clean_finalize(self, tmp_path):
        run = obs.RunArtifacts(tmp_path / "r", command="fine")
        run.finalize(exit_code=0)
        run._finalize_at_exit()  # must not overwrite the clean record
        manifest = obs.load_manifest(tmp_path / "r")
        assert manifest["status"] == "complete"
        assert manifest["exit_code"] == 0

    def test_read_events_is_lazy(self, tmp_path):
        gen = obs.read_events(tmp_path / "absent")
        with pytest.raises(FileNotFoundError):
            next(gen)
