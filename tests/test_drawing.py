"""Tests for rendering utilities (repro.analysis.drawing)."""

import networkx as nx
import numpy as np
import pytest

from repro.analysis.drawing import (
    ascii_phase_space,
    nondet_phase_space_dot,
    phase_space_dot,
    render_spacetime,
)
from repro.core.automaton import CellularAutomaton
from repro.core.nondet import NondetPhaseSpace
from repro.core.phase_space import PhaseSpace
from repro.core.rules import MajorityRule, XorRule
from repro.spaces.graph import GraphSpace
from repro.spaces.line import Ring


@pytest.fixture(scope="module")
def xor2():
    return CellularAutomaton(GraphSpace(nx.path_graph(2)), XorRule())


class TestPhaseSpaceDot:
    def test_contains_all_nodes_and_edges(self, xor2):
        ps = PhaseSpace.from_automaton(xor2)
        dot = phase_space_dot(ps, title="fig1a")
        assert dot.startswith("digraph")
        assert 'label="fig1a"' in dot
        for code in range(4):
            assert f"c{code} [" in dot
        assert "c3 -> c0;" in dot  # 11 -> 00

    def test_fixed_point_styled(self, xor2):
        ps = PhaseSpace.from_automaton(xor2)
        dot = phase_space_dot(ps)
        assert 'c0 [label="00", shape=doublecircle];' in dot


class TestNondetDot:
    def test_edge_labels_one_based(self, xor2):
        nps = NondetPhaseSpace.from_automaton(xor2)
        dot = nondet_phase_space_dot(nps)
        # From 11 (c3): node 0 (paper's node 1) leads to 10 (c2).
        assert 'c3 -> c2 [label="1"];' in dot
        assert 'c3 -> c1 [label="2"];' in dot

    def test_pseudo_fp_dashed(self, xor2):
        nps = NondetPhaseSpace.from_automaton(xor2)
        dot = nondet_phase_space_dot(nps)
        assert 'c1 [label="10", shape=circle, style=dashed];' in dot

    def test_self_loops_toggle(self, xor2):
        nps = NondetPhaseSpace.from_automaton(xor2)
        without = nondet_phase_space_dot(nps)
        with_loops = nondet_phase_space_dot(nps, include_self_loops=True)
        assert with_loops.count("->") > without.count("->")


class TestSpacetime:
    def test_basic_raster(self):
        traj = np.array([[0, 1], [1, 0]], dtype=np.uint8)
        assert render_spacetime(traj) == ".#\n#."

    def test_custom_glyphs(self):
        traj = np.array([[0, 1]], dtype=np.uint8)
        assert render_spacetime(traj, chars=" X") == " X"

    def test_ruler(self):
        traj = np.zeros((1, 12), dtype=np.uint8)
        out = render_spacetime(traj, ruler=True)
        assert out.splitlines()[0] == "012345678901"

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            render_spacetime(np.zeros(3))
        with pytest.raises(ValueError):
            render_spacetime(np.zeros((2, 2)), chars="#")


class TestAsciiPhaseSpace:
    def test_lists_classes(self):
        ca = CellularAutomaton(Ring(4, radius=1), MajorityRule())
        ps = PhaseSpace.from_automaton(ca)
        text = ascii_phase_space(ps)
        assert "0000 -> 0000   [FP]" in text
        assert "[CC]" in text  # 0101/1010 two-cycle

    def test_refuses_large(self):
        ca = CellularAutomaton(Ring(10), MajorityRule())
        ps = PhaseSpace.from_automaton(ca)
        with pytest.raises(ValueError):
            ascii_phase_space(ps)
