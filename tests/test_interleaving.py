"""Tests for the interleaving-capture analysis (repro.core.interleaving)."""

import networkx as nx
import numpy as np
import pytest

from repro.core.automaton import CellularAutomaton
from repro.core.interleaving import (
    captures_parallel_step,
    interleaving_capture_report,
    orbit_reproducible_sequentially,
    sequential_reachable_set,
)
from repro.core.nondet import NondetPhaseSpace
from repro.core.rules import MajorityRule, XorRule
from repro.spaces.graph import GraphSpace
from repro.spaces.line import Ring


@pytest.fixture(scope="module")
def majority8():
    return CellularAutomaton(Ring(8), MajorityRule())


@pytest.fixture(scope="module")
def majority8_nps(majority8):
    return NondetPhaseSpace.from_automaton(majority8)


class TestSequentialReachableSet:
    def test_contains_start(self, majority8, majority8_nps):
        assert 5 in sequential_reachable_set(majority8, 5, majority8_nps)

    def test_fixed_point_reaches_only_itself(self, majority8, majority8_nps):
        reach = sequential_reachable_set(majority8, 0, majority8_nps)
        assert reach.tolist() == [0]

    def test_builds_nps_when_missing(self):
        ca = CellularAutomaton(Ring(5), MajorityRule())
        reach = sequential_reachable_set(ca, 0b00111)
        assert 0b00111 in reach.tolist()


class TestStepCapture:
    def test_fixed_point_always_captured(self, majority8, majority8_nps):
        assert captures_parallel_step(majority8, 0, majority8_nps)

    def test_two_cycle_step_not_captured(self, majority8, majority8_nps):
        # step(alt) is the complement: sequentially unreachable from alt
        # (each effective sequential update moves *toward* a fixed point).
        assert not captures_parallel_step(majority8, 0b01010101, majority8_nps)

    def test_accepts_precomputed_succ(self, majority8, majority8_nps):
        from repro.core.phase_space import PhaseSpace

        succ = PhaseSpace.from_automaton(majority8).succ
        assert captures_parallel_step(majority8, 0, majority8_nps, succ=succ)


class TestOrbitCapture:
    def test_two_cycle_orbit_not_reproducible(self, majority8, majority8_nps):
        res = orbit_reproducible_sequentially(majority8, 0b01010101,
                                              majority8_nps)
        assert res.parallel_period == 2
        assert not res.reproducible

    def test_fixed_point_orbit_reproducible(self, majority8, majority8_nps):
        res = orbit_reproducible_sequentially(majority8, 0, majority8_nps)
        assert res.parallel_period == 1
        assert res.reproducible

    def test_transient_to_fp_reproducible(self, majority8, majority8_nps):
        # A single 1 dies in parallel; sequentially the same fixed point is
        # reachable (update the lone 1).
        res = orbit_reproducible_sequentially(majority8, 0b00000001,
                                              majority8_nps)
        assert res.reproducible

    def test_xor_two_cycle_orbit_reproducible(self):
        # Contrast: the two-node XOR SCA *does* have proper cycles, so some
        # parallel behaviour has a sequential analogue... but the parallel
        # orbit of 01 ends in the fixed point 00, which is sequentially
        # unreachable — a different kind of failure.
        ca = CellularAutomaton(GraphSpace(nx.path_graph(2)), XorRule())
        res = orbit_reproducible_sequentially(ca, 0b01)
        assert res.parallel_period == 1
        assert res.parallel_cycle == (0,)
        assert not res.reproducible


class TestFullReport:
    def test_majority_report(self, majority8):
        rep = interleaving_capture_report(majority8)
        assert rep.total_configs == 256
        assert not rep.sequential_has_cycle
        # The two-cycle configurations are guaranteed witnesses; the basin
        # of the two-cycle is just the cycle itself (the paper notes
        # threshold-CA non-FP cycles have no incoming transients [19]).
        assert rep.parallel_two_cycle_configs == 2
        assert {0b01010101, 0b10101010} <= set(rep.orbit_capture_failures)
        assert not rep.interleavings_capture_concurrency
        assert 0 < rep.step_capture_rate < 1
        assert 0 < rep.orbit_capture_rate < 1

    def test_odd_ring_two_cycle_free_but_fp_capture_partial(self):
        # Odd rings have no parallel two-cycle, so the cycle-based failure
        # mode vanishes; FP-orbit capture can still fail when the parallel
        # map jumps to a fixed point no interleaving can reach.
        ca = CellularAutomaton(Ring(7), MajorityRule())
        rep = interleaving_capture_report(ca)
        assert rep.parallel_two_cycle_configs == 0
        failures = set(rep.orbit_capture_failures)
        from repro.core.phase_space import PhaseSpace

        ps = PhaseSpace.from_automaton(ca)
        assert failures <= set(ps.transient_configs.tolist())

    def test_xor_two_node_report(self):
        ca = CellularAutomaton(GraphSpace(nx.path_graph(2)), XorRule())
        rep = interleaving_capture_report(ca)
        # 00 is unreachable from 01/10/11 => their orbits (all ending at 00)
        # cannot be captured; 00 itself trivially can.
        assert sorted(rep.orbit_capture_failures) == [1, 2, 3]
        assert rep.sequential_has_cycle  # unlike the threshold case

    def test_report_rates_consistent(self, majority8):
        rep = interleaving_capture_report(majority8)
        assert rep.step_capture_rate == 1 - len(rep.step_capture_failures) / 256
        assert rep.orbit_capture_rate == 1 - len(rep.orbit_capture_failures) / 256
