"""Tests for the Boolean-function toolkit (repro.core.boolean)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boolean import (
    BooleanFunction,
    all_boolean_functions,
    majority_function,
    monotone_symmetric_functions,
    symmetric_functions,
    threshold_count_function,
    wolfram_table,
    xor_function,
)


class TestBooleanFunction:
    def test_and_evaluation(self):
        f = BooleanFunction([0, 0, 0, 1])
        assert f.evaluate([0, 0]) == 0
        assert f.evaluate([1, 0]) == 0
        assert f.evaluate([1, 1]) == 1

    def test_call_syntax(self):
        f = BooleanFunction([0, 1, 1, 0])  # XOR
        assert f(1, 0) == 1

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BooleanFunction([0, 1, 0])

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            BooleanFunction([0, 2])

    def test_rejects_wrong_input_count(self):
        with pytest.raises(ValueError):
            BooleanFunction([0, 1]).evaluate([0, 1])

    def test_table_is_readonly(self):
        f = BooleanFunction([0, 1])
        with pytest.raises(ValueError):
            f.table[0] = 1

    def test_equality_and_hash(self):
        f = BooleanFunction([0, 1, 1, 0])
        g = BooleanFunction([0, 1, 1, 0])
        assert f == g and hash(f) == hash(g)
        assert f != BooleanFunction([0, 1, 1, 1])

    def test_apply_codes(self):
        f = xor_function(3)
        codes = np.array([0b000, 0b001, 0b011, 0b111])
        np.testing.assert_array_equal(f.apply_codes(codes), [0, 1, 0, 1])


class TestStructuralProperties:
    def test_majority_is_monotone_symmetric(self):
        f = majority_function(3)
        assert f.is_monotone()
        assert f.is_symmetric()
        assert not f.is_constant()

    def test_xor_is_symmetric_not_monotone(self):
        f = xor_function(3)
        assert f.is_symmetric()
        assert not f.is_monotone()

    def test_constants(self):
        zero = threshold_count_function(3, 4)
        one = threshold_count_function(3, 0)
        assert zero.is_constant() and one.is_constant()
        assert zero.is_monotone() and one.is_monotone()

    def test_projection_is_monotone_not_symmetric(self):
        # f(x0, x1) = x0
        f = BooleanFunction([0, 1, 0, 1])
        assert f.is_monotone()
        assert not f.is_symmetric()

    def test_count_profile_majority(self):
        assert majority_function(3).count_profile() == (0, 0, 1, 1)

    def test_count_profile_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            BooleanFunction([0, 1, 0, 1]).count_profile()

    def test_as_count_threshold(self):
        assert majority_function(3).as_count_threshold() == 2
        assert majority_function(5).as_count_threshold() == 3
        assert xor_function(3).as_count_threshold() is None
        assert threshold_count_function(4, 1).as_count_threshold() == 1

    def test_quiescence(self):
        assert majority_function(3).preserves_quiescence()
        assert not threshold_count_function(3, 0).preserves_quiescence()

    def test_monotone_iff_count_threshold_for_symmetric(self):
        # Among symmetric functions, monotone <=> representable as count
        # threshold — exhaustively at arity 3.
        for f in symmetric_functions(3):
            assert (f.as_count_threshold() is not None) == f.is_monotone()


class TestThresholdRepresentation:
    def test_majority_is_threshold(self):
        rep = majority_function(3).threshold_representation()
        assert rep is not None
        weights, theta = rep
        # Check separation directly.
        f = majority_function(3)
        for x in range(8):
            bits = [(x >> j) & 1 for j in range(3)]
            value = float(np.dot(weights, bits))
            if f.evaluate(bits):
                assert value >= theta - 1e-9
            else:
                assert value <= theta - 1 + 1e-9

    def test_xor_is_not_threshold(self):
        assert not xor_function(2).is_linear_threshold()
        assert not xor_function(3).is_linear_threshold()

    def test_and_or_are_threshold(self):
        and2 = BooleanFunction([0, 0, 0, 1])
        or2 = BooleanFunction([0, 1, 1, 1])
        assert and2.is_linear_threshold()
        assert or2.is_linear_threshold()

    def test_all_monotone_symmetric_are_threshold(self):
        for f in monotone_symmetric_functions(3):
            assert f.is_linear_threshold()


class TestAlgebra:
    def test_negate(self):
        f = majority_function(3)
        g = f.negate()
        for x in range(8):
            assert int(g.table[x]) == 1 - int(f.table[x])

    def test_dual_of_majority_is_majority(self):
        # Odd-arity strict majority is self-dual.
        f = majority_function(3)
        assert f.dual() == f

    def test_double_dual_is_identity(self):
        for f in list(symmetric_functions(3))[:8]:
            assert f.dual().dual() == f


class TestEnumerations:
    def test_all_boolean_functions_count(self):
        assert sum(1 for _ in all_boolean_functions(2)) == 16

    def test_all_boolean_functions_refuses_big_arity(self):
        with pytest.raises(ValueError):
            list(all_boolean_functions(5))

    def test_symmetric_count(self):
        assert sum(1 for _ in symmetric_functions(3)) == 16

    def test_symmetric_all_symmetric(self):
        assert all(f.is_symmetric() for f in symmetric_functions(4))

    def test_monotone_symmetric_count(self):
        fns = list(monotone_symmetric_functions(3))
        assert len(fns) == 5
        assert all(f.is_monotone() and f.is_symmetric() for f in fns)

    def test_monotone_symmetric_distinct(self):
        fns = list(monotone_symmetric_functions(4))
        assert len(set(fns)) == len(fns)

    def test_threshold_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            threshold_count_function(3, 5)

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=7))
    @settings(max_examples=30)
    def test_threshold_semantics(self, arity, threshold):
        if threshold > arity + 1:
            threshold = arity + 1
        f = threshold_count_function(arity, threshold)
        for x in range(1 << arity):
            expected = int(bin(x).count("1") >= threshold)
            assert int(f.table[x]) == expected


class TestWolfram:
    def test_rule_232_is_majority(self):
        assert wolfram_table(232) == majority_function(3)

    def test_rule_150_is_xor3(self):
        assert wolfram_table(150) == xor_function(3)

    def test_rule_0_and_255(self):
        assert wolfram_table(0).is_constant()
        assert wolfram_table(255).is_constant()

    def test_rule_110_spot_values(self):
        # Rule 110: neighborhood (l, c, r) = (1,1,1)->0, (1,1,0)->1,
        # (0,0,0)->0 per the standard table.
        f = wolfram_table(110)
        assert f.evaluate([1, 1, 1]) == 0
        assert f.evaluate([1, 1, 0]) == 1
        assert f.evaluate([0, 0, 0]) == 0
        assert f.evaluate([0, 1, 1]) == 1

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            wolfram_table(256)
