"""Tests for the elementary-rule survey (repro.analysis.elementary)
plus the outer-totalistic rule family and lossy-channel fault injection
added alongside it."""

import numpy as np
import pytest

from repro.analysis.elementary import (
    RuleProfile,
    survey_all_rules,
    survey_rule,
    survey_summary,
)
from repro.core.automaton import CellularAutomaton
from repro.core.evolution import parallel_orbit
from repro.core.rules import OuterTotalisticRule, life_rule
from repro.spaces.grid import Grid2D
from repro.spaces.line import Ring


class TestSurveyRule:
    def test_rule_232_is_paper_class(self):
        p = survey_rule(232, (5, 6))
        assert p.monotone and p.symmetric and p.linear_threshold
        assert p.is_paper_class
        assert not p.sequential_cycles_somewhere
        assert p.parallel_cycles_somewhere  # the two-cycle on the 6-ring
        assert p.parallel_max_period == 2

    def test_rule_150_xor(self):
        p = survey_rule(150, (5, 6))
        assert p.symmetric and not p.monotone
        assert not p.linear_threshold
        assert p.sequential_cycles_somewhere

    def test_shift_rules(self):
        for number in (170, 240):
            p = survey_rule(number, (5, 6))
            assert p.monotone and not p.symmetric
            assert not p.self_dependent
            assert p.sequential_cycles_somewhere

    def test_identity_rule_204(self):
        # Rule 204 is the identity: every configuration is a fixed point.
        p = survey_rule(204, (5, 6))
        assert p.self_dependent
        assert not p.parallel_cycles_somewhere
        assert not p.sequential_cycles_somewhere
        assert p.parallel_max_period == 1

    def test_constants(self):
        p0 = survey_rule(0, (5,))
        p255 = survey_rule(255, (5,))
        assert p0.preserves_quiescence and not p255.preserves_quiescence
        assert not p0.parallel_cycles_somewhere
        assert not p255.parallel_cycles_somewhere


class TestSurveySummary:
    @pytest.fixture(scope="class")
    def summary(self):
        return survey_summary(survey_all_rules(ring_sizes=(5, 6)))

    def test_class_counts(self, summary):
        assert summary["rules"] == 256
        assert summary["monotone"] == 20  # Dedekind number M(3)
        assert summary["monotone_symmetric"] == 5
        assert summary["linear_threshold"] == 104  # known count at k=3

    def test_theorem1_over_whole_space(self, summary):
        assert summary["theorem1_violations"] == []

    def test_shift_rules_are_the_monotone_cyclers(self, summary):
        assert summary["monotone_sequential_cyclers"] == [170, 240]

    def test_majority_of_rules_cycle_in_parallel(self, summary):
        assert summary["parallel_cyclers"] > 128
        assert summary["sequentially_cycle_free"] < summary["rules"]


class TestOuterTotalistic:
    def test_life_blinker(self):
        grid = Grid2D(6, 6, neighborhood="moore", torus=True)
        ca = CellularAutomaton(grid, life_rule())
        state = np.zeros(36, dtype=np.uint8)
        for c in (1, 2, 3):
            state[grid.index(2, c)] = 1
        orbit = parallel_orbit(ca, state)
        assert orbit.period == 2  # the blinker oscillates

    def test_life_block_still_life(self):
        grid = Grid2D(6, 6, neighborhood="moore", torus=True)
        ca = CellularAutomaton(grid, life_rule())
        state = np.zeros(36, dtype=np.uint8)
        for r, c in ((2, 2), (2, 3), (3, 2), (3, 3)):
            state[grid.index(r, c)] = 1
        assert ca.is_fixed_point(state)

    def test_glider_period_on_torus(self):
        grid = Grid2D(8, 8, neighborhood="moore", torus=True)
        ca = CellularAutomaton(grid, life_rule())
        state = np.zeros(64, dtype=np.uint8)
        for r, c in ((0, 1), (1, 2), (2, 0), (2, 1), (2, 2)):
            state[grid.index(r, c)] = 1
        orbit = parallel_orbit(ca, state)
        # One diagonal lap of the 8-torus: 4 steps/cell * 8 cells.
        assert (orbit.transient, orbit.period) == (0, 32)

    def test_majority_as_outer_totalistic(self):
        # B{2,3}/S{1,2,3} on degree 2 + self at centre == ring majority.
        from repro.core.rules import MajorityRule

        outer = OuterTotalisticRule(
            2, birth=(2,), survive=(1, 2), self_position=1
        )
        maj = MajorityRule()
        for code in range(8):
            bits = [(code >> j) & 1 for j in range(3)]
            assert outer.evaluate(bits) == maj.evaluate(bits)

    def test_validation(self):
        with pytest.raises(ValueError):
            OuterTotalisticRule(3, birth=(5,), survive=())
        with pytest.raises(ValueError):
            OuterTotalisticRule(3, birth=(1,), survive=(), self_position=7)


class TestLossyChannels:
    def test_drops_leave_stale_views(self):
        from repro.aca import AsyncCA, LossyDelay, ZeroDelay
        from repro.core.rules import MajorityRule

        alt = (np.arange(10) % 2).astype(np.uint8)
        aca = AsyncCA(
            Ring(10), MajorityRule(), alt,
            delays=LossyDelay(ZeroDelay(), 0.5, seed=1),
        )
        for k in range(1, 11):
            for i in range(10):
                aca.schedule_update(float(k) + 0.01 * i, i)
        aca.run()
        assert aca.dropped > 0
        assert aca.view_staleness() > 0  # permanent disagreement

    def test_zero_drop_probability_is_lossless(self):
        from repro.aca import AsyncCA, LossyDelay, ZeroDelay
        from repro.core.rules import MajorityRule

        alt = (np.arange(8) % 2).astype(np.uint8)
        aca = AsyncCA(
            Ring(8), MajorityRule(), alt,
            delays=LossyDelay(ZeroDelay(), 0.0, seed=2),
        )
        for k in range(1, 9):
            for i in range(8):
                aca.schedule_update(float(k) + 0.01 * i, i)
        aca.run()
        assert aca.dropped == 0
        assert aca.view_staleness() == 0

    def test_invalid_probability(self):
        from repro.aca import LossyDelay, ZeroDelay

        with pytest.raises(ValueError):
            LossyDelay(ZeroDelay(), 1.5)

    def test_dropped_sentinel_contract(self):
        from repro.aca import DROPPED, LossyDelay, ZeroDelay

        model = LossyDelay(ZeroDelay(), 1.0, seed=0)
        assert model.checked_delay(0, 1, 0.0) == DROPPED


class TestThresholdVsConvergenceCrossTab:
    """Threshold representability (arbitrary weights) neither implies nor
    is implied by sequential cycle-freeness — the energy theorem's real
    hypothesis is symmetric weights with positive diagonal."""

    @pytest.fixture(scope="class")
    def summary(self):
        return survey_summary(survey_all_rules(ring_sizes=(5, 6)))

    def test_threshold_not_sufficient(self, summary):
        assert summary["threshold_but_cycling"] > 0  # e.g. the shifts

    def test_threshold_not_necessary(self, summary):
        assert summary["cycle_free_not_threshold"] > 0

    def test_counts_consistent(self, summary):
        assert (
            summary["cycle_free_and_threshold"]
            + summary["cycle_free_not_threshold"]
            == summary["sequentially_cycle_free"]
        )

    def test_shifts_are_threshold_yet_cycle(self):
        # x_i' = x_{i-1} IS a threshold function (weights (1,0,0), theta 1)
        # — but with zero self-weight and asymmetric influence.
        p = survey_rule(240, (5, 6))
        assert p.linear_threshold and p.sequential_cycles_somewhere


class TestEquivalenceClasses:
    def test_classical_count_of_88(self):
        from repro.analysis.elementary import elementary_equivalence_classes

        classes = elementary_equivalence_classes()
        assert len(classes) == 88
        assert sum(len(c) for c in classes) == 256

    def test_known_orbits(self):
        from repro.analysis.elementary import (
            complement_rule,
            equivalence_class,
            mirror_rule,
        )

        assert mirror_rule(110) == 124
        assert complement_rule(110) == 137
        assert equivalence_class(110) == (110, 124, 137, 193)
        assert equivalence_class(90) == (90, 165)   # mirror-symmetric
        assert equivalence_class(204) == (204,)     # fully self-conjugate

    def test_involutions(self):
        from repro.analysis.elementary import complement_rule, mirror_rule

        for k in range(256):
            assert mirror_rule(mirror_rule(k)) == k
            assert complement_rule(complement_rule(k)) == k
            # The two symmetries commute.
            assert mirror_rule(complement_rule(k)) == complement_rule(
                mirror_rule(k)
            )

    def test_dynamics_invariant_on_classes(self):
        """Cycle structure is a class invariant: conjugate rules have the
        same parallel/sequential cycling behaviour."""
        from repro.analysis.elementary import equivalence_class

        for rep in (30, 90, 110, 232, 170, 184):
            base = survey_rule(rep, (5, 6))
            for other in equivalence_class(rep):
                p = survey_rule(other, (5, 6))
                assert (
                    p.parallel_cycles_somewhere
                    == base.parallel_cycles_somewhere
                )
                assert (
                    p.sequential_cycles_somewhere
                    == base.sequential_cycles_somewhere
                )
                assert p.parallel_max_period == base.parallel_max_period

    def test_mirror_conjugates_dynamics_exactly(self):
        """F_mirror(rev(x)) == rev(F(x)) — the conjugation, verified on
        actual trajectories."""
        import numpy as np

        rng = np.random.default_rng(0)
        from repro.analysis.elementary import mirror_rule
        from repro.core.rules import WolframRule

        for k in (30, 110, 184):
            ca = CellularAutomaton(Ring(9), WolframRule(k))
            ca_m = CellularAutomaton(Ring(9), WolframRule(mirror_rule(k)))
            for _ in range(5):
                x = rng.integers(0, 2, 9).astype(np.uint8)
                np.testing.assert_array_equal(
                    ca_m.step(x[::-1].copy())[::-1], ca.step(x)
                )
