"""Shared fixtures for the test suite."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.automaton import CellularAutomaton
from repro.core.rules import MajorityRule, XorRule
from repro.spaces.graph import GraphSpace
from repro.spaces.line import Ring


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for randomized tests."""
    return np.random.default_rng(20040426)


@pytest.fixture
def majority_ring8() -> CellularAutomaton:
    """The workhorse automaton: MAJORITY with memory on an 8-ring."""
    return CellularAutomaton(Ring(8, radius=1), MajorityRule(), memory=True)


@pytest.fixture
def xor_two_node() -> CellularAutomaton:
    """The paper's Figure 1 automaton: two-node XOR with memory."""
    return CellularAutomaton(GraphSpace(nx.path_graph(2)), XorRule(), memory=True)


def random_states(rng: np.random.Generator, count: int, n: int) -> np.ndarray:
    """Matrix of random 0/1 states, shape (count, n)."""
    return rng.integers(0, 2, size=(count, n)).astype(np.uint8)
