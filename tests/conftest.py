"""Shared fixtures for the test suite.

Seeding: every randomized fixture derives from :func:`session_seed`,
which honors the ``REPRO_SEED`` environment variable — the same variable
the harness uses for retry-jitter seeding — so a CI failure log's seed
reproduces the identical run locally, verbatim.
"""

from __future__ import annotations

import os
import threading

import networkx as nx
import numpy as np
import pytest

from repro.core.automaton import CellularAutomaton
from repro.core.rules import MajorityRule, XorRule
from repro.spaces.graph import GraphSpace
from repro.spaces.line import Ring

#: default seed when REPRO_SEED is unset (the paper's publication date)
DEFAULT_SEED = 20040426


def session_seed() -> int:
    """The suite's RNG seed: ``REPRO_SEED`` if set, else the default."""
    raw = os.environ.get("REPRO_SEED", "").strip()
    try:
        return int(raw) if raw else DEFAULT_SEED
    except ValueError:
        return DEFAULT_SEED


@pytest.fixture
def fuzz_seed() -> int:
    """Integer seed for the qa/property suites, honoring REPRO_SEED."""
    return session_seed()


@pytest.fixture
def mc_seed() -> int:
    """Integer seed for the Monte-Carlo suites, honoring REPRO_SEED."""
    return session_seed()


@pytest.fixture
def rng(fuzz_seed: int) -> np.random.Generator:
    """Deterministic RNG for randomized tests (REPRO_SEED-aware)."""
    return np.random.default_rng(fuzz_seed)


@pytest.fixture
def majority_ring8() -> CellularAutomaton:
    """The workhorse automaton: MAJORITY with memory on an 8-ring."""
    return CellularAutomaton(Ring(8, radius=1), MajorityRule(), memory=True)


@pytest.fixture
def xor_two_node() -> CellularAutomaton:
    """The paper's Figure 1 automaton: two-node XOR with memory."""
    return CellularAutomaton(GraphSpace(nx.path_graph(2)), XorRule(), memory=True)


def random_states(rng: np.random.Generator, count: int, n: int) -> np.ndarray:
    """Matrix of random 0/1 states, shape (count, n)."""
    return rng.integers(0, 2, size=(count, n)).astype(np.uint8)


class FakeClock:
    """Injectable clock for timing-sensitive harness tests.

    Patched over the ``_sleep`` hooks in :mod:`repro.harness.runner` and
    :mod:`repro.harness.faults`, it records every requested delay and
    advances a virtual clock instead of blocking the suite.  For
    watchdog tests, :meth:`hold_from` makes long sleeps (an injected
    hang) genuinely block — on an event the fixture releases at
    teardown — so the worker thread stays alive past the join timeout
    without the test paying the nominal hang duration.
    """

    def __init__(self) -> None:
        self.sleeps: list[float] = []
        self._now = 0.0
        self._lock = threading.Lock()
        self._gate = threading.Event()
        self._hold_threshold: float | None = None
        #: real-time cap on a held sleep, so a bug cannot wedge the suite
        self.max_real_block_s = 30.0

    def sleep(self, seconds: float) -> None:
        with self._lock:
            self.sleeps.append(float(seconds))
            self._now += float(seconds)
        if (
            self._hold_threshold is not None
            and seconds >= self._hold_threshold
        ):
            self._gate.wait(self.max_real_block_s)

    def monotonic(self) -> float:
        with self._lock:
            return self._now

    def hold_from(self, threshold_s: float) -> None:
        """Make sleeps of at least ``threshold_s`` block until release."""
        self._hold_threshold = float(threshold_s)

    def release(self) -> None:
        """Unblock every held sleep (called automatically at teardown)."""
        self._gate.set()


@pytest.fixture
def fake_clock(monkeypatch) -> FakeClock:
    """Route harness sleeps (retry backoff, hang/stall faults) through a
    recording virtual clock."""
    from repro.harness import faults, runner

    clock = FakeClock()
    monkeypatch.setattr(runner, "_sleep", clock.sleep)
    monkeypatch.setattr(faults, "_sleep", clock.sleep)
    yield clock
    clock.release()
