"""Tests for finite cellular spaces (repro.spaces)."""

import networkx as nx
import numpy as np
import pytest

from repro.spaces.cayley import CayleySpace, cayley_product, hypercube_as_cayley
from repro.spaces.graph import (
    GraphSpace,
    complete_space,
    path_space,
    star_space,
)
from repro.spaces.grid import Grid2D
from repro.spaces.hypercube import Hypercube
from repro.spaces.line import Line, Ring


class TestRing:
    def test_neighbors_radius1(self):
        r = Ring(5)
        assert r.neighbors(0) == (4, 1)
        assert r.neighbors(4) == (3, 0)

    def test_neighbors_radius2(self):
        r = Ring(7, radius=2)
        assert r.neighbors(0) == (5, 6, 1, 2)

    def test_window_with_memory_ordered(self):
        r = Ring(5)
        assert r.input_window(2, memory=True) == (1, 2, 3)

    def test_window_memoryless(self):
        r = Ring(5)
        assert r.input_window(2, memory=False) == (1, 3)

    def test_rejects_too_small(self):
        with pytest.raises(ValueError):
            Ring(4, radius=2)
        with pytest.raises(ValueError):
            Ring(2, radius=1)

    def test_uniform_window(self):
        assert Ring(9, radius=2).uniform_window == 5

    def test_bipartite_even_only(self):
        assert Ring(6).is_bipartite()
        assert not Ring(5).is_bipartite()

    def test_adjacency_symmetric_with_right_degree(self):
        mat = Ring(8, radius=2).adjacency_matrix()
        assert (mat != mat.T).nnz == 0
        assert mat.sum() == 8 * 4

    def test_len(self):
        assert len(Ring(6)) == 6


class TestLine:
    def test_interior_window(self):
        assert Line(5).input_window(2, True) == (1, 2, 3)

    def test_boundary_window_has_quiescent(self):
        line = Line(5)
        assert line.input_window(0, True) == (-1, 0, 1)
        assert line.input_window(4, True) == (3, 4, -1)

    def test_degree_at_boundary(self):
        line = Line(5)
        assert line.degree(0) == 1
        assert line.degree(2) == 2

    def test_windows_matrix_uses_padding_slot(self):
        line = Line(3)
        mat, lengths = line.windows(True)
        assert mat.shape == (3, 3)
        assert mat[0, 0] == 3  # quiescent slot = n
        assert lengths.tolist() == [3, 3, 3]

    def test_line_is_bipartite(self):
        assert Line(7).is_bipartite()

    def test_single_node_line(self):
        line = Line(1)
        assert line.input_window(0, True) == (-1, 0, -1)


class TestGrid2D:
    def test_von_neumann_torus_degree(self):
        g = Grid2D(3, 4)
        assert all(g.degree(i) == 4 for i in range(g.n))

    def test_moore_torus_degree(self):
        g = Grid2D(3, 3, neighborhood="moore")
        assert all(g.degree(i) == 8 for i in range(g.n))

    def test_bounded_corner(self):
        g = Grid2D(3, 3, torus=False)
        corner = g.index(0, 0)
        assert g.degree(corner) == 2

    def test_index_cell_roundtrip(self):
        g = Grid2D(3, 5)
        for i in range(g.n):
            r, c = g.cell(i)
            assert g.index(r, c) == i

    def test_von_neumann_torus_bipartite_iff_even_dims(self):
        assert Grid2D(4, 4).is_bipartite()
        assert not Grid2D(3, 4).is_bipartite()  # odd wrap creates odd cycles

    def test_moore_torus_not_bipartite(self):
        assert not Grid2D(4, 4, neighborhood="moore").is_bipartite()

    def test_rejects_small_torus(self):
        with pytest.raises(ValueError):
            Grid2D(2, 4, torus=True)

    def test_rejects_bad_neighborhood(self):
        with pytest.raises(ValueError):
            Grid2D(3, 3, neighborhood="hex")

    def test_rejects_bad_cell(self):
        with pytest.raises(ValueError):
            Grid2D(3, 3).index(3, 0)


class TestHypercube:
    def test_sizes(self):
        assert Hypercube(3).n == 8
        assert Hypercube(3).degree(0) == 3

    def test_neighbors_are_bit_flips(self):
        h = Hypercube(4)
        assert set(h.neighbors(0b0101)) == {0b0100, 0b0111, 0b0001, 0b1101}

    def test_bipartite_with_parity_classes(self):
        h = Hypercube(3)
        assert h.is_bipartite()
        even, odd = h.parity_classes()
        assert len(even) == len(odd) == 4
        for i in even:
            assert all(j in odd for j in h.neighbors(i))

    def test_rejects_huge(self):
        with pytest.raises(ValueError):
            Hypercube(17)


class TestGraphSpace:
    def test_relabelling_sorted(self):
        g = nx.Graph([("c", "a"), ("a", "b")])
        space = GraphSpace(g)
        assert space.labels == ["a", "b", "c"]
        assert space.neighbors(0) == (1, 2)  # 'a' touches 'b' and 'c'

    def test_self_loops_dropped(self):
        g = nx.Graph([(0, 0), (0, 1)])
        space = GraphSpace(g)
        assert space.neighbors(0) == (1,)

    def test_rejects_directed(self):
        with pytest.raises(ValueError):
            GraphSpace(nx.DiGraph([(0, 1)]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GraphSpace(nx.Graph())

    def test_from_edges(self):
        space = GraphSpace.from_edges([(0, 1), (1, 2)])
        assert space.n == 3

    def test_complete_space(self):
        k4 = complete_space(4)
        assert all(k4.degree(i) == 3 for i in range(4))

    def test_star_space(self):
        star = star_space(4)
        degs = sorted(star.degree(i) for i in range(star.n))
        assert degs == [1, 1, 1, 1, 4]

    def test_path_space_matches_line_graph(self):
        p = path_space(4)
        assert p.degree(0) == 1 and p.degree(1) == 2

    def test_variable_degree_has_no_uniform_window(self):
        assert star_space(3).uniform_window is None


class TestCayley:
    def test_ring_as_cayley(self):
        c = CayleySpace(7, [1])
        r = Ring(7)
        for i in range(7):
            assert set(c.neighbors(i)) == set(r.neighbors(i))

    def test_radius2_ring_as_cayley(self):
        c = CayleySpace(9, [1, 2])
        r = Ring(9, radius=2)
        for i in range(9):
            assert set(c.neighbors(i)) == set(r.neighbors(i))

    def test_generator_closure_under_negation(self):
        c = CayleySpace(10, [3])
        assert 7 in c.generators  # -3 mod 10

    def test_rejects_identity_generator(self):
        with pytest.raises(ValueError):
            CayleySpace(5, [0])
        with pytest.raises(ValueError):
            CayleySpace(5, [5])

    def test_product_torus_matches_grid(self):
        torus = cayley_product((3, 4), [(1, 0), (0, 1)])
        grid = Grid2D(3, 4)
        assert torus.n == grid.n
        for i in range(torus.n):
            assert set(torus.neighbors(i)) == set(grid.neighbors(i))

    def test_product_coords_roundtrip(self):
        t = cayley_product((3, 5), [(1, 0)])
        for i in range(t.n):
            assert t.index(t.coords(i)) == i

    def test_hypercube_as_cayley(self):
        c = hypercube_as_cayley(3)
        h = Hypercube(3)
        assert c.n == h.n
        for i in range(8):
            assert set(c.neighbors(i)) == set(h.neighbors(i))

    def test_product_rejects_identity(self):
        with pytest.raises(ValueError):
            cayley_product((3, 3), [(0, 0)])

    def test_product_rejects_arity_mismatch(self):
        with pytest.raises(ValueError):
            cayley_product((3, 3), [(1,)])


class TestWindowsMatrix:
    def test_gather_equivalence(self):
        """The window matrix reproduces input_window semantics exactly."""
        rng = np.random.default_rng(0)
        for space in (Ring(7), Line(6, radius=2), Grid2D(3, 3), Hypercube(3)):
            state = rng.integers(0, 2, space.n).astype(np.uint8)
            ext = np.concatenate([state, [0]]).astype(np.uint8)
            mat, lengths = space.windows(True)
            for i in range(space.n):
                window = space.input_window(i, True)
                direct = [0 if j < 0 else int(state[j]) for j in window]
                gathered = ext[mat[i, : lengths[i]]].tolist()
                assert gathered == direct
