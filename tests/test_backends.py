"""Property tests for the sweep-backend subsystem (repro.perf).

Every backend must produce *bit-identical* successor maps: the numpy
window-gather reference, the compiled ``table`` and ``bitplane`` kernels
and the ``process`` shard layer are interchangeable by construction, and
these tests pin that down against the scalar ``step_naive`` oracle and
against each other — across spaces (rings, lines, wide radii), rule
families (threshold, XOR, raw tables, heterogeneous mixtures) and both
memory conventions.  Governance is part of the contract too: budget
trips must yield the same resumable frontier whichever kernel runs.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.automaton import CellularAutomaton
from repro.core.budget import Budget, CancelToken
from repro.core.heterogeneous import HeterogeneousCA
from repro.core.phase_space import PhaseSpace, build_phase_space
from repro.core.rules import (
    MajorityRule,
    SimpleThresholdRule,
    TableRule,
    TotalisticRule,
    WolframRule,
    XorRule,
)
from repro.harness.checkpoint import load_frontier, save_frontier
from repro.perf import (
    BACKENDS,
    BackendUnsupported,
    BitplaneBackend,
    ProcessBackend,
    lower_bit_kernel,
    resolve_backend,
    resolve_serial_backend,
)
from repro.spaces.graph import GraphSpace
from repro.spaces.line import Line, Ring
from repro.util.bitops import config_str, int_to_bits

SERIAL = ("numpy", "table", "bitplane")


def oracle_step_all(ca: CellularAutomaton) -> np.ndarray:
    """Successor of every configuration via the scalar step_naive path."""
    out = np.empty(1 << ca.n, dtype=np.int64)
    for code in range(1 << ca.n):
        out[code] = ca.pack(ca.step_naive(int_to_bits(code, ca.n)))
    return out


def make_ca(space, rule, memory=True, backend=None, workers=None):
    return CellularAutomaton(
        space, rule, memory=memory, backend=backend, workers=workers
    )


CASES = [
    pytest.param(Ring(9), MajorityRule(), True, id="ring9-majority"),
    pytest.param(Ring(9), XorRule(), True, id="ring9-xor"),
    pytest.param(Ring(9), SimpleThresholdRule(2), False, id="ring9-thr2-nomem"),
    pytest.param(Line(9), MajorityRule(), True, id="line9-majority"),
    pytest.param(Ring(8, radius=2), XorRule(), True, id="ring8-r2-xor"),
    pytest.param(Ring(9), WolframRule(110), True, id="ring9-w110"),
    pytest.param(Ring(9), WolframRule(30), True, id="ring9-w30"),
]


class TestSerialBackendsMatchOracle:
    @pytest.mark.parametrize("space,rule,memory", CASES)
    @pytest.mark.parametrize("backend", SERIAL)
    def test_step_all_matches_step_naive(self, space, rule, memory, backend):
        ca = make_ca(space, rule, memory=memory, backend=backend)
        if ca.backend.name != backend:
            pytest.fail(f"requested {backend}, resolved {ca.backend.name}")
        np.testing.assert_array_equal(ca.step_all(), oracle_step_all(ca))

    @pytest.mark.parametrize("space,rule,memory", CASES)
    @pytest.mark.parametrize("backend", SERIAL)
    def test_node_successors_flip_exactly_one_bit(
        self, space, rule, memory, backend
    ):
        ca = make_ca(space, rule, memory=memory, backend=backend)
        ref = make_ca(space, rule, memory=memory, backend="numpy")
        for i in range(ca.n):
            succ = ca.node_successors(i)
            np.testing.assert_array_equal(succ, ref.node_successors(i))
            # single-node update: nothing but bit i may change
            diff = succ ^ np.arange(1 << ca.n, dtype=np.int64)
            assert np.all((diff & ~(np.int64(1) << i)) == 0)

    @pytest.mark.parametrize("backend", SERIAL)
    def test_all_node_successors_one_pass_matches_rows(self, backend):
        ca = make_ca(Ring(9), MajorityRule(), backend=backend)
        table = ca.all_node_successors()
        assert table.shape == (9, 1 << 9)
        for i in range(ca.n):
            np.testing.assert_array_equal(table[i], ca.node_successors(i))


class TestHeterogeneous:
    @pytest.mark.parametrize("backend", SERIAL)
    def test_mixed_rules_match_oracle(self, backend):
        n = 9
        rules = [MajorityRule() if i % 2 else XorRule() for i in range(n)]
        ca = HeterogeneousCA(Ring(n), rules, backend=backend)
        np.testing.assert_array_equal(ca.step_all(), oracle_step_all(ca))

    @pytest.mark.parametrize("backend", SERIAL)
    def test_mixed_rules_all_node_successors(self, backend):
        n = 8
        rules = [SimpleThresholdRule(1) if i < 4 else XorRule() for i in range(n)]
        ca = HeterogeneousCA(Ring(n), rules, backend=backend)
        ref = HeterogeneousCA(Ring(n), rules, backend="numpy")
        np.testing.assert_array_equal(
            ca.all_node_successors(), ref.all_node_successors()
        )


class TestRandomRules:
    """Hypothesis: arbitrary 3-input tables agree across every backend."""

    @given(table=st.integers(min_value=0, max_value=255))
    @settings(max_examples=30, deadline=None)
    def test_random_elementary_table(self, table):
        rule = WolframRule(table)
        results = {}
        for backend in SERIAL:
            ca = make_ca(Ring(8), rule, backend=backend)
            results[backend] = ca.step_all()
        for backend in SERIAL[1:]:
            np.testing.assert_array_equal(results["numpy"], results[backend])

    @given(
        bits=st.lists(st.integers(0, 1), min_size=32, max_size=32),
        memory=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_radius2_table(self, bits, memory):
        # width-5 windows with memory, width-4 without
        width = 5 if memory else 4
        rule = TableRule([bits[i] for i in range(1 << width)])
        results = {}
        for backend in SERIAL:
            ca = make_ca(Ring(7, radius=2), rule, memory=memory, backend=backend)
            results[backend] = ca.step_all()
        oracle = oracle_step_all(
            make_ca(Ring(7, radius=2), rule, memory=memory, backend="numpy")
        )
        for backend in SERIAL:
            np.testing.assert_array_equal(results[backend], oracle)


class TestProcessBackend:
    def test_step_all_matches_serial(self):
        ca = make_ca(Ring(12), MajorityRule(), backend="process", workers=2)
        assert isinstance(ca.backend, ProcessBackend)
        ref = make_ca(Ring(12), MajorityRule(), backend="numpy")
        np.testing.assert_array_equal(ca.step_all(), ref.step_all())

    def test_governed_build_matches_serial(self):
        ca = make_ca(Ring(16), MajorityRule(), backend="process", workers=2)
        ref = make_ca(Ring(16), MajorityRule(), backend="numpy")
        p = build_phase_space(ca, budget=Budget())
        assert p.complete
        assert p.value.summary() == PhaseSpace.from_automaton(ref).summary()

    def test_trip_yields_prefix_frontier_and_resume(self, tmp_path):
        # Ring(17) splits into two CHUNK-sized shards; a one-chunk states
        # cap trips between them, leaving a strict prefix.
        ca = make_ca(Ring(17), MajorityRule(), backend="process", workers=2)
        exact = PhaseSpace.from_automaton(
            make_ca(Ring(17), MajorityRule(), backend="numpy")
        )
        p1 = build_phase_space(ca, budget=Budget(max_states=1 << 16))
        assert not p1.complete
        assert "states" in p1.reason
        assert 0 < p1.explored < 1 << 17
        assert p1.frontier is not None and p1.frontier["next_lo"] == p1.explored
        # the charged prefix is bit-identical to the serial sweep
        ref_succ = make_ca(Ring(17), MajorityRule(), backend="numpy").step_all()
        np.testing.assert_array_equal(
            np.asarray(p1.frontier["succ"])[: p1.explored],
            ref_succ[: p1.explored],
        )
        save_frontier(tmp_path, p1)
        p2 = build_phase_space(
            ca, budget=Budget(), frontier=load_frontier(tmp_path)
        )
        assert p2.complete
        assert p2.value.summary() == exact.summary()

    def test_cancellation_interrupts_workers(self):
        token = CancelToken()
        token.cancel("user interrupt")
        ca = make_ca(Ring(16), MajorityRule(), backend="process", workers=2)
        p = build_phase_space(ca, budget=Budget(token=token))
        assert not p.complete
        assert p.reason.startswith("cancelled")

    def test_describe_names_inner_kernel(self):
        ca = make_ca(Ring(12), MajorityRule(), backend="process", workers=3)
        assert ca.backend.describe() == "process[bitplane x3]"


class TestGovernedTripEquivalence:
    """A states-cap trip leaves the same frontier whichever kernel ran."""

    @pytest.mark.parametrize("backend", SERIAL)
    def test_trip_and_resume_match_exact(self, backend, tmp_path):
        ca = make_ca(Ring(17), MajorityRule(), backend=backend)
        exact = PhaseSpace.from_automaton(
            make_ca(Ring(17), MajorityRule(), backend="numpy")
        )
        p1 = build_phase_space(ca, budget=Budget(max_states=1 << 16))
        assert not p1.complete
        assert p1.explored == 1 << 16  # exactly one chunk, every backend
        save_frontier(tmp_path, p1)
        p2 = build_phase_space(
            ca, budget=Budget(), frontier=load_frontier(tmp_path)
        )
        assert p2.complete
        assert p2.value.summary() == exact.summary()


class TestSelectionPolicy:
    def test_explicit_name_wins(self):
        ca = make_ca(Ring(9), MajorityRule(), backend="table")
        assert ca.backend.name == "table"

    def test_auto_prefers_bitplane_for_threshold(self):
        ca = make_ca(Ring(9), MajorityRule())
        assert ca.backend.name == "bitplane"

    def test_auto_falls_back_below_bitplane_minimum(self):
        # n=5 < 64-configuration words: bitplane refuses, auto moves on.
        ca = make_ca(Ring(5), MajorityRule())
        assert ca.backend.name in ("table", "numpy")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "table")
        ca = make_ca(Ring(9), MajorityRule())
        assert ca.backend.name == "table"

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "table")
        ca = make_ca(Ring(9), MajorityRule(), backend="numpy")
        assert ca.backend.name == "numpy"

    def test_unknown_name_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown sweep backend"):
            make_ca(Ring(9), MajorityRule(), backend="simd")

    def test_unsupported_explicit_backend_raises(self):
        ca = make_ca(Ring(5), MajorityRule(), backend="bitplane")
        with pytest.raises(BackendUnsupported, match="needs n >= 6"):
            ca.backend  # resolution is lazy

    def test_supports_reasons_are_strings(self):
        ca = make_ca(Ring(5), MajorityRule())
        reason = BitplaneBackend.supports(ca)
        assert isinstance(reason, str) and "64" in reason

    def test_resolve_serial_rejects_process(self):
        ca = make_ca(Ring(9), MajorityRule())
        with pytest.raises(ValueError, match="not a serial backend"):
            resolve_serial_backend(ca, "process")

    def test_registry_covers_all_names(self):
        assert set(BACKENDS) == {"numpy", "table", "bitplane", "process"}

    def test_auto_stays_serial_for_small_spaces(self):
        backend = resolve_backend(make_ca(Ring(10), MajorityRule()), "auto",
                                  workers=4)
        assert not backend.is_sharded


class TestBitKernelLowering:
    def test_xor_lowers_to_parity(self):
        kind, _ = lower_bit_kernel(XorRule(), 3)
        assert kind == "parity"

    def test_majority_lowers_to_profile(self):
        kind, prof = lower_bit_kernel(MajorityRule(), 3)
        assert kind == "profile"
        assert list(prof) == [0, 0, 1, 1]

    def test_arbitrary_table_lowers_to_sop(self):
        kind, _ = lower_bit_kernel(WolframRule(110), 3)
        assert kind in ("table", "profile", "parity")


class TestPhaseSpaceIndexes:
    """Satellite: vectorized to_networkx and the CSR predecessor index."""

    def test_predecessors_match_bruteforce(self, majority_ring8):
        ps = PhaseSpace.from_automaton(majority_ring8)
        succ = ps.succ
        for code in (0, 1, 37, 255):
            expected = np.flatnonzero(succ == code)
            np.testing.assert_array_equal(ps.predecessors(code), expected)

    def test_predecessors_range_checked(self, majority_ring8):
        ps = PhaseSpace.from_automaton(majority_ring8)
        with pytest.raises(ValueError):
            ps.predecessors(1 << 8)
        with pytest.raises(ValueError):
            ps.predecessors(-1)

    def test_to_networkx_labels_and_edges(self, majority_ring8):
        ps = PhaseSpace.from_automaton(majority_ring8)
        g = ps.to_networkx()
        assert g.number_of_nodes() == 256
        assert g.number_of_edges() == 256
        for code in (0, 1, 128, 255):
            assert g.nodes[code]["label"] == config_str(code, 8)
            assert list(g.successors(code)) == [int(ps.succ[code])]


class TestConvergenceCode:
    def test_fixed_point_code_packs_final_state(self, majority_ring8):
        from repro.core.evolution import sequential_converge
        from repro.core.schedules import FixedPermutation
        from repro.util.bitops import bits_to_int

        state = int_to_bits(0b11001100, 8)
        res = sequential_converge(
            majority_ring8, state, FixedPermutation(), max_updates=1000
        )
        assert res.converged
        assert res.fixed_point_code == bits_to_int(res.final_state)
        assert res.fixed_point_code == majority_ring8.pack(res.final_state)


class TestDegenerateArities:
    """Arity-0/1 and constant rules through the LUT lowering (satellite).

    An edgeless graph gives uniform window width 1 (with memory) or 0
    (memoryless), exercising the degenerate ends of every backend's rule
    lowering that the ring/line matrix above never reaches.
    """

    DEGENERATE = [
        pytest.param(False, TableRule([1], name="const1"), id="arity0-const1"),
        pytest.param(False, TableRule([0], name="const0"), id="arity0-const0"),
        pytest.param(False, TotalisticRule([1]), id="arity0-totalistic"),
        pytest.param(True, TableRule([0, 1], name="identity"), id="arity1-identity"),
        pytest.param(True, TableRule([1, 0], name="NOT"), id="arity1-not"),
        pytest.param(True, TotalisticRule([1, 0]), id="arity1-totalistic-not"),
    ]

    @pytest.mark.parametrize("memory,rule", DEGENERATE)
    @pytest.mark.parametrize("backend", SERIAL)
    def test_matches_oracle(self, memory, rule, backend):
        space = GraphSpace(nx.empty_graph(8))
        ca = make_ca(space, rule, memory=memory, backend=backend)
        assert np.array_equal(ca.step_all(), oracle_step_all(ca))

    @pytest.mark.parametrize("memory,rule", DEGENERATE)
    @pytest.mark.parametrize("backend", SERIAL)
    def test_node_successors(self, memory, rule, backend):
        ca = make_ca(GraphSpace(nx.empty_graph(8)), rule, memory=memory, backend=backend)
        oracle = oracle_step_all(ca)
        succ = ca.node_successors(3)
        codes = np.arange(1 << ca.n, dtype=np.int64)
        expect = codes ^ (((codes ^ oracle) >> 3) & 1) << 3
        assert np.array_equal(succ, expect)

    def test_constant_rule_lut_lowering(self):
        assert TableRule([1]).lut(0).tolist() == [1]
        assert TableRule([0]).lut(0).tolist() == [0]
        assert TotalisticRule([1]).lut(0).tolist() == [1]
        assert TableRule([1, 1], name="const").count_profile(1).tolist() == [1, 1]

    def test_arity0_symmetric_rules(self):
        # Explicit arity 0 is now legal on the symmetric families.
        assert MajorityRule(arity=0).lut(0).tolist() == [0]
        assert XorRule(arity=0).lut(0).tolist() == [0]
        assert SimpleThresholdRule(1, arity=0).lut(0).tolist() == [0]
        assert MajorityRule().truth_table(0).table.tolist() == [0]

    def test_arity1_lut_and_kernel_lowering(self):
        assert XorRule().lut(1).tolist() == [0, 1]
        assert MajorityRule().lut(1).tolist() == [0, 1]
        kind, data = lower_bit_kernel(TableRule([1, 0], name="NOT"), 1)
        assert kind == "profile" and data.tolist() == [1, 0]
        kind, _ = lower_bit_kernel(XorRule(), 1)
        assert kind == "parity"
