"""Tests for deterministic phase spaces (repro.core.phase_space)."""

import numpy as np
import pytest

from repro.core.automaton import CellularAutomaton
from repro.core.phase_space import ConfigClass, PhaseSpace
from repro.core.rules import MajorityRule, WolframRule, XorRule
from repro.spaces.line import Ring


@pytest.fixture(scope="module")
def majority8_ps():
    ca = CellularAutomaton(Ring(8), MajorityRule())
    return PhaseSpace.from_automaton(ca)


class TestConstruction:
    def test_size(self, majority8_ps):
        assert majority8_ps.size == 256

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            PhaseSpace(np.zeros(10, dtype=np.int64), 4)


class TestClassification:
    def test_classes_partition(self, majority8_ps):
        ps = majority8_ps
        total = (
            ps.fixed_points.size
            + ps.cycle_configs.size
            + ps.transient_configs.size
        )
        assert total == ps.size

    def test_uniform_configs_are_fixed(self, majority8_ps):
        assert majority8_ps.classify(0) is ConfigClass.FIXED_POINT
        assert majority8_ps.classify(255) is ConfigClass.FIXED_POINT

    def test_alternating_is_cycle_config(self, majority8_ps):
        assert majority8_ps.classify(0b01010101) is ConfigClass.CYCLE
        assert majority8_ps.classify(0b10101010) is ConfigClass.CYCLE

    def test_single_one_is_transient(self, majority8_ps):
        assert majority8_ps.classify(0b00000001) is ConfigClass.TRANSIENT

    def test_deterministic_trichotomy(self, majority8_ps):
        # Definition 3: every configuration is FP, CC, or TC; FP/CC are
        # exactly the on-cycle configurations.
        ps = majority8_ps
        for code in range(ps.size):
            cls = ps.classify(code)
            on_cycle = bool(ps.graph.on_cycle[code])
            assert (cls in (ConfigClass.FIXED_POINT, ConfigClass.CYCLE)) == on_cycle


class TestCycles:
    def test_majority8_has_exactly_one_proper_cycle(self, majority8_ps):
        proper = majority8_ps.proper_cycles
        assert len(proper) == 1
        assert sorted(proper[0]) == [0b01010101, 0b10101010]

    def test_has_proper_cycle(self, majority8_ps):
        assert majority8_ps.has_proper_cycle()

    def test_cycle_lengths_at_most_two(self, majority8_ps):
        assert max(majority8_ps.cycle_lengths()) == 2

    def test_odd_ring_majority_has_no_proper_cycle(self):
        # No alternating configuration fits an odd ring.
        ca = CellularAutomaton(Ring(7), MajorityRule())
        ps = PhaseSpace.from_automaton(ca)
        assert not ps.has_proper_cycle()

    def test_xor_ring4_has_long_cycles(self):
        # XOR CA on a 4-ring are non-monotone: cycles beyond period 2 exist
        # (the paper notes XOR CA "do have nontrivial cycles ... in the
        # parallel case" for rings of >= 4 nodes).
        ca = CellularAutomaton(Ring(4), XorRule())
        ps = PhaseSpace.from_automaton(ca)
        assert ps.has_proper_cycle()


class TestAttractorsAndBasins:
    def test_attractor_of_transient(self, majority8_ps):
        # A single 1 dies out: attractor is the all-zero fixed point.
        assert majority8_ps.attractor_of(0b00000001) == [0]

    def test_basin_sizes_sum(self, majority8_ps):
        assert majority8_ps.basin_sizes().sum() == 256

    def test_transient_length_zero_on_cycle(self, majority8_ps):
        assert majority8_ps.transient_length(0) == 0
        assert majority8_ps.transient_length(0b01010101) == 0

    def test_transient_length_positive_off_cycle(self, majority8_ps):
        assert majority8_ps.transient_length(0b00000001) >= 1

    def test_max_transient_is_attained(self, majority8_ps):
        ps = majority8_ps
        depths = [ps.transient_length(c) for c in range(ps.size)]
        assert max(depths) == ps.max_transient()


class TestReachability:
    def test_gardens_of_eden_have_no_predecessor(self, majority8_ps):
        ps = majority8_ps
        for code in ps.gardens_of_eden[:20]:
            assert ps.predecessors(int(code)).size == 0

    def test_non_gardens_have_predecessor(self, majority8_ps):
        ps = majority8_ps
        goe = set(ps.gardens_of_eden.tolist())
        for code in range(ps.size):
            if code not in goe:
                assert ps.predecessors(code).size >= 1

    def test_fixed_points_are_stable(self, majority8_ps):
        ps = majority8_ps
        for code in ps.fixed_points:
            assert ps.is_stable_attractor(int(code))

    def test_cycle_config_not_stable_attractor(self, majority8_ps):
        assert not majority8_ps.is_stable_attractor(0b01010101)


class TestExports:
    def test_networkx_graph(self, majority8_ps):
        g = majority8_ps.to_networkx()
        assert g.number_of_nodes() == 256
        assert g.number_of_edges() <= 256
        assert g.nodes[0]["label"] == "00000000"

    def test_summary_keys(self, majority8_ps):
        summary = majority8_ps.summary()
        assert summary["configurations"] == 256
        assert summary["proper_cycles"] == 1

    def test_wolfram_rule_90_phase_space(self):
        # Rule 90 (memoryless-like XOR of neighbors) on an 8-ring is
        # linear; its phase space is highly regular: in-degrees are 0 or a
        # constant power of two.
        ca = CellularAutomaton(Ring(8), WolframRule(90))
        ps = PhaseSpace.from_automaton(ca)
        degs = set(ps.graph.in_degrees.tolist())
        assert degs == {0, 4}


class TestBasinMembers:
    def test_basins_partition_configs(self, majority8_ps):
        ps = majority8_ps
        seen = set()
        for k in range(len(ps.cycles)):
            members = ps.basin_members(k)
            assert not (set(members.tolist()) & seen)
            seen.update(members.tolist())
        assert len(seen) == ps.size

    def test_two_cycle_basin_is_itself(self, majority8_ps):
        ps = majority8_ps
        k = ps.attractor_index_of(0b01010101)
        members = sorted(ps.basin_members(k).tolist())
        assert members == [0b01010101, 0b10101010]

    def test_members_consistent_with_sizes(self, majority8_ps):
        ps = majority8_ps
        sizes = ps.basin_sizes()
        for k in range(len(ps.cycles)):
            assert ps.basin_members(k).size == sizes[k]

    def test_rejects_bad_index(self, majority8_ps):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            majority8_ps.basin_members(10_000)
