"""Tests for schedule-word utilities (repro.util.orders)."""

import itertools

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.orders import (
    all_permutations,
    all_words,
    cyclic_word,
    fairness_bound,
    is_b_fair,
    is_permutation_word,
    random_fair_stream,
    random_single_stream,
    sweep_stream,
)


class TestIsPermutationWord:
    def test_identity(self):
        assert is_permutation_word([0, 1, 2], 3)

    def test_shuffled(self):
        assert is_permutation_word([2, 0, 1], 3)

    def test_wrong_length(self):
        assert not is_permutation_word([0, 1], 3)

    def test_repeats(self):
        assert not is_permutation_word([0, 0, 1], 3)


class TestBFairness:
    def test_sweep_is_fair(self):
        word = [0, 1, 2, 0, 1, 2, 0, 1, 2]
        assert is_b_fair(word, 3, 3)

    def test_staggered_needs_larger_bound(self):
        # Two consecutive sweeps with reversed order: gap can reach 2n-1.
        word = [0, 1, 2, 2, 1, 0, 0, 1, 2]
        assert not is_b_fair(word, 3, 3)
        assert is_b_fair(word, 3, 5)

    def test_bound_below_n_never_fair(self):
        assert not is_b_fair([0, 1, 0, 1], 2, 1)

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            is_b_fair([0], 1, 0)

    def test_unfair_word(self):
        assert not is_b_fair([0, 0, 0, 0], 2, 4)


class TestFairnessBound:
    def test_sweep(self):
        assert fairness_bound([0, 1, 2], 3) == 3

    def test_missing_node(self):
        assert fairness_bound([0, 0, 0], 2) is None

    def test_empty(self):
        assert fairness_bound([], 2) is None

    def test_wraparound_gap(self):
        # node 0 occurs at position 0 only; wrap gap is 4.
        assert fairness_bound([0, 1, 1, 1], 2) == 4

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            fairness_bound([0, 5], 2)

    @given(st.integers(min_value=1, max_value=5), st.integers(0, 1000))
    def test_repeated_permutation_bound_at_most_2n_minus_1(self, n, seed):
        perm = np.random.default_rng(seed).permutation(n).tolist()
        word = perm * 3
        bound = fairness_bound(word, n)
        assert bound is not None and bound <= 2 * n - 1


class TestCyclicWord:
    def test_repeat(self):
        assert cyclic_word([1, 2], 3) == [1, 2, 1, 2, 1, 2]

    def test_zero(self):
        assert cyclic_word([1], 0) == []

    def test_negative(self):
        with pytest.raises(ValueError):
            cyclic_word([1], -1)


class TestEnumerators:
    def test_all_words_count(self):
        assert len(list(all_words(3, 2))) == 9

    def test_all_permutations_count(self):
        assert len(list(all_permutations(4))) == 24

    def test_words_cover_alphabet(self):
        words = set(all_words(2, 3))
        assert (0, 0, 0) in words and (1, 1, 1) in words


class TestStreams:
    def test_sweep_stream_cycles(self):
        s = sweep_stream(3, [2, 0, 1])
        assert list(itertools.islice(s, 6)) == [2, 0, 1, 2, 0, 1]

    def test_sweep_stream_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            sweep_stream(3, [0, 0, 1])

    def test_random_fair_stream_blocks_are_permutations(self):
        rng = np.random.default_rng(1)
        s = random_fair_stream(4, rng)
        for _ in range(5):
            block = list(itertools.islice(s, 4))
            assert sorted(block) == [0, 1, 2, 3]

    def test_random_single_stream_in_range(self):
        rng = np.random.default_rng(2)
        s = random_single_stream(5, rng)
        draws = list(itertools.islice(s, 100))
        assert all(0 <= d < 5 for d in draws)
        assert len(set(draws)) == 5  # all nodes hit within 100 draws (w.h.p.)
