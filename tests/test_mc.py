"""Streaming Monte-Carlo engine: exact-census oracle, calibration,
determinism, artifact contract, and qa wiring.

The load-bearing suites here are the *oracle* tests: at n = 12 the
attractor kernel classifies every one of the 4096 configurations
exactly, so the MC estimate's own reported confidence intervals can be
held to ground truth — a statistical test with no tunable tolerance.
Everything else (interval calibration, merge associativity, serial vs
sharded vs resumed byte-identity) guards the properties that make those
intervals trustworthy at n = 10**6, where no oracle exists.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.analysis.statistics import Z95, Z99, StreamingMoments, wilson_interval
from repro.core.automaton import CellularAutomaton
from repro.core.budget import Budget
from repro.core.energy import ThresholdNetwork
from repro.core.rules import MajorityRule
from repro.mc import (
    K_MC_COUNTS,
    MC_COUNT_FIELDS,
    McKernel,
    build_mc_estimate,
    lanes_for,
    merge_mc_counts,
    round_samples,
    sample_planes,
    write_mc_artifact,
    zero_mc_counts,
)
from repro.perf.attractor import AttractorKernel
from repro.spaces.line import Ring


def _payload_bytes(partial) -> bytes:
    """Canonical byte serialisation of a completed estimate."""
    assert partial.complete
    return json.dumps(partial.value, sort_keys=True).encode()


def _lane_states(planes: np.ndarray, n: int, lanes: int) -> np.ndarray:
    """Decode a bitplane batch into a ``(lanes, n)`` uint8 state matrix."""
    bits = np.unpackbits(
        np.ascontiguousarray(planes).view(np.uint8), axis=1, bitorder="little"
    )[:, :lanes]
    return bits.T.astype(np.uint8)


# -- exact-census statistical oracle (the acceptance gate) ---------------------


class TestExactOracle:
    """MC intervals must contain the exactly enumerable ground truth."""

    def test_parallel_n12_intervals_contain_exact_masses(self, mc_seed):
        n = 12
        ca = CellularAutomaton(Ring(n), MajorityRule(), memory=True)
        lam, _ = AttractorKernel(ca).classify(np.arange(1 << n, dtype=np.int64))
        exact_fp = float(np.mean(lam == 1))
        exact_two = float(np.mean(lam == 2))
        assert exact_fp + exact_two == 1.0  # Proposition 1 dichotomy

        kernel = McKernel(MajorityRule(), n, seed=mc_seed)
        partial = build_mc_estimate(kernel, 16384)
        est = partial.value["estimates"]
        fp_lo, fp_hi = est["fixed_point"]["ci99"]
        two_lo, two_hi = est["two_cycle"]["ci99"]
        assert fp_lo <= exact_fp <= fp_hi
        assert two_lo <= exact_two <= two_hi
        assert est["undecided"]["count"] == 0

    def test_fixed_perm_n12_all_fixed_points(self, mc_seed):
        # Theorem 1: under any fixed permutation every trajectory of a
        # symmetric threshold automaton reaches a fixed point — the exact
        # basin mass is 1.0, and the sweep kernel must agree.
        kernel = McKernel(
            MajorityRule(), 12, seed=mc_seed, schedule="sweep"
        )
        partial = build_mc_estimate(kernel, 16384)
        est = partial.value["estimates"]
        assert est["fixed_point"]["count"] == est["samples"]
        lo, hi = est["fixed_point"]["ci99"]
        assert lo <= 1.0 <= hi
        assert est["two_cycle"]["count"] == 0
        assert est["two_cycle"]["ci99"][0] == 0.0


# -- estimator calibration -----------------------------------------------------


class TestCalibration:
    def test_wilson_interval_nominal_coverage(self, mc_seed):
        rng = np.random.default_rng(mc_seed)
        p, trials, reps = 0.3, 400, 300
        covered = 0
        for _ in range(reps):
            hits = int(rng.binomial(trials, p))
            lo, hi = wilson_interval(hits, trials, Z95)
            covered += lo <= p <= hi
        # Nominal 95%; Wilson is slightly conservative, so demand >= 92%
        # (a catastrophic mis-centering would land far below this).
        assert covered / reps >= 0.92

    def test_wilson_interval_edges(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)
        lo, hi = wilson_interval(0, 50, Z99)
        assert lo == 0.0 and 0.0 < hi < 0.3
        lo, hi = wilson_interval(50, 50, Z99)
        assert 0.7 < lo < 1.0 and hi == 1.0
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(-1, 4)

    def test_streaming_moments_nominal_coverage(self, mc_seed):
        rng = np.random.default_rng(mc_seed + 1)
        true_mean, reps, draws = 10 * 0.3, 300, 200
        covered = 0
        for _ in range(reps):
            m = StreamingMoments()
            for v in rng.binomial(10, 0.3, size=draws):
                m.add(int(v))
            lo, hi = m.ci(Z95)
            covered += lo <= true_mean <= hi
        assert covered / reps >= 0.90

    def test_streaming_moments_merge_is_exact(self, mc_seed):
        rng = np.random.default_rng(mc_seed + 2)
        values = [int(v) for v in rng.integers(0, 1000, size=500)]
        whole = StreamingMoments()
        for v in values:
            whole.add(v)
        for cut in (0, 1, 137, 250, 499, 500):
            left, right = StreamingMoments(), StreamingMoments()
            for v in values[:cut]:
                left.add(v)
            for v in values[cut:]:
                right.add(v)
            left.merge(right)
            # Exact integer state => bit-for-bit identical statistics.
            assert (left.count, left.total, left.total_sq, left.maximum) == (
                whole.count, whole.total, whole.total_sq, whole.maximum
            )
            assert left.mean == whole.mean
            assert left.variance == whole.variance
            assert left.ci(Z95) == whole.ci(Z95)

    def test_merge_mc_counts_sums_and_max_merges(self):
        a, b = zero_mc_counts(), zero_mc_counts()
        a[:] = np.arange(K_MC_COUNTS)
        b[:] = 2
        imax = MC_COUNT_FIELDS.index("conv_max")
        a[imax], b[imax] = 7, 9
        merged = merge_mc_counts(a.copy(), b)
        for i, name in enumerate(MC_COUNT_FIELDS):
            if name == "conv_max":
                assert merged[i] == 9
            else:
                assert merged[i] == np.arange(K_MC_COUNTS)[i] + 2


# -- determinism: serial / sharded / resumed are byte-identical ----------------


class TestDeterminism:
    N, LANES, SAMPLES = 16, 256, 2048

    def _kernel(self, seed: int) -> McKernel:
        return McKernel(MajorityRule(), self.N, seed=seed, lanes=self.LANES)

    def test_serial_vs_process_sharded_byte_identical(self, mc_seed):
        serial = build_mc_estimate(self._kernel(mc_seed), self.SAMPLES)
        ca = CellularAutomaton(
            Ring(self.N), MajorityRule(), memory=True,
            backend="process", workers=2,
        )
        kernel = McKernel.from_automaton(ca, seed=mc_seed, lanes=self.LANES)
        sharded = build_mc_estimate(kernel, self.SAMPLES, backend=ca.backend)
        assert _payload_bytes(serial) == _payload_bytes(sharded)

    def test_budget_trip_then_resume_byte_identical(self, mc_seed):
        # chunk = 4 * lanes = 1024 samples: a 1536-state cap admits the
        # first chunk and trips on the projection of the second.
        tripped = build_mc_estimate(
            self._kernel(mc_seed), self.SAMPLES, budget=Budget(max_states=1536)
        )
        assert not tripped.complete
        assert tripped.explored == 1024
        assert tripped.frontier["kind"] == "mc"
        assert tripped.frontier["next_lo"] == 1024
        resumed = build_mc_estimate(
            self._kernel(mc_seed), self.SAMPLES, frontier=tripped.frontier
        )
        uninterrupted = build_mc_estimate(self._kernel(mc_seed), self.SAMPLES)
        assert _payload_bytes(resumed) == _payload_bytes(uninterrupted)

    def test_frontier_checkpoint_roundtrip(self, mc_seed, tmp_path):
        from repro.harness.checkpoint import load_frontier, save_frontier

        tripped = build_mc_estimate(
            self._kernel(mc_seed), self.SAMPLES, budget=Budget(max_states=1536)
        )
        save_frontier(tmp_path, tripped)
        loaded = load_frontier(tmp_path)
        assert loaded is not None and loaded["kind"] == "mc"
        resumed = build_mc_estimate(
            self._kernel(mc_seed), self.SAMPLES, frontier=loaded
        )
        uninterrupted = build_mc_estimate(self._kernel(mc_seed), self.SAMPLES)
        assert _payload_bytes(resumed) == _payload_bytes(uninterrupted)

    def test_mismatched_frontier_rejected(self, mc_seed):
        tripped = build_mc_estimate(
            self._kernel(mc_seed), self.SAMPLES, budget=Budget(max_states=1536)
        )
        other = McKernel(MajorityRule(), 18, seed=mc_seed, lanes=self.LANES)
        with pytest.raises(ValueError, match="frontier"):
            build_mc_estimate(other, self.SAMPLES, frontier=tripped.frontier)
        with pytest.raises(ValueError, match="covers"):
            build_mc_estimate(
                self._kernel(mc_seed), 2 * self.SAMPLES,
                frontier=tripped.frontier,
            )


# -- energy stream against the scalar Lyapunov ---------------------------------


class TestEnergy:
    def test_energy2_is_twice_sequential_energy(self, mc_seed):
        n, lanes = 10, 64
        ca = CellularAutomaton(Ring(n), MajorityRule(), memory=True)
        net = ThresholdNetwork.from_automaton(ca)
        kernel = McKernel(MajorityRule(), n, seed=mc_seed, lanes=lanes)
        planes = sample_planes("uniform", n, lanes, mc_seed, 0)
        e2 = kernel.energy2(planes)
        for lane, state in enumerate(_lane_states(planes, n, lanes)):
            assert e2[lane] == 2 * net.sequential_energy(state)


# -- sampler properties --------------------------------------------------------


class TestSampler:
    def test_lanes_for_scaling(self):
        assert lanes_for(12) == 1 << 14
        assert lanes_for(10**6) == 64
        for n in (12, 10**4, 10**5, 10**6):
            assert lanes_for(n) % 64 == 0
        assert lanes_for(10**4) <= lanes_for(12)

    def test_round_samples(self):
        assert round_samples(1, 256) == 256
        assert round_samples(256, 256) == 256
        assert round_samples(257, 256) == 512
        with pytest.raises(ValueError):
            round_samples(0, 256)

    def test_uniform_stream_is_batch_keyed(self, mc_seed):
        a = sample_planes("uniform", 20, 256, mc_seed, 0)
        b = sample_planes("uniform", 20, 256, mc_seed, 0)
        c = sample_planes("uniform", 20, 256, mc_seed, 256)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_density_family_hits_target_density(self, mc_seed):
        n, lanes, density = 64, 4096, 0.2
        planes = sample_planes(
            "density", n, lanes, mc_seed, 0, density=density
        )
        ones = _lane_states(planes, n, lanes).mean()
        assert abs(ones - density) < 0.02

    def test_perturb_family_flips_exactly_one_bit(self, mc_seed):
        n, lanes = 31, 256
        planes = sample_planes("perturb", n, lanes, mc_seed, 0, flips=1)
        base = np.zeros(n, dtype=np.uint8)
        base[n // 2] = 1
        states = _lane_states(planes, n, lanes)
        assert np.all((states ^ base).sum(axis=1) == 1)


# -- artifact contract ---------------------------------------------------------


class TestArtifact:
    def _payload(self, mc_seed) -> dict:
        kernel = McKernel(MajorityRule(), 12, seed=mc_seed, lanes=256)
        return build_mc_estimate(kernel, 256).value

    def test_written_artifact_is_contract_valid(self, mc_seed, tmp_path):
        from repro.contracts.dialects import McContract, contract_for

        path = tmp_path / "mc.json"
        write_mc_artifact(path, self._payload(mc_seed))
        assert contract_for(path) is not None
        assert contract_for(tmp_path / "mc-n12.json") is not None
        check = McContract().validate(path)
        assert check.status == "valid", check.detail

    def test_unbalanced_ledger_is_corrupt(self, mc_seed, tmp_path):
        from repro.contracts.dialects import McContract

        payload = self._payload(mc_seed)
        payload["counts"]["fixed_point"] += 1  # books no longer balance
        path = tmp_path / "mc.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        check = McContract().validate(path)
        assert check.status == "corrupt"
        assert "ledger" in check.detail


# -- qa wiring: applicability gate, differential checks, mutant ----------------


def _mc_spec(seed: int, n: int = 8, **overrides):
    from repro.qa.generators import InstanceSpec

    fields = dict(
        seed=seed, space="ring", n=n, radius=1, memory=True,
        rules=[{"kind": "majority"}],
        schedule={"kind": "perm", "perm": list(range(n))},
    )
    fields.update(overrides)
    return InstanceSpec(**fields)


class TestQaWiring:
    def test_mc_applicable_gate(self, mc_seed):
        from repro.qa.generators import mc_applicable

        assert mc_applicable(_mc_spec(mc_seed)) is None
        assert mc_applicable(_mc_spec(mc_seed, space="line")) is not None
        hetero = _mc_spec(
            mc_seed, n=4,
            rules=[{"kind": "majority"}, {"kind": "xor"}] * 2,
        )
        assert mc_applicable(hetero) is not None

    def test_differential_checks_clean_on_reference_kernel(self, mc_seed):
        from repro.qa.differential import run_check

        spec = _mc_spec(mc_seed)
        assert run_check(spec, "differential.mc_step", ["numpy"]) is None
        assert run_check(spec, "differential.mc_sampler", ["numpy"]) is None

    def test_tail_drop_mutant_is_caught(self, mc_seed):
        from repro.qa.differential import run_check
        from repro.qa.mutants import MUTANTS, active_mutant

        assert "mc-sampler-tail-drop" in MUTANTS
        spec = _mc_spec(mc_seed)
        with active_mutant("mc-sampler-tail-drop"):
            violation = run_check(spec, "differential.mc_sampler", ["numpy"])
        assert violation is not None
        # The oracles must see clean kernels again after the context exits.
        assert run_check(spec, "differential.mc_sampler", ["numpy"]) is None


# -- CLI -----------------------------------------------------------------------


class TestCli:
    def test_mc_smoke_writes_valid_artifact(self, mc_seed, tmp_path):
        from repro.cli import main
        from repro.contracts.dialects import McContract

        artifact = tmp_path / "mc.json"
        out = io.StringIO()
        code = main(
            ["mc", "--n", "12", "--samples", "256", "--seed", str(mc_seed),
             "--artifact", str(artifact)],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "fixed-point" in text
        assert "contract-valid" in text
        assert McContract().validate(artifact).status == "valid"
        payload = json.loads(artifact.read_text())
        assert payload["schema"] == "repro-mc/1"
        assert payload["seed"] == mc_seed

    def test_mc_usage_errors(self):
        from repro.cli import main

        for argv in (
            ["mc", "--samples", "0"],
            ["mc", "--horizon", "0"],
            ["mc", "--density", "1.5"],
            ["mc", "--flips", "-1"],
            ["mc", "--n", "2"],
            ["mc", "--rule", "threshold"],  # missing --threshold
        ):
            with pytest.raises(SystemExit):
                main(argv, out=io.StringIO())
