"""Tests for the update-rule hierarchy (repro.core.rules)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boolean import majority_function, xor_function
from repro.core.rules import (
    MajorityRule,
    SimpleThresholdRule,
    TableRule,
    TotalisticRule,
    WolframRule,
    XorRule,
    majority_table_rule,
    threshold_table_rule,
    xor_table_rule,
)


class TestTableRule:
    def test_evaluate_matches_function(self):
        rule = TableRule(majority_function(3))
        assert rule.evaluate([1, 1, 0]) == 1
        assert rule.evaluate([1, 0, 0]) == 0

    def test_arity_fixed(self):
        assert TableRule(majority_function(5)).arity == 5

    def test_apply_windows_vectorized(self):
        rule = TableRule(xor_function(2))
        inputs = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.uint8)
        lengths = np.full(4, 2)
        np.testing.assert_array_equal(
            rule.apply_windows(inputs, lengths), [0, 1, 1, 0]
        )

    def test_apply_windows_rejects_wrong_width(self):
        rule = TableRule(xor_function(2))
        with pytest.raises(ValueError):
            rule.apply_windows(np.zeros((2, 3), dtype=np.uint8), np.full(2, 3))

    def test_structure_helpers(self):
        assert TableRule(majority_function(3)).is_monotone()
        assert not TableRule(xor_function(3)).is_monotone()
        assert TableRule(xor_function(3)).is_symmetric()

    def test_from_raw_table(self):
        rule = TableRule([0, 1, 1, 0])
        assert rule.evaluate([1, 0]) == 1


class TestMajorityRule:
    def test_odd_window_strict(self):
        rule = MajorityRule()
        assert rule.evaluate([1, 1, 0]) == 1
        assert rule.evaluate([1, 0, 0]) == 0

    def test_even_window_ties_zero(self):
        assert MajorityRule(ties="zero").evaluate([1, 0]) == 0

    def test_even_window_ties_one(self):
        assert MajorityRule(ties="one").evaluate([1, 0]) == 1

    def test_rejects_bad_ties(self):
        with pytest.raises(ValueError):
            MajorityRule(ties="maybe")

    def test_flexible_arity(self):
        rule = MajorityRule()
        assert rule.evaluate([1] * 7) == 1
        assert rule.evaluate([1, 0, 0, 0, 0]) == 0

    def test_fixed_arity_enforced(self):
        rule = MajorityRule(arity=3)
        with pytest.raises(ValueError):
            rule.evaluate([1, 0])

    def test_truth_table_matches_boolean(self):
        assert MajorityRule().truth_table(3) == majority_function(3)
        assert MajorityRule().truth_table(5) == majority_function(5)

    def test_with_arity(self):
        fixed = MajorityRule().with_arity(3)
        assert fixed.arity == 3
        assert fixed.evaluate([1, 1, 0]) == 1

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=9))
    @settings(max_examples=50)
    def test_matches_counting_definition(self, bits):
        expected = int(2 * sum(bits) > len(bits))
        assert MajorityRule().evaluate(bits) == expected


class TestSimpleThresholdRule:
    def test_threshold_semantics(self):
        rule = SimpleThresholdRule(2)
        assert rule.evaluate([1, 1, 0]) == 1
        assert rule.evaluate([1, 0, 0]) == 0

    def test_threshold_zero_is_constant_one(self):
        assert SimpleThresholdRule(0).evaluate([0, 0, 0]) == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SimpleThresholdRule(-1)

    def test_majority_as_threshold(self):
        # For window width 3: majority == threshold 2.
        maj = MajorityRule()
        thr = SimpleThresholdRule(2)
        for x in range(8):
            bits = [(x >> j) & 1 for j in range(3)]
            assert maj.evaluate(bits) == thr.evaluate(bits)


class TestXorRule:
    def test_parity(self):
        rule = XorRule()
        assert rule.evaluate([1, 1]) == 0
        assert rule.evaluate([1, 0, 1, 1]) == 1

    def test_truth_table(self):
        assert XorRule().truth_table(3) == xor_function(3)


class TestTotalisticRule:
    def test_profile_semantics(self):
        # Fires on exactly one or exactly three ones (3-input XOR).
        rule = TotalisticRule([0, 1, 0, 1])
        assert rule.arity == 3
        assert rule.evaluate([1, 0, 0]) == 1
        assert rule.evaluate([1, 1, 0]) == 0
        assert rule.evaluate([1, 1, 1]) == 1

    def test_rejects_bad_profile(self):
        with pytest.raises(ValueError):
            TotalisticRule([])
        with pytest.raises(ValueError):
            TotalisticRule([0, 2])

    def test_single_entry_profile_is_arity_zero(self):
        rule = TotalisticRule([1])
        assert rule.arity == 0
        assert rule.evaluate([]) == 1
        assert rule.lut(0).tolist() == [1]

    def test_profile_readonly(self):
        rule = TotalisticRule([0, 1])
        with pytest.raises(ValueError):
            rule.profile[0] = 1


class TestWolframRule:
    def test_rule_232_equals_majority(self):
        maj = MajorityRule()
        wolf = WolframRule(232)
        for x in range(8):
            bits = [(x >> j) & 1 for j in range(3)]
            assert wolf.evaluate(bits) == maj.evaluate(bits)

    def test_name_carries_number(self):
        assert "110" in WolframRule(110).name


class TestFactoryHelpers:
    def test_majority_table_rule(self):
        rule = majority_table_rule(5)
        assert rule.arity == 5
        assert rule.evaluate([1, 1, 1, 0, 0]) == 1

    def test_threshold_table_rule(self):
        rule = threshold_table_rule(3, 1)
        assert rule.evaluate([0, 0, 1]) == 1
        assert rule.evaluate([0, 0, 0]) == 0

    def test_xor_table_rule(self):
        rule = xor_table_rule(2)
        assert rule.evaluate([1, 1]) == 0

    def test_table_and_symmetric_rules_agree_vectorized(self):
        sym = MajorityRule()
        tab = majority_table_rule(3)
        inputs = np.array(
            [[(x >> j) & 1 for j in range(3)] for x in range(8)], dtype=np.uint8
        )
        lengths = np.full(8, 3)
        np.testing.assert_array_equal(
            sym.apply_windows(inputs, lengths), tab.apply_windows(inputs, lengths)
        )


class TestSymmetricVectorization:
    @given(st.integers(min_value=0, max_value=2**12 - 1))
    @settings(max_examples=40)
    def test_apply_windows_matches_evaluate(self, seed):
        rng = np.random.default_rng(seed)
        inputs = rng.integers(0, 2, size=(6, 4)).astype(np.uint8)
        lengths = np.full(6, 4)
        for rule in (MajorityRule(), SimpleThresholdRule(2), XorRule()):
            vec = rule.apply_windows(inputs, lengths)
            scalar = [rule.evaluate(list(row)) for row in inputs]
            assert vec.tolist() == scalar
