"""Tests for the cross-run sqlite index (repro.obs.index) and `repro runs`.

The fixture below materialises one artifact of each of the five dialects
the library emits — an obs manifest run, a harness journal (with a torn
trailing line and an in-flight experiment), a truncated-sweep frontier,
a ``BENCH_*.json`` report and a qa finding — and the tests round-trip
all of them through :meth:`RunIndex.index_run` and the CLI.
"""

from __future__ import annotations

import io
import json
import sqlite3
import time

import pytest

from repro import obs
from repro.cli import main
from repro.obs.index import RunIndex, bench_medians, compare_medians
from repro.qa.findings import Finding


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.clear_sinks()
    obs.REGISTRY.reset()
    yield
    obs.disable()
    obs.clear_sinks()
    obs.REGISTRY.reset()


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def _write_bench(path, medians, generated="2026-01-01T00:00:00+0000"):
    payload = {
        "schema": "repro-bench/1",
        "module": "bench_demo",
        "generated": generated,
        "exit_status": 0,
        "environment": {"python": "3.11", "backend": "auto"},
        "benchmarks": [
            {
                "name": name.rsplit("::", 1)[-1],
                "fullname": name,
                "stats": {
                    "median_s": median,
                    "mean_s": median * 1.1,
                    "min_s": median * 0.9,
                    "max_s": median * 1.3,
                    "total_s": median * 5,
                    "rounds": 5,
                },
            }
            for name, median in medians.items()
        ],
        "metrics": {"counters": {"bench.runs": 1}},
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


@pytest.fixture
def five_dialects(tmp_path):
    """One artifact tree holding every dialect, some deliberately torn."""
    # 1. obs manifest run (traced, so it carries spans + timers)
    obs.enable()
    with obs.RunArtifacts(tmp_path / "run1", command="phase-space") as run:
        with obs.span("phase_space.build", n=6):
            with obs.span("phase_space.global_map"):
                pass
    obs.disable()
    manifest_id = run.manifest["run_id"]
    obs.REGISTRY.reset()

    # 2. harness journal: one ok finish, one in-flight, one torn line
    hdir = tmp_path / "harness1"
    hdir.mkdir()
    t0 = time.time()
    (hdir / "journal.jsonl").write_text(
        json.dumps({"ev": "start", "id": "E1", "attempt": 1, "ts": t0})
        + "\n"
        + json.dumps({"ev": "finish", "id": "E1", "status": "ok",
                      "holds": True, "duration_s": 1.5, "ts": t0 + 1.5})
        + "\n"
        + json.dumps({"ev": "start", "id": "E2", "attempt": 1, "ts": t0 + 2})
        + "\n"
        + '{"ev": "finish", "id": "E2", "stat',  # torn mid-write
        encoding="utf-8",
    )
    (hdir / "checkpoint.json").write_text(
        json.dumps({"updated": t0 + 2, "results": {"E1": {"status": "ok"}}}),
        encoding="utf-8",
    )

    # 3. budget frontier left by a truncated sweep
    fdir = tmp_path / "frontier1"
    fdir.mkdir()
    (fdir / "frontier.json").write_text(
        json.dumps({
            "kind": "phase_space", "n": 14, "next_lo": 4096,
            "explored": 4096, "reason": "states: 4096 >= 4096",
            "stats": {"fixed_points": 7}, "saved_ts": t0,
        }),
        encoding="utf-8",
    )

    # 4. benchmark report
    _write_bench(
        tmp_path / "BENCH_demo.json",
        {"benchmarks/bench_demo.py::test_sweep": 0.25},
    )

    # 5. qa finding
    finding = Finding(
        check="parallel_vs_backend",
        detail={"config": 3},
        spec={"n": 4, "seed": 9},
        backends=["numpy"],
        shrunk=True,
        shrink_steps=2,
    )
    finding.save(tmp_path / "findings")

    return tmp_path, manifest_id


class TestIngestion:
    def test_all_five_dialects_round_trip(self, five_dialects, tmp_path):
        root, manifest_id = five_dialects
        with RunIndex(tmp_path / "idx.sqlite") as idx:
            ingested = idx.index_run(root)
            assert len(ingested) == 5
            kinds = {r["kind"] for r in idx.list_runs()}
            assert kinds == {"manifest", "harness", "frontier", "bench",
                             "finding"}

            run = idx.get_run(manifest_id)
            assert run["status"] == "complete"
            assert run["command"] == "phase-space"
            counts = idx.counts(manifest_id)
            assert counts["spans"] == 2  # build + global_map
            assert counts["metrics"] >= 2

            harness = next(
                r for r in idx.list_runs(kind="harness")
            )
            extra = json.loads(harness["extra"])
            assert extra["in_flight"] == ["E2"]
            assert extra["skipped_journal_lines"] == 1  # the torn line
            assert harness["status"] == "in-progress"
            # the finished experiment indexed as a 1-count timer
            assert idx.timer_medians(harness["run_id"]) == {
                "experiment.E1": 1.5
            }

            frontier = next(r for r in idx.list_runs(kind="frontier"))
            assert frontier["status"] == "truncated"
            assert json.loads(frontier["extra"])["next_lo"] == 4096

            bench = next(r for r in idx.list_runs(kind="bench"))
            assert idx.timer_medians(bench["run_id"])[
                "benchmarks/bench_demo.py::test_sweep"
            ] == 0.25

            finding = next(r for r in idx.list_runs(kind="finding"))
            rows = idx.run_findings(finding["run_id"])
            assert rows[0]["check_name"] == "parallel_vs_backend"
            assert rows[0]["shrunk"] == 1

    def test_reindex_is_idempotent(self, five_dialects, tmp_path):
        root, manifest_id = five_dialects
        with RunIndex(tmp_path / "idx.sqlite") as idx:
            idx.index_run(root)
            before = idx.counts(manifest_id)
            ids = idx.index_run(root)
            assert len(ids) == 5
            assert len(idx.list_runs()) == 5
            assert idx.counts(manifest_id) == before

    def test_unfinalized_manifest_indexes_in_progress(self, tmp_path):
        obs.RunArtifacts(tmp_path / "crashed", command="doomed")
        with RunIndex(tmp_path / "idx.sqlite") as idx:
            [rid] = idx.index_run(tmp_path / "crashed")
            assert idx.get_run(rid)["status"] == "in-progress"

    def test_single_file_ingestion(self, tmp_path):
        bench = _write_bench(tmp_path / "BENCH_x.json", {"t::a": 0.1})
        with RunIndex(tmp_path / "idx.sqlite") as idx:
            [rid] = idx.index_run(bench)
            assert idx.get_run(rid)["kind"] == "bench"
        with pytest.raises(FileNotFoundError):
            with RunIndex(tmp_path / "idx2.sqlite") as idx:
                idx.index_run(tmp_path / "absent")

    def test_newer_schema_is_refused(self, tmp_path):
        db = tmp_path / "idx.sqlite"
        conn = sqlite3.connect(db)
        conn.execute("PRAGMA user_version = 99")
        conn.commit()
        conn.close()
        with pytest.raises(RuntimeError, match="newer"):
            RunIndex(db)


class TestQueries:
    def test_resolve_run_by_unique_prefix(self, five_dialects, tmp_path):
        root, manifest_id = five_dialects
        with RunIndex(tmp_path / "idx.sqlite") as idx:
            idx.index_run(root)
            assert idx.resolve_run(manifest_id[:10])["run_id"] == manifest_id
            with pytest.raises(KeyError, match="no indexed run"):
                idx.resolve_run("zzz")

    def test_resolve_run_ambiguous(self, tmp_path):
        _write_bench(tmp_path / "BENCH_a.json", {"t::x": 0.1})
        _write_bench(tmp_path / "BENCH_b.json", {"t::y": 0.1})
        with RunIndex(tmp_path / "idx.sqlite") as idx:
            idx.index_run(tmp_path)
            with pytest.raises(KeyError, match="ambiguous"):
                idx.resolve_run("bench-demo")

    def test_gc_drops_deleted_artifacts_and_keeps_n(self, tmp_path):
        a = _write_bench(tmp_path / "BENCH_a.json", {"t::x": 0.1})
        _write_bench(tmp_path / "BENCH_b.json", {"t::y": 0.1})
        with RunIndex(tmp_path / "idx.sqlite") as idx:
            idx.index_run(tmp_path)
            assert len(idx.list_runs()) == 2
            a.unlink()
            assert idx.gc() == 1
            remaining = idx.list_runs()
            assert len(remaining) == 1
            assert idx.gc(keep=1) == 0  # the one survivor is kept
            assert len(idx.timer_medians(remaining[0]["run_id"])) == 1


class TestCompareMedians:
    def test_regression_trips_and_new_missing_do_not(self):
        baseline = {"a": 0.1, "b": 0.1, "gone": 0.5}
        current = {"a": 0.15, "b": 0.35, "fresh": 0.2}
        lines, failed = compare_medians(baseline, current, 2.0)
        assert failed
        text = "\n".join(lines)
        assert "REGRESSED" in text and "b:" in text
        assert "NEW" in text and "MISSING" in text
        lines, failed = compare_medians({"a": 0.1}, {"a": 0.19}, 2.0)
        assert not failed

    def test_bench_medians_matches_compare_bench_loader(self, tmp_path):
        from benchmarks.compare_bench import load_medians

        path = _write_bench(tmp_path / "BENCH_x.json", {"t::a": 0.125})
        assert bench_medians(path) == load_medians(path) == {"t::a": 0.125}


class TestRunsCli:
    def test_index_list_show_gc(self, five_dialects, tmp_path, monkeypatch):
        root, manifest_id = five_dialects
        db = tmp_path / "idx.sqlite"
        code, text = run_cli("runs", "index", str(root), "--db", str(db))
        assert code == 0
        assert "indexed 5 run(s)" in text

        code, text = run_cli("runs", "list", "--db", str(db))
        assert code == 0
        for kind in ("manifest", "harness", "frontier", "bench", "finding"):
            assert kind in text

        code, text = run_cli("runs", "list", "--kind", "bench",
                             "--db", str(db))
        assert code == 0
        assert "bench_demo" in text and "harness" not in text

        code, text = run_cli("runs", "show", manifest_id[:10],
                             "--db", str(db))
        assert code == 0
        assert "phase_space.build" in text and "spans=2" in text

        code, text = run_cli("runs", "gc", "--db", str(db))
        assert code == 0
        assert "dropped 0 run(s)" in text

        # the env var is honoured when --db is absent
        monkeypatch.setenv("REPRO_RUNS_DB", str(db))
        code, text = run_cli("runs", "list")
        assert code == 0
        assert "bench_demo" in text

    def test_missing_db_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no run index"):
            run_cli("runs", "list", "--db", str(tmp_path / "absent.sqlite"))

    def test_compare_exits_nonzero_on_regression(self, tmp_path):
        (tmp_path / "a").mkdir()
        _write_bench(tmp_path / "a" / "BENCH_demo.json", {"t::sweep": 0.1},
                     generated="2026-01-01T00:00:00+0000")
        (tmp_path / "b").mkdir()
        _write_bench(tmp_path / "b" / "BENCH_demo.json", {"t::sweep": 0.45},
                     generated="2026-01-02T00:00:00+0000")
        db = tmp_path / "idx.sqlite"
        code, text = run_cli("runs", "index", str(tmp_path / "a"),
                             str(tmp_path / "b"), "--db", str(db))
        assert code == 0
        ids = [ln.strip() for ln in text.splitlines()[1:]]
        assert len(ids) == 2
        code, text = run_cli("runs", "compare", ids[0], ids[1],
                             "--db", str(db))
        assert code == 1  # 4.5x > the 2x tolerance
        assert "REGRESSED" in text
        # a wider tolerance lets the same pair pass
        code, text = run_cli("runs", "compare", ids[0], ids[1],
                             "--tolerance", "5.0", "--db", str(db))
        assert code == 0
        assert "OK" in text

    def test_compare_without_timers_exits_2(self, five_dialects, tmp_path):
        root, _ = five_dialects
        db = tmp_path / "idx.sqlite"
        run_cli("runs", "index", str(root), "--db", str(db))
        with RunIndex(db) as idx:
            finding = next(r for r in idx.list_runs(kind="finding"))
            bench = next(r for r in idx.list_runs(kind="bench"))
        code, _ = run_cli("runs", "compare", finding["run_id"],
                          bench["run_id"], "--db", str(db))
        assert code == 2

    def test_tolerance_validation(self, tmp_path):
        with pytest.raises(SystemExit, match="tolerance"):
            run_cli("runs", "compare", "a", "b", "--tolerance", "0.5",
                    "--db", str(tmp_path / "x.sqlite"))


class TestProfileCli:
    def test_profile_speedscope_accounts_for_wall_time(self, tmp_path):
        """Acceptance: root spans cover >=90% of the measured wall time."""
        target = tmp_path / "prof.json"
        t0 = time.perf_counter()
        code, _ = run_cli("phase-space", "--n", "20",
                          "--profile", str(target))
        wall = time.perf_counter() - t0
        assert code == 0
        doc = json.loads(target.read_text())
        assert doc["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json"
        )
        prof = doc["profiles"][0]
        assert prof["type"] == "evented" and prof["unit"] == "seconds"
        # the cli.* root span brackets the dispatch, so the profile's
        # total extent must land within 10% of the wall clock we measured
        assert prof["endValue"] == pytest.approx(wall, rel=0.10)
        frames = {f["name"] for f in doc["shared"]["frames"]}
        assert "cli.phase-space" in frames
        assert "phase_space.build" in frames

    def test_profile_collapsed_format(self, tmp_path):
        target = tmp_path / "prof.collapsed"
        code, _ = run_cli("phase-space", "--n", "8", "--profile",
                          str(target), "--profile-format", "collapsed")
        assert code == 0
        lines = target.read_text().strip().splitlines()
        assert lines
        stacks = {ln.rsplit(" ", 1)[0] for ln in lines}
        assert any(s.startswith("cli.phase-space;") for s in stacks)
        assert all(int(ln.rsplit(" ", 1)[1]) > 0 for ln in lines)

    def test_profile_on_stats_subcommand(self, tmp_path):
        target = tmp_path / "prof.json"
        code, _ = run_cli("stats", "--profile", str(target))
        assert code == 0
        doc = json.loads(target.read_text())
        assert {f["name"] for f in doc["shared"]["frames"]} == {"cli.stats"}
