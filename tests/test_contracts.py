"""Tests for the artifact contracts + ``repro doctor`` (repro.contracts).

The fixture materialises a run tree holding every one of the five
dialects through the real writer APIs, then the tests damage it in the
ways a crash (or bit rot) actually does and assert the classification
(valid / truncated-recoverable / corrupt), the repairs (torn-tail
rewrite, snapshot-from-journal, sqlite rebuild, sidecar refresh), the
quarantine behaviour, and the doctor CLI's exit codes.
"""

from __future__ import annotations

import io
import json
import sqlite3
from types import SimpleNamespace

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.contracts import (
    CORRUPT,
    TRUNCATED,
    VALID,
    contract_for,
    diagnose,
    run_doctor,
)
from repro.contracts.dialects import DIALECTS
from repro.core import durable
from repro.harness.checkpoint import Checkpoint, save_frontier
from repro.obs.index import RunIndex, check_database, open_with_recovery
from repro.qa.findings import Finding


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.clear_sinks()
    obs.REGISTRY.reset()
    yield
    obs.disable()
    obs.clear_sinks()
    obs.REGISTRY.reset()


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def _fake_partial(n=4, next_lo=8):
    total = 2**n
    succ = np.arange(total, dtype=np.int64)
    return SimpleNamespace(
        frontier={
            "kind": "phase_space", "n": n, "total": total,
            "next_lo": next_lo, "fixed_points_so_far": 0, "succ": succ,
        },
        explored=next_lo,
        reason="states: test",
        stats={"fixed_points": 0},
    )


@pytest.fixture
def run_tree(tmp_path):
    """A healthy tree holding all five dialects, written by the real APIs."""
    obs.enable()
    with obs.RunArtifacts(tmp_path / "obsrun", command="phase-space") as run:
        with obs.span("phase_space.build", n=4):
            pass
    obs.disable()
    obs.REGISTRY.reset()

    hdir = tmp_path / "harness"
    cp = Checkpoint(hdir)
    cp.record_start("E1")
    cp.record_finish(
        "E1", {"status": "ok", "holds": True, "duration_s": 0.5}
    )
    cp.close()

    save_frontier(tmp_path / "sweep", _fake_partial())

    durable.durable_write_json(
        tmp_path / "BENCH_demo.json",
        {
            "schema": "repro-bench/1",
            "module": "bench_demo",
            "generated": "2026-01-01T00:00:00+0000",
            "exit_status": 0,
            "environment": {"python": "3.11"},
            "benchmarks": [],
            "metrics": {},
        },
        checksum=False,
    )

    Finding(
        check="differential.step_all",
        detail={"codes": [3]},
        spec={"n": 4, "rule": "majority"},
        backends=["numpy", "table"],
    ).save(tmp_path / "findings")
    return tmp_path


class TestDialectContracts:
    def test_every_dialect_validates_clean(self, run_tree):
        checks = diagnose(run_tree)
        assert checks, "diagnose found no artifacts"
        assert {c.status for c in checks} == {VALID}
        dialects = {c.dialect for c in checks}
        assert {"obs", "harness", "frontier", "bench", "finding"} <= dialects

    def test_declared_dialects(self):
        assert set(DIALECTS) == {
            "obs", "harness", "frontier", "bench", "finding", "mc"
        }
        for contracts in DIALECTS.values():
            for contract in contracts:
                assert contract.schema and "/" in contract.schema

    def test_contract_for_routing(self, tmp_path):
        assert contract_for(tmp_path / "manifest.json").name == "obs"
        assert contract_for(tmp_path / "journal.jsonl").name == "harness"
        assert contract_for(tmp_path / "frontier_succ.npy").name == "frontier"
        assert contract_for(tmp_path / "BENCH_x.json").name == "bench"
        assert contract_for(tmp_path / "finding-a-b.json").name == "finding"
        assert contract_for(tmp_path / "random.txt") is None

    def test_schema_mismatch_is_corrupt(self, run_tree):
        snap = run_tree / "harness" / "checkpoint.json"
        data = json.loads(snap.read_text())
        data["schema"] = "repro-checkpoint/99"
        snap.write_text(json.dumps(data))
        check = contract_for(snap).validate(snap)
        assert check.status == CORRUPT
        assert "repro-checkpoint/99" in check.detail

    def test_missing_required_field_is_corrupt(self, run_tree):
        snap = run_tree / "harness" / "checkpoint.json"
        snap.write_text(json.dumps({"schema": "repro-checkpoint/1"}))
        check = contract_for(snap).validate(snap)
        assert check.status == CORRUPT
        assert check.repair == "rebuild-from-journal"

    def test_torn_jsonl_tail_is_truncated(self, run_tree):
        journal = run_tree / "harness" / "journal.jsonl"
        with open(journal, "a") as fh:
            fh.write('{"ev": "finish", "id"')
        check = contract_for(journal).validate(journal)
        assert check.status == TRUNCATED
        assert check.repair == "rewrite-valid-records"
        assert "torn tail" in check.detail

    def test_midfile_crc_mismatch_is_truncated_and_flagged(self, run_tree):
        journal = run_tree / "harness" / "journal.jsonl"
        lines = journal.read_text().splitlines()
        lines[0] = lines[0].replace('"start"', '"sabot"')
        journal.write_text("\n".join(lines) + "\n")
        check = contract_for(journal).validate(journal)
        assert check.status == TRUNCATED
        assert "mid-file" in check.detail

    def test_finding_digest_tamper_is_corrupt(self, run_tree):
        path = next((run_tree / "findings").glob("finding-*.json"))
        data = json.loads(path.read_text())
        data["spec"]["n"] = 99  # spec no longer matches the digest
        path.write_text(json.dumps(data))
        check = contract_for(path).validate(path)
        assert check.status == CORRUPT

    def test_frontier_array_tamper_detected(self, run_tree):
        array = run_tree / "sweep" / "frontier_succ.npy"
        raw = bytearray(array.read_bytes())
        raw[-128] ^= 0xFF  # first data byte: inside the stamped prefix
        array.write_bytes(bytes(raw))
        meta_check = contract_for(
            run_tree / "sweep" / "frontier.json"
        ).validate(run_tree / "sweep" / "frontier.json")
        assert meta_check.status == TRUNCATED
        assert meta_check.repair == "quarantine-frontier"
        array_check = contract_for(array).validate(array)
        assert array_check.status == TRUNCATED

    def test_orphaned_frontier_array(self, run_tree):
        (run_tree / "sweep" / "frontier.json").unlink()
        array = run_tree / "sweep" / "frontier_succ.npy"
        check = contract_for(array).validate(array)
        assert check.status == TRUNCATED
        assert "orphaned" in check.detail


class TestDoctor:
    def test_clean_tree_exit_0(self, run_tree):
        report = run_doctor(run_tree)
        assert report["exit_code"] == 0
        assert report["clean"] is True
        assert (run_tree / "doctor_report.json").exists()
        written = json.loads((run_tree / "doctor_report.json").read_text())
        assert written["schema"] == "repro-doctor-report/1"

    def test_torn_tail_repair(self, run_tree):
        journal = run_tree / "harness" / "journal.jsonl"
        before = journal.read_text()
        with open(journal, "a") as fh:
            fh.write('{"ev": "finish", "id"')
        report = run_doctor(run_tree)
        assert report["exit_code"] == 1
        assert any(
            r["action"] == "rewrite-valid-records" for r in report["repairs"]
        )
        assert journal.read_text() == before
        assert run_doctor(run_tree)["exit_code"] == 0

    def test_snapshot_rebuilt_from_journal(self, run_tree):
        snap = run_tree / "harness" / "checkpoint.json"
        snap.unlink()
        durable.sidecar_path(snap).unlink()
        report = run_doctor(run_tree)
        assert report["exit_code"] == 1
        rebuilt = json.loads(snap.read_text())
        assert rebuilt["recovered"] is True
        assert rebuilt["results"]["E1"]["status"] == "ok"
        assert rebuilt["results"]["E1"]["recovered"] is True
        # The regenerated snapshot resumes exactly like the original.
        cp = Checkpoint(run_tree / "harness")
        assert "E1" in cp.completed()
        cp.close()

    def test_corrupt_snapshot_quarantined_then_rebuilt(self, run_tree):
        snap = run_tree / "harness" / "checkpoint.json"
        snap.write_text('{"schema": "repro-checkpoint/1", "resu')
        report = run_doctor(run_tree)
        assert report["exit_code"] == 1
        assert json.loads(snap.read_text())["recovered"] is True
        quarantined = list((run_tree / "quarantine").iterdir())
        assert any("checkpoint.json" in p.name for p in quarantined)

    def test_corrupt_finding_quarantined(self, run_tree):
        path = next((run_tree / "findings").glob("finding-*.json"))
        path.write_text("not json {{{")
        report = run_doctor(run_tree)
        assert report["exit_code"] == 1
        assert not path.exists()
        assert any(
            path.name in p.name
            for p in (run_tree / "quarantine").iterdir()
        )
        assert run_doctor(run_tree)["exit_code"] == 0

    def test_torn_frontier_quarantined(self, run_tree):
        array = run_tree / "sweep" / "frontier_succ.npy"
        raw = bytearray(array.read_bytes())
        raw[-128] ^= 0xFF  # first data byte: inside the stamped prefix
        array.write_bytes(bytes(raw))
        report = run_doctor(run_tree)
        assert report["exit_code"] == 1
        assert not array.exists()
        assert not (run_tree / "sweep" / "frontier.json").exists()
        assert run_doctor(run_tree)["exit_code"] == 0

    def test_stale_tmp_quarantined(self, run_tree):
        tmp = run_tree / "harness" / "checkpoint.json.tmp"
        tmp.write_text('{"half": ')
        report = run_doctor(run_tree)
        assert report["exit_code"] == 1
        assert not tmp.exists()

    def test_stale_sidecar_refreshed(self, run_tree):
        snap = run_tree / "harness" / "checkpoint.json"
        # Crash window: payload replaced, sidecar not yet refreshed.
        data = json.loads(snap.read_text())
        data["updated"] = 1.0
        snap.write_text(json.dumps(data))
        assert durable.verify_sidecar(snap) == "stale"
        report = run_doctor(run_tree)
        assert report["exit_code"] == 1
        assert any(
            r["action"] == "refresh-sidecar" for r in report["repairs"]
        )
        assert durable.verify_sidecar(snap) == "ok"

    def test_orphaned_sidecar_quarantined(self, run_tree):
        orphan = run_tree / "gone.json.sum"
        orphan.write_text("sha256:00:0\n")
        report = run_doctor(run_tree)
        assert report["exit_code"] == 1
        assert not orphan.exists()

    def test_no_repair_reports_only(self, run_tree):
        journal = run_tree / "harness" / "journal.jsonl"
        damaged = journal.read_text() + '{"ev": "finish", "id'
        journal.write_text(damaged)
        report = run_doctor(run_tree, repair=False)
        assert report["exit_code"] == 1
        assert report["repairs"] == []
        assert journal.read_text() == damaged  # untouched

    def test_no_repair_corrupt_exit_2(self, run_tree):
        path = next((run_tree / "findings").glob("finding-*.json"))
        path.write_text("not json")
        report = run_doctor(run_tree, repair=False)
        assert report["exit_code"] == 2
        assert path.exists()

    def test_corrupt_sqlite_rebuilt(self, run_tree):
        db = run_tree / "runs_index.sqlite"
        db.write_bytes(b"x" * 64)
        report = run_doctor(run_tree)
        assert report["exit_code"] == 1
        assert any(r["action"] == "rebuild-index" for r in report["repairs"])
        assert check_database(db) is None
        with RunIndex(db) as idx:
            kinds = {r["kind"] for r in idx.list_runs()}
        assert "harness" in kinds  # rebuilt from the surviving artifacts


class TestDoctorCLI:
    def test_exit_codes_and_json(self, run_tree):
        code, out = run_cli("doctor", str(run_tree))
        assert code == 0
        assert "consistent" in out
        with open(run_tree / "harness" / "journal.jsonl", "a") as fh:
            fh.write('{"ev": "finish"')
        code, out = run_cli("doctor", str(run_tree), "--json")
        assert code == 1
        report = json.loads(out)
        assert report["exit_code"] == 1
        code, _ = run_cli("doctor", str(run_tree))
        assert code == 0

    def test_no_repair_flag(self, run_tree):
        path = next((run_tree / "findings").glob("finding-*.json"))
        path.write_text("not json")
        code, out = run_cli("doctor", str(run_tree), "--no-repair")
        assert code == 2
        assert path.exists()
        code, _ = run_cli("doctor", str(run_tree))
        assert code == 1

    def test_missing_dir_is_usage_error(self):
        with pytest.raises(SystemExit):
            run_cli("doctor", "/no/such/dir")


class TestSqliteRecovery:
    def test_open_with_recovery_clean(self, tmp_path):
        idx, recovery = open_with_recovery(tmp_path / "db.sqlite")
        idx.close()
        assert recovery is None

    def test_garbage_file_moved_aside_and_rebuilt(self, run_tree):
        db = run_tree / "runs_index.sqlite"
        db.write_bytes(b"definitely not sqlite")
        idx, recovery = open_with_recovery(db, rebuild_from=[run_tree])
        with idx:
            assert recovery is not None
            assert "not a readable sqlite" in recovery["problem"]
            assert recovery["reindexed"]
            assert idx.list_runs()
        assert db.with_name("runs_index.sqlite.corrupt").exists()

    def test_newer_schema_moved_aside(self, tmp_path):
        db = tmp_path / "db.sqlite"
        conn = sqlite3.connect(db)
        conn.execute("PRAGMA user_version = 99")
        conn.execute("CREATE TABLE future (x)")
        conn.commit()
        conn.close()
        # Direct construction still refuses (the conservative default)...
        with pytest.raises(RuntimeError):
            RunIndex(db)
        # ...while recovery moves it aside and starts fresh.
        idx, recovery = open_with_recovery(db)
        idx.close()
        assert recovery is not None
        assert "schema v99" in recovery["problem"]
        assert db.with_name("db.sqlite.corrupt").exists()

    def test_cli_runs_list_recovers(self, run_tree, capsys):
        db = run_tree / "runs_index.sqlite"
        code, _ = run_cli("runs", "index", str(run_tree), "--db", str(db))
        assert code == 0
        db.write_bytes(b"garbage " * 100)
        code, out = run_cli("runs", "list", "--db", str(db))
        assert code == 0  # no raw sqlite3.DatabaseError traceback
        err = capsys.readouterr().err
        assert "moved the damaged database" in err
        # The rebuilt (empty) index works; re-ingesting restores rows.
        code, out = run_cli("runs", "index", str(run_tree), "--db", str(db))
        assert code == 0
        code, out = run_cli("runs", "list", "--db", str(db))
        assert "harness" in out
