"""Tests for the granularity comparison (repro.interleave.programs)."""

import pytest

from repro.interleave.programs import (
    AtomicAdd,
    compile_statement,
    granularity_report,
    high_level_sequential_outcomes,
    parallel_outcomes,
    tosic_agha_example,
)


def x_values(outcomes):
    return sorted(dict(o)["x"] for o in outcomes)


class TestAtomicAdd:
    def test_apply(self):
        store = {"x": 3}
        AtomicAdd("x", 4).apply(store)
        assert store["x"] == 7

    def test_apply_rejects_unknown(self):
        with pytest.raises(KeyError):
            AtomicAdd("y", 1).apply({"x": 0})


class TestCompile:
    def test_three_instructions(self):
        thread = compile_statement(AtomicAdd("x", 2), "T0")
        assert len(thread) == 3
        assert thread.name == "T0"


class TestHighLevelSemantics:
    def test_commutative_adds_single_outcome(self):
        outs = high_level_sequential_outcomes(
            [AtomicAdd("x", 1), AtomicAdd("x", 2)], {"x": 0}
        )
        assert x_values(outs) == [3]

    def test_three_statements(self):
        outs = high_level_sequential_outcomes(
            [AtomicAdd("x", 1)] * 3, {"x": 0}
        )
        assert x_values(outs) == [3]


class TestParallelSemantics:
    def test_write_collision_outcomes(self):
        outs = parallel_outcomes([AtomicAdd("x", 1), AtomicAdd("x", 2)], {"x": 0})
        assert x_values(outs) == [1, 2]

    def test_disjoint_variables_deterministic(self):
        outs = parallel_outcomes(
            [AtomicAdd("x", 1), AtomicAdd("y", 2)], {"x": 0, "y": 0}
        )
        assert len(outs) == 1
        assert dict(next(iter(outs))) == {"x": 1, "y": 2}

    def test_rejects_unknown_variable(self):
        with pytest.raises(KeyError):
            parallel_outcomes([AtomicAdd("z", 1)], {"x": 0})


class TestGranularityReport:
    def test_paper_example(self):
        rep = tosic_agha_example()
        assert x_values(rep.high_level_outcomes) == [3]
        assert x_values(rep.parallel_outcomes_) == [1, 2]
        assert x_values(rep.machine_outcomes) == [1, 2, 3]
        assert rep.machine_interleavings == 20
        assert rep.parallel_escapes_high_level
        assert rep.machine_captures_parallel
        assert rep.machine_captures_high_level

    def test_single_statement_no_escape(self):
        rep = granularity_report([AtomicAdd("x", 1)], {"x": 0})
        assert not rep.parallel_escapes_high_level
        assert rep.machine_captures_parallel

    def test_three_way_report(self):
        rep = granularity_report(
            [AtomicAdd("x", 1), AtomicAdd("x", 1)], {"x": 0}
        )
        # Identical increments: parallel gives 1, sequential 2, machine both.
        assert x_values(rep.high_level_outcomes) == [2]
        assert x_values(rep.parallel_outcomes_) == [1]
        assert x_values(rep.machine_outcomes) == [1, 2]
