"""Tests for functional-graph isomorphism (repro.analysis.isomorphism)."""

import itertools

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.isomorphism import (
    canonical_form,
    functional_graphs_isomorphic,
    phase_spaces_isomorphic,
)
from repro.core.automaton import CellularAutomaton
from repro.core.phase_space import PhaseSpace
from repro.core.rules import MajorityRule, XorRule
from repro.sds.sds import SDS
from repro.spaces.graph import GraphSpace
from repro.spaces.line import Ring


def relabel(succ: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """The conjugate map: relabel states by ``perm``."""
    out = np.empty_like(succ)
    out[perm] = perm[succ]
    return out


class TestCanonicalForm:
    def test_identity_maps(self):
        assert canonical_form(np.arange(4)) == canonical_form(np.arange(4))
        # n fixed points vs n-cycle: different forms.
        cycle = np.roll(np.arange(4), -1)
        assert canonical_form(np.arange(4)) != canonical_form(cycle)

    def test_rotation_of_trees_around_cycle(self):
        # Two 2-cycles, one with a tail on node A, the other on node B:
        # isomorphic (rotate the cycle).
        a = np.array([1, 0, 0])  # tail 2 -> 0, cycle 0 <-> 1
        b = np.array([1, 0, 1])  # tail 2 -> 1, same cycle
        assert functional_graphs_isomorphic(a, b)

    def test_tail_depth_distinguishes(self):
        shallow = np.array([0, 0, 0])          # two tails of depth 1
        deep = np.array([0, 0, 1])             # a chain 2 -> 1 -> 0
        assert not functional_graphs_isomorphic(shallow, deep)

    def test_size_mismatch(self):
        assert not functional_graphs_isomorphic(np.arange(3), np.arange(4))

    @given(st.lists(st.integers(0, 9), min_size=10, max_size=10),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_conjugation_invariance(self, succ_list, seed):
        succ = np.array(succ_list)
        perm = np.random.default_rng(seed).permutation(10)
        assert functional_graphs_isomorphic(succ, relabel(succ, perm))

    @given(st.lists(st.integers(0, 7), min_size=8, max_size=8),
           st.lists(st.integers(0, 7), min_size=8, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_equal_form_implies_same_statistics(self, a_list, b_list):
        a, b = np.array(a_list), np.array(b_list)
        if functional_graphs_isomorphic(a, b):
            from repro.analysis.cycles import FunctionalGraph

            fa, fb = FunctionalGraph(a), FunctionalGraph(b)
            assert sorted(map(len, fa.cycles)) == sorted(map(len, fb.cycles))
            assert fa.max_transient() == fb.max_transient()
            assert sorted(fa.in_degrees) == sorted(fb.in_degrees.tolist())


class TestExhaustiveSmall:
    def test_all_maps_on_three_points_classified(self):
        """Group all 27 maps on {0,1,2} by canonical form and verify each
        class is closed under conjugation (brute force over S_3)."""
        perms = [np.array(p) for p in itertools.permutations(range(3))]
        maps = [np.array(m) for m in itertools.product(range(3), repeat=3)]
        for succ in maps:
            form = canonical_form(succ)
            for perm in perms:
                assert canonical_form(relabel(succ, perm)) == form

    def test_non_isomorphic_classes_distinct(self):
        # Representatives of distinct conjugacy classes on 3 points.
        reps = [
            np.array([0, 1, 2]),  # three fixed points
            np.array([1, 0, 2]),  # 2-cycle + fixed point
            np.array([1, 2, 0]),  # 3-cycle
            np.array([0, 0, 0]),  # star into a fixed point
            np.array([0, 0, 1]),  # chain
        ]
        forms = {canonical_form(r) for r in reps}
        assert len(forms) == len(reps)


class TestThePapersClaim:
    def test_fig1_parallel_not_isomorphic_to_any_sequential_order(self):
        """Section 3.1: no update order of the two-node XOR SCA induces a
        map isomorphic to the parallel one — checked over every word of
        length <= 2 (the natural 'one sweep' candidates)."""
        ca = CellularAutomaton(GraphSpace(nx.path_graph(2)), XorRule())
        parallel = ca.step_all()
        sds = SDS(GraphSpace(nx.path_graph(2)), XorRule())
        for word in ([0], [1], [0, 1], [1, 0], [0, 0], [1, 1]):
            sequential = sds.word_map(word)
            assert not functional_graphs_isomorphic(parallel, sequential), word

    def test_majority_parallel_vs_sds_not_isomorphic(self):
        # The parallel map has a proper cycle; every SDS sweep is
        # cycle-free: necessarily non-isomorphic.
        ca = CellularAutomaton(Ring(6), MajorityRule())
        parallel = PhaseSpace.from_automaton(ca)
        for perm in ([0, 1, 2, 3, 4, 5], [5, 3, 1, 4, 2, 0]):
            sds = SDS(Ring(6), MajorityRule(), permutation=perm)
            assert not phase_spaces_isomorphic(parallel, sds.phase_space())

    def test_odd_ring_majority_sometimes_isomorphic_question(self):
        # On odd rings the parallel map is also cycle-free; isomorphism is
        # then a real question, not settled by cycle structure alone.
        ca = CellularAutomaton(Ring(5), MajorityRule())
        parallel = PhaseSpace.from_automaton(ca)
        sds = SDS(Ring(5), MajorityRule())
        result = phase_spaces_isomorphic(parallel, sds.phase_space())
        assert isinstance(result, bool)  # decided exactly, either way

    def test_isomorphic_across_rotated_update_orders(self):
        # Rotating the update order conjugates the SDS map by the ring
        # rotation: the phase spaces must be isomorphic.
        base = SDS(Ring(5), MajorityRule(), permutation=[0, 1, 2, 3, 4])
        rotated = SDS(Ring(5), MajorityRule(), permutation=[1, 2, 3, 4, 0])
        assert functional_graphs_isomorphic(base.global_map, rotated.global_map)
