"""Tests for the asynchronous CA simulator (repro.aca)."""

import networkx as nx
import numpy as np
import pytest

from repro.aca.aca import AsyncCA
from repro.aca.channels import (
    AdversarialDelay,
    FixedDelay,
    UniformRandomDelay,
    ZeroDelay,
)
from repro.aca.events import Event, EventQueue
from repro.aca.subsumption import (
    aca_exceeds_interleavings,
    replay_parallel,
    replay_sequential,
)
from repro.core.automaton import CellularAutomaton
from repro.core.rules import MajorityRule, XorRule
from repro.spaces.graph import GraphSpace
from repro.spaces.line import Ring


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(2.0, "b")
        q.push(1.0, "a")
        assert q.pop().payload == "a"
        assert q.pop().payload == "b"

    def test_tie_break_by_insertion(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop().payload == "first"
        assert q.pop().payload == "second"

    def test_now_advances(self):
        q = EventQueue()
        q.push(3.5, "x")
        q.pop()
        assert q.now == 3.5

    def test_no_scheduling_into_past(self):
        q = EventQueue()
        q.push(5.0, "x")
        q.pop()
        with pytest.raises(ValueError):
            q.push(4.0, "y")

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(7.0, "x")
        assert q.peek_time() == 7.0

    def test_event_ordering_dataclass(self):
        assert Event(1.0, 0, "a") < Event(1.0, 1, "b") < Event(2.0, 0, "c")


class TestDelayModels:
    def test_zero(self):
        assert ZeroDelay().checked_delay(0, 1, 5.0) == 0.0

    def test_fixed(self):
        assert FixedDelay(2.5).checked_delay(0, 1, 0.0) == 2.5

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedDelay(-1.0)

    def test_uniform_in_range(self):
        model = UniformRandomDelay(1.0, 2.0, seed=3)
        for _ in range(50):
            assert 1.0 <= model.checked_delay(0, 1, 0.0) <= 2.0

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformRandomDelay(2.0, 1.0)

    def test_adversarial_callback(self):
        model = AdversarialDelay(lambda s, d, t: 1.0 if s == 0 else 0.0)
        assert model.checked_delay(0, 1, 0.0) == 1.0
        assert model.checked_delay(1, 0, 0.0) == 0.0

    def test_contract_enforced(self):
        model = AdversarialDelay(lambda s, d, t: -1.0)
        with pytest.raises(ValueError):
            model.checked_delay(0, 1, 0.0)


class TestAsyncCA:
    def test_initial_views_consistent(self):
        space = Ring(5)
        init = np.array([1, 0, 1, 0, 0], dtype=np.uint8)
        aca = AsyncCA(space, MajorityRule(), init)
        assert aca.views[0] == {4: 0, 1: 0}
        assert aca.view_staleness() == 0

    def test_single_update_changes_state_and_sends(self):
        space = Ring(5)
        init = np.array([1, 0, 1, 0, 0], dtype=np.uint8)
        aca = AsyncCA(space, MajorityRule(), init, delays=FixedDelay(1.0))
        aca.schedule_update(1.0, 1)  # window (1, 0, 1) -> 1
        aca.run_until(1.0)
        assert aca.snapshot()[1] == 1
        # Announcements are still in flight: neighbors' views are stale.
        assert aca.view_staleness() == 2
        aca.run()
        assert aca.view_staleness() == 0

    def test_noop_update_sends_nothing(self):
        space = Ring(5)
        aca = AsyncCA(space, MajorityRule(), np.zeros(5, dtype=np.uint8))
        aca.schedule_update(1.0, 0)
        aca.run()
        assert aca.deliveries == 0
        assert aca.trace == []

    def test_trace_records_changes(self):
        space = Ring(5)
        init = np.array([1, 0, 1, 0, 0], dtype=np.uint8)
        aca = AsyncCA(space, MajorityRule(), init)
        aca.schedule_update(1.0, 1)
        aca.run()
        assert len(aca.trace) == 1
        entry = aca.trace[0]
        assert (entry.node, entry.old, entry.new) == (1, 0, 1)

    def test_event_budget_guard(self):
        space = Ring(5)
        aca = AsyncCA(space, MajorityRule(), np.zeros(5, dtype=np.uint8))
        aca.schedule_updates((float(t), t % 5) for t in range(1, 20))
        with pytest.raises(RuntimeError):
            aca.run(max_events=3)

    def test_schedule_rejects_bad_node(self):
        aca = AsyncCA(Ring(5), MajorityRule(), np.zeros(5, dtype=np.uint8))
        with pytest.raises(ValueError):
            aca.schedule_update(1.0, 9)

    def test_synchronous_rounds_helper(self):
        space = Ring(6)
        alt = (np.arange(6) % 2).astype(np.uint8)
        aca = AsyncCA(space, MajorityRule(), alt, delays=FixedDelay(0.5))
        aca.schedule_synchronous_rounds([1.0, 2.0])
        aca.run()
        np.testing.assert_array_equal(aca.snapshot(), alt)  # two-cycle replay


class TestSubsumption:
    def test_parallel_replay_majority(self):
        ca = CellularAutomaton(Ring(10), MajorityRule())
        rng = np.random.default_rng(0)
        for _ in range(5):
            x0 = rng.integers(0, 2, 10).astype(np.uint8)
            a, b = replay_parallel(ca, x0, 6)
            np.testing.assert_array_equal(a, b)

    def test_parallel_replay_xor(self):
        ca = CellularAutomaton(Ring(7), XorRule())
        x0 = np.array([1, 0, 0, 1, 0, 1, 1], dtype=np.uint8)
        a, b = replay_parallel(ca, x0, 10)
        np.testing.assert_array_equal(a, b)

    def test_sequential_replay_random_words(self):
        ca = CellularAutomaton(Ring(8), MajorityRule())
        rng = np.random.default_rng(1)
        for _ in range(5):
            x0 = rng.integers(0, 2, 8).astype(np.uint8)
            word = rng.integers(0, 8, size=30).tolist()
            a, b = replay_sequential(ca, x0, word)
            np.testing.assert_array_equal(a, b)

    def test_aca_exceeds(self):
        rep = aca_exceeds_interleavings()
        assert rep.exceeded
        assert rep.reached == 0  # the parallel sink 00
        assert 0 not in rep.sequentially_reachable

    def test_stale_views_emulate_parallel_on_xor_pair(self):
        # Direct construction of the exceed witness, step by step.
        space = GraphSpace(nx.path_graph(2))
        aca = AsyncCA(
            space, XorRule(), np.array([1, 1], dtype=np.uint8),
            delays=FixedDelay(10.0),
        )
        aca.schedule_update(1.0, 0)
        aca.schedule_update(2.0, 1)
        aca.run_until(2.0)
        np.testing.assert_array_equal(aca.snapshot(), [0, 0])
        assert aca.view_staleness() == 2  # both views are stale
