"""Tests for the exact infinite-line machinery (repro.spaces.infinite)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rules import MajorityRule, WolframRule, XorRule
from repro.spaces.infinite import (
    InfiniteLine,
    SupportConfig,
    infinite_orbit,
    infinite_step,
    infinite_update_node,
)


@pytest.fixture(scope="module")
def maj3():
    return MajorityRule().with_arity(3)


@pytest.fixture(scope="module")
def maj5():
    return MajorityRule().with_arity(5)


class TestSupportConfig:
    def test_finite_constructor(self):
        c = SupportConfig.finite("0110", lo=0)
        assert c.value_at(1) == 1 and c.value_at(0) == 0
        assert c.value_at(-100) == 0 and c.value_at(100) == 0

    def test_trimming(self):
        # Leading/trailing zeros merge into the quiescent background.
        a = SupportConfig.finite("0011 0", lo=0)
        b = SupportConfig.finite("11", lo=2)
        assert a == b

    def test_periodic_constructor(self):
        c = SupportConfig.periodic("01")
        assert c.value_at(0) == 0 and c.value_at(1) == 1
        assert c.value_at(-2) == 0 and c.value_at(101) == 1

    def test_periodic_phase_matters(self):
        assert SupportConfig.periodic("01") != SupportConfig.periodic("10")

    def test_minimal_period_canonicalised(self):
        assert SupportConfig.periodic("0101") == SupportConfig.periodic("01")

    def test_boundary_slides_to_canonical_position(self):
        # 0-background left, 1-background right with boundary anywhere the
        # words agree is normalised deterministically.
        a = SupportConfig.build("0", "", "1", lo=5)
        b = SupportConfig.build("0", "1", "1", lo=5)  # core "1" merges right
        assert a == b
        assert a.value_at(4) == 0 and a.value_at(5) == 1

    def test_uniform_word_normalises_lo(self):
        a = SupportConfig.build("0", "", "00", lo=77)
        assert a == SupportConfig.finite("", lo=0)

    def test_hashable(self):
        s = {SupportConfig.periodic("01"), SupportConfig.periodic("0101")}
        assert len(s) == 1

    def test_support(self):
        c = SupportConfig.finite("0110100", lo=3)
        assert c.support() == (4, 8)  # ones at positions 4, 5, 7

    def test_support_of_zero(self):
        assert SupportConfig.finite("000").support() is None

    def test_support_requires_quiescent_background(self):
        with pytest.raises(ValueError):
            SupportConfig.periodic("01").support()

    def test_ones_count(self):
        assert SupportConfig.finite("01101").ones_count() == 3
        assert SupportConfig.periodic("01").ones_count() == float("inf")

    def test_window_values_and_string(self):
        c = SupportConfig.finite("111", lo=0)
        assert c.to_string(-1, 4) == "01110"
        assert c.window_values(-1, 4).tolist() == [0, 1, 1, 1, 0]

    def test_rejects_bad_words(self):
        with pytest.raises(ValueError):
            SupportConfig.build("", "1", "0")
        with pytest.raises(ValueError):
            SupportConfig.build("02", "1", "0")

    def test_describe_readable(self):
        assert "(01)*" in SupportConfig.periodic("01").describe()


class TestInfiniteStep:
    def test_alternating_two_cycle(self, maj3):
        alt = SupportConfig.periodic("01")
        one = infinite_step(maj3, alt)
        assert one == SupportConfig.periodic("10")
        assert infinite_step(maj3, one) == alt

    def test_lonely_one_dies(self, maj3):
        c = SupportConfig.finite("1")
        assert infinite_step(maj3, c) == SupportConfig.finite("")

    def test_solid_block_is_fixed(self, maj3):
        c = SupportConfig.finite("1111")
        assert infinite_step(maj3, c) == c

    def test_gap_of_one_fills(self, maj3):
        c = SupportConfig.finite("11011")
        assert infinite_step(maj3, c) == SupportConfig.finite("11111")

    def test_radius2_block_two_cycle(self, maj5):
        blocks = SupportConfig.periodic("0011")
        one = infinite_step(maj5, blocks)
        assert one == SupportConfig.periodic("1100")
        assert infinite_step(maj5, one) == blocks

    def test_memoryless_two_input_xor(self):
        rule = XorRule().with_arity(2)
        c = SupportConfig.finite("1")
        out = infinite_step(rule, c, memory=False)
        # Neighbors of the 1 see parity 1; the 1 itself sees two 0s.
        assert out == SupportConfig.finite("101", lo=-1)

    def test_rule90_growth(self):
        # Rule 90 (with-memory table equal to left XOR right) from a single
        # 1 produces the Sierpinski pattern; after 2 steps support width 5.
        rule = WolframRule(90)
        c = SupportConfig.finite("1")
        c2 = infinite_step(rule, infinite_step(rule, c))
        assert c2.support() == (-2, 3)

    def test_needs_fixed_arity(self):
        with pytest.raises(ValueError):
            infinite_step(MajorityRule(), SupportConfig.finite("1"))

    def test_arity_parity_validation(self):
        with pytest.raises(ValueError):
            infinite_step(MajorityRule().with_arity(4), SupportConfig.finite("1"))
        with pytest.raises(ValueError):
            infinite_step(
                MajorityRule().with_arity(3), SupportConfig.finite("1"),
                memory=False,
            )


class TestSequentialInfinite:
    def test_update_changes_one_cell(self, maj3):
        c = SupportConfig.finite("101")
        out = infinite_update_node(maj3, c, 1)  # window (1,0,1) -> 1
        assert out == SupportConfig.finite("111")

    def test_noop_update_returns_same(self, maj3):
        c = SupportConfig.finite("1111")
        assert infinite_update_node(maj3, c, 1) is c

    def test_update_outside_support(self, maj3):
        c = SupportConfig.finite("11")
        # Cell at position 2 sees (1, 0, 0) -> 0: unchanged.
        assert infinite_update_node(maj3, c, 2) == c

    def test_sequential_erodes_alternating_locally(self, maj3):
        # One sequential update of the infinite alternating configuration
        # flips a single 0 to 1 (window 1,0,1); the result is a distinct,
        # eventually periodic configuration — no return to the start.
        alt = SupportConfig.periodic("01")
        out = infinite_update_node(maj3, alt, 0)
        assert out != alt
        assert out.value_at(0) == 1


class TestInfiniteOrbit:
    def test_two_cycle_detected(self, maj3):
        t, p, cycle = infinite_orbit(maj3, SupportConfig.periodic("01"))
        assert (t, p) == (0, 2)
        assert len(cycle) == 2

    def test_fixed_point_detected(self, maj3):
        t, p, cycle = infinite_orbit(maj3, SupportConfig.finite("111"))
        assert p == 1

    def test_transient_counted(self, maj3):
        t, p, _ = infinite_orbit(maj3, SupportConfig.finite("11011"))
        assert t == 1 and p == 1

    def test_divergent_raises(self, maj3):
        invader = SupportConfig.build("01", "1111", "01", lo=0)
        with pytest.raises(RuntimeError):
            infinite_orbit(maj3, invader, max_steps=30)

    @given(st.integers(min_value=1, max_value=2**12 - 1))
    @settings(max_examples=30, deadline=None)
    def test_finite_support_majority_settles_period_le_2(self, maj3, bits):
        word = bin(bits)[2:]
        t, p, _ = infinite_orbit(maj3, SupportConfig.finite(word), max_steps=100)
        assert p <= 2


class TestInfiniteLineFacade:
    def test_describe(self):
        assert "radius=2" in InfiniteLine(2).describe()

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            InfiniteLine(0)
