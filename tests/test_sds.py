"""Tests for sequential dynamical systems (repro.sds)."""

import itertools

import networkx as nx
import numpy as np
import pytest

from repro.core.automaton import CellularAutomaton
from repro.core.nondet import NondetPhaseSpace
from repro.core.rules import MajorityRule, SimpleThresholdRule, XorRule
from repro.sds.equivalence import (
    acyclic_orientation_count,
    sds_equivalence_classes,
    verify_orientation_bound,
)
from repro.sds.gardens import (
    garden_of_eden_configs,
    is_garden_of_eden,
    is_invertible,
)
from repro.sds.sds import SDS, SyDS, constant_vertex_functions
from repro.spaces.graph import GraphSpace
from repro.spaces.line import Ring


class TestSDSBasics:
    def test_apply_is_one_sweep(self):
        sds = SDS(nx.cycle_graph(5), MajorityRule())
        ca = CellularAutomaton(GraphSpace(nx.cycle_graph(5)), MajorityRule())
        rng = np.random.default_rng(0)
        for _ in range(10):
            x = rng.integers(0, 2, 5).astype(np.uint8)
            expected = x.copy()
            for i in range(5):
                ca.update_node_inplace(expected, i)
            np.testing.assert_array_equal(sds.apply(x.copy()), expected)

    def test_global_map_matches_apply(self):
        sds = SDS(nx.cycle_graph(5), MajorityRule(), permutation=[4, 2, 0, 3, 1])
        gm = sds.global_map
        ca = CellularAutomaton(GraphSpace(nx.cycle_graph(5)), MajorityRule())
        for code in range(32):
            x = ca.unpack(code)
            np.testing.assert_array_equal(
                sds.apply(x), ca.unpack(int(gm[code]))
            )

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            SDS(nx.path_graph(3), MajorityRule(), permutation=[0, 0, 1])

    def test_with_permutation_shares_functions(self):
        sds = SDS(nx.path_graph(4), MajorityRule())
        other = sds.with_permutation([3, 2, 1, 0])
        assert other.permutation == (3, 2, 1, 0)
        assert other._ca is sds._ca

    def test_accepts_finite_space(self):
        sds = SDS(Ring(5), MajorityRule())
        assert sds.n == 5

    def test_phase_space_cycle_free_for_majority(self):
        # An SDS map composes single updates, so majority SDS inherit the
        # SCA convergence: no proper cycles beyond the identity sweep.
        sds = SDS(nx.cycle_graph(6), MajorityRule())
        ps = sds.phase_space()
        assert not ps.has_proper_cycle()

    def test_xor_sds_is_invertible_bijection(self):
        # XOR vertex functions make each single-node update an involution
        # on its bit given the neighbors; sweeps are bijections.
        sds = SDS(nx.path_graph(4), XorRule())
        assert is_invertible(sds)


class TestHeterogeneousSDS:
    def test_per_vertex_functions(self):
        g = nx.path_graph(3)
        space = GraphSpace(g)
        rules = constant_vertex_functions(space, MajorityRule())
        sds = SDS(space, rules)
        homo = SDS(space, MajorityRule())
        np.testing.assert_array_equal(sds.global_map, homo.global_map)

    def test_mixed_rules(self):
        g = nx.path_graph(3)
        space = GraphSpace(g)
        # Ends follow OR (threshold 1), middle follows AND (threshold 3).
        rules = [
            SimpleThresholdRule(1).with_arity(2),
            SimpleThresholdRule(3).with_arity(3),
            SimpleThresholdRule(1).with_arity(2),
        ]
        sds = SDS(space, rules)
        # From 010: node 0 sees (0,1) -> OR fires -> 110; node 1 sees
        # (1,1,0) -> AND doesn't -> 100; node 2 sees (0,0) -> 100.
        out = sds.apply(np.array([0, 1, 0], dtype=np.uint8))
        np.testing.assert_array_equal(out, [1, 0, 0])

    def test_wrong_count_rejected(self):
        space = GraphSpace(nx.path_graph(3))
        with pytest.raises(ValueError):
            SDS(space, [MajorityRule().with_arity(2)])

    def test_arity_mismatch_rejected(self):
        space = GraphSpace(nx.path_graph(3))
        rules = [MajorityRule().with_arity(5)] * 3
        with pytest.raises(ValueError):
            SDS(space, rules)


class TestSyDS:
    def test_matches_parallel_ca(self):
        syds = SyDS(nx.cycle_graph(6), MajorityRule())
        ca = CellularAutomaton(GraphSpace(nx.cycle_graph(6)), MajorityRule())
        np.testing.assert_array_equal(syds.global_map, ca.step_all())

    def test_two_cycle_present(self):
        syds = SyDS(nx.cycle_graph(6), MajorityRule())
        assert syds.phase_space().has_proper_cycle()

    def test_apply(self):
        syds = SyDS(nx.cycle_graph(6), MajorityRule())
        alt = (np.arange(6) % 2).astype(np.uint8)
        np.testing.assert_array_equal(syds.apply(alt), 1 - alt)


class TestEquivalence:
    def test_identity_vs_reverse_may_differ(self):
        sds = SDS(nx.path_graph(3), MajorityRule())
        classes = sds_equivalence_classes(
            sds, permutations=[(0, 1, 2), (2, 1, 0)]
        )
        # On a path with majority, order matters in general.
        assert len(classes) in (1, 2)

    def test_disconnected_graph_all_orders_equal(self):
        g = nx.empty_graph(3)
        sds = SDS(g, SimpleThresholdRule(1))
        classes = sds_equivalence_classes(sds)
        assert len(classes) == 1  # no edges -> updates commute

    def test_acyclic_orientations_known_values(self):
        assert acyclic_orientation_count(nx.path_graph(2)) == 2
        assert acyclic_orientation_count(nx.path_graph(3)) == 4
        assert acyclic_orientation_count(nx.cycle_graph(3)) == 6
        assert acyclic_orientation_count(nx.cycle_graph(4)) == 14  # 3^4-...? no: 2^4-2=14
        assert acyclic_orientation_count(nx.complete_graph(3)) == 6
        assert acyclic_orientation_count(nx.complete_graph(4)) == 24  # n!

    def test_acyclic_orientations_empty_and_single(self):
        assert acyclic_orientation_count(nx.empty_graph(3)) == 1
        assert acyclic_orientation_count(nx.Graph()) == 1

    def test_orientation_bound_on_small_graphs(self):
        for g in (nx.path_graph(4), nx.cycle_graph(4), nx.star_graph(3)):
            rep = verify_orientation_bound(SDS(g, MajorityRule()))
            assert rep.bound_holds
            assert rep.permutations == 24

    def test_orientation_bound_with_xor(self):
        rep = verify_orientation_bound(SDS(nx.cycle_graph(4), XorRule()))
        assert rep.bound_holds


class TestGardens:
    def test_majority_syds_has_gardens(self):
        syds = SyDS(nx.cycle_graph(5), MajorityRule())
        goe = garden_of_eden_configs(syds)
        assert goe.size > 0
        for code in goe.tolist():
            assert is_garden_of_eden(syds, code)

    def test_non_garden_detected(self):
        syds = SyDS(nx.cycle_graph(5), MajorityRule())
        assert not is_garden_of_eden(syds, 0)  # all-zero has preimages

    def test_is_garden_rejects_out_of_range(self):
        syds = SyDS(nx.cycle_graph(5), MajorityRule())
        with pytest.raises(ValueError):
            is_garden_of_eden(syds, 1 << 10)

    def test_invertible_iff_no_gardens(self):
        for graph, rule in [
            (nx.path_graph(4), XorRule()),
            (nx.cycle_graph(5), MajorityRule()),
        ]:
            sds = SDS(graph, rule)
            assert is_invertible(sds) == (garden_of_eden_configs(sds).size == 0)


class TestSDSvsSCAConsistency:
    def test_sds_sweep_reachable_in_sca(self):
        """One SDS sweep is one particular interleaving of the SCA."""
        g = nx.cycle_graph(5)
        sds = SDS(g, MajorityRule())
        ca = CellularAutomaton(GraphSpace(g), MajorityRule())
        nps = NondetPhaseSpace.from_automaton(ca)
        gm = sds.global_map
        for code in range(32):
            assert nps.can_reach(code, int(gm[code]))

    def test_all_permutation_maps_cycle_free(self):
        """Every update order yields a cycle-free SDS phase space for
        majority — Theorem 1 restated for SDS."""
        g = nx.cycle_graph(4)
        sds = SDS(g, MajorityRule())
        for perm in itertools.permutations(range(4)):
            ps = sds.with_permutation(perm).phase_space()
            assert not ps.has_proper_cycle()


class TestWordSDS:
    def test_permutation_word_equals_global_map(self):
        sds = SDS(nx.cycle_graph(5), MajorityRule(), permutation=[3, 1, 4, 0, 2])
        np.testing.assert_array_equal(
            sds.word_map([3, 1, 4, 0, 2]), sds.global_map
        )

    def test_word_maps_compose(self):
        sds = SDS(nx.cycle_graph(5), MajorityRule())
        w1 = [0, 2, 2, 4]
        w2 = [1, 3, 0]
        combined = sds.word_map(w1 + w2)
        composed = sds.word_map(w2)[sds.word_map(w1)]
        np.testing.assert_array_equal(combined, composed)

    def test_empty_word_is_identity(self):
        sds = SDS(nx.path_graph(4), MajorityRule())
        np.testing.assert_array_equal(sds.word_map([]), np.arange(16))

    def test_repeated_letter_is_idempotent(self):
        # A single-node update is idempotent: updating twice in a row is
        # the same as once (the second sees its own result).
        sds = SDS(nx.cycle_graph(5), MajorityRule())
        once = sds.word_map([2])
        twice = sds.word_map([2, 2])
        np.testing.assert_array_equal(once, twice)

    def test_rejects_bad_letter(self):
        sds = SDS(nx.path_graph(3), MajorityRule())
        with pytest.raises(ValueError):
            sds.word_map([0, 7])

    def test_unfair_word_map_may_not_converge_configs(self):
        # A word missing vertices fixes only what it touches.
        sds = SDS(nx.cycle_graph(5), MajorityRule())
        partial = sds.word_map([0])
        codes = np.arange(32)
        diffs = partial ^ codes
        assert np.all((diffs == 0) | (diffs == 1))  # only bit 0 can change
