"""Tests for the Goles–Martinez energy machinery (repro.core.energy)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.automaton import CellularAutomaton
from repro.core.energy import (
    ThresholdNetwork,
    parallel_pair_energy,
    sequential_energy,
    verify_parallel_energy_monotone,
    verify_sequential_energy_decrease,
)
from repro.core.rules import (
    MajorityRule,
    SimpleThresholdRule,
    TableRule,
    XorRule,
)
from repro.core.boolean import majority_function, xor_function
from repro.core.schedules import RandomPermutationSweeps, Synchronous
from repro.spaces.grid import Grid2D
from repro.spaces.hypercube import Hypercube
from repro.spaces.line import Line, Ring


class TestThresholdNetworkConstruction:
    def test_from_majority_ring(self):
        ca = CellularAutomaton(Ring(6), MajorityRule())
        net = ThresholdNetwork.from_automaton(ca)
        assert net.n == 6
        assert np.all(np.diag(net.weights) == 1)  # with-memory self weight
        assert net.theta.tolist() == [2] * 6  # majority of 3 inputs

    def test_from_radius2_ring(self):
        ca = CellularAutomaton(Ring(9, radius=2), MajorityRule())
        net = ThresholdNetwork.from_automaton(ca)
        assert net.theta.tolist() == [3] * 9  # majority of 5 inputs
        assert net.weights.sum() == 9 * 5  # 4 neighbors + self each

    def test_memoryless_zero_diagonal(self):
        ca = CellularAutomaton(Ring(6), MajorityRule(), memory=False)
        net = ThresholdNetwork.from_automaton(ca)
        assert np.all(np.diag(net.weights) == 0)

    def test_from_threshold_rule(self):
        ca = CellularAutomaton(Hypercube(3), SimpleThresholdRule(2))
        net = ThresholdNetwork.from_automaton(ca)
        assert net.theta.tolist() == [2] * 8

    def test_from_monotone_table_rule(self):
        ca = CellularAutomaton(Ring(5), TableRule(majority_function(3)))
        net = ThresholdNetwork.from_automaton(ca)
        assert net.theta.tolist() == [2] * 5

    def test_rejects_xor(self):
        ca = CellularAutomaton(Ring(5), TableRule(xor_function(3)))
        with pytest.raises(ValueError):
            ThresholdNetwork.from_automaton(ca)
        ca2 = CellularAutomaton(Ring(5), XorRule())
        with pytest.raises(ValueError):
            ThresholdNetwork.from_automaton(ca2)

    def test_rejects_asymmetric_weights(self):
        w = np.array([[0, 1], [0, 0]])
        with pytest.raises(ValueError):
            ThresholdNetwork(w, np.array([1, 1]))

    def test_rejects_bad_theta_length(self):
        with pytest.raises(ValueError):
            ThresholdNetwork(np.eye(3, dtype=int), np.array([1, 1]))


class TestNetworkDynamicsAgree:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_network_step_matches_automaton(self, seed):
        rng = np.random.default_rng(seed)
        ca = CellularAutomaton(Ring(9, radius=2), MajorityRule())
        net = ThresholdNetwork.from_automaton(ca)
        state = rng.integers(0, 2, ca.n).astype(np.uint8)
        np.testing.assert_array_equal(net.step(state), ca.step(state))

    def test_node_next_matches(self):
        ca = CellularAutomaton(Grid2D(3, 3), MajorityRule())
        net = ThresholdNetwork.from_automaton(ca)
        rng = np.random.default_rng(1)
        for _ in range(10):
            state = rng.integers(0, 2, 9).astype(np.uint8)
            for i in range(9):
                assert net.node_next(state, i) == ca.node_next(state, i)

    def test_line_boundary_handled(self):
        # On a line the boundary windows include quiescent slots; the
        # network must still agree with the rule exactly.
        ca = CellularAutomaton(Line(5), MajorityRule())
        net = ThresholdNetwork.from_automaton(ca)
        rng = np.random.default_rng(2)
        for _ in range(20):
            state = rng.integers(0, 2, 5).astype(np.uint8)
            np.testing.assert_array_equal(net.step(state), ca.step(state))


class TestEnergies:
    def test_sequential_energy_formula(self):
        net = ThresholdNetwork(np.array([[1, 1], [1, 1]]), np.array([1, 1]))
        # E(x) = -0.5 x^T W x + theta . x
        assert sequential_energy(net, np.array([0, 0])) == 0.0
        assert sequential_energy(net, np.array([1, 0])) == -0.5 + 1
        assert sequential_energy(net, np.array([1, 1])) == -2.0 + 2

    def test_pair_energy_symmetric_in_arguments(self):
        ca = CellularAutomaton(Ring(7), MajorityRule())
        net = ThresholdNetwork.from_automaton(ca)
        rng = np.random.default_rng(4)
        x = rng.integers(0, 2, 7).astype(np.uint8)
        y = rng.integers(0, 2, 7).astype(np.uint8)
        assert parallel_pair_energy(net, x, y) == parallel_pair_energy(net, y, x)

    def test_every_effective_flip_strictly_decreases(self):
        ca = CellularAutomaton(Ring(10), MajorityRule())
        net = ThresholdNetwork.from_automaton(ca)
        rng = np.random.default_rng(7)
        for _ in range(50):
            state = rng.integers(0, 2, 10).astype(np.uint8)
            node = int(rng.integers(10))
            before = net.sequential_energy(state)
            new = ca.update_node(state, node)
            if not np.array_equal(new, state):
                after = net.sequential_energy(new)
                assert after <= before - 0.5

    def test_min_flip_decrease(self):
        ca = CellularAutomaton(Ring(6), MajorityRule())
        net = ThresholdNetwork.from_automaton(ca)
        assert net.min_flip_decrease() == 0.5

    def test_flip_bound_finite_with_memory(self):
        ca = CellularAutomaton(Ring(12), MajorityRule())
        net = ThresholdNetwork.from_automaton(ca)
        assert net.max_flip_bound() > 0

    def test_flip_bound_requires_memory(self):
        ca = CellularAutomaton(Ring(6), MajorityRule(), memory=False)
        net = ThresholdNetwork.from_automaton(ca)
        with pytest.raises(ValueError):
            net.max_flip_bound()

    def test_flip_bound_is_respected(self):
        # Exhaustively: from any start, any greedy sequential run performs
        # at most max_flip_bound() effective flips.
        from repro.core.evolution import sequential_converge

        ca = CellularAutomaton(Ring(8), MajorityRule())
        bound = ThresholdNetwork.from_automaton(ca).max_flip_bound()
        for code in range(256):
            res = sequential_converge(
                ca, ca.unpack(code), RandomPermutationSweeps(code)
            )
            assert res.converged
            assert res.effective_flips <= bound


class TestAudits:
    def test_sequential_audit_holds(self, rng):
        ca = CellularAutomaton(Grid2D(3, 3), MajorityRule())
        inits = rng.integers(0, 2, size=(10, 9)).astype(np.uint8)
        audit = verify_sequential_energy_decrease(
            ca, RandomPermutationSweeps(3), inits
        )
        assert audit.holds and audit.violations == 0
        assert audit.min_decrease >= 0.5

    def test_sequential_audit_rejects_synchronous(self, rng):
        ca = CellularAutomaton(Ring(6), MajorityRule())
        inits = rng.integers(0, 2, size=(2, 6)).astype(np.uint8)
        with pytest.raises(ValueError):
            verify_sequential_energy_decrease(ca, Synchronous(), inits)

    def test_parallel_audit_holds(self, rng):
        ca = CellularAutomaton(Hypercube(3), MajorityRule())
        inits = rng.integers(0, 2, size=(20, 8)).astype(np.uint8)
        audit = verify_parallel_energy_monotone(ca, inits)
        assert audit.holds

    def test_parallel_audit_from_two_cycle(self):
        # Starting on the two-cycle itself: settles immediately, no
        # violations.
        ca = CellularAutomaton(Ring(8), MajorityRule())
        alt = (np.arange(8) % 2).astype(np.uint8)
        audit = verify_parallel_energy_monotone(ca, alt[None, :])
        assert audit.holds

    def test_audit_bool(self, rng):
        ca = CellularAutomaton(Ring(6), MajorityRule())
        inits = rng.integers(0, 2, size=(2, 6)).astype(np.uint8)
        audit = verify_parallel_energy_monotone(ca, inits)
        assert bool(audit) == audit.holds
