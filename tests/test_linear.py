"""Tests for the GF(2) linear analysis (repro.analysis.linear)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.linear import (
    check_linear_structure,
    gf2_rank,
    is_linear_ca,
    transition_matrix_gf2,
)
from repro.core.automaton import CellularAutomaton
from repro.core.rules import MajorityRule, WolframRule, XorRule
from repro.spaces.graph import GraphSpace
from repro.spaces.line import Ring


class TestGF2Rank:
    def test_identity(self):
        assert gf2_rank(np.eye(5, dtype=np.uint8)) == 5

    def test_zero(self):
        assert gf2_rank(np.zeros((3, 3), dtype=np.uint8)) == 0

    def test_dependent_rows(self):
        m = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]])  # row3 = row1^row2
        assert gf2_rank(m) == 2

    def test_input_not_mutated(self):
        m = np.array([[1, 1], [1, 0]], dtype=np.uint8)
        before = m.copy()
        gf2_rank(m)
        np.testing.assert_array_equal(m, before)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_rank_bounds_and_transpose_invariance(self, seed):
        rng = np.random.default_rng(seed)
        m = rng.integers(0, 2, size=(6, 6)).astype(np.uint8)
        r = gf2_rank(m)
        assert 0 <= r <= 6
        assert gf2_rank(m.T) == r


class TestLinearityDetection:
    def test_xor_rules_linear(self):
        for number in (60, 90, 102, 150, 170, 204, 240):
            ca = CellularAutomaton(Ring(8), WolframRule(number))
            assert is_linear_ca(ca), number

    def test_majority_not_linear(self):
        ca = CellularAutomaton(Ring(8), MajorityRule())
        assert not is_linear_ca(ca)

    def test_constant_one_not_linear(self):
        ca = CellularAutomaton(Ring(6), WolframRule(255))
        assert not is_linear_ca(ca)  # F(0) != 0

    def test_xor_on_graph_linear(self):
        ca = CellularAutomaton(GraphSpace(nx.cycle_graph(6)), XorRule())
        assert is_linear_ca(ca)


class TestTransitionMatrix:
    def test_matrix_reproduces_map(self):
        ca = CellularAutomaton(Ring(7), WolframRule(90))
        a = transition_matrix_gf2(ca)
        rng = np.random.default_rng(0)
        for _ in range(20):
            x = rng.integers(0, 2, 7).astype(np.uint8)
            np.testing.assert_array_equal((a @ x) % 2, ca.step(x))

    def test_rule204_is_identity_matrix(self):
        ca = CellularAutomaton(Ring(5), WolframRule(204))
        np.testing.assert_array_equal(
            transition_matrix_gf2(ca), np.eye(5, dtype=np.uint8)
        )

    def test_shift_matrix_is_permutation(self):
        ca = CellularAutomaton(Ring(5), WolframRule(240))  # x_i' = x_{i-1}
        a = transition_matrix_gf2(ca)
        assert np.all(a.sum(axis=0) == 1) and np.all(a.sum(axis=1) == 1)


class TestStructurePredictions:
    @pytest.mark.parametrize("number,n", [(90, 8), (90, 9), (150, 8),
                                          (150, 9), (60, 7), (204, 6),
                                          (170, 8)])
    def test_predictions_match_phase_space(self, number, n):
        ca = CellularAutomaton(Ring(n), WolframRule(number))
        structure = check_linear_structure(ca)
        assert structure.consistent, structure

    def test_rule90_even_ring_known_values(self):
        # A for rule 90 on an even ring is singular: corank 2.
        ca = CellularAutomaton(Ring(8), WolframRule(90))
        s = check_linear_structure(ca)
        assert s.rank == 6
        assert s.predicted_in_degree == 4
        assert s.measured_in_degrees == (0, 4)

    def test_rule90_corank_by_parity(self):
        # A = S + S^{-1} always shares the factor (x+1) with x^n + 1, so
        # rule 90 is never bijective on a ring: corank 1 for odd n
        # (in-degree 2), corank 2 for even n (in-degree 4).
        s_odd = check_linear_structure(
            CellularAutomaton(Ring(9), WolframRule(90))
        )
        assert s_odd.rank == 8 and s_odd.predicted_in_degree == 2
        s_even = check_linear_structure(
            CellularAutomaton(Ring(10), WolframRule(90))
        )
        assert s_even.rank == 8 and s_even.predicted_in_degree == 4

    def test_shift_is_bijection_with_trivial_kernel(self):
        ca = CellularAutomaton(Ring(6), WolframRule(240))
        s = check_linear_structure(ca)
        assert s.rank == 6 and s.measured_gardens == 0
        # Fixed points of the shift: constant configurations only.
        assert s.measured_fixed_points == 2

    def test_rejects_nonlinear(self):
        ca = CellularAutomaton(Ring(6), MajorityRule())
        with pytest.raises(ValueError):
            check_linear_structure(ca)
