"""Additional cross-cutting invariants: classic CA conservation laws,
linearity, threshold-representability edge cases, boundary behaviour.

These are not claims from the paper; they are independent ground truths
about well-studied rules, used to validate the engines from yet another
angle (a bug in windows/packing/vectorization would almost surely break
one of them).
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.automaton import CellularAutomaton
from repro.core.boolean import BooleanFunction
from repro.core.rules import MajorityRule, WolframRule
from repro.spaces.infinite import SupportConfig, infinite_step
from repro.spaces.line import Line, Ring


class TestRule184Traffic:
    """Rule 184 is the traffic rule: cars (1s) move right into gaps.
    It conserves the number of cars on any ring."""

    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.integers(min_value=4, max_value=24))
    @settings(max_examples=40, deadline=None)
    def test_density_conserved(self, seed, n):
        ca = CellularAutomaton(Ring(n), WolframRule(184))
        state = np.random.default_rng(seed).integers(0, 2, n).astype(np.uint8)
        for _ in range(5):
            new = ca.step(state)
            assert int(new.sum()) == int(state.sum())
            state = new

    def test_free_flow(self):
        # A lone car advances one cell per step.
        ca = CellularAutomaton(Ring(8), WolframRule(184))
        state = np.zeros(8, dtype=np.uint8)
        state[2] = 1
        out = ca.step(state)
        assert out[3] == 1 and out.sum() == 1


class TestRule90Linearity:
    """Rule 90 is additive: F(x XOR y) = F(x) XOR F(y)."""

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_additivity(self, seed):
        rng = np.random.default_rng(seed)
        ca = CellularAutomaton(Ring(12), WolframRule(90))
        x = rng.integers(0, 2, 12).astype(np.uint8)
        y = rng.integers(0, 2, 12).astype(np.uint8)
        np.testing.assert_array_equal(
            ca.step(x ^ y), ca.step(x) ^ ca.step(y)
        )

    def test_zero_is_fixed(self):
        ca = CellularAutomaton(Ring(9), WolframRule(90))
        assert ca.is_fixed_point(np.zeros(9, dtype=np.uint8))


class TestThresholdRepresentabilityEdge:
    def test_monotone_but_not_threshold_needs_four_inputs(self):
        # f = (x0 AND x1) OR (x2 AND x3): the classic monotone
        # non-threshold function.
        table = np.zeros(16, dtype=np.uint8)
        for code in range(16):
            x = [(code >> j) & 1 for j in range(4)]
            table[code] = int((x[0] and x[1]) or (x[2] and x[3]))
        f = BooleanFunction(table)
        assert f.is_monotone()
        assert not f.is_symmetric()
        assert not f.is_linear_threshold()

    def test_every_3_input_monotone_is_threshold(self):
        from repro.core.boolean import all_boolean_functions

        for f in all_boolean_functions(3):
            if f.is_monotone():
                assert f.is_linear_threshold()


class TestLineBoundarySemantics:
    def test_line_vs_ring_interior_agrees(self):
        # Away from the boundary, Line and Ring dynamics coincide.
        rng = np.random.default_rng(8)
        line = CellularAutomaton(Line(12), MajorityRule())
        ring = CellularAutomaton(Ring(12), MajorityRule())
        for _ in range(10):
            state = rng.integers(0, 2, 12).astype(np.uint8)
            np.testing.assert_array_equal(
                line.step(state)[2:-2], ring.step(state)[2:-2]
            )

    def test_line_edge_majority_biased_to_zero(self):
        # The quiescent boundary acts as a permanent 0 vote.
        ca = CellularAutomaton(Line(4), MajorityRule())
        state = np.array([1, 0, 0, 0], dtype=np.uint8)
        assert ca.step(state)[0] == 0  # window (q=0, 1, 0)

    def test_aca_on_line_handles_boundary(self):
        from repro.aca import AsyncCA, ZeroDelay

        aca = AsyncCA(
            Line(5), MajorityRule(),
            np.array([1, 1, 0, 1, 1], dtype=np.uint8), delays=ZeroDelay(),
        )
        aca.schedule_update(1.0, 0)  # window (0, 1, 1) -> stays 1
        aca.schedule_update(2.0, 2)  # window (1, 0, 1) -> flips to 1
        aca.run()
        np.testing.assert_array_equal(aca.snapshot(), [1, 1, 1, 1, 1])


class TestInfiniteLineTranslation:
    """The infinite global map commutes with translation."""

    @given(st.integers(min_value=1, max_value=2**10 - 1),
           st.integers(min_value=-5, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_step_commutes_with_shift(self, bits, shift):
        rule = MajorityRule().with_arity(3)
        word = bin(bits)[2:]
        config = SupportConfig.finite(word, lo=0)
        shifted = SupportConfig.finite(word, lo=shift)
        stepped_then_read = infinite_step(rule, config)
        shifted_then_stepped = infinite_step(rule, shifted)
        # Compare pointwise over a window covering both supports.
        for pos in range(-4, len(word) + 10):
            assert shifted_then_stepped.value_at(pos + shift) == (
                stepped_then_read.value_at(pos)
            )

    @given(st.integers(min_value=1, max_value=255))
    @settings(max_examples=30, deadline=None)
    def test_canonicalisation_idempotent(self, bits):
        word = bin(bits)[2:]
        a = SupportConfig.finite(word)
        b = SupportConfig.build("00", tuple(a.core), "000", lo=a.lo)
        assert a == b and hash(a) == hash(b)

    def test_infinite_matches_large_ring(self):
        # Finite-support infinite dynamics agree with a ring big enough
        # that influence never wraps within the horizon.
        rule3 = MajorityRule().with_arity(3)
        word = "110100111"
        config = SupportConfig.finite(word, lo=0)
        n = 40
        ring = CellularAutomaton(Ring(n), MajorityRule())
        state = np.zeros(n, dtype=np.uint8)
        state[10 : 10 + len(word)] = [int(c) for c in word]
        for _ in range(6):
            config = infinite_step(rule3, config)
            state = ring.step(state)
        for pos in range(-3, len(word) + 3):
            assert config.value_at(pos) == state[10 + pos]


class TestWolframRuleFamilies:
    @pytest.mark.parametrize("number,complement", [(0, 255), (90, 165)])
    def test_complement_conjugation(self, number, complement):
        """Rule c(k) satisfies F_c(x) = NOT F_k(NOT x) when c is k's
        complementary rule (table negated and input-flipped)."""
        ca_k = CellularAutomaton(Ring(9), WolframRule(number))
        ca_c = CellularAutomaton(Ring(9), WolframRule(complement))
        rng = np.random.default_rng(1)
        for _ in range(10):
            x = rng.integers(0, 2, 9).astype(np.uint8)
            np.testing.assert_array_equal(
                ca_c.step(x), 1 - ca_k.step((1 - x).astype(np.uint8))
            )

    def test_rule_51_is_global_complement(self):
        # Rule 51 maps every configuration to its complement: period 2
        # everywhere, no fixed points.
        ca = CellularAutomaton(Ring(6), WolframRule(51))
        from repro.core.phase_space import PhaseSpace

        ps = PhaseSpace.from_automaton(ca)
        assert ps.fixed_points.size == 0
        assert all(len(c) == 2 for c in ps.cycles)


class TestConsistencyAcrossEncodings:
    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=30, deadline=None)
    def test_wolfram_complement_pairs_on_graphspace_vs_ring(self, number):
        """WolframRule on Ring(n) equals the same rule run through a
        cycle-graph GraphSpace with explicit ordered windows... rings ARE
        cycle graphs, but GraphSpace orders neighbors by index — so this
        passes exactly for symmetric tables and is skipped otherwise."""
        rule = WolframRule(number)
        if not rule.is_symmetric():
            return
        ring = CellularAutomaton(Ring(5), rule)
        from repro.spaces.graph import GraphSpace

        graph = CellularAutomaton(GraphSpace(nx.cycle_graph(5)), rule)
        rng = np.random.default_rng(number)
        x = rng.integers(0, 2, 5).astype(np.uint8)
        np.testing.assert_array_equal(ring.step(x), graph.step(x))
