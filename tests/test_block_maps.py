"""Tests for block-sequential global maps (repro.core.block_maps)."""

import math

import numpy as np
import pytest

from repro.core.automaton import CellularAutomaton
from repro.core.block_maps import (
    block_sequential_map,
    check_block_synchrony,
    ordered_partitions,
    structured_partitions,
)
from repro.core.evolution import run_schedule
from repro.core.phase_space import PhaseSpace
from repro.core.rules import MajorityRule, XorRule
from repro.core.schedules import BlockSequential
from repro.spaces.line import Ring


def fubini(n: int) -> int:
    """Ordered Bell numbers, for checking the enumerator's count."""
    total = 0
    for k in range(n + 1):
        total += sum(
            (-1) ** (k - j) * math.comb(k, j) * j**n for j in range(k + 1)
        )
    # The standard formula sum_k sum_j ... double counts; use recurrence:
    a = [1]
    for m in range(1, n + 1):
        a.append(sum(math.comb(m, k) * a[m - k] for k in range(1, m + 1)))
    return a[n]


class TestEnumerator:
    @pytest.mark.parametrize("n,count", [(1, 1), (2, 3), (3, 13), (4, 75),
                                         (5, 541), (6, 4683)])
    def test_fubini_counts(self, n, count):
        assert sum(1 for _ in ordered_partitions(n)) == count
        assert fubini(n) == count

    def test_partitions_are_partitions(self):
        for part in ordered_partitions(4):
            flat = sorted(i for b in part for i in b)
            assert flat == [0, 1, 2, 3]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            list(ordered_partitions(-1))


class TestBlockMap:
    def test_full_block_is_synchronous_map(self):
        ca = CellularAutomaton(Ring(6), MajorityRule())
        succ = block_sequential_map(ca, [list(range(6))])
        np.testing.assert_array_equal(succ, ca.step_all())

    def test_singletons_are_identity_sweep(self):
        ca = CellularAutomaton(Ring(5), MajorityRule())
        succ = block_sequential_map(ca, [[i] for i in range(5)])
        from repro.sds.sds import SDS

        sds = SDS(Ring(5), MajorityRule())
        np.testing.assert_array_equal(succ, sds.global_map)

    def test_agrees_with_schedule_driver(self):
        ca = CellularAutomaton(Ring(6), MajorityRule())
        partition = [[0, 3], [1, 4], [2, 5]]
        succ = block_sequential_map(ca, partition)
        sched = BlockSequential(partition)
        rng = np.random.default_rng(0)
        for _ in range(10):
            x = rng.integers(0, 2, 6).astype(np.uint8)
            states = list(run_schedule(ca, x, sched, len(partition)))
            np.testing.assert_array_equal(
                states[-1], ca.unpack(int(succ[ca.pack(x)]))
            )

    def test_rejects_non_partition(self):
        ca = CellularAutomaton(Ring(4, radius=1), MajorityRule())
        with pytest.raises(ValueError):
            block_sequential_map(ca, [[0, 1], [1, 2, 3]])

    def test_xor_block_map_differs_by_order(self):
        ca = CellularAutomaton(Ring(4, radius=1), XorRule())
        a = block_sequential_map(ca, [[0, 1], [2, 3]])
        b = block_sequential_map(ca, [[2, 3], [0, 1]])
        assert not np.array_equal(a, b)


class TestStructuredPartitions:
    def test_families_are_partitions(self):
        for name, part in structured_partitions(8).items():
            flat = sorted(i for b in part for i in b)
            assert flat == list(range(8)), name

    def test_rejects_odd(self):
        with pytest.raises(ValueError):
            structured_partitions(7)


class TestSynchronyThreshold:
    def test_only_full_sync_cycles_exhaustive_n5(self):
        ca = CellularAutomaton(Ring(5), MajorityRule())
        cyclic = []
        for part in ordered_partitions(5):
            succ = block_sequential_map(ca, part)
            if PhaseSpace(succ, 5).has_proper_cycle():
                cyclic.append(part)
        # Odd ring: even full synchrony has no cycle (no alternating config).
        assert cyclic == []

    def test_only_full_sync_cycles_exhaustive_n4(self):
        ca = CellularAutomaton(Ring(4, radius=1), MajorityRule())
        cyclic = []
        for part in ordered_partitions(4):
            succ = block_sequential_map(ca, part)
            if PhaseSpace(succ, 4).has_proper_cycle():
                cyclic.append(tuple(tuple(b) for b in part))
        assert cyclic == [((0, 1, 2, 3),)]

    def test_report_holds(self):
        report = check_block_synchrony(exhaustive_n=4, structured_sizes=(8,))
        assert report.holds
        assert report.details["ring4_cyclic_partitions"] == 1
        assert report.details["ring8_full-sync"] is True
        assert report.details["ring8_straggler-last"] is False
