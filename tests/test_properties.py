"""Cross-cutting property-based tests (hypothesis).

These encode the paper's structural invariants as properties quantified
over random rules, spaces and configurations — the randomized complement to
the exhaustive checks in repro.core.theorems.
"""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.automaton import CellularAutomaton
from repro.core.boolean import threshold_count_function
from repro.core.evolution import parallel_orbit, sequential_converge
from repro.core.nondet import NondetPhaseSpace
from repro.core.phase_space import PhaseSpace
from repro.core.rules import MajorityRule, TableRule, WolframRule
from repro.core.schedules import RandomPermutationSweeps
from repro.core.energy import ThresholdNetwork
from repro.spaces.graph import GraphSpace
from repro.spaces.line import Ring

# -- strategies ----------------------------------------------------------------

ring_sizes = st.integers(min_value=3, max_value=9)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
thresholds3 = st.integers(min_value=0, max_value=4)


@st.composite
def small_connected_graph(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    p = draw(st.floats(min_value=0.3, max_value=0.9))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    g = nx.gnp_random_graph(n, p, seed=seed)
    # Connect stragglers so every node has context.
    nodes = list(g.nodes)
    for a, b in zip(nodes, nodes[1:]):
        g.add_edge(a, b)
    return g


# -- parallel threshold dynamics ----------------------------------------------------


class TestParallelThresholdProperties:
    @given(ring_sizes, thresholds3, seeds)
    @settings(max_examples=40, deadline=None)
    def test_orbit_period_at_most_two(self, n, t, seed):
        """Proposition 1 over random rings, thresholds, and starts."""
        rule = TableRule(threshold_count_function(3, t))
        ca = CellularAutomaton(Ring(n), rule)
        x0 = np.random.default_rng(seed).integers(0, 2, n).astype(np.uint8)
        orbit = parallel_orbit(ca, x0)
        assert orbit.period in (1, 2)

    @given(small_connected_graph(), st.integers(min_value=1, max_value=4), seeds)
    @settings(max_examples=30, deadline=None)
    def test_orbit_period_at_most_two_on_graphs(self, g, t, seed):
        from repro.core.rules import SimpleThresholdRule

        ca = CellularAutomaton(GraphSpace(g), SimpleThresholdRule(t))
        x0 = np.random.default_rng(seed).integers(0, 2, ca.n).astype(np.uint8)
        orbit = parallel_orbit(ca, x0)
        assert orbit.period in (1, 2)

    @given(ring_sizes, seeds)
    @settings(max_examples=30, deadline=None)
    def test_majority_never_increases_disagreement_energy(self, n, seed):
        """The pair energy is non-increasing along any majority orbit."""
        ca = CellularAutomaton(Ring(n), MajorityRule())
        net = ThresholdNetwork.from_automaton(ca)
        x = np.random.default_rng(seed).integers(0, 2, n).astype(np.uint8)
        y = ca.step(x)
        prev_energy = net.parallel_pair_energy(x, y)
        for _ in range(12):
            z = ca.step(y)
            energy = net.parallel_pair_energy(y, z)
            assert energy <= prev_energy + 1e-9
            x, y, prev_energy = y, z, energy


# -- sequential threshold dynamics -----------------------------------------------------


class TestSequentialThresholdProperties:
    @given(st.integers(min_value=3, max_value=8), thresholds3)
    @settings(max_examples=20, deadline=None)
    def test_nondet_phase_space_cycle_free(self, n, t):
        """Theorem 1 over random (ring size, threshold) pairs."""
        rule = TableRule(threshold_count_function(3, t))
        ca = CellularAutomaton(Ring(n), rule)
        assert not NondetPhaseSpace.from_automaton(ca).has_proper_cycle()

    @given(ring_sizes, seeds)
    @settings(max_examples=25, deadline=None)
    def test_fair_runs_converge(self, n, seed):
        ca = CellularAutomaton(Ring(n), MajorityRule())
        rng = np.random.default_rng(seed)
        x0 = rng.integers(0, 2, n).astype(np.uint8)
        res = sequential_converge(ca, x0, RandomPermutationSweeps(seed))
        assert res.converged

    @given(ring_sizes, seeds)
    @settings(max_examples=25, deadline=None)
    def test_sequential_run_never_revisits_left_config(self, n, seed):
        """Cycle-freeness observed on trajectories: once a configuration
        changes, it is never seen again."""
        ca = CellularAutomaton(Ring(n), MajorityRule())
        rng = np.random.default_rng(seed)
        state = rng.integers(0, 2, n).astype(np.uint8)
        seen = []
        current = ca.pack(state)
        for _ in range(20 * n):
            node = int(rng.integers(n))
            if ca.update_node_inplace(state, node):
                code = ca.pack(state)
                assert code not in seen
                seen.append(current)
                current = code

    @given(ring_sizes, seeds)
    @settings(max_examples=20, deadline=None)
    def test_sequential_fp_set_equals_parallel_fp_set(self, n, seed):
        ca = CellularAutomaton(Ring(n), MajorityRule())
        ps = PhaseSpace.from_automaton(ca)
        nps = NondetPhaseSpace.from_automaton(ca)
        np.testing.assert_array_equal(ps.fixed_points, nps.fixed_points)


# -- generic engine invariants ---------------------------------------------------------


class TestEngineProperties:
    @given(st.integers(min_value=0, max_value=255), ring_sizes, seeds)
    @settings(max_examples=40, deadline=None)
    def test_step_matches_naive_for_all_elementary_rules(self, rule_num, n, seed):
        ca = CellularAutomaton(Ring(n), WolframRule(rule_num))
        x = np.random.default_rng(seed).integers(0, 2, n).astype(np.uint8)
        np.testing.assert_array_equal(ca.step(x), ca.step_naive(x))

    @given(st.integers(min_value=0, max_value=255), st.integers(3, 7))
    @settings(max_examples=25, deadline=None)
    def test_step_all_consistent_with_step(self, rule_num, n):
        ca = CellularAutomaton(Ring(n), WolframRule(rule_num))
        succ = ca.step_all()
        rng = np.random.default_rng(rule_num)
        for code in rng.integers(0, 1 << n, size=8):
            assert int(succ[code]) == ca.pack(ca.step(ca.unpack(int(code))))

    @given(ring_sizes, seeds)
    @settings(max_examples=25, deadline=None)
    def test_block_full_equals_synchronous(self, n, seed):
        from repro.core.evolution import block_step

        ca = CellularAutomaton(Ring(n), MajorityRule())
        x = np.random.default_rng(seed).integers(0, 2, n).astype(np.uint8)
        np.testing.assert_array_equal(block_step(ca, x, range(n)), ca.step(x))

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=30, deadline=None)
    def test_classification_consistent_with_orbit(self, code):
        from repro.core.phase_space import ConfigClass

        ca = CellularAutomaton(Ring(8), MajorityRule())
        ps = PhaseSpace.from_automaton(ca)
        code %= 256
        orbit = parallel_orbit(ca, ca.unpack(code))
        cls = ps.classify(code)
        if cls is ConfigClass.FIXED_POINT:
            assert orbit.transient == 0 and orbit.period == 1
        elif cls is ConfigClass.CYCLE:
            assert orbit.transient == 0 and orbit.period >= 2
        else:
            assert orbit.transient >= 1
