"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    check_node_index,
    check_non_negative,
    check_positive,
    check_probability,
    check_state_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(3, "x") == 3

    def test_accepts_numpy_int(self):
        assert check_positive(np.int64(2), "x") == 2

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive(0, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive(1.5, "x")

    def test_message_includes_name(self):
        with pytest.raises(ValueError, match="radius"):
            check_positive(-1, "radius")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-1, "x")


class TestCheckProbability:
    def test_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_probability(1.5, "p")
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")


class TestCheckStateVector:
    def test_coerces_list(self):
        out = check_state_vector([0, 1, 1], 3)
        assert out.dtype == np.uint8
        np.testing.assert_array_equal(out, [0, 1, 1])

    def test_returns_fresh_copy(self):
        src = np.array([0, 1], dtype=np.uint8)
        out = check_state_vector(src, 2)
        out[0] = 1
        assert src[0] == 0

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            check_state_vector([0, 1], 3)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            check_state_vector([0, 2], 2)


class TestCheckNodeIndex:
    def test_accepts_valid(self):
        assert check_node_index(0, 4) == 0
        assert check_node_index(3, 4) == 3

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_node_index(4, 4)
        with pytest.raises(ValueError):
            check_node_index(-1, 4)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_node_index(False, 4)
