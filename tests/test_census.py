"""Tests for the phase-space census machinery (repro.analysis.census)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.census import (
    CensusRow,
    find_linear_recurrence,
    has_isolated_run,
    majority_ring_census,
    run_lengths_cyclic,
)


class TestRunLengths:
    def test_uniform(self):
        assert run_lengths_cyclic(np.array([1, 1, 1])) == [3]
        assert run_lengths_cyclic(np.array([0, 0])) == [2]

    def test_alternating(self):
        assert run_lengths_cyclic(np.array([0, 1, 0, 1])) == [1, 1, 1, 1]

    def test_wraparound_run(self):
        # 1 1 0 0 1: the ones wrap around -> runs 3 (ones) and 2 (zeros).
        assert sorted(run_lengths_cyclic(np.array([1, 1, 0, 0, 1]))) == [2, 3]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            run_lengths_cyclic(np.array([]))

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=16))
    @settings(max_examples=50)
    def test_lengths_sum_to_n(self, bits):
        assert sum(run_lengths_cyclic(np.array(bits))) == len(bits)


class TestIsolatedRuns:
    def test_detection(self):
        assert has_isolated_run(np.array([0, 1, 0, 0]))
        assert not has_isolated_run(np.array([0, 0, 1, 1]))
        assert not has_isolated_run(np.array([1, 1, 1]))


class TestRecurrenceFitting:
    def test_fibonacci(self):
        fib = [1, 1, 2, 3, 5, 8, 13, 21, 34, 55]
        rec = find_linear_recurrence(fib)
        assert rec is not None
        order, coeffs = rec
        assert order == 2 and [int(c) for c in coeffs] == [1, 1]

    def test_geometric(self):
        rec = find_linear_recurrence([3, 6, 12, 24, 48, 96])
        assert rec is not None
        assert rec[0] == 1 and int(rec[1][0]) == 2

    def test_no_recurrence_for_noise(self):
        # Factorials satisfy no fixed-order constant-coefficient recurrence.
        seq = [1, 2, 6, 24, 120, 720, 5040, 40320, 362880, 3628800,
               39916800, 479001600, 6227020800]
        assert find_linear_recurrence(seq, max_order=3) is None

    def test_order4_majority_fp_recurrence(self):
        fps = [2, 6, 12, 20, 30, 46, 74, 122, 200, 324, 522, 842]
        rec = find_linear_recurrence(fps)
        assert rec is not None
        order, coeffs = rec
        assert order == 4
        assert [int(c) for c in coeffs] == [2, -1, 0, 1]

    def test_short_sequences_return_none(self):
        assert find_linear_recurrence([5], max_order=4) is None


class TestCensus:
    def test_rows_and_characterisation(self):
        rows = majority_ring_census(range(3, 10))
        assert [r.fixed_points for r in rows] == [2, 6, 12, 20, 30, 46, 74]
        assert all(isinstance(r, CensusRow) for r in rows)

    def test_cycle_config_parity(self):
        rows = majority_ring_census(range(3, 11))
        for r in rows:
            assert r.cycle_configs == (2 if r.n % 2 == 0 else 0)

    def test_garden_fraction_bounds(self):
        for r in majority_ring_census((8, 12)):
            assert 0 < r.garden_fraction < 1
