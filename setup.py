"""Compatibility shim for environments without PEP 660 editable support.

``pip install -e .`` works wherever pip can build editable wheels; offline
environments lacking the ``wheel`` package can fall back to
``python setup.py develop``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
