"""E6 — Theorem 1: all monotone symmetric SCA are cycle-free.

Paper artifact: Theorem 1.  Expected row: for each of the five arity-3
monotone symmetric rules (count thresholds 0..4) and each ring size, the
sequential phase space has zero proper-cycle components.
"""

from repro.core.theorems import check_theorem1


def test_theorem1_exhaustive(benchmark):
    report = benchmark(
        lambda: check_theorem1(ring_sizes=(3, 4, 5, 6, 7, 8, 9, 10))
    )
    assert report.holds
    assert report.details["rules_checked"] == 5


def test_theorem1_radius2_extension(benchmark):
    """The paper notes the result extends to any radius; r=2 has 7 rules."""
    report = benchmark(
        lambda: check_theorem1(ring_sizes=(5, 6, 7, 8), radius=2)
    )
    assert report.holds
    assert report.details["rules_checked"] == 7
