"""E9 — Proposition 1: threshold orbits end in fixed points or two-cycles.

Paper artifact: Proposition 1 (after Goles–Martinez).  Expected rows: for
every (cellular space, threshold rule) pair, the maximum attractor cycle
length over the entire phase space is at most 2; the two Lyapunov energies
certify the same facts without exhaustion.
"""

import numpy as np
import pytest

from repro.core.automaton import CellularAutomaton
from repro.core.energy import (
    verify_parallel_energy_monotone,
    verify_sequential_energy_decrease,
)
from repro.core.rules import MajorityRule
from repro.core.schedules import RandomPermutationSweeps
from repro.core.theorems import check_proposition1
from repro.spaces.grid import Grid2D
from repro.spaces.hypercube import Hypercube
from repro.spaces.line import Ring


def test_proposition1_exhaustive(benchmark):
    report = benchmark(
        lambda: check_proposition1(
            spaces=[Ring(8), Ring(9), Ring(10, radius=2), Grid2D(3, 4),
                    Hypercube(3)]
        )
    )
    assert report.holds
    for value in report.details.values():
        assert value["max_cycle_length"] <= 2


@pytest.mark.parametrize("d", [3, 4])
def test_proposition1_hypercube(benchmark, d):
    report = benchmark(
        lambda: check_proposition1(spaces=[Hypercube(d)], thresholds=(1, 2, 3))
    )
    assert report.holds


def test_proposition1_energy_certificates(benchmark, rng):
    """The energy route: no exhaustion, scales to a 64-node torus."""
    ca = CellularAutomaton(Grid2D(8, 8), MajorityRule())
    inits = rng.integers(0, 2, size=(32, ca.n)).astype(np.uint8)

    def audits():
        seq = verify_sequential_energy_decrease(
            ca, RandomPermutationSweeps(3), inits, max_updates=50_000
        )
        par = verify_parallel_energy_monotone(ca, inits)
        return seq, par

    seq, par = benchmark(audits)
    assert seq.holds and par.holds
    assert seq.min_decrease >= 0.5
