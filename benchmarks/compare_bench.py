"""Benchmark-regression gate: compare two ``BENCH_*.json`` files.

Usage::

    python benchmarks/compare_bench.py BASELINE.json CURRENT.json \
        [--tolerance 2.0]

Entries are matched by benchmark ``fullname``; for each pair the median
wall time is compared and the run **fails (exit 1) when any benchmark
regressed by more than ``tolerance`` x** the baseline median.  Entries
present on only one side are reported but never fail the gate (new
benchmarks appear, host-gated ones disappear), and baselines recorded on
a different machine are expected to differ in absolute speed — which is
why the gate is a generous ratio on medians, not an absolute bound.

The arithmetic lives in :func:`repro.obs.index.compare_medians`, shared
with ``repro runs compare`` so the CI gate and the cross-run index can
never drift apart; this script stays a thin file-level front end.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

try:
    from repro.obs.index import bench_medians, compare_medians
except ImportError:  # invoked as a script without the package installed
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.obs.index import bench_medians, compare_medians


def load_medians(path: Path) -> dict[str, float]:
    """Map of benchmark fullname -> median seconds from one report."""
    return bench_medians(path)


def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    tolerance: float,
) -> tuple[list[str], bool]:
    """Per-benchmark report lines and whether any regression trips."""
    return compare_medians(baseline, current, tolerance)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="fail when current median > tolerance * baseline (default 2.0)",
    )
    args = parser.parse_args(argv)
    if args.tolerance <= 1.0:
        parser.error(f"--tolerance must be > 1.0, got {args.tolerance:g}")
    baseline = load_medians(args.baseline)
    current = load_medians(args.current)
    if not baseline:
        print(f"no benchmark entries in baseline {args.baseline}", file=sys.stderr)
        return 2
    if not current:
        print(f"no benchmark entries in current {args.current}", file=sys.stderr)
        return 2
    lines, failed = compare(baseline, current, args.tolerance)
    print(f"benchmark comparison ({args.baseline.name} -> {args.current.name}, "
          f"tolerance {args.tolerance:g}x):")
    print("\n".join(lines))
    if failed:
        print("FAIL: at least one benchmark regressed beyond tolerance",
              file=sys.stderr)
        return 1
    print("OK: no benchmark regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
