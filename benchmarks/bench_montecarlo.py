"""Streaming Monte-Carlo throughput (sampled configurations / second).

The scaling series times one governed estimate per ring size — sampler,
64-lane SWAR trajectory driver, classification, streaming moments — so
the committed ``BENCH_montecarlo.json`` median pins the
sampled-configs/sec trajectory that makes n = 10**6 runs practical
(compare_bench gates it at the usual 2x tolerance).  Every run asserts
its own counts ledger in-loop, and the n = 12 series additionally holds
the reported 99% interval to the exactly enumerated basin mass — the
timing claim is also the statistical-correctness claim.
"""

import numpy as np
import pytest

from repro.core.automaton import CellularAutomaton
from repro.core.rules import MajorityRule
from repro.mc import McKernel, build_mc_estimate
from repro.perf.attractor import AttractorKernel
from repro.spaces.line import Ring

_SEED = 1999

_EXACT = {}


def _exact_fp_mass_n12() -> float:
    if "fp12" not in _EXACT:
        ca = CellularAutomaton(Ring(12), MajorityRule(), memory=True)
        lam, _ = AttractorKernel(ca).classify(
            np.arange(1 << 12, dtype=np.int64)
        )
        _EXACT["fp12"] = float(np.mean(lam == 1))
    return _EXACT["fp12"]


@pytest.mark.parametrize("n", [10_000, 100_000])
def test_mc_throughput(benchmark, n):
    """One full batch at scale: the sampled-configs/sec series."""

    def run():
        kernel = McKernel(MajorityRule(), n, seed=_SEED)
        partial = build_mc_estimate(kernel, kernel.lanes)
        assert partial.complete, partial.reason
        counts = partial.value["counts"]
        assert (
            counts["fixed_point"] + counts["two_cycle"] + counts["undecided"]
            == counts["samples"]
        )
        # MAJORITY from uniform initial conditions is overwhelmingly
        # fixed-point bound (Proposition 1 leaves only 2-cycles besides).
        assert partial.value["estimates"]["fixed_point"]["rate"] > 0.9
        return partial.value

    payload = benchmark.pedantic(run, rounds=3, iterations=1)
    assert payload["n"] == n
    assert payload["samples"] == payload["lanes"]


def test_mc_interval_vs_exact_n12(benchmark):
    """The oracle workload: 16384 samples against the exact n=12 census."""
    exact = _exact_fp_mass_n12()

    def run():
        kernel = McKernel(MajorityRule(), 12, seed=_SEED)
        partial = build_mc_estimate(kernel, 16384)
        assert partial.complete, partial.reason
        lo, hi = partial.value["estimates"]["fixed_point"]["ci99"]
        assert lo <= exact <= hi
        return partial.value

    payload = benchmark(run)
    assert payload["samples"] == 16384
    assert payload["counts"]["undecided"] == 0
