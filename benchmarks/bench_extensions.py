"""E17/E18 — the paper's Section 4 extensions, made concrete.

Paper artifact: the "future directions" the paper sketches — non-
homogeneous threshold CA, and the question of where increasing rule
complexity lets sequential computations catch up with concurrency.
Expected rows: per-node thresholds keep the period<=2 / cycle-free
dichotomy; among the 20 monotone radius-1 rules exactly the two shift
rules admit sequential cycles.
"""

import numpy as np

from repro.core.heterogeneous import HeterogeneousCA
from repro.core.nondet import NondetPhaseSpace
from repro.core.phase_space import PhaseSpace
from repro.core.rules import MajorityRule, SimpleThresholdRule, XorRule
from repro.core.theorems import (
    check_monotone_boundary,
    check_nonhomogeneous_threshold,
)
from repro.spaces.line import Ring


def test_nonhomogeneous_threshold_dichotomy(benchmark):
    report = benchmark(
        lambda: check_nonhomogeneous_threshold(
            ring_sizes=(6, 8, 10), assignments_per_size=8
        )
    )
    assert report.holds
    assert report.parameters["assignments_checked"] == 24


def test_monotone_boundary_survey(benchmark):
    report = benchmark(lambda: check_monotone_boundary(ring_sizes=(3, 4, 5, 6)))
    assert report.holds
    # Exactly the two shift rules are the catching-up point.
    assert len(report.witnesses) == 2


def test_heterogeneous_engine_throughput(benchmark, rng):
    """A 4096-node ring with three interleaved rule populations steps in
    a handful of vectorized passes (one per distinct rule)."""
    n = 4096
    # Share rule objects so the engine batches them into 3 groups.
    palette = [MajorityRule(), SimpleThresholdRule(1), XorRule()]
    rules = [palette[i % 3] for i in range(n)]
    het = HeterogeneousCA(Ring(n), rules)
    state = rng.integers(0, 2, n).astype(np.uint8)
    out = benchmark(lambda: het.step(state))
    np.testing.assert_array_equal(out, het.step_naive(state))


def test_heterogeneous_phase_space(benchmark, rng):
    """Whole-space sweep for a random-threshold automaton on a 12-ring."""
    thetas = rng.integers(0, 5, size=12)
    het = HeterogeneousCA(
        Ring(12), [SimpleThresholdRule(int(t)) for t in thetas]
    )

    def build():
        ps = PhaseSpace(het.step_all(), 12)
        nps = NondetPhaseSpace(het.all_node_successors(), 12)
        return ps, nps

    ps, nps = benchmark(build)
    assert max(ps.cycle_lengths()) <= 2
    assert not nps.has_proper_cycle()
