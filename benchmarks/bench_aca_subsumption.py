"""E13 — ACA subsume classical CA and SCA, and exceed both.

Paper artifact: Section 4's claim that communication-asynchronous CA
"subsume all possible behaviors of classical and sequential CA".  Expected
rows: exact trajectory equality for both replay constructions, and the
Fig. 1 witness where stale views reach the sequentially unreachable 00.
"""

import numpy as np
import pytest

from repro.aca.aca import AsyncCA
from repro.aca.channels import UniformRandomDelay
from repro.aca.subsumption import (
    aca_exceeds_interleavings,
    replay_parallel,
    replay_sequential,
)
from repro.core.automaton import CellularAutomaton
from repro.core.rules import MajorityRule
from repro.spaces.line import Ring


@pytest.mark.parametrize("n,steps", [(16, 10), (64, 10)])
def test_parallel_replay(benchmark, rng, n, steps):
    ca = CellularAutomaton(Ring(n), MajorityRule())
    x0 = rng.integers(0, 2, n).astype(np.uint8)
    aca_traj, ca_traj = benchmark(lambda: replay_parallel(ca, x0, steps))
    np.testing.assert_array_equal(aca_traj, ca_traj)


def test_sequential_replay(benchmark, rng):
    ca = CellularAutomaton(Ring(20), MajorityRule())
    x0 = rng.integers(0, 2, 20).astype(np.uint8)
    word = rng.integers(0, 20, size=200).tolist()
    aca_traj, sca_traj = benchmark(lambda: replay_sequential(ca, x0, word))
    np.testing.assert_array_equal(aca_traj, sca_traj)


def test_aca_exceeds_interleavings(benchmark):
    rep = benchmark(aca_exceeds_interleavings)
    assert rep.exceeded
    assert rep.reached == 0


def test_random_delay_aca_still_settles(benchmark, rng):
    """With bounded random delays and periodic per-node updates, the
    threshold ACA still quiesces (bounded asynchrony in action)."""
    space = Ring(24)
    x0 = rng.integers(0, 2, 24).astype(np.uint8)

    def run():
        aca = AsyncCA(space, MajorityRule(), x0,
                      delays=UniformRandomDelay(0.0, 0.4, seed=8))
        # Each node updates at jittered integer-ish times for 40 rounds.
        for k in range(1, 41):
            for node in range(24):
                aca.schedule_update(k + 0.01 * node, node)
        aca.run()
        return aca

    aca = benchmark(run)
    assert aca.view_staleness() == 0
    # Quiesced: one more synchronous round changes nothing.
    before = aca.snapshot()
    ca = CellularAutomaton(space, MajorityRule())
    np.testing.assert_array_equal(ca.step(before), before)
