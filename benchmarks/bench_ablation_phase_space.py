"""Ablation — whole-space sweeps: vectorized bit-sliced vs. per-config loop.

DESIGN.md Section 5: phase spaces are built by vectorizing the global map
across all 2**n configurations at once.  The per-configuration reference
(unpack, step, pack — the obvious implementation) is the ablation baseline.
"""

import numpy as np
import pytest

from repro.core.automaton import CellularAutomaton
from repro.core.phase_space import PhaseSpace
from repro.core.rules import MajorityRule
from repro.spaces.line import Ring


def _per_config_step_all(ca: CellularAutomaton) -> np.ndarray:
    succ = np.empty(1 << ca.n, dtype=np.int64)
    for code in range(1 << ca.n):
        succ[code] = ca.pack(ca.step(ca.unpack(code)))
    return succ


@pytest.mark.parametrize("n", [12, 16])
def test_vectorized_step_all(benchmark, n):
    ca = CellularAutomaton(Ring(n), MajorityRule())
    succ = benchmark(ca.step_all)
    assert succ.size == 1 << n


@pytest.mark.parametrize("n", [12])
def test_per_config_step_all_baseline(benchmark, n):
    ca = CellularAutomaton(Ring(n), MajorityRule())
    succ = benchmark(lambda: _per_config_step_all(ca))
    np.testing.assert_array_equal(succ, ca.step_all())


def test_classification_cost(benchmark):
    """FP/CC/TC classification on a 2**16 phase space (peel + label)."""
    ca = CellularAutomaton(Ring(16), MajorityRule())
    succ = ca.step_all()

    def classify():
        ps = PhaseSpace(succ, 16)
        return ps.summary()

    summary = benchmark(classify)
    assert summary["configurations"] == 65536
    assert max(summary["cycle_lengths"]) == 2
