"""E16 — exact dynamics on the two-way infinite line.

Paper artifact: the paper's default cellular space.  Expected rows: the
alternating background is an exact infinite two-cycle; finite-support
perturbations settle with period <= 2; a solid block inside the alternating
background invades it linearly (a divergent orbit impossible on finite
rings).
"""

import pytest

from repro.core.rules import MajorityRule
from repro.spaces.infinite import SupportConfig, infinite_orbit, infinite_step


@pytest.fixture(scope="module")
def maj3():
    return MajorityRule().with_arity(3)


def test_alternating_infinite_two_cycle(benchmark, maj3):
    t, p, cycle = benchmark(
        lambda: infinite_orbit(maj3, SupportConfig.periodic("01"))
    )
    assert (t, p) == (0, 2)
    assert len(cycle) == 2


def test_finite_support_relaxation(benchmark, maj3):
    config = SupportConfig.finite("1101001110100111010011" * 4)
    t, p, _ = benchmark(lambda: infinite_orbit(config=config, rule=maj3,
                                               max_steps=500))
    assert p <= 2


def test_invading_block_divergence(benchmark, maj3):
    """Support width after 50 steps: grows by exactly 2 per step."""
    start = SupportConfig.build("01", "1111", "01", lo=0)

    def invade():
        current = start
        for _ in range(50):
            current = infinite_step(maj3, current)
        return current

    final = benchmark(invade)
    assert len(final.core) == len(start.core) + 2 * 50


def test_radius2_infinite_block_cycle(benchmark):
    maj5 = MajorityRule().with_arity(5)
    t, p, _ = benchmark(
        lambda: infinite_orbit(maj5, SupportConfig.periodic("0011"))
    )
    assert (t, p) == (0, 2)
