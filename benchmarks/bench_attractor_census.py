"""Attractor-direct census vs materialized classification.

The tentpole series: the SWAR Brent kernel over dihedral orbit
representatives (:func:`repro.analysis.census.build_attractor_census`)
against the classical path — materialize the full successor array, peel
the functional graph, read the cycle counts off the decomposition.  Both
ends assert the same counts in-loop, so the timing claim is also the
equivalence claim.

Acceptance bar (enforced in CI from ``BENCH_attractor_census.json``):
the direct path beats the materialized path by >= 5x at n=20.  The
materialized series stops at n=20 — the graph peel alone makes n=24 a
minutes-scale run, which is exactly the wall the direct kernel removes
(n=24 lands in about a second; n=32 is CI-stress territory).
"""

import pytest

from repro.analysis.census import build_attractor_census
from repro.analysis.cycles import FunctionalGraph, cycle_length_counts
from repro.core.automaton import CellularAutomaton
from repro.core.rules import MajorityRule
from repro.spaces.line import Ring

#: fixed-point count of the n=24 MAJORITY-with-memory ring (OEIS A005207
#: trajectory already pinned by the stress-budget CI job)
_N24_FIXED_POINTS = 103684

_EXPECTED = {}


def _ca(n):
    return CellularAutomaton(Ring(n), MajorityRule(), memory=True)


def _expected(n):
    if n not in _EXPECTED:
        _EXPECTED[n] = cycle_length_counts(FunctionalGraph(_ca(n).step_all()))
    return _EXPECTED[n]


@pytest.mark.parametrize("n", [16, 20, 24])
def test_attractor_census_direct(benchmark, n):
    """Exact census with no materialized phase space (dihedral quotient)."""
    ca = _ca(n)

    def run():
        partial = build_attractor_census(ca)
        assert partial.complete, partial.reason
        return partial.value

    if n >= 24:
        row = benchmark.pedantic(run, rounds=3, iterations=1)
        assert row.fixed_points == _N24_FIXED_POINTS
    else:
        row = benchmark(run)
        expected = _expected(n)
        assert row.fixed_points == expected["fixed_points"]
        assert row.cycle_configs == expected["cycle_configs"]
        assert row.two_cycle_configs == expected["two_cycle_configs"]
        assert row.max_cycle_len == expected["max_cycle_len"]
    assert row.configurations == 1 << n


@pytest.mark.parametrize("n", [16, 20])
def test_census_materialized(benchmark, n):
    """The classical baseline: full successor array + graph peel."""
    ca = _ca(n)

    def run():
        return cycle_length_counts(FunctionalGraph(ca.step_all()))

    counts = benchmark.pedantic(run, rounds=3, iterations=1)
    assert counts == _expected(n)
