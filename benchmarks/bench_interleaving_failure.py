"""E11 — the headline result: interleavings fail to capture concurrency.

Paper artifact: Section 3's closing argument ("no choice of sequential
interleaving can capture the concurrent computation").  Expected rows: the
parallel two-cycle orbit of the threshold CA has no sequential replay, the
sequential phase space is cycle-free, and the capture rates quantify the
gap over the whole configuration space.
"""

import pytest

from repro.core.automaton import CellularAutomaton
from repro.core.interleaving import (
    interleaving_capture_report,
    orbit_reproducible_sequentially,
)
from repro.core.rules import MajorityRule
from repro.spaces.line import Ring


@pytest.mark.parametrize("n", [6, 8, 10])
def test_interleaving_capture_report(benchmark, n):
    ca = CellularAutomaton(Ring(n), MajorityRule())
    rep = benchmark(lambda: interleaving_capture_report(ca))
    assert not rep.interleavings_capture_concurrency
    assert not rep.sequential_has_cycle
    # The two alternating configurations are always among the failures.
    alt = sum(1 << i for i in range(1, n, 2))
    assert alt in rep.orbit_capture_failures


def test_two_cycle_orbit_has_no_replay(benchmark):
    ca = CellularAutomaton(Ring(12), MajorityRule())
    alt = sum(1 << i for i in range(1, 12, 2))
    res = benchmark(lambda: orbit_reproducible_sequentially(ca, alt))
    assert res.parallel_period == 2
    assert not res.reproducible


def test_capture_rates_shape(benchmark):
    """The paper's qualitative claim, as a measured series: capture is
    partial for steps and orbits, and the failure is structural (the
    two-cycle basin), not incidental."""
    ca = CellularAutomaton(Ring(8), MajorityRule())
    rep = benchmark(lambda: interleaving_capture_report(ca))
    assert 0.4 < rep.step_capture_rate < 1.0
    assert 0.5 < rep.orbit_capture_rate < 1.0
    assert rep.parallel_two_cycle_configs == 2


def test_closure_vs_bfs_ablation(benchmark):
    """Ablation: the packed-bitset closure vs. per-source BFS at n = 10."""
    from repro.core.closure import ReachabilityClosure
    from repro.core.nondet import NondetPhaseSpace

    ca = CellularAutomaton(Ring(10), MajorityRule())
    nps = NondetPhaseSpace.from_automaton(ca)

    def closure_all_sources():
        closure = ReachabilityClosure(nps)
        return sum(closure.reachable_count(c) for c in range(0, 1024, 64))

    total = benchmark(closure_all_sources)
    assert total > 0


def test_capture_report_n12(benchmark):
    """The closure makes the exhaustive audit feasible at n = 12."""
    ca = CellularAutomaton(Ring(12), MajorityRule())
    rep = benchmark(lambda: interleaving_capture_report(ca))
    assert not rep.interleavings_capture_concurrency
    assert rep.total_configs == 4096
