"""E8 — Corollary 1: two-cycles at every radius.

Paper artifact: Corollary 1.  Expected rows: for each radius r the block
configuration ``0^r 1^r ...`` is a two-cycle of MAJORITY; odd radii r >= 3
add the alternating configuration as a second, distinct two-cycle.
"""

from repro.core.theorems import check_corollary1


def test_corollary1_radii_1_to_6(benchmark):
    report = benchmark(lambda: check_corollary1(radii=(1, 2, 3, 4, 5, 6)))
    assert report.holds
    for r in (1, 2, 3, 4, 5, 6):
        assert report.details[f"r{r}_block_two_cycle"]
    for r in (3, 5):
        assert report.details[f"r{r}_two_distinct_cycles"]


def test_corollary1_large_radius(benchmark):
    """The constructions keep working at radius 10 (ring of 40+ nodes)."""
    report = benchmark(lambda: check_corollary1(radii=(10,)))
    assert report.holds
