"""Ablation — orbit detection: trajectory hashing vs. Brent's algorithm.

DESIGN.md Section 5 calls out the choice between storing the trajectory
(O(transient + period) memory, one step per configuration) and Brent's
cycle finding (O(1) memory, ~3x the steps).  Both must agree exactly; the
benchmark quantifies the trade on a deep-transient workload.
"""

import numpy as np
import pytest

from repro.core.automaton import CellularAutomaton
from repro.core.evolution import brent_orbit, parallel_orbit
from repro.core.rules import MajorityRule, WolframRule
from repro.spaces.line import Ring


@pytest.fixture(scope="module")
def workload():
    # Rule 110 on a 20-ring has long transients and nontrivial periods —
    # a harder orbit than any threshold rule produces.
    ca = CellularAutomaton(Ring(20), WolframRule(110))
    rng = np.random.default_rng(42)
    starts = rng.integers(0, 2, size=(8, 20)).astype(np.uint8)
    return ca, starts


def test_hashing_orbit(benchmark, workload):
    ca, starts = workload
    results = benchmark(lambda: [parallel_orbit(ca, x) for x in starts])
    assert all(r.period >= 1 for r in results)


def test_brent_orbit(benchmark, workload):
    ca, starts = workload
    results = benchmark(lambda: [brent_orbit(ca, x) for x in starts])
    hashed = [parallel_orbit(ca, x) for x in starts]
    for b, h in zip(results, hashed):
        assert (b.transient, b.period) == (h.transient, h.period)


def test_majority_orbit_is_shallow(benchmark):
    """Control: threshold orbits are short (period <= 2, small transient),
    so either method is instant — the ablation matters for general rules."""
    ca = CellularAutomaton(Ring(20), MajorityRule())
    rng = np.random.default_rng(43)
    starts = rng.integers(0, 2, size=(8, 20)).astype(np.uint8)
    results = benchmark(lambda: [parallel_orbit(ca, x) for x in starts])
    assert all(r.period <= 2 for r in results)
