"""E19/E20 — the synchrony threshold and the phase-space census.

Paper artifacts: Section 4's remark that the two-cycles "can be ascribed
directly to the assumption of perfect synchrony", and the census programme
of the companion paper [19].  Expected rows: exactly one cyclic ordered
partition (the full block) out of all 4683 on the 6-ring; fixed-point
counts 2, 6, 12, 20, ... obeying a(n) = 2a(n-1) - a(n-2) + a(n-4);
exactly two cycle configurations per even ring; Garden-of-Eden fraction
increasing toward 1.
"""

from repro.analysis.census import find_linear_recurrence, majority_ring_census
from repro.core.block_maps import check_block_synchrony


def test_block_synchrony_exhaustive(benchmark):
    report = benchmark(
        lambda: check_block_synchrony(exhaustive_n=6, structured_sizes=(8, 10))
    )
    assert report.holds
    assert report.details["ring6_ordered_partitions"] == 4683
    assert report.details["ring6_cyclic_partitions"] == 1


def test_census_with_recurrence(benchmark):
    rows = benchmark(lambda: majority_ring_census(range(3, 15)))
    fps = [r.fixed_points for r in rows]
    rec = find_linear_recurrence(fps)
    assert rec is not None and rec[0] == 4
    assert [int(c) for c in rec[1]] == [2, -1, 0, 1]
    fractions = [r.garden_fraction for r in rows]
    assert all(a < b for a, b in zip(fractions[2:], fractions[3:]))


def test_census_large_ring(benchmark):
    """One 2**16-configuration census row (characterisation check included)."""
    rows = benchmark(lambda: majority_ring_census((16,)))
    assert rows[0].fixed_points == 2206
    assert rows[0].cycle_configs == 2
