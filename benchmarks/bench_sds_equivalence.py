"""E14 — SDS update-order equivalence vs. the acyclic-orientation bound.

Paper artifact: the Section 4 context from references [3-6] (Barrett,
Mortveit, Reidys): the number of functionally distinct SDS maps over a
graph G is bounded by a(G), the number of acyclic orientations.  Expected
rows: distinct-map counts <= a(G) across graph families, with equality
behaviour depending on the vertex functions.
"""

import networkx as nx
import pytest

from repro.core.rules import MajorityRule, XorRule
from repro.sds.equivalence import (
    acyclic_orientation_count,
    verify_orientation_bound,
)
from repro.sds.sds import SDS


GRAPHS = {
    "path4": nx.path_graph(4),
    "cycle5": nx.cycle_graph(5),
    "star4": nx.star_graph(4),
    "complete4": nx.complete_graph(4),
    "cube": nx.hypercube_graph(3),
}


@pytest.mark.parametrize("name", ["path4", "cycle5", "star4", "complete4"])
def test_orientation_bound_majority(benchmark, name):
    sds = SDS(GRAPHS[name], MajorityRule())
    rep = benchmark(lambda: verify_orientation_bound(sds))
    assert rep.bound_holds
    assert rep.distinct_maps >= 1


def test_orientation_bound_xor(benchmark):
    """XOR vertex functions: order-sensitivity differs from majority but
    the bound still holds."""
    sds = SDS(nx.cycle_graph(5), XorRule())
    rep = benchmark(lambda: verify_orientation_bound(sds))
    assert rep.bound_holds


def test_acyclic_orientation_counts(benchmark):
    """a(G) itself across the graph zoo (chromatic polynomial at -1)."""

    def counts():
        return {name: acyclic_orientation_count(g) for name, g in GRAPHS.items()}

    values = benchmark(counts)
    assert values["path4"] == 8          # 2^(n-1) for trees
    assert values["star4"] == 16
    assert values["cycle5"] == 30        # 2^n - 2 for cycles
    assert values["complete4"] == 24     # n! for complete graphs
    assert values["cube"] == 1862        # known value for Q3
