"""E10 — bipartite cellular spaces give parallel two-cycles.

Paper artifact: Section 3's remark extending Lemma 1(i) to 2-D grids,
hypercubes, and general bipartite cellular spaces.  Expected rows: the
bipartition-indicator configuration alternates with its complement on
every bipartite space of minimum degree >= 2.
"""

import networkx as nx
import numpy as np

from repro.core.automaton import CellularAutomaton
from repro.core.evolution import parallel_orbit
from repro.core.rules import MajorityRule
from repro.core.theorems import check_bipartite_two_cycles
from repro.spaces.graph import GraphSpace
from repro.spaces.grid import Grid2D
from repro.spaces.hypercube import Hypercube
from repro.spaces.line import Ring


def test_bipartite_standard_spaces(benchmark):
    report = benchmark(check_bipartite_two_cycles)
    assert report.holds
    assert len(report.witnesses) >= 5


def test_bipartite_complete_bipartite_graphs(benchmark):
    spaces = [GraphSpace(nx.complete_bipartite_graph(a, b))
              for a, b in [(2, 2), (2, 3), (3, 3), (4, 5)]]
    report = benchmark(lambda: check_bipartite_two_cycles(spaces=spaces))
    assert report.holds


def test_bipartite_large_grid_orbit(benchmark):
    """Direct orbit measurement on a 10x10 torus (bipartite, degree 4)."""
    space = Grid2D(10, 10)
    ca = CellularAutomaton(space, MajorityRule())
    left, _ = space.bipartition()
    state = np.zeros(space.n, dtype=np.uint8)
    for i in left:
        state[i] = 1
    orbit = benchmark(lambda: parallel_orbit(ca, state))
    assert orbit.is_two_cycle and orbit.transient == 0


def test_non_bipartite_control(benchmark):
    """Negative control: odd rings are not bipartite and the construction
    correctly reports inapplicability."""
    report = benchmark(
        lambda: check_bipartite_two_cycles(spaces=[Ring(5), Ring(7), Hypercube(3)])
    )
    assert not report.holds  # the odd rings fail the bipartite precondition
    assert any("not bipartite" in c[1] for c in report.counterexamples)
    assert ("Hypercube(d=3, n=8)", ) not in report.counterexamples
