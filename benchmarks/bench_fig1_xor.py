"""E1/E2 — regenerate Figure 1: the two-node XOR CA phase spaces.

Paper artifact: Fig. 1(a) (parallel) and Fig. 1(b) (sequential), the
motivating example of Section 3.1.  The benchmark times the full phase-
space construction; the assertions reproduce the figure edge for edge.
"""

import networkx as nx

from repro.analysis.drawing import nondet_phase_space_dot, phase_space_dot
from repro.core.automaton import CellularAutomaton
from repro.core.nondet import NondetPhaseSpace
from repro.core.phase_space import PhaseSpace
from repro.core.rules import XorRule
from repro.spaces.graph import GraphSpace


def _ca() -> CellularAutomaton:
    return CellularAutomaton(GraphSpace(nx.path_graph(2)), XorRule(), memory=True)


def test_fig1a_parallel_phase_space(benchmark):
    ps = benchmark(lambda: PhaseSpace.from_automaton(_ca()))
    # Fig. 1(a): 01 -> 11 -> 00 <- 10 -> 11 ... with 00 the global sink.
    assert ps.succ.tolist() == [0b00, 0b11, 0b11, 0b00]
    assert ps.fixed_points.tolist() == [0]
    assert ps.max_transient() <= 2  # "after at most two parallel steps"
    assert not ps.has_proper_cycle()
    dot = phase_space_dot(ps, title="Figure 1(a)")
    assert "c1 -> c3;" in dot and "c3 -> c0;" in dot


def test_fig1b_sequential_phase_space(benchmark):
    nps = benchmark(lambda: NondetPhaseSpace.from_automaton(_ca()))
    # Fig. 1(b): 00 is an unreachable FP; 01/10 are pseudo-FPs; two
    # two-cycles through 11 exist.
    assert nps.fixed_points.tolist() == [0]
    assert sorted(nps.pseudo_fixed_points.tolist()) == [1, 2]
    assert nps.unreachable_configs().tolist() == [0]
    assert nps.has_proper_cycle()
    assert not nps.can_reach(0b11, 0b00)
    dot = nondet_phase_space_dot(nps, title="Figure 1(b)")
    assert 'c3 -> c2 [label="1"];' in dot


def test_fig1_contrast_summary(benchmark):
    """The union of sequential interleavings misses parallel reachability
    of 00 — the figure's punchline, quantified."""

    def build():
        ca = _ca()
        ps = PhaseSpace.from_automaton(ca)
        nps = NondetPhaseSpace.from_automaton(ca)
        return ps, nps

    ps, nps = benchmark(build)
    # Parallel: every configuration reaches 00.  Sequential: none do.
    for code in range(1, 4):
        assert int(ps.succ[int(ps.succ[code])]) == 0
        assert not nps.can_reach(code, 0)
