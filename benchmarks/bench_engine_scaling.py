"""E15 — engine throughput, the vectorization ablation, sweep backends.

Implementation artifact (DESIGN.md Section 5): the synchronous step is one
window-gather plus one vectorized rule application.  Expected series: the
vectorized step beats the per-node reference by orders of magnitude and
scales linearly in n; whole-phase-space sweeps stay chunk-bounded in
memory; the compiled ``table``/``bitplane`` kernels beat the ``numpy``
reference by >= 5x on the n=20 MAJORITY sweep (the PR-4 acceptance bar),
and process sharding beats the best serial kernel on multi-CPU hosts.
"""

import os

import numpy as np
import pytest

from repro.core.automaton import CellularAutomaton
from repro.core.rules import MajorityRule, WolframRule
from repro.spaces.grid import Grid2D
from repro.spaces.line import Ring


@pytest.mark.parametrize("n", [1 << 12, 1 << 16, 1 << 20])
def test_vectorized_step_scaling(benchmark, rng, n):
    ca = CellularAutomaton(Ring(n, radius=2), MajorityRule())
    state = rng.integers(0, 2, n).astype(np.uint8)
    out = benchmark(lambda: ca.step(state))
    assert out.shape == (n,)


@pytest.mark.parametrize("n", [1 << 12])
def test_naive_step_baseline(benchmark, rng, n):
    """The ablation baseline: same semantics, Python loop per node."""
    ca = CellularAutomaton(Ring(n, radius=2), MajorityRule())
    state = rng.integers(0, 2, n).astype(np.uint8)
    out = benchmark(lambda: ca.step_naive(state))
    np.testing.assert_array_equal(out, ca.step(state))


def test_step_all_whole_space(benchmark):
    """2**18 configurations through the global map in one sweep."""
    ca = CellularAutomaton(Ring(18), MajorityRule())
    succ = benchmark(ca.step_all)
    assert succ.shape == (1 << 18,)
    # Spot-check agreement with the scalar engine.
    rng = np.random.default_rng(0)
    for code in rng.integers(0, 1 << 18, size=5):
        assert int(succ[code]) == ca.pack(ca.step(ca.unpack(int(code))))


def test_wolfram_table_rule_throughput(benchmark, rng):
    """Table rules go through packed-code lookup; same scaling story."""
    n = 1 << 16
    ca = CellularAutomaton(Ring(n), WolframRule(110))
    state = rng.integers(0, 2, n).astype(np.uint8)
    out = benchmark(lambda: ca.step(state))
    assert out.shape == (n,)


def test_grid_step_throughput(benchmark, rng):
    """The generic gather path covers 2-D spaces with no special casing."""
    ca = CellularAutomaton(Grid2D(256, 256), MajorityRule())
    state = rng.integers(0, 2, ca.n).astype(np.uint8)
    out = benchmark(lambda: ca.step(state))
    assert out.shape == (65536,)


# -- sweep backends (PR 4) -----------------------------------------------------
#
# The acceptance series: the compiled kernels against the numpy reference
# on the same n=20 MAJORITY whole-space sweep.  Bit-identical results are
# asserted in-loop, so the timing claim is also a correctness claim.

_N20_REFERENCE = {}


def _n20_reference() -> np.ndarray:
    if "succ" not in _N20_REFERENCE:
        ca = CellularAutomaton(Ring(20), MajorityRule(), backend="bitplane")
        _N20_REFERENCE["succ"] = ca.step_all()
    return _N20_REFERENCE["succ"]


@pytest.mark.parametrize("backend", ["numpy", "table", "bitplane"])
def test_sweep_backend_n20(benchmark, backend):
    """n=20 MAJORITY sweep per serial backend — the 5x acceptance bar."""
    ca = CellularAutomaton(Ring(20), MajorityRule(), backend=backend)
    assert ca.backend.name == backend
    succ = benchmark(ca.step_all)
    np.testing.assert_array_equal(succ, _n20_reference())


@pytest.mark.parametrize("backend", ["table", "bitplane"])
def test_all_node_successors_n16(benchmark, backend):
    """The shared one-pass sequential sweep (n rows, one unpack)."""
    ca = CellularAutomaton(Ring(16), MajorityRule(), backend=backend)
    table = benchmark(ca.all_node_successors)
    assert table.shape == (16, 1 << 16)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="process-backend speedup needs >= 4 physical CPUs to be honest",
)
@pytest.mark.parametrize("backend", ["process"])
def test_sweep_process_n24(benchmark, backend):
    """n=24 MAJORITY sweep, sharded across 4 workers (multi-CPU hosts).

    Compare against the serial bitplane entry of the same module to read
    off the >= 2x acceptance ratio.
    """
    ca = CellularAutomaton(Ring(24), MajorityRule(), backend="process",
                           workers=4)
    succ = benchmark.pedantic(ca.step_all, rounds=3, iterations=1)
    assert succ.shape == (1 << 24,)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="process-backend speedup needs >= 4 physical CPUs to be honest",
)
@pytest.mark.parametrize("backend", ["bitplane"])
def test_sweep_serial_n24(benchmark, backend):
    """The serial n=24 baseline for the process-sharding ratio."""
    ca = CellularAutomaton(Ring(24), MajorityRule(), backend="bitplane")
    succ = benchmark.pedantic(ca.step_all, rounds=3, iterations=1)
    assert succ.shape == (1 << 24,)
