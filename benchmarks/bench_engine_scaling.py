"""E15 — engine throughput and the vectorization ablation.

Implementation artifact (DESIGN.md Section 5): the synchronous step is one
window-gather plus one vectorized rule application.  Expected series: the
vectorized step beats the per-node reference by orders of magnitude and
scales linearly in n; whole-phase-space sweeps stay chunk-bounded in
memory.
"""

import numpy as np
import pytest

from repro.core.automaton import CellularAutomaton
from repro.core.rules import MajorityRule, WolframRule
from repro.spaces.grid import Grid2D
from repro.spaces.line import Ring


@pytest.mark.parametrize("n", [1 << 12, 1 << 16, 1 << 20])
def test_vectorized_step_scaling(benchmark, rng, n):
    ca = CellularAutomaton(Ring(n, radius=2), MajorityRule())
    state = rng.integers(0, 2, n).astype(np.uint8)
    out = benchmark(lambda: ca.step(state))
    assert out.shape == (n,)


@pytest.mark.parametrize("n", [1 << 12])
def test_naive_step_baseline(benchmark, rng, n):
    """The ablation baseline: same semantics, Python loop per node."""
    ca = CellularAutomaton(Ring(n, radius=2), MajorityRule())
    state = rng.integers(0, 2, n).astype(np.uint8)
    out = benchmark(lambda: ca.step_naive(state))
    np.testing.assert_array_equal(out, ca.step(state))


def test_step_all_whole_space(benchmark):
    """2**18 configurations through the global map in one sweep."""
    ca = CellularAutomaton(Ring(18), MajorityRule())
    succ = benchmark(ca.step_all)
    assert succ.shape == (1 << 18,)
    # Spot-check agreement with the scalar engine.
    rng = np.random.default_rng(0)
    for code in rng.integers(0, 1 << 18, size=5):
        assert int(succ[code]) == ca.pack(ca.step(ca.unpack(int(code))))


def test_wolfram_table_rule_throughput(benchmark, rng):
    """Table rules go through packed-code lookup; same scaling story."""
    n = 1 << 16
    ca = CellularAutomaton(Ring(n), WolframRule(110))
    state = rng.integers(0, 2, n).astype(np.uint8)
    out = benchmark(lambda: ca.step(state))
    assert out.shape == (n,)


def test_grid_step_throughput(benchmark, rng):
    """The generic gather path covers 2-D spaces with no special casing."""
    ca = CellularAutomaton(Grid2D(256, 256), MajorityRule())
    state = rng.integers(0, 2, ca.n).astype(np.uint8)
    out = benchmark(lambda: ca.step(state))
    assert out.shape == (65536,)
