"""E12 — fair sequential threshold CA converge to fixed points.

Paper artifact: Section 3's convergence claim with the footnote-2 fairness
condition.  Expected rows: every fair run converges; effective flips stay
under the Goles–Martinez energy bound; the unfair control schedule stalls.
"""

import numpy as np
import pytest

from repro.core.automaton import CellularAutomaton
from repro.core.energy import ThresholdNetwork
from repro.core.evolution import sequential_converge
from repro.core.rules import MajorityRule
from repro.core.schedules import (
    FixedPermutation,
    FixedWord,
    RandomPermutationSweeps,
    RandomSingleNode,
)
from repro.spaces.line import Ring


@pytest.mark.parametrize(
    "schedule_name,schedule",
    [
        ("identity-sweep", FixedPermutation()),
        ("random-sweeps", RandomPermutationSweeps(11)),
        ("uniform-single", RandomSingleNode(13)),
    ],
)
def test_fair_convergence(benchmark, rng, schedule_name, schedule):
    ca = CellularAutomaton(Ring(16), MajorityRule())
    bound = ThresholdNetwork.from_automaton(ca).max_flip_bound()
    inits = rng.integers(0, 2, size=(24, ca.n)).astype(np.uint8)

    def run_all():
        flips = []
        for x0 in inits:
            res = sequential_converge(ca, x0, schedule, max_updates=50_000)
            assert res.converged
            flips.append(res.effective_flips)
        return flips

    flips = benchmark(run_all)
    assert max(flips) <= bound


def test_unfair_schedule_control(benchmark):
    """Fairness is necessary: a schedule that only ever updates node 0
    freezes the run in a non-fixed-point configuration."""
    ca = CellularAutomaton(Ring(12), MajorityRule())
    alt = (np.arange(12) % 2).astype(np.uint8)
    word = FixedWord([0])  # every other node is starved

    res = benchmark(
        lambda: sequential_converge(ca, alt, word, max_updates=2_000)
    )
    assert not res.converged
    assert not ca.is_fixed_point(res.final_state)


def test_convergence_scales_with_n(benchmark, rng):
    """Flips needed grow roughly linearly in n (the energy bound is
    O(edges)); one data point for the series at n = 64."""
    ca = CellularAutomaton(Ring(64), MajorityRule())
    x0 = rng.integers(0, 2, ca.n).astype(np.uint8)
    res = benchmark(
        lambda: sequential_converge(
            ca, x0.copy(), RandomPermutationSweeps(5), max_updates=200_000
        )
    )
    assert res.converged
    assert res.effective_flips <= ThresholdNetwork.from_automaton(ca).max_flip_bound()


def test_alpha_asynchronism_sweep(benchmark):
    """E22: any alpha < 1 destroys the oscillation almost surely."""
    from repro.core.schedules import AlphaAsynchronous

    ca = CellularAutomaton(Ring(12), MajorityRule())
    alt = (np.arange(12) % 2).astype(np.uint8)

    def sweep():
        means = {}
        for alpha in (0.3, 0.6, 0.9):
            times = []
            for seed in range(16):
                res = sequential_converge(
                    ca, alt, AlphaAsynchronous(alpha, seed=seed),
                    max_updates=5_000,
                )
                assert res.converged
                times.append(res.updates_used)
            means[alpha] = float(np.mean(times))
        return means

    means = benchmark(sweep)
    assert all(v < 5_000 for v in means.values())
