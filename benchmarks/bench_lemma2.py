"""E7 — Lemma 2: the radius-2 analogue of Lemma 1.

Paper artifact: Lemma 2(i)/(ii).  Expected rows: block configurations
``0011...`` are parallel two-cycles (finite rings and the infinite line);
no sequential order cycles.
"""

from repro.core.theorems import check_lemma2_parallel, check_lemma2_sequential


def test_lemma2_parallel(benchmark):
    report = benchmark(
        lambda: check_lemma2_parallel(ring_sizes=(8, 12, 16), exhaustive_limit=12)
    )
    assert report.holds
    assert report.details["infinite_line_two_cycle"]


def test_lemma2_sequential(benchmark):
    report = benchmark(
        lambda: check_lemma2_sequential(ring_sizes=(5, 6, 7, 8, 9, 10, 11))
    )
    assert report.holds
    assert report.counterexamples == ()
