"""E21 — all 256 elementary rules vs. the paper's dichotomy.

Paper artifact: the rule-class landscape of Section 3, completed — for
every with-memory radius-1 rule, where does it sit relative to the
monotone-symmetric convergence theorem?  Expected rows: 20 monotone rules
(5 of them symmetric, zero Theorem-1 violations), 104 linear-threshold
rules, 57 sequentially cycle-free rules, and exactly {170, 240} (the two
shifts) as monotone sequential cyclers.
"""

from repro.analysis.elementary import survey_all_rules, survey_rule, survey_summary


def _fresh_survey(sizes):
    survey_rule.cache_clear()  # benchmark the work, not the memo
    return survey_summary(survey_all_rules(sizes))


def test_full_survey(benchmark):
    summary = benchmark(lambda: _fresh_survey((5, 6, 7)))
    assert summary["theorem1_violations"] == []
    assert summary["monotone_sequential_cyclers"] == [170, 240]
    assert summary["monotone"] == 20
    assert summary["linear_threshold"] == 104


def test_single_rule_profile(benchmark):
    def profile_110():
        survey_rule.cache_clear()
        return survey_rule(110, (5, 6, 7, 8))

    profile = benchmark(profile_110)
    # Rule 110 (Turing-universal): non-monotone, long parallel cycles,
    # sequential cycles too.
    assert not profile.monotone
    assert profile.parallel_max_period > 2
    assert profile.sequential_cycles_somewhere
