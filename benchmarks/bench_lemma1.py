"""E4/E5 — Lemma 1: MAJORITY r=1, parallel cycles vs. sequential cycle-freeness.

Paper artifact: Lemma 1(i) and 1(ii).  Expected rows: every even ring has a
parallel two-cycle (exactly one for the plain even ring); no ring of any
size has a sequential proper cycle.
"""

import pytest

from repro.core.automaton import CellularAutomaton
from repro.core.nondet import NondetPhaseSpace
from repro.core.phase_space import PhaseSpace
from repro.core.rules import MajorityRule
from repro.core.theorems import check_lemma1_parallel, check_lemma1_sequential
from repro.spaces.line import Ring


def test_lemma1_parallel_cycles(benchmark):
    report = benchmark(
        lambda: check_lemma1_parallel(ring_sizes=(4, 6, 8, 10, 12),
                                      exhaustive_limit=12)
    )
    assert report.holds
    assert report.details["infinite_line_two_cycle"]
    # Paper row: one two-cycle pair per even ring (exhaustive sizes).
    for n in (4, 6, 8, 10, 12):
        assert report.details[f"ring{n}_cycle_lengths"] == [2]


def test_lemma1_sequential_cycle_free(benchmark):
    report = benchmark(
        lambda: check_lemma1_sequential(ring_sizes=tuple(range(3, 13)))
    )
    assert report.holds
    assert report.counterexamples == ()


@pytest.mark.parametrize("n", [8, 12, 16])
def test_lemma1_parallel_phase_space_scaling(benchmark, n):
    """Exhaustive parallel phase-space construction per ring size."""
    ca = CellularAutomaton(Ring(n), MajorityRule())
    ps = benchmark(lambda: PhaseSpace.from_automaton(ca))
    assert ps.has_proper_cycle()
    assert max(ps.cycle_lengths()) == 2


@pytest.mark.parametrize("n", [8, 12, 14])
def test_lemma1_sequential_phase_space_scaling(benchmark, n):
    """Exhaustive nondeterministic phase-space construction + SCC search."""
    ca = CellularAutomaton(Ring(n), MajorityRule())

    def build():
        nps = NondetPhaseSpace.from_automaton(ca)
        return nps.has_proper_cycle()

    assert benchmark(build) is False
