"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (see DESIGN.md's
per-experiment index and EXPERIMENTS.md for the paper-vs-measured record):
the benchmarked callable *returns* the measurement, and the test asserts
the paper's qualitative claim on it, so a timing run is also a correctness
run.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG so benchmark workloads are reproducible."""
    return np.random.default_rng(1999)
