"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (see DESIGN.md's
per-experiment index and EXPERIMENTS.md for the paper-vs-measured record):
the benchmarked callable *returns* the measurement, and the test asserts
the paper's qualitative claim on it, so a timing run is also a correctness
run.

At session end the harness additionally persists one structured
``BENCH_<module>.json`` per benchmark module into the repository root —
per-benchmark wall-time statistics, parameters, environment and the obs
metrics snapshot — seeding the repo's performance trajectory so later
perf PRs have numbers to beat.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import durable
from repro.obs import REGISTRY
from repro.perf import BACKEND_ENV

#: schema version stamped into BENCH_*.json (validated by repro.contracts)
BENCH_SCHEMA = "repro-bench/1"

durable.register_write_site(
    "bench.write", "atomically replace a BENCH_<module>.json report"
)

#: the session-default sweep backend (benchmarks that parametrize over
#: backends record their own; everything else inherits this label, which
#: matches what ``resolve_backend`` will actually pick up from the env)
BACKEND = os.environ.get(BACKEND_ENV, "").strip() or "auto"


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG so benchmark workloads are reproducible."""
    return np.random.default_rng(1999)


def _stats_dict(bench) -> dict[str, object]:
    """Flatten one pytest-benchmark Metadata object into JSON-safe stats."""
    out: dict[str, object] = {}
    stats = getattr(bench, "stats", None)
    for key in ("min", "max", "mean", "stddev", "median", "total"):
        value = getattr(stats, key, None)
        if value is not None:
            out[f"{key}_s"] = float(value)
    rounds = getattr(stats, "rounds", None)
    if rounds is not None:
        out["rounds"] = int(rounds)
    iterations = getattr(bench, "iterations", None)
    if iterations is not None:
        out["iterations"] = int(iterations)
    return out


def _benchmark_entry(bench) -> dict[str, object]:
    params = getattr(bench, "params", None) or {}
    return {
        "name": getattr(bench, "name", "?"),
        "fullname": getattr(bench, "fullname", "?"),
        "group": getattr(bench, "group", None),
        "params": {k: v for k, v in params.items()},
        "n": params.get("n"),
        "backend": params.get("backend", BACKEND),
        "stats": _stats_dict(bench),
    }


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    """Write ``BENCH_<module>.json`` files for every benchmarked module."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not getattr(bench_session, "benchmarks", None):
        return
    by_module: dict[str, list[dict[str, object]]] = {}
    for bench in bench_session.benchmarks:
        fullname = getattr(bench, "fullname", "")
        module_path = fullname.split("::", 1)[0]
        stem = Path(module_path).stem
        name = stem.removeprefix("bench_") or stem
        try:
            by_module.setdefault(name, []).append(_benchmark_entry(bench))
        except Exception:  # one malformed entry must not lose the rest
            continue
    if not by_module:
        return
    root = Path(str(session.config.rootpath))
    generated = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    environment = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": np.__version__,
        "backend": BACKEND,
    }
    metrics = REGISTRY.snapshot()
    for name, entries in sorted(by_module.items()):
        payload = {
            "schema": BENCH_SCHEMA,
            "module": f"bench_{name}",
            "generated": generated,
            "exit_status": int(exitstatus),
            "environment": environment,
            "benchmarks": sorted(entries, key=lambda e: str(e["fullname"])),
            "metrics": metrics,
        }
        # Durable, no sidecar: the reports live at the repo root where a
        # .sum per BENCH file would be committed clutter; the schema +
        # contract validation covers their integrity instead.
        durable.durable_write_json(
            root / f"BENCH_{name}.json",
            payload,
            site="bench.write",
            checksum=False,
        )
