"""Progress heartbeat overhead: the reporter must cost <1% of a build.

The ``--progress`` contract (docs/API.md) is that attaching a
:class:`~repro.obs.progress.ProgressReporter` to the governed budget adds
under one percent to the wall time of a real enumeration — heartbeats are
observability, not a tax.  Two mechanisms keep it cheap, and both are
pinned here:

* whole-space sweeps charge per :data:`~repro.perf.base.CHUNK` (2**16
  states), so an n-node parallel build performs only ``2**n / 2**16``
  hook calls — the overhead bound is *analytic*: measured per-charge hook
  cost times the build's charge count must stay under 1% of the measured
  build median;
* ``states=1`` hot loops (sequential orbits, census, fuzz cases) are
  protected by the reporter's adaptive clock-read stride, benchmarked
  against the bare uninstrumented charge.
"""

import io
import time

import pytest

from repro.core.automaton import CellularAutomaton
from repro.core.budget import Budget
from repro.core.phase_space import build_phase_space
from repro.core.rules import MajorityRule
from repro.obs.progress import ProgressReporter
from repro.perf.base import CHUNK
from repro.spaces.line import Ring

#: ring size for the end-to-end build (2**18 configurations — a real
#: sweep, yet quick enough to repeat for stable medians)
N = 18

#: the acceptance criterion is phrased against ``phase-space --n 24``
TARGET_N = 24


def _build(budget: Budget):
    ca = CellularAutomaton(Ring(N), MajorityRule())
    partial = build_phase_space(ca, budget=budget)
    assert partial.complete
    return partial.value


def _null_reporter(total: int) -> ProgressReporter:
    return ProgressReporter("bench", total=total, stream=io.StringIO())


def test_phase_space_baseline(benchmark):
    ps = benchmark(lambda: _build(Budget()))
    assert ps.size == 1 << N


def test_phase_space_with_progress(benchmark):
    def run():
        budget = Budget()
        reporter = _null_reporter(1 << N)
        budget.on_charge = reporter.on_charge
        ps = _build(budget)
        reporter.finish()
        return ps, reporter

    ps, reporter = benchmark(run)
    assert ps.size == 1 << N
    # Every charged state reached the reporter (the build also charges
    # analysis bytes with states=0, which must not inflate the count).
    assert reporter.done >= 1 << N


def test_progress_overhead_under_one_percent(benchmark):
    """Analytic acceptance bound for ``phase-space --n 24 --progress``.

    Measure the per-charge hook cost over many chunk-sized charges, scale
    to the charge count an n=24 parallel build performs, and require that
    total to be under 1% of the *n=18* build's measured wall time — a
    deliberately stricter denominator, since the n=24 build is ~64x
    longer but performs only 64x the (still tiny) hook calls.
    """
    rounds = 4096
    budget = Budget()
    reporter = _null_reporter(TARGET_N * rounds * CHUNK)
    budget.on_charge = reporter.on_charge

    def charge_many():
        for _ in range(rounds):
            budget.charge(states=CHUNK)

    benchmark(charge_many)
    per_charge = benchmark.stats.stats.median / rounds

    t0 = time.perf_counter()
    _build(Budget())
    build_s = time.perf_counter() - t0

    charges_n24 = (1 << TARGET_N) // CHUNK  # 256 chunk charges
    overhead_s = per_charge * charges_n24
    assert overhead_s < 0.01 * build_s, (
        f"projected n={TARGET_N} progress overhead {overhead_s:.6f}s is not "
        f"<1% of the measured n={N} build ({build_s:.3f}s)"
    )


@pytest.mark.parametrize("hooked", [False, True], ids=["bare", "hooked"])
def test_unit_charge_hot_loop(benchmark, hooked):
    """states=1 loops: the adaptive stride keeps the hook near-free.

    The hooked loop may pay a counter bump and an occasional clock read
    per charge, but never syscalls — so it stays within a small constant
    factor of the bare charge (asserted coarsely; the absolute per-charge
    cost is the recorded number that matters across runs).
    """
    rounds = 200_000
    budget = Budget()
    if hooked:
        reporter = _null_reporter(rounds)
        budget.on_charge = reporter.on_charge

    def charge_units():
        for _ in range(rounds):
            budget.charge(states=1)

    benchmark(charge_units)
    per_charge = benchmark.stats.stats.median / rounds
    # A budget charge is a handful of integer ops; even hooked it must
    # stay well under 10us on any host this suite runs on.
    assert per_charge < 10e-6
