"""Ablation — SCC detection: SciPy compiled Tarjan vs. pure-Python Tarjan.

DESIGN.md Section 5 calls out proper-cycle detection via SCCs on the
change-edge digraph.  The workload here is the real one: the full
nondeterministic transition graph of a MAJORITY ring (2**n states,
~n * 2**n candidate edges).  Both implementations must agree exactly.
"""

import numpy as np
import pytest

from repro.analysis.cycles import scc_labels, scc_labels_python
from repro.core.automaton import CellularAutomaton
from repro.core.nondet import NondetPhaseSpace
from repro.core.rules import MajorityRule, XorRule
from repro.spaces.line import Ring


@pytest.fixture(scope="module")
def change_graph():
    ca = CellularAutomaton(Ring(12), MajorityRule())
    nps = NondetPhaseSpace.from_automaton(ca)
    srcs, dsts, _ = nps._change_edges
    return srcs, dsts, nps.size


def test_scipy_scc(benchmark, change_graph):
    srcs, dsts, size = change_graph
    n_comp, labels = benchmark(lambda: scc_labels(srcs, dsts, size))
    sizes = np.bincount(labels, minlength=n_comp)
    assert sizes.max() == 1  # cycle-free: all SCCs are singletons


def test_python_tarjan(benchmark, change_graph):
    srcs, dsts, size = change_graph
    n_comp, labels = benchmark(lambda: scc_labels_python(srcs, dsts, size))
    assert n_comp == size  # every configuration its own component


def test_agreement_on_cyclic_graph(benchmark):
    """Both find the same component structure where cycles DO exist (XOR)."""
    ca = CellularAutomaton(Ring(8), XorRule())
    nps = NondetPhaseSpace.from_automaton(ca)
    srcs, dsts, _ = nps._change_edges

    def both():
        a = scc_labels(srcs, dsts, nps.size)
        b = scc_labels_python(srcs, dsts, nps.size)
        return a, b

    (n1, l1), (n2, l2) = benchmark(both)
    assert n1 == n2
    # Partitions agree up to label permutation.
    remap: dict[int, int] = {}
    for x, y in zip(l1.tolist(), l2.tolist()):
        assert remap.setdefault(x, y) == y
