"""E3 — regenerate Section 1.1's granularity example.

Paper artifact: the ``x += 1 || x += 2`` exercise.  Expected series:
high-level sequential outcomes {3}; parallel outcomes {1, 2}; machine-level
interleaving outcomes {1, 2, 3} over 20 interleavings.
"""

from repro.interleave.programs import (
    AtomicAdd,
    granularity_report,
    tosic_agha_example,
)


def _x_values(outcomes):
    return sorted(dict(o)["x"] for o in outcomes)


def test_granularity_paper_example(benchmark):
    rep = benchmark(tosic_agha_example)
    assert _x_values(rep.high_level_outcomes) == [3]
    assert _x_values(rep.parallel_outcomes_) == [1, 2]
    assert _x_values(rep.machine_outcomes) == [1, 2, 3]
    assert rep.machine_interleavings == 20
    assert rep.parallel_escapes_high_level
    assert rep.machine_captures_parallel


def test_granularity_scales_to_three_threads(benchmark):
    stmts = [AtomicAdd("x", 1), AtomicAdd("x", 2), AtomicAdd("x", 4)]
    rep = benchmark(lambda: granularity_report(stmts, {"x": 0}))
    # 1680 interleavings of nine instructions, still fully enumerated.
    assert rep.machine_interleavings == 1680
    assert rep.machine_captures_parallel
    assert rep.machine_captures_high_level
    assert _x_values(rep.high_level_outcomes) == [7]
    # Parallel: any single winner's value.
    assert _x_values(rep.parallel_outcomes_) == [1, 2, 4]
