#!/usr/bin/env python3
"""Lemma 1 live: watch MAJORITY oscillate in parallel and converge
sequentially, on finite rings and on the exact infinite line.

Run:  python examples/majority_cycles.py
"""

import numpy as np

from repro import (
    CellularAutomaton,
    MajorityRule,
    NondetPhaseSpace,
    Ring,
    SupportConfig,
    infinite_orbit,
    infinite_step,
    sequential_converge,
)
from repro.analysis.drawing import render_spacetime
from repro.core.evolution import parallel_trajectory
from repro.core.schedules import RandomPermutationSweeps
from repro.core.theorems import alternating_config, block_config


def finite_rings() -> None:
    print("=== finite rings: Lemma 1 ===")
    ca = CellularAutomaton(Ring(16), MajorityRule())
    alt = alternating_config(16)
    print("parallel, radius 1, from 0101... (two-cycle):")
    print(render_spacetime(parallel_trajectory(ca, alt, 4)))

    print("\nthe same start, fair sequential order (converges):")
    res = sequential_converge(ca, alt, RandomPermutationSweeps(7))
    print(
        f"fixed point {''.join(map(str, res.final_state))} after "
        f"{res.effective_flips} effective flips"
    )

    print("\nexhaustive check on the 10-ring: sequential cycle-free?")
    nps = NondetPhaseSpace.from_automaton(
        CellularAutomaton(Ring(10), MajorityRule())
    )
    print(f"proper cycles in sequential phase space: "
          f"{len(nps.proper_cycle_components())}")


def radius_two() -> None:
    print("\n=== radius 2: Lemma 2 / Corollary 1 ===")
    ca = CellularAutomaton(Ring(16, radius=2), MajorityRule())
    blocks = block_config(16, 2)
    print("parallel, radius 2, from 00110011... (two-cycle):")
    print(render_spacetime(parallel_trajectory(ca, blocks, 4)))


def infinite_line() -> None:
    print("\n=== the infinite line, exactly ===")
    rule = MajorityRule().with_arity(3)
    alt = SupportConfig.periodic("01")
    t, p, cycle = infinite_orbit(rule, alt)
    print(f"...010101... orbit: transient={t}, period={p}")
    for cfg in cycle:
        print(f"  {cfg.describe()}")

    print("\na finite droplet relaxes:")
    cfg = SupportConfig.finite("1101001110100")
    for step in range(4):
        print(f"  t={step}: {cfg.to_string(-2, 15)}")
        cfg = infinite_step(rule, cfg)

    print("\na solid block invades the alternating background (divergent):")
    cfg = SupportConfig.build("01", "1111", "01", lo=0)
    for step in range(5):
        print(f"  t={step}: {cfg.to_string(-10, 14)}  core width {len(cfg.core)}")
        cfg = infinite_step(rule, cfg)


def main() -> None:
    np.set_printoptions(linewidth=120)
    finite_rings()
    radius_two()
    infinite_line()


if __name__ == "__main__":
    main()
