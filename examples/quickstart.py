#!/usr/bin/env python3
"""Quickstart: the paper's contrast in thirty lines.

Builds a MAJORITY threshold CA on a ring, shows the parallel dynamics
oscillating on the alternating configuration, shows that *no* sequential
update order can ever cycle, and quantifies the resulting failure of the
interleaving semantics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CellularAutomaton,
    MajorityRule,
    NondetPhaseSpace,
    PhaseSpace,
    RandomPermutationSweeps,
    Ring,
    interleaving_capture_report,
    parallel_orbit,
    sequential_converge,
)
from repro.analysis.drawing import render_spacetime
from repro.core.evolution import parallel_trajectory


def main() -> None:
    ca = CellularAutomaton(Ring(12, radius=1), MajorityRule(), memory=True)
    print(f"automaton: {ca.describe()}\n")

    # 1. Parallel (classical CA): the alternating configuration oscillates.
    alt = (np.arange(12) % 2).astype(np.uint8)
    print("parallel run from 010101... :")
    print(render_spacetime(parallel_trajectory(ca, alt, 6)))
    orbit = parallel_orbit(ca, alt)
    print(f"=> orbit: transient={orbit.transient}, period={orbit.period}\n")

    # 2. Sequential (SCA): the same configuration under a fair random
    #    order converges to a fixed point instead.
    result = sequential_converge(ca, alt, RandomPermutationSweeps(seed=1))
    print(
        f"sequential run: converged={result.converged} after "
        f"{result.updates_used} updates ({result.effective_flips} flips)"
    )
    print(f"final state: {''.join(map(str, result.final_state))}\n")

    # 3. The whole phase spaces, compared.
    ps = PhaseSpace.from_automaton(ca)
    nps = NondetPhaseSpace.from_automaton(ca)
    print(f"parallel phase space:   {ps.summary()}")
    print(f"sequential phase space: {nps.summary()}\n")

    # 4. The headline: interleavings cannot capture the concurrency.
    report = interleaving_capture_report(
        CellularAutomaton(Ring(8), MajorityRule())
    )
    print(
        "interleaving capture on the 8-ring: "
        f"step rate {report.step_capture_rate:.2%}, "
        f"orbit rate {report.orbit_capture_rate:.2%}, "
        f"captures concurrency: {report.interleavings_capture_concurrency}"
    )


if __name__ == "__main__":
    main()
