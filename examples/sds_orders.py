#!/usr/bin/env python3
"""Sequential dynamical systems: how much does the update order matter?

Builds SDS over several small graphs, groups all n! update orders by the
global map they induce, and checks the Mortveit–Reidys bound by the number
of acyclic orientations a(G) — the theory behind the paper's references
[3-6].  Also shows Gardens of Eden appearing (majority) and vanishing
(XOR, which is invertible).

Run:  python examples/sds_orders.py
"""

import networkx as nx

from repro.core.rules import MajorityRule, XorRule
from repro.sds import (
    SDS,
    SyDS,
    acyclic_orientation_count,
    garden_of_eden_configs,
    sds_equivalence_classes,
    verify_orientation_bound,
)


def order_sensitivity() -> None:
    print("=== update-order sensitivity vs. acyclic orientations ===")
    print(f"{'graph':<12} {'n!':>5} {'distinct maps':>14} {'a(G)':>6}  bound")
    for name, g in [
        ("path4", nx.path_graph(4)),
        ("cycle4", nx.cycle_graph(4)),
        ("cycle5", nx.cycle_graph(5)),
        ("star4", nx.star_graph(4)),
        ("complete4", nx.complete_graph(4)),
    ]:
        rep = verify_orientation_bound(SDS(g, MajorityRule()))
        print(
            f"{name:<12} {rep.permutations:>5} {rep.distinct_maps:>14} "
            f"{rep.acyclic_orientations:>6}  "
            f"{'holds' if rep.bound_holds else 'VIOLATED'}"
        )


def equivalence_classes_detail() -> None:
    print("\n=== the classes themselves, on the 4-cycle ===")
    sds = SDS(nx.cycle_graph(4), MajorityRule())
    classes = sds_equivalence_classes(sds)
    for k, (fingerprint, perms) in enumerate(sorted(classes.items())):
        shown = ", ".join(str(p) for p in perms[:3])
        more = f" ... (+{len(perms) - 3})" if len(perms) > 3 else ""
        print(f"  map {k}: {len(perms):>2} orders  e.g. {shown}{more}")


def gardens() -> None:
    print("\n=== Gardens of Eden ===")
    g = nx.cycle_graph(5)
    for rule, name in [(MajorityRule(), "majority"), (XorRule(), "xor")]:
        sds = SDS(g, rule)
        syds = SyDS(g, rule)
        print(
            f"cycle5 + {name:<9} SDS gardens: "
            f"{garden_of_eden_configs(sds).size:>2}   "
            f"SyDS gardens: {garden_of_eden_configs(syds).size:>2}"
        )
    print("(xor vertex functions give a bijective SDS map: no gardens)")


def main() -> None:
    order_sensitivity()
    equivalence_classes_detail()
    gardens()


if __name__ == "__main__":
    main()
