#!/usr/bin/env python3
"""Regenerate Figure 1: phase spaces of the two-node XOR (S)CA.

Prints the exact transition structure of the paper's motivating example and
writes Graphviz DOT files (``fig1a.dot``, ``fig1b.dot``) you can render
with ``dot -Tpng``.

Run:  python examples/fig1_xor.py [output-dir]
"""

import sys
from pathlib import Path

import networkx as nx

from repro import CellularAutomaton, NondetPhaseSpace, PhaseSpace, XorRule
from repro.analysis.drawing import (
    ascii_phase_space,
    nondet_phase_space_dot,
    phase_space_dot,
)
from repro.spaces.graph import GraphSpace
from repro.util.bitops import config_str


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    ca = CellularAutomaton(GraphSpace(nx.path_graph(2)), XorRule(), memory=True)

    print("=== Figure 1(a): parallel two-node XOR CA ===")
    ps = PhaseSpace.from_automaton(ca)
    print(ascii_phase_space(ps))
    print(
        f"\nsink: {config_str(int(ps.fixed_points[0]), 2)} "
        f"(reached from anywhere in <= {ps.max_transient()} steps)\n"
    )

    print("=== Figure 1(b): sequential two-node XOR CA ===")
    nps = NondetPhaseSpace.from_automaton(ca)
    for code in range(4):
        for node, dst in nps.transitions(code):
            marker = "(self-loop)" if dst == code else ""
            print(
                f"{config_str(code, 2)} --node {node + 1}--> "
                f"{config_str(dst, 2)} {marker}"
            )
    print(f"\nfixed points:        {[config_str(int(c), 2) for c in nps.fixed_points]}")
    print(
        "pseudo-fixed points: "
        f"{[config_str(int(c), 2) for c in nps.pseudo_fixed_points]}"
    )
    print(
        "unreachable configs: "
        f"{[config_str(int(c), 2) for c in nps.unreachable_configs()]}"
    )
    witness = nps.find_two_cycle()
    assert witness is not None
    a, i, b, j = witness
    print(
        f"two-cycle witness:   {config_str(a, 2)} --{i + 1}--> "
        f"{config_str(b, 2)} --{j + 1}--> {config_str(a, 2)}"
    )

    fig1a = out_dir / "fig1a.dot"
    fig1b = out_dir / "fig1b.dot"
    fig1a.write_text(phase_space_dot(ps, title="Figure 1(a)"), encoding="utf-8")
    fig1b.write_text(
        nondet_phase_space_dot(nps, title="Figure 1(b)"), encoding="utf-8"
    )
    print(f"\nwrote {fig1a} and {fig1b} (render with: dot -Tpng fig1a.dot)")


if __name__ == "__main__":
    main()
