#!/usr/bin/env python3
"""Domain application: majority consensus on a noisy sensor grid.

The paper's introduction frames CA as "an abstraction of massively
parallel computers".  This example uses the library in that spirit: a grid
of binary sensors tries to agree on whether a measured event happened,
each sensor repeatedly replacing its bit by the MAJORITY of its
neighborhood (a classic distributed denoising/consensus kernel).

The paper's results show up as *engineering* facts here:

* run the grid **synchronously** and an adversarial noise pattern (the
  bipartition checkerboard) makes the fabric oscillate forever — the
  parallel two-cycle of Lemma 1(i)/Section 3;
* run it **asynchronously in any fair order** and Theorem 1's
  convergence guarantee kicks in: the fabric always settles, within the
  energy bound on flips, regardless of the noise;
* with realistic **communication delays** (the ACA model) consensus
  still settles when updates are staggered.

Run:  python examples/sensor_consensus.py
"""

import numpy as np

from repro import (
    CellularAutomaton,
    Grid2D,
    MajorityRule,
    RandomPermutationSweeps,
    Synchronous,
    ThresholdNetwork,
    parallel_orbit,
    sequential_converge,
)
from repro.aca import AsyncCA, UniformRandomDelay


def make_measurement(rows: int, cols: int, truth: int, noise: float,
                     rng: np.random.Generator) -> np.ndarray:
    """Ground truth ``truth`` observed through per-sensor bit-flip noise."""
    field = np.full(rows * cols, truth, dtype=np.uint8)
    flips = rng.random(field.size) < noise
    field[flips] ^= 1
    return field


def render(grid: Grid2D, state: np.ndarray) -> str:
    rows = []
    for r in range(grid.rows):
        rows.append(
            "".join(".#"[int(state[grid.index(r, c)])] for c in range(grid.cols))
        )
    return "\n".join(rows)


def random_noise_demo() -> None:
    print("=== random noise: everything works ===")
    rng = np.random.default_rng(7)
    grid = Grid2D(12, 24, torus=True)
    ca = CellularAutomaton(grid, MajorityRule(), memory=True)
    noisy = make_measurement(grid.rows, grid.cols, truth=1, noise=0.25, rng=rng)
    print(f"noisy reading ({int(noisy.sum())} of {noisy.size} sensors report 1):")
    print(render(grid, noisy))

    orbit = parallel_orbit(ca, noisy)
    print(
        f"\nsynchronous consensus: settles after {orbit.transient} rounds "
        f"with period {orbit.period}"
    )

    res = sequential_converge(ca, noisy, RandomPermutationSweeps(1))
    ones = int(res.final_state.sum())
    print(
        f"asynchronous (fair random order): converged={res.converged}, "
        f"{res.effective_flips} corrections, "
        f"{ones}/{res.final_state.size} sensors report 1:"
    )
    print(render(grid, res.final_state))


def adversarial_demo() -> None:
    print("\n=== adversarial noise: synchrony is the vulnerability ===")
    grid = Grid2D(8, 8, torus=True)
    ca = CellularAutomaton(grid, MajorityRule(), memory=True)
    left, _ = grid.bipartition()
    checker = np.zeros(grid.n, dtype=np.uint8)
    for i in left:
        checker[i] = 1
    print("checkerboard corruption:")
    print(render(grid, checker))

    orbit = parallel_orbit(ca, checker)
    print(
        f"\nsynchronous fabric: period-{orbit.period} oscillation — the "
        "sensors NEVER agree (Lemma 1(i) in production)"
    )

    res = sequential_converge(ca, checker, RandomPermutationSweeps(3))
    bound = ThresholdNetwork.from_automaton(ca).max_flip_bound()
    print(
        f"fair asynchronous fabric: converged={res.converged} after "
        f"{res.effective_flips} corrections (guaranteed <= {bound}):"
    )
    print(render(grid, res.final_state))

    # The synchronous schedule driven through the generic engine agrees.
    stuck = sequential_converge(ca, checker, Synchronous(), max_updates=300)
    print(f"synchronous schedule under the same driver: converged={stuck.converged}")


def delayed_network_demo() -> None:
    print("\n=== with real network delays (ACA model) ===")
    rng = np.random.default_rng(11)
    grid = Grid2D(8, 8, torus=True)
    noisy = make_measurement(8, 8, truth=0, noise=0.3, rng=rng)
    aca = AsyncCA(
        grid, MajorityRule(), noisy,
        delays=UniformRandomDelay(0.0, 0.5, seed=12),
    )
    # Staggered periodic updates, one phase per sensor.
    phases = rng.random(grid.n)
    for round_ in range(1, 26):
        for node in range(grid.n):
            aca.schedule_update(round_ + 0.5 * phases[node], node)
    aca.run()
    ones = int(aca.snapshot().sum())
    print(
        f"after 25 staggered rounds with random delays: "
        f"{len(aca.trace)} corrections, {aca.deliveries} messages, "
        f"{ones}/{grid.n} sensors report 1"
    )
    print(render(grid, aca.snapshot()))


def main() -> None:
    random_noise_demo()
    adversarial_demo()
    delayed_network_demo()


if __name__ == "__main__":
    main()
