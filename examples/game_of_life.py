#!/usr/bin/env python3
"""Conway's Game of Life — and what the paper says about it.

Life is the canonical synchronous CA; this example runs it through the
library's engines and then asks the paper's question of it: what happens
to its famous oscillators when updates become sequential?

* synchronous: the blinker oscillates (period 2), the glider translates
  (period 4 × torus width);
* sequential (any fair order): Life is NOT a threshold rule — birth is
  non-monotone (a count of 4 kills but 3 births) — so Theorem 1 does not
  apply, and indeed asynchronous Life behaves completely differently:
  the blinker's oscillation is destroyed.

Run:  python examples/game_of_life.py
"""

import numpy as np

from repro import CellularAutomaton, Grid2D, RandomPermutationSweeps
from repro.core.evolution import parallel_orbit, sequential_converge
from repro.core.rules import life_rule


def render(grid: Grid2D, state: np.ndarray) -> str:
    return "\n".join(
        "".join(".#"[int(state[grid.index(r, c)])] for c in range(grid.cols))
        for r in range(grid.rows)
    )


def place(grid: Grid2D, cells, state=None) -> np.ndarray:
    state = (
        np.zeros(grid.n, dtype=np.uint8) if state is None else state
    )
    for r, c in cells:
        state[grid.index(r, c)] = 1
    return state


def synchronous_zoo() -> None:
    print("=== synchronous Life ===")
    grid = Grid2D(10, 10, neighborhood="moore", torus=True)
    ca = CellularAutomaton(grid, life_rule())

    block = place(grid, [(4, 4), (4, 5), (5, 4), (5, 5)])
    print(f"block is a still life: {ca.is_fixed_point(block)}")

    blinker = place(grid, [(4, 3), (4, 4), (4, 5)])
    orbit = parallel_orbit(ca, blinker)
    print(f"blinker orbit: transient={orbit.transient}, period={orbit.period}")

    glider = place(grid, [(0, 1), (1, 2), (2, 0), (2, 1), (2, 2)])
    orbit = parallel_orbit(ca, glider)
    print(
        f"glider on the 10-torus: period {orbit.period} "
        f"(4 steps/cell x 10 cells = one diagonal lap)"
    )
    print("\nthree steps of the glider:")
    state = glider
    for t in range(3):
        print(f"t={t}:")
        print(render(grid, state))
        state = ca.step(state)


def asynchronous_life() -> None:
    print("\n=== sequential Life: the paper's lens ===")
    rule = life_rule()
    print(f"Life is monotone: {rule.is_monotone()}")
    print(f"Life is symmetric: {rule.function.is_symmetric()}")
    print("=> Theorem 1 does NOT apply; no convergence guarantee.\n")

    grid = Grid2D(10, 10, neighborhood="moore", torus=True)
    ca = CellularAutomaton(grid, rule)
    blinker = place(grid, [(4, 3), (4, 4), (4, 5)])
    res = sequential_converge(
        ca, blinker, RandomPermutationSweeps(5), max_updates=20_000
    )
    alive = int(res.final_state.sum())
    print(
        f"blinker under fair sequential updates: converged={res.converged}, "
        f"{res.effective_flips} flips, {alive} live cells remain"
    )
    if res.converged:
        print(render(grid, res.final_state))
        print(
            "\nthe synchronous oscillator is gone: sequential updates break "
            "the simultaneity the blinker depends on — the same phenomenon "
            "the paper proves for threshold CA, observed empirically for "
            "Life."
        )


def main() -> None:
    synchronous_zoo()
    asynchronous_life()


if __name__ == "__main__":
    main()
