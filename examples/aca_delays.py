#!/usr/bin/env python3
"""Section 4 live: asynchronous CA with real communication delays.

Shows the three regimes of the ACA model:

1. sub-round delays + simultaneous updates  -> replays the classical CA;
2. zero delays + one update per instant     -> replays the SCA;
3. long delays (stale views)                -> reaches configurations no
   sequential interleaving can (the Fig. 1 ``11 -> 00`` jump).

Run:  python examples/aca_delays.py
"""

import networkx as nx
import numpy as np

from repro import CellularAutomaton, MajorityRule, Ring, XorRule
from repro.aca import (
    AsyncCA,
    FixedDelay,
    UniformRandomDelay,
    aca_exceeds_interleavings,
    replay_parallel,
    replay_sequential,
)
from repro.analysis.drawing import render_spacetime
from repro.spaces.graph import GraphSpace


def regime_parallel() -> None:
    print("=== regime 1: ACA replays the classical CA exactly ===")
    ca = CellularAutomaton(Ring(16), MajorityRule())
    x0 = np.random.default_rng(2).integers(0, 2, 16).astype(np.uint8)
    aca_traj, ca_traj = replay_parallel(ca, x0, 6)
    print("ACA trajectory (all nodes update each round, delay 0.5):")
    print(render_spacetime(aca_traj))
    print(f"identical to the synchronous CA: {np.array_equal(aca_traj, ca_traj)}")


def regime_sequential() -> None:
    print("\n=== regime 2: ACA replays any SCA word exactly ===")
    ca = CellularAutomaton(Ring(10), MajorityRule())
    rng = np.random.default_rng(3)
    x0 = rng.integers(0, 2, 10).astype(np.uint8)
    word = rng.integers(0, 10, size=25).tolist()
    aca_traj, sca_traj = replay_sequential(ca, x0, word)
    print(f"word: {word}")
    print(f"identical to the direct SCA run: {np.array_equal(aca_traj, sca_traj)}")


def regime_stale() -> None:
    print("\n=== regime 3: stale views exceed every interleaving ===")
    rep = aca_exceeds_interleavings()
    print(
        f"two-node XOR from 11: SCA can reach codes {rep.sequentially_reachable}; "
        f"the delayed ACA reached code {rep.reached} (00)"
    )
    print(f"ACA strictly exceeds the sequential interleavings: {rep.exceeded}")

    # The same effect shown event by event.
    space = GraphSpace(nx.path_graph(2))
    aca = AsyncCA(space, XorRule(), np.array([1, 1], dtype=np.uint8),
                  delays=FixedDelay(10.0))
    aca.schedule_update(1.0, 0)
    aca.schedule_update(2.0, 1)
    aca.run_until(2.0)
    for entry in aca.trace:
        print(
            f"  t={entry.time}: node {entry.node} flips "
            f"{entry.old} -> {entry.new} (using a stale neighbor view)"
        )
    print(f"  global state: {''.join(map(str, aca.snapshot()))}")


def bounded_asynchrony() -> None:
    print("\n=== bounded random delays: threshold ACA still quiesce ===")
    space = Ring(20)
    rng = np.random.default_rng(4)
    aca = AsyncCA(
        space, MajorityRule(),
        rng.integers(0, 2, 20).astype(np.uint8),
        delays=UniformRandomDelay(0.0, 0.4, seed=5),
    )
    for k in range(1, 31):
        for node in range(20):
            aca.schedule_update(k + 0.01 * node, node)
    aca.run()
    print(
        f"after 30 jittered rounds: {''.join(map(str, aca.snapshot()))} "
        f"({len(aca.trace)} effective flips, {aca.deliveries} messages)"
    )


def main() -> None:
    regime_parallel()
    regime_sequential()
    regime_stale()
    bounded_asynchrony()


if __name__ == "__main__":
    main()
