#!/usr/bin/env python3
"""The synchrony dial: how much simultaneity does oscillation need?

Sweeps the whole spectrum between the paper's two poles on one MAJORITY
ring, asking at each setting whether the alternating configuration's
oscillation survives:

  fully sequential  ->  block-sequential  ->  alpha-asynchronous  ->  CA
      (never)              (never*)           (a.s. never, alpha<1)   (forever)

  * exhaustively over ALL ordered partitions of the 6-ring — only the
    single full block, i.e. perfect synchrony, oscillates.

Run:  python examples/synchrony_dial.py
"""

import numpy as np

from repro import (
    AlphaAsynchronous,
    CellularAutomaton,
    MajorityRule,
    RandomPermutationSweeps,
    Ring,
)
from repro.core.block_maps import block_sequential_map, ordered_partitions
from repro.core.evolution import parallel_orbit, sequential_converge
from repro.core.phase_space import PhaseSpace


def pole_sequential(ca, alt) -> None:
    res = sequential_converge(ca, alt, RandomPermutationSweeps(1))
    print(
        f"sequential (random fair order): converged in {res.updates_used} "
        f"updates -> {''.join(map(str, res.final_state))}"
    )


def dial_blocks() -> None:
    n = 6
    ca6 = CellularAutomaton(Ring(n), MajorityRule())
    total = cyclic = 0
    for part in ordered_partitions(n):
        total += 1
        succ = block_sequential_map(ca6, part)
        if PhaseSpace(succ, n).has_proper_cycle():
            cyclic += 1
            witness = [list(b) for b in part]
    print(
        f"block-sequential (6-ring, exhaustive): {cyclic} of {total} "
        f"ordered partitions oscillate; the one that does: {witness}"
    )


def dial_alpha(ca, alt) -> None:
    print("alpha-asynchronous (each node fires with prob. alpha per step):")
    for alpha in (0.25, 0.5, 0.75, 0.95):
        times = []
        for seed in range(20):
            res = sequential_converge(
                ca, alt, AlphaAsynchronous(alpha, seed=seed), max_updates=10_000
            )
            assert res.converged
            times.append(res.updates_used)
        print(
            f"  alpha={alpha:.2f}: oscillation dies after "
            f"{np.mean(times):5.1f} steps on average (20 runs)"
        )


def pole_parallel(ca, alt) -> None:
    orbit = parallel_orbit(ca, alt)
    print(
        f"synchronous CA (alpha = 1): period-{orbit.period} oscillation, "
        "forever"
    )


def main() -> None:
    n = 12
    ca = CellularAutomaton(Ring(n), MajorityRule())
    alt = (np.arange(n) % 2).astype(np.uint8)
    print(f"automaton: {ca.describe()}, start: {''.join(map(str, alt))}\n")
    pole_sequential(ca, alt)
    dial_blocks()
    dial_alpha(ca, alt)
    pole_parallel(ca, alt)
    print(
        "\nconclusion: the paper's two-cycles require PERFECT synchrony — "
        "every weakening (any order, any ordered partition but the full "
        "block, any alpha < 1) restores convergence."
    )


if __name__ == "__main__":
    main()
