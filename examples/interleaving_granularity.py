#!/usr/bin/env python3
"""Section 1.1 live: ``x += 1 || x += 2`` at two granularities.

Enumerates every high-level ordering, every parallel write-collision
outcome, and all 20 machine-level interleavings — then prints a witness
schedule for each machine outcome, recreating the paper's LOAD/ADD/STORE
argument.

Run:  python examples/interleaving_granularity.py
"""

from repro.interleave import (
    AtomicAdd,
    compile_statement,
    explore_outcomes,
    outcome_schedules,
    tosic_agha_example,
)


def main() -> None:
    rep = tosic_agha_example()

    def xs(outcomes):
        return sorted(dict(o)["x"] for o in outcomes)

    print("program:  T0: x += 1   ||   T1: x += 2     (x initially 0)\n")
    print(f"high-level sequential outcomes: x in {xs(rep.high_level_outcomes)}")
    print(f"parallel outcomes:              x in {xs(rep.parallel_outcomes_)}")
    print(f"machine-level outcomes:         x in {xs(rep.machine_outcomes)}")
    print(f"machine interleavings explored: {rep.machine_interleavings}\n")

    print(
        "parallel escapes high-level interleavings:  "
        f"{rep.parallel_escapes_high_level}"
    )
    print(
        "machine granularity captures the parallel:  "
        f"{rep.machine_captures_parallel}\n"
    )

    statements = [AtomicAdd("x", 1), AtomicAdd("x", 2)]
    threads = [compile_statement(s, f"T{k}") for k, s in enumerate(statements)]
    print("one witness interleaving per machine outcome:")
    for outcome, schedule in sorted(
        outcome_schedules(threads, {"x": 0}).items(),
        key=lambda kv: dict(kv[0])["x"],
    ):
        x = dict(outcome)["x"]
        print(f"  x = {x}:  {' '.join(schedule)}")

    print(
        "\nsanity: exhaustive outcome set matches "
        f"{sorted(dict(o)['x'] for o in explore_outcomes(threads, {'x': 0}))}"
    )


if __name__ == "__main__":
    main()
