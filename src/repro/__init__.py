"""repro — Concurrency vs. sequential interleavings in threshold cellular automata.

A complete, executable reproduction of P. Tosic and G. Agha, *"Concurrency
vs. Sequential Interleavings in 1-D Threshold Cellular Automata"* (IPPS
2004).  The library provides:

* classical (parallel) cellular automata, sequential cellular automata
  (SCA), block-sequential interpolations, and genuinely asynchronous CA
  with communication delays (:mod:`repro.aca`);
* cellular spaces: finite lines and rings, 2-D grids, hypercubes, Cayley
  graphs, arbitrary graphs, and the exact two-way infinite line
  (:mod:`repro.spaces`);
* exhaustive deterministic and nondeterministic phase-space analysis with
  the paper's FP/CC/TC classification (:mod:`repro.core`);
* the Goles–Martinez Lyapunov energies underlying the convergence results;
* the paper's interleaving-semantics warm-up as a runnable shared-memory
  machine (:mod:`repro.interleave`);
* sequential dynamical systems over arbitrary graphs (:mod:`repro.sds`);
* executable versions of every lemma, theorem, corollary and proposition,
  and an experiment registry regenerating each of the paper's artifacts
  (:mod:`repro.experiments`);
* instrumentation — tracing spans, a metrics registry, and structured
  run artifacts — that is zero-cost until enabled (:mod:`repro.obs`).

Quickstart::

    from repro import CellularAutomaton, MajorityRule, Ring, PhaseSpace

    ca = CellularAutomaton(Ring(8), MajorityRule())
    ps = PhaseSpace.from_automaton(ca)
    print(ps.summary())           # parallel CA: has two-cycles

    from repro import NondetPhaseSpace
    nps = NondetPhaseSpace.from_automaton(ca)
    print(nps.has_proper_cycle())  # sequential CA: False, always
"""

from repro.core import (
    AlphaAsynchronous,
    BlockSequential,
    BooleanFunction,
    Budget,
    BudgetExceeded,
    CancelToken,
    CellularAutomaton,
    ConfigClass,
    FixedPermutation,
    FixedWord,
    HeterogeneousCA,
    InterleavingReport,
    MajorityRule,
    NondetPhaseSpace,
    OrbitInfo,
    Partial,
    PhaseSpace,
    RandomPermutationSweeps,
    RandomSingleNode,
    SimpleThresholdRule,
    Synchronous,
    TableRule,
    TheoremReport,
    ThresholdNetwork,
    TotalisticRule,
    UpdateRule,
    WolframRule,
    XorRule,
    build_nondet_phase_space,
    build_phase_space,
    captures_parallel_step,
    check_bipartite_two_cycles,
    check_corollary1,
    check_lemma1_parallel,
    check_lemma1_sequential,
    check_lemma2_parallel,
    check_lemma2_sequential,
    check_monotone_boundary,
    check_nonhomogeneous_threshold,
    check_proposition1,
    check_theorem1,
    interleaving_capture_report,
    orbit_reproducible_sequentially,
    parallel_orbit,
    parallel_trajectory,
    sequential_converge,
    sequential_reachable_set,
    sequential_trajectory,
    use_budget,
)
from repro import obs
from repro.spaces import (
    CayleySpace,
    GraphSpace,
    Grid2D,
    Hypercube,
    InfiniteLine,
    Line,
    Ring,
    SupportConfig,
    cayley_product,
    infinite_orbit,
    infinite_step,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # observability
    "obs",
    # automata & rules
    "CellularAutomaton",
    "HeterogeneousCA",
    "UpdateRule",
    "TableRule",
    "MajorityRule",
    "SimpleThresholdRule",
    "TotalisticRule",
    "WolframRule",
    "XorRule",
    "BooleanFunction",
    # schedules
    "Synchronous",
    "AlphaAsynchronous",
    "FixedPermutation",
    "FixedWord",
    "BlockSequential",
    "RandomPermutationSweeps",
    "RandomSingleNode",
    # spaces
    "Line",
    "Ring",
    "Grid2D",
    "Hypercube",
    "GraphSpace",
    "CayleySpace",
    "cayley_product",
    "InfiniteLine",
    "SupportConfig",
    "infinite_step",
    "infinite_orbit",
    # phase spaces & dynamics
    "PhaseSpace",
    "NondetPhaseSpace",
    "build_phase_space",
    "build_nondet_phase_space",
    "ConfigClass",
    "OrbitInfo",
    "parallel_orbit",
    "parallel_trajectory",
    "sequential_converge",
    "sequential_trajectory",
    # resource governance
    "Budget",
    "BudgetExceeded",
    "CancelToken",
    "Partial",
    "use_budget",
    # energy
    "ThresholdNetwork",
    # interleaving analysis
    "InterleavingReport",
    "captures_parallel_step",
    "interleaving_capture_report",
    "orbit_reproducible_sequentially",
    "sequential_reachable_set",
    # theorems
    "TheoremReport",
    "check_lemma1_parallel",
    "check_lemma1_sequential",
    "check_lemma2_parallel",
    "check_lemma2_sequential",
    "check_theorem1",
    "check_corollary1",
    "check_proposition1",
    "check_bipartite_two_cycles",
    "check_nonhomogeneous_threshold",
    "check_monotone_boundary",
]
