"""repro.harness — fault-tolerant experiment execution.

The registry's experiments (E1-E22) are the paper's "tables"; this
package makes running them survivable.  Three layers:

* :mod:`repro.harness.faults` — a deterministic, seeded fault-injection
  layer.  ``inject("site")`` checkpoints are compiled into the runner,
  the artifacts writer and the experiment wrappers; ``REPRO_FAULTS``
  (grammar: ``site:kind:prob:seed[:max_fires]``) arms them with
  ``raise``, ``hang``, ``stall`` or ``partial-write`` faults so tests
  can prove the stack survives what it claims to.
* :mod:`repro.harness.checkpoint` — a crash-safe append-only JSONL
  journal plus an atomic (tmp + rename) snapshot, so ``repro run all
  --resume DIR`` skips already-completed experiments after a crash or
  SIGKILL.  Journal recovery tolerates a truncated final line.
* :mod:`repro.harness.runner` — :class:`ExperimentRunner` executes each
  experiment with structured error capture (an exception becomes an
  ``{"holds": False, "status": "error", ...}`` result instead of
  aborting the batch), per-experiment wall-clock timeouts, bounded
  retries with exponential backoff + jitter, and optional subprocess
  isolation so a segfault/OOM in one experiment cannot take down the
  run.

No experiment's public API changes: the runner wraps
``repro.experiments.run_experiment`` and merges its obs metrics back
into the parent registry.
"""

from repro.harness.checkpoint import (
    Checkpoint,
    load_frontier,
    read_journal,
    save_frontier,
)
from repro.harness.faults import (
    Fault,
    FaultError,
    FaultPlan,
    check,
    clear_faults,
    inject,
    install,
    install_from_env,
    parse_faults,
)
from repro.harness.runner import (
    STATUS_BUDGET,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    ExperimentRunner,
    RunnerConfig,
    batch_exit_code,
    default_grace_s,
)

__all__ = [
    # faults
    "Fault",
    "FaultError",
    "FaultPlan",
    "parse_faults",
    "install",
    "install_from_env",
    "clear_faults",
    "inject",
    "check",
    # checkpoint
    "Checkpoint",
    "read_journal",
    "save_frontier",
    "load_frontier",
    # runner
    "ExperimentRunner",
    "RunnerConfig",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_TIMEOUT",
    "STATUS_BUDGET",
    "batch_exit_code",
    "default_grace_s",
]
