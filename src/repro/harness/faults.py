"""Deterministic, seeded fault injection.

The resilience claims of the harness (timeouts, retries, checkpointing,
journal recovery) are only worth anything if they are *exercised*: this
module plants named ``inject(site)`` checkpoints in the runner, the
artifacts writer and the experiment wrappers, and lets tests (or brave
operators) arm them with faults.

Grammar
-------
``REPRO_FAULTS`` is a comma-separated list of fault specs::

    site:kind:prob:seed[:max_fires]

* ``site`` — checkpoint name, e.g. ``experiment.E12``.  A trailing ``*``
  prefix-matches (``experiment.*`` hits every experiment wrapper).
* ``kind`` — ``raise`` (throw :class:`FaultError`), ``hang`` (sleep for
  ``REPRO_FAULT_HANG_S`` seconds, default 3600 — pair with a runner
  timeout), ``stall`` (sleep like ``hang`` but then *continue* normally —
  a slow-not-dead loop body, used to prove cooperative deadlines fire
  before the watchdog), ``partial-write`` (the call site truncates its
  write mid-record, simulating a crash between ``write`` and ``\\n``),
  or ``crash`` (SIGKILL the process on the spot — no atexit hooks, no
  ``finally`` blocks, the closest an injected fault gets to a power
  cut; the crash-consistency matrix arms it at every registered
  durable-write site and asserts ``repro doctor`` + ``--resume``
  recover).  Three aliases target the sharded ``process`` backend's
  worker pool: ``worker-crash`` (= ``crash``), ``worker-hang``
  (= ``hang``) and ``worker-poison`` (= ``raise``) — behaviourally
  identical, but named so a chaos spec reads as what it simulates.
  Arm them at the worker sites ``perf.worker.w{wid}.dispatch`` (shard
  receipt), ``perf.worker.w{wid}.chunk`` (before each chunk) and
  ``perf.worker.w{wid}.premerge`` (result shipping), where ``wid`` is
  the worker's monotonic spawn index — ``perf.worker.w0.*`` hits only
  the first worker, never its respawned replacement.  The parent's
  serial fallback probes ``perf.process.fallback``.
* ``prob`` — per-hit firing probability in ``[0, 1]``.
* ``seed`` — seeds the fault's private RNG, so a given spec fires on a
  reproducible subsequence of hits.
* ``max_fires`` — optional; the fault disarms after firing this many
  times.  ``...:1.0:0:1`` is the canonical *transient* fault: it kills
  the first attempt and lets the retry through.

Example::

    REPRO_FAULTS="experiment.E5:raise:1.0:0,experiment.E12:hang:1.0:0" \\
        repro-ca run all --timeout 30

Faults are process-global (installed via :func:`install` or
:func:`install_from_env`) and thread-safe: the runner may probe sites
from worker threads.  ``inject`` with no plan installed is a single
attribute check — cheap enough to leave in production paths.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from collections.abc import Iterable, Mapping

__all__ = [
    "Fault",
    "FaultError",
    "FaultPlan",
    "parse_faults",
    "install",
    "install_from_env",
    "clear_faults",
    "inject",
    "check",
    "KINDS",
]

KINDS = (
    "raise",
    "hang",
    "stall",
    "partial-write",
    "crash",
    # worker-pool aliases: same behaviour, chaos-spec readability
    "worker-crash",  # = crash (SIGKILL mid-shard)
    "worker-hang",  # = hang (stuck holder; lease deadline bounds it)
    "worker-poison",  # = raise (deterministic kernel failure)
)

ENV_VAR = "REPRO_FAULTS"
HANG_ENV_VAR = "REPRO_FAULT_HANG_S"
DEFAULT_HANG_S = 3600.0


class FaultError(RuntimeError):
    """Raised by an armed ``raise`` fault (and by ``partial-write`` call
    sites after they have truncated their output)."""

    def __init__(self, site: str, kind: str = "raise"):
        super().__init__(f"injected fault at {site!r} (kind={kind})")
        self.site = site
        self.kind = kind


class Fault:
    """One armed fault: a site pattern, a kind, and a seeded trigger."""

    __slots__ = ("site", "kind", "prob", "seed", "max_fires", "fires", "_rng")

    def __init__(
        self,
        site: str,
        kind: str,
        prob: float = 1.0,
        seed: int = 0,
        max_fires: int | None = None,
    ):
        if kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; known: {', '.join(KINDS)}"
            )
        prob = float(prob)
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1], got {prob}")
        if max_fires is not None and max_fires < 1:
            raise ValueError(f"max_fires must be >= 1, got {max_fires}")
        self.site = site
        self.kind = kind
        self.prob = prob
        self.seed = int(seed)
        self.max_fires = max_fires
        self.fires = 0
        self._rng = random.Random(self.seed)

    def matches(self, site: str) -> bool:
        """True iff this fault is planted at ``site``."""
        if self.site.endswith("*"):
            return site.startswith(self.site[:-1])
        return site == self.site

    def should_fire(self) -> bool:
        """Draw from the fault's RNG; honours ``prob`` and ``max_fires``.

        Every matching hit consumes one draw (fired or not), so the
        firing subsequence is a pure function of the seed.
        """
        if self.max_fires is not None and self.fires >= self.max_fires:
            return False
        fired = self._rng.random() < self.prob
        if fired:
            self.fires += 1
        return fired

    def spec(self) -> str:
        """The fault re-serialised in ``REPRO_FAULTS`` grammar."""
        base = f"{self.site}:{self.kind}:{self.prob:g}:{self.seed}"
        return base if self.max_fires is None else f"{base}:{self.max_fires}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Fault({self.spec()!r}, fires={self.fires})"


class FaultPlan:
    """A set of armed faults, probed by ``inject``/``check``."""

    def __init__(self, faults: Iterable[Fault] = ()):
        self.faults = list(faults)
        self._lock = threading.Lock()

    def probe(self, site: str) -> Fault | None:
        """The first armed fault firing at ``site`` this hit, if any."""
        with self._lock:
            for fault in self.faults:
                if fault.matches(site) and fault.should_fire():
                    return fault
        return None

    def spec(self) -> str:
        """The whole plan in ``REPRO_FAULTS`` grammar."""
        return ",".join(f.spec() for f in self.faults)

    def __len__(self) -> int:
        return len(self.faults)


def parse_faults(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` string into a :class:`FaultPlan`."""
    faults = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        fields = part.split(":")
        if not 2 <= len(fields) <= 5:
            raise ValueError(
                f"bad fault spec {part!r}: want site:kind[:prob[:seed[:max_fires]]]"
            )
        site, kind = fields[0], fields[1]
        prob = float(fields[2]) if len(fields) > 2 else 1.0
        seed = int(fields[3]) if len(fields) > 3 else 0
        max_fires = int(fields[4]) if len(fields) > 4 else None
        faults.append(Fault(site, kind, prob, seed, max_fires))
    return FaultPlan(faults)


#: The process-global plan; ``None`` keeps every site a cheap no-op.
_PLAN: FaultPlan | None = None


def install(plan: FaultPlan | str | None) -> FaultPlan | None:
    """Install ``plan`` (a :class:`FaultPlan` or spec string) globally.

    Returns the previously installed plan so callers can restore it;
    ``install(None)`` disarms everything.
    """
    global _PLAN
    previous = _PLAN
    _PLAN = parse_faults(plan) if isinstance(plan, str) else plan
    return previous


def clear_faults() -> None:
    """Disarm all faults (equivalent to ``install(None)``)."""
    install(None)


def install_from_env(environ: Mapping[str, str] | None = None) -> bool:
    """Arm faults from ``REPRO_FAULTS`` if set; return whether any were.

    The CLI calls this on startup, and the subprocess-isolation child
    inherits the variable — so injected faults cross the ``--isolate``
    boundary exactly like real ones would.
    """
    env = os.environ if environ is None else environ
    spec = env.get(ENV_VAR, "").strip()
    if not spec:
        return False
    install(parse_faults(spec))
    return True


#: injectable sleep hook: tests patch this with a fake clock so hang and
#: stall faults advance virtual time instead of blocking the suite
_sleep = time.sleep

#: injectable kill hook: unit tests patch this to observe a ``crash``
#: fault without actually dying; subprocess tests leave it real
_kill = os.kill


def _hang_seconds() -> float:
    raw = os.environ.get(HANG_ENV_VAR, "").strip()
    try:
        return float(raw) if raw else DEFAULT_HANG_S
    except ValueError:
        return DEFAULT_HANG_S


def check(site: str) -> Fault | None:
    """Probe ``site`` without acting: the firing fault, or ``None``.

    For call sites that implement the fault themselves (the
    ``partial-write`` sites).  Consumes the fault's RNG draw like
    :func:`inject`.
    """
    plan = _PLAN
    if plan is None:
        return None
    return plan.probe(site)


def inject(site: str) -> Fault | None:
    """Fault checkpoint: act out whatever fault is armed at ``site``.

    * no plan / no firing fault — returns ``None`` (the fast path is a
      single global read);
    * ``raise`` — raises :class:`FaultError`;
    * ``hang`` — sleeps ``REPRO_FAULT_HANG_S`` seconds (default 3600),
      then raises :class:`FaultError` in case nothing killed it;
    * ``stall`` — sleeps ``REPRO_FAULT_HANG_S`` seconds, then returns
      ``None`` so the call site *continues*: a governed loop that is slow
      rather than dead, which only a cooperative deadline can bound;
    * ``crash`` — SIGKILLs the process: nothing after this line runs,
      exactly like a power cut mid-protocol;
    * ``partial-write`` — returns the :class:`Fault` for the call site
      to interpret (truncate its own write, then raise).
    """
    plan = _PLAN
    if plan is None:
        return None
    fault = plan.probe(site)
    if fault is None:
        return None
    if fault.kind in ("raise", "worker-poison"):
        raise FaultError(site, fault.kind)
    if fault.kind in ("hang", "worker-hang"):
        _sleep(_hang_seconds())
        raise FaultError(site, fault.kind)
    if fault.kind == "stall":
        _sleep(_hang_seconds())
        return None
    if fault.kind in ("crash", "worker-crash"):
        _kill(os.getpid(), signal.SIGKILL)
        # only reachable with a patched _kill
        raise FaultError(site, fault.kind)
    return fault
