"""Subprocess entry point for isolated experiment attempts.

``python -m repro.harness.child E5`` runs one experiment in a fresh
interpreter and reports back on stdout as a single sentinel-prefixed
JSON line::

    REPRO_CHILD_RESULT:{"ok": true, "result": {...}, "metrics": {...}}

The parent (:meth:`ExperimentRunner._attempt_subprocess`) parses that
line, merges the child's metrics snapshot into its own registry and
folds the result into the batch.  Experiment exceptions are captured
*here* (structured, exit code 0) so the parent can distinguish "the
experiment failed" from "the interpreter died" (segfault/OOM: no
sentinel line, nonzero exit code).

``REPRO_FAULTS`` is honoured via the inherited environment, so injected
faults cross the isolation boundary exactly like real ones; likewise the
parent's cooperative deadline arrives as ``REPRO_BUDGET_WALL_S`` and is
installed as the child's ambient budget, so even isolated experiments
wind down on their own (``{"ok": false, "budget": {...}}``) instead of
waiting for the parent's kill.
"""

from __future__ import annotations

import json
import sys


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 1:
        print("usage: python -m repro.harness.child EXPERIMENT_ID",
              file=sys.stderr)
        return 2
    from repro import obs
    from repro.core.budget import Budget, BudgetExceeded, set_ambient
    from repro.harness import faults
    from repro.harness.runner import CHILD_SENTINEL, _error_payload
    from repro.experiments.registry import run_experiment

    faults.install_from_env()
    set_ambient(Budget.from_env())
    payload: dict[str, object]
    try:
        result = run_experiment(argv[0])
        payload = {"ok": True, "result": result}
    except KeyboardInterrupt:
        raise
    except BudgetExceeded as exc:
        payload = {
            "ok": False,
            "budget": {
                "reason": exc.reason,
                "partial": (
                    exc.partial.summary_dict() if exc.partial is not None else None
                ),
            },
        }
    except BaseException as exc:  # noqa: BLE001 - everything goes to the parent
        payload = {"ok": False, "error": _error_payload(exc)}
    payload["metrics"] = obs.REGISTRY.snapshot()
    sys.stdout.flush()
    print(CHILD_SENTINEL + json.dumps(payload, default=str), flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
