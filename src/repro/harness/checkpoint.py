"""Crash-safe progress journal + atomic snapshot for experiment batches.

Layout of a checkpoint directory::

    <dir>/
        journal.jsonl      # append-only event stream, flushed per line
        checkpoint.json    # atomic snapshot: completed results so far

The **journal** records one JSON object per line: ``start`` when an
attempt begins, ``finish`` when an experiment reaches a terminal status.
Lines are flushed (and the file is never rewritten), so after a crash or
SIGKILL the journal is intact up to possibly one truncated final line —
which :func:`read_journal` tolerates and flags rather than raising.
Every line embeds a CRC32 of its own serialisation (see
:func:`repro.core.durable.jsonl_line`), so mid-file corruption is
detected record by record, not just the torn tail.

The **snapshot** holds the full result dicts of every *completed*
experiment.  It is rewritten after each completion through the durable
write protocol (:func:`repro.core.durable.durable_write_json`: temp +
fsync + ``os.replace`` + directory fsync + integrity sidecar), so
readers always see either the previous or the next complete snapshot,
never a torn one — even across a power cut.

Resume semantics: an experiment counts as completed only when the
snapshot holds a result whose status is ``ok`` — errored, timed-out,
or mid-flight (``start`` without ``finish``) experiments are re-run.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path

import numpy as np

from repro.core import durable
from repro.harness import faults

__all__ = [
    "Checkpoint",
    "read_journal",
    "journal_summary",
    "save_frontier",
    "load_frontier",
    "JOURNAL_NAME",
    "SNAPSHOT_NAME",
    "FRONTIER_NAME",
    "FRONTIER_ARRAY_NAME",
]

JOURNAL_NAME = "journal.jsonl"
SNAPSHOT_NAME = "checkpoint.json"
FRONTIER_NAME = "frontier.json"
FRONTIER_ARRAY_NAME = "frontier_succ.npy"

#: schema versions stamped into the JSON artifacts (validated by
#: :mod:`repro.contracts`)
SNAPSHOT_SCHEMA = "repro-checkpoint/1"
FRONTIER_SCHEMA = "repro-frontier/1"

durable.register_write_site(
    "checkpoint.journal", "append one journal.jsonl record (CRC-framed)"
)
durable.register_write_site(
    "checkpoint.snapshot", "atomically replace checkpoint.json"
)
durable.register_write_site(
    "checkpoint.frontier_array", "flush the frontier_succ.npy memmap prefix"
)
durable.register_write_site(
    "checkpoint.frontier", "atomically replace frontier.json metadata"
)


def read_journal(directory: str | os.PathLike[str]) -> tuple[list[dict], int]:
    """Parse ``journal.jsonl``; returns ``(events, skipped_lines)``.

    A truncated or garbled line (the normal state of a crashed run's
    final line) is skipped and counted, never raised — as is a line
    whose embedded CRC32 disagrees with its content (mid-file
    corruption).  CRC-less lines from pre-durability journals are
    trusted as before.  A missing journal reads as empty.
    """
    path = Path(directory) / JOURNAL_NAME
    events: list[dict] = []
    skipped = 0
    try:
        fh = open(path, encoding="utf-8")
    except FileNotFoundError:
        return events, skipped
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            payload, status = durable.decode_jsonl_line(line)
            if status in ("ok", "unchecked"):
                events.append(payload)
            else:
                skipped += 1
    return events, skipped


def journal_summary(directory: str | os.PathLike[str]) -> dict:
    """Digest one checkpoint directory's journal for indexing/reporting.

    Returns a dict with:

    * ``statuses`` — ``{exp_id: terminal status}`` (last finish wins);
    * ``durations`` — ``{exp_id: seconds}`` where the finish recorded one;
    * ``in_flight`` — ids with a ``start`` but no ``finish`` (a crash or
      a run still going);
    * ``starts`` / ``finishes`` — raw event counts;
    * ``skipped`` — garbled journal lines tolerated by
      :func:`read_journal`;
    * ``first_ts`` / ``last_ts`` — epoch bounds over every event.
    """
    events, skipped = read_journal(directory)
    statuses: dict[str, str | None] = {}
    durations: dict[str, float] = {}
    started: set[str] = set()
    starts = finishes = 0
    first_ts: float | None = None
    last_ts: float | None = None
    for ev in events:
        ts = ev.get("ts")
        if isinstance(ts, (int, float)):
            first_ts = ts if first_ts is None else min(first_ts, ts)
            last_ts = ts if last_ts is None else max(last_ts, ts)
        eid = ev.get("id")
        kind = ev.get("ev")
        if kind == "start" and eid is not None:
            starts += 1
            started.add(eid)
        elif kind == "finish" and eid is not None:
            finishes += 1
            statuses[eid] = ev.get("status")
            dur = ev.get("duration_s")
            if isinstance(dur, (int, float)):
                durations[eid] = float(dur)
    return {
        "statuses": statuses,
        "durations": durations,
        "in_flight": sorted(started - set(statuses)),
        "starts": starts,
        "finishes": finishes,
        "skipped": skipped,
        "first_ts": first_ts,
        "last_ts": last_ts,
    }


def save_frontier(directory: str | os.PathLike[str], partial) -> Path:
    """Persist a truncated :class:`~repro.core.budget.Partial`'s frontier.

    Writes the successor array as a full-size ``.npy`` memmap
    (``frontier_succ.npy``) holding the explored prefix, then atomically
    replaces ``frontier.json`` with the resume metadata.  The array is
    written first: a crash (or an armed ``checkpoint.frontier``
    ``partial-write`` fault) between the two leaves either the previous
    metadata or none at all — never metadata pointing past the data — so
    :func:`load_frontier` always resumes from a consistent (possibly
    older) frontier.

    Re-saving a frontier whose array is already the directory's memmap
    (the resumed-build case) just flushes it in place.
    """
    frontier = partial.frontier
    if frontier is None:
        raise ValueError("partial result has no frontier to save")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if "succ" not in frontier:
        # Array-less frontier (attractor census, mc): the counts vector
        # rides in the JSON itself, so the whole checkpoint is one durable
        # metadata write — no memmap, no torn-array stamp to validate.
        meta = dict(frontier)
        meta["schema"] = FRONTIER_SCHEMA
        meta["explored"] = int(partial.explored)
        meta["reason"] = partial.reason
        meta["stats"] = partial.stats
        meta["saved_ts"] = time.time()
        return durable.durable_write_json(
            directory / FRONTIER_NAME, meta, site="checkpoint.frontier"
        )
    succ = frontier["succ"]
    array_path = directory / FRONTIER_ARRAY_NAME
    in_place = isinstance(succ, np.memmap) and succ.filename is not None and (
        Path(succ.filename).resolve() == array_path.resolve()
    )
    if frontier.get("kind") == "nondet":
        rows = int(frontier["next_row"])
    else:
        rows = int(frontier["next_lo"])
    if in_place:
        succ.flush()
        prefix_crc = durable.crc32_of_array_prefix(succ, rows)
    else:
        mm = np.lib.format.open_memmap(
            array_path, mode="w+", dtype=np.int64, shape=succ.shape
        )
        mm[:rows] = succ[:rows]
        mm.flush()
        prefix_crc = durable.crc32_of_array_prefix(mm, rows)
        del mm
    faults.inject("checkpoint.frontier_array")

    meta = {k: v for k, v in frontier.items() if k != "succ"}
    meta["schema"] = FRONTIER_SCHEMA
    meta["explored"] = int(partial.explored)
    meta["reason"] = partial.reason
    meta["stats"] = partial.stats
    meta["saved_ts"] = time.time()
    # Torn-write stamp for the memmap: written *after* the array is
    # flushed, so the metadata can never describe bytes that are not on
    # disk; a crash between the two leaves old metadata whose checksum
    # disagrees with the new array, and load_frontier falls back to
    # re-enumeration instead of silently resuming from garbage.
    meta["array"] = {
        "crc32": prefix_crc,
        "rows": rows,
        "nbytes": os.path.getsize(array_path),
    }
    return durable.durable_write_json(
        directory / FRONTIER_NAME, meta, site="checkpoint.frontier"
    )


def load_frontier(directory: str | os.PathLike[str]) -> dict | None:
    """Load a saved frontier for resuming, or ``None`` if there is none.

    The successor array comes back as a read-write memmap
    (``mmap_mode="r+"``), so the resumed build writes new chunks straight
    to disk and the budget charges only chunk transients — the property
    that lets a resume make progress under the very memory ceiling that
    truncated the original run.

    The array is validated against the length/checksum stamp the
    metadata carries (when present): a torn or bit-rotted
    ``frontier_succ.npy`` — or one the metadata predates — makes this
    return ``None`` with a :class:`UserWarning`, so the caller falls
    back to re-enumeration instead of silently resuming from garbage.
    """
    directory = Path(directory)
    path = directory / FRONTIER_NAME
    try:
        meta = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        # Missing, or a torn first write that never reached os.replace.
        return None
    if meta.get("kind") in ("attractor_census", "mc"):
        # Array-less frontier: the metadata is the whole checkpoint.
        return meta
    array_path = directory / FRONTIER_ARRAY_NAME
    try:
        succ = np.load(array_path, mmap_mode="r+")
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as err:
        # A torn or garbled .npy header: not resumable, but recoverable
        # by starting the enumeration over.
        warnings.warn(
            f"{array_path}: unreadable frontier array ({err}); ignoring "
            f"the checkpoint and re-enumerating from scratch",
            stacklevel=2,
        )
        return None
    integrity = meta.get("array")
    if isinstance(integrity, dict):
        rows = int(integrity.get("rows", 0))
        nbytes = integrity.get("nbytes")
        crc = integrity.get("crc32")
        actual_nbytes = os.path.getsize(array_path)
        ok = (
            rows <= succ.shape[0]
            and (nbytes is None or int(nbytes) == actual_nbytes)
            and (crc is None or durable.crc32_of_array_prefix(succ, rows) == crc)
        )
        if not ok:
            warnings.warn(
                f"{array_path}: frontier array does not match its metadata "
                f"checksum (torn write or corruption); ignoring the "
                f"checkpoint and re-enumerating from scratch",
                stacklevel=2,
            )
            return None
    meta["succ"] = succ
    return meta


class Checkpoint:
    """Writer/reader for one checkpoint directory.

    The runner drives it::

        cp = Checkpoint(run_dir)
        done = cp.completed()          # {"E1": {...}, ...} — skip these
        cp.record_start("E5", attempt=1)
        cp.record_finish("E5", result) # journal line + atomic snapshot
    """

    def __init__(self, directory: str | os.PathLike[str]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._journal_fh = None
        self._results: dict[str, dict] = {}
        self._load()

    # -- recovery --------------------------------------------------------------

    def _load(self) -> None:
        """Recover prior state: snapshot first, journal as arbiter."""
        snap_path = self.directory / SNAPSHOT_NAME
        snapshot: dict[str, dict] = {}
        try:
            data = json.loads(snap_path.read_text(encoding="utf-8"))
            snapshot = data.get("results", {})
        except (FileNotFoundError, json.JSONDecodeError):
            # Atomic replace means a *partial* snapshot is impossible,
            # but an interrupted very first write can leave nothing.
            snapshot = {}
        self.journal_events, self.journal_skipped = read_journal(self.directory)
        finished = {
            ev["id"]: ev.get("status")
            for ev in self.journal_events
            if ev.get("ev") == "finish" and "id" in ev
        }
        # Trust a snapshot entry only if the journal confirms the finish
        # (a snapshot can never be *ahead* of the journal, but be strict).
        self._results = {
            eid: res
            for eid, res in snapshot.items()
            if eid in finished
        }

    def completed(self) -> dict[str, dict]:
        """Results of experiments that finished with status ``ok``."""
        return {
            eid: res
            for eid, res in self._results.items()
            if res.get("status") == "ok"
        }

    def results(self) -> dict[str, dict]:
        """All recorded terminal results (any status), id -> result."""
        return dict(self._results)

    # -- writing ---------------------------------------------------------------

    def _append(self, event: dict) -> None:
        if self._journal_fh is None:
            self._journal_fh = open(
                self.directory / JOURNAL_NAME, "a", encoding="utf-8"
            )
        line = durable.jsonl_line(event)
        fault = faults.inject("checkpoint.journal")
        if fault is not None:  # partial-write: crash mid-line
            self._journal_fh.write(line[: max(1, len(line) // 2)])
            self._journal_fh.flush()
            raise faults.FaultError("checkpoint.journal", fault.kind)
        self._journal_fh.write(line + "\n")
        self._journal_fh.flush()

    def record_start(self, exp_id: str, attempt: int = 1) -> None:
        """Journal that an attempt at ``exp_id`` is beginning."""
        self._append(
            {"ev": "start", "id": exp_id, "attempt": attempt, "ts": time.time()}
        )

    def record_finish(self, exp_id: str, result: dict) -> None:
        """Journal a terminal result and atomically refresh the snapshot."""
        self._append(
            {
                "ev": "finish",
                "id": exp_id,
                "status": result.get("status"),
                "holds": result.get("holds"),
                "duration_s": result.get("duration_s"),
                "ts": time.time(),
            }
        )
        self._results[exp_id] = result
        self._write_snapshot()

    def _write_snapshot(self) -> None:
        durable.durable_write_json(
            self.directory / SNAPSHOT_NAME,
            {
                "schema": SNAPSHOT_SCHEMA,
                "updated": time.time(),
                "results": self._results,
            },
            site="checkpoint.snapshot",
        )

    def close(self) -> None:
        """Close the journal handle (idempotent)."""
        if self._journal_fh is not None:
            self._journal_fh.close()
            self._journal_fh = None

    def __enter__(self) -> "Checkpoint":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
