"""The resilient experiment runner.

:class:`ExperimentRunner` wraps :func:`repro.experiments.run_experiment`
without changing any experiment's public API.  Per experiment it adds:

* **structured error capture** — an exception becomes
  ``{"holds": False, "status": "error", "error": {type, message,
  traceback}}`` instead of aborting the batch;
* **cooperative deadlines** — ``timeout_s`` becomes a
  :class:`~repro.core.budget.Budget` wall-clock deadline installed
  ambiently around the experiment, so governed loops wind down and
  surface their partial progress (``status: "timeout"`` with
  ``cooperative: True``); the watchdog thread (or subprocess kill under
  ``isolate``) fires only after a grace period, as the last-resort
  backstop for code that never reaches a budget check;
* **budget governance** — a non-deadline budget trip (memory/state
  ceiling) becomes ``status: "budget"`` with the truncation reason and
  partial-result summary; deterministic trips are not retried;
* **bounded retries** — transient failures are retried up to ``retries``
  times with exponential backoff + deterministic jitter (seed the jitter
  via ``RunnerConfig.seed`` or ``REPRO_SEED``);
* **subprocess isolation** — with ``isolate=True`` each attempt runs in
  a child interpreter (``python -m repro.harness.child``), so a
  segfault/OOM in one experiment cannot take down the run; the child's
  result and metrics snapshot come back over a pipe as JSON and the
  metrics are merged into the parent registry;
* **checkpointing** — when given a :class:`~repro.harness.checkpoint.
  Checkpoint`, completed experiments are journaled and skipped on
  resume.

Observability: every attempt is traced as a ``harness.attempt`` span
annotated with the attempt number, and the counters ``harness.retries``,
``harness.timeouts`` and ``harness.errors`` accumulate in the metrics
registry.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import threading
import time
import traceback
from collections.abc import Iterable
from dataclasses import dataclass

from repro import obs
from repro.core.budget import Budget, BudgetExceeded, CancelToken, use_budget
from repro.harness import faults
from repro.harness.checkpoint import Checkpoint

__all__ = [
    "RunnerConfig",
    "ExperimentRunner",
    "batch_exit_code",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_TIMEOUT",
    "STATUS_BUDGET",
    "CHILD_SENTINEL",
    "BUDGET_WALL_ENV",
]

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"
STATUS_BUDGET = "budget"

#: injectable sleep hook for the retry backoff: tests patch this with a
#: fake clock so retry tests record delays instead of serving them
_sleep = time.sleep

#: Prefix marking the child's JSON result line on stdout (everything the
#: experiment itself may print stays un-prefixed and is ignored).
CHILD_SENTINEL = "REPRO_CHILD_RESULT:"

#: Environment variable carrying the cooperative deadline into isolated
#: children (read by ``repro.harness.child`` via ``Budget.from_env``).
BUDGET_WALL_ENV = "REPRO_BUDGET_WALL_S"

#: Environment variable seeding the retry-backoff jitter when
#: ``RunnerConfig.seed`` is left unset.
SEED_ENV = "REPRO_SEED"


def default_grace_s(timeout_s: float) -> float:
    """Backstop delay after the cooperative deadline before the hard kill.

    Long enough for governed loops to reach their next budget check and
    flush partial artifacts, short enough that a truly wedged attempt
    still dies promptly: 20% of the timeout, clamped to [0.5s, 5s].
    """
    return min(5.0, max(0.5, 0.2 * timeout_s))


@dataclass
class RunnerConfig:
    """Knobs for :class:`ExperimentRunner` (all optional)."""

    timeout_s: float | None = None
    retries: int = 0
    backoff_base_s: float = 0.1
    backoff_cap_s: float = 5.0
    jitter: float = 0.25
    isolate: bool = False
    #: jitter RNG seed; None falls back to ``REPRO_SEED`` and then 0, so
    #: retry schedules are deterministic by default and steerable per run.
    seed: int | None = None
    #: cooperative-deadline grace before the watchdog/kill backstop;
    #: None picks :func:`default_grace_s`.
    grace_s: float | None = None

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.grace_s is not None and self.grace_s < 0:
            raise ValueError(f"grace_s must be >= 0, got {self.grace_s}")


def batch_exit_code(results: dict[str, dict]) -> int:
    """Process exit code for a batch: 0 holds, 1 fails, 2 error/timeout/budget."""
    statuses = {r.get("status", STATUS_OK) for r in results.values()}
    if statuses & {STATUS_ERROR, STATUS_TIMEOUT, STATUS_BUDGET}:
        return 2
    if any(not r.get("holds") for r in results.values()):
        return 1
    return 0


def _partial_summary(exc: BudgetExceeded) -> dict | None:
    """JSON-safe summary of the partial a :class:`BudgetExceeded` carries."""
    return exc.partial.summary_dict() if exc.partial is not None else None


def _error_payload(exc: BaseException) -> dict[str, str]:
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
    }


def _run_on_thread(fn, timeout_s: float):
    """Run ``fn`` on a daemon thread; abandon it after ``timeout_s``.

    Returns ``(timed_out, value, exc)``.  An abandoned thread keeps
    running (Python threads cannot be killed) but the daemon flag keeps
    it from blocking interpreter exit; ``isolate`` is the stronger
    answer when runaway work must actually stop.
    """
    box: dict[str, object] = {}

    def target() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            box["exc"] = exc

    worker = threading.Thread(
        target=target, name="repro-harness-attempt", daemon=True
    )
    worker.start()
    worker.join(timeout_s)
    if worker.is_alive():
        return True, None, None
    return False, box.get("value"), box.get("exc")


class ExperimentRunner:
    """Fault-tolerant façade over the experiment registry."""

    def __init__(
        self,
        config: RunnerConfig | None = None,
        checkpoint: Checkpoint | None = None,
        token: CancelToken | None = None,
    ):
        self.config = config if config is not None else RunnerConfig()
        self.checkpoint = checkpoint
        #: shared cooperative-cancellation token: the CLI cancels it from
        #: its SIGTERM/Ctrl-C handlers and every attempt's budget carries
        #: it, so one signal winds down whatever loop is currently running.
        self.token = token if token is not None else CancelToken()
        seed = self.config.seed
        if seed is None:
            raw = os.environ.get(SEED_ENV, "").strip()
            seed = int(raw) if raw else 0
        self._rng = random.Random(seed)

    # -- single experiment -----------------------------------------------------

    def run_one(self, exp_id: str) -> dict[str, object]:
        """Run one experiment to a terminal result dict (never raises on
        experiment failure; raises only for unknown ids or interrupts)."""
        from repro.experiments.registry import get_experiment

        exp = get_experiment(exp_id)  # KeyError for unknown ids, up front
        cfg = self.config
        attempts = cfg.retries + 1
        last: dict[str, object] = {}
        t0 = time.perf_counter()
        for attempt in range(1, attempts + 1):
            if self.checkpoint is not None:
                self.checkpoint.record_start(exp.id, attempt=attempt)
            with obs.span(
                "harness.attempt",
                experiment=exp.id,
                attempt=attempt,
                isolate=cfg.isolate,
            ):
                last = self._attempt(exp.id)
            if last["status"] == STATUS_OK:
                break
            if last["status"] == STATUS_TIMEOUT:
                obs.inc("harness.timeouts")
            elif last["status"] == STATUS_BUDGET:
                obs.inc("harness.budget")
            else:
                obs.inc("harness.errors")
            if last["status"] == STATUS_BUDGET:
                # Memory/state-ceiling trips are deterministic: the same
                # budget trips at the same point, so retrying burns the
                # remaining budget without new information.
                break
            if self.token.cancelled:
                break
            if attempt < attempts:
                obs.inc("harness.retries")
                _sleep(self._backoff(attempt))
        last["attempts"] = attempt
        last["duration_s"] = time.perf_counter() - t0
        if self.checkpoint is not None:
            self.checkpoint.record_finish(exp.id, last)
        return last

    def _backoff(self, attempt: int) -> float:
        cfg = self.config
        delay = min(cfg.backoff_cap_s, cfg.backoff_base_s * 2 ** (attempt - 1))
        return delay * (1.0 + cfg.jitter * self._rng.random())

    def _attempt(self, exp_id: str) -> dict[str, object]:
        if self.config.isolate:
            return self._attempt_subprocess(exp_id)
        return self._attempt_in_process(exp_id)

    # -- in-process path -------------------------------------------------------

    def _attempt_in_process(self, exp_id: str) -> dict[str, object]:
        from repro.experiments.registry import run_experiment

        faults.inject("runner.attempt")
        cfg = self.config
        budget = Budget(wall_s=cfg.timeout_s, token=self.token)

        def fn():
            with use_budget(budget):
                return run_experiment(exp_id)

        try:
            if cfg.timeout_s is not None:
                # The cooperative deadline fires at timeout_s inside any
                # governed loop; the watchdog abandons the thread only a
                # grace period later, for code that never checks.
                grace = (
                    cfg.grace_s
                    if cfg.grace_s is not None
                    else default_grace_s(cfg.timeout_s)
                )
                timed_out, value, exc = _run_on_thread(
                    fn, cfg.timeout_s + grace
                )
                if timed_out:
                    # No cancel needed: the abandoned thread's budget
                    # deadline has already passed, so it winds down at
                    # its next check instead of computing into the void.
                    return self._timeout_result(exp_id, cooperative=False)
                if exc is not None:
                    raise exc
                result = value
            else:
                result = fn()
        except KeyboardInterrupt:  # the operator wins over error capture
            raise
        except BudgetExceeded as exc:
            return self._budget_result(exp_id, exc.reason, _partial_summary(exc))
        except Exception as exc:  # noqa: BLE001 - structured capture is the point
            return self._error_result(exp_id, _error_payload(exc))
        return {**result, "status": STATUS_OK}

    # -- subprocess path -------------------------------------------------------

    def _attempt_subprocess(self, exp_id: str) -> dict[str, object]:
        import repro

        faults.inject("runner.attempt")
        cfg = self.config
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            src_dir + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src_dir
        )
        kill_after = cfg.timeout_s
        if cfg.timeout_s is not None:
            # Ship the cooperative deadline across the process boundary;
            # the child installs it ambiently (Budget.from_env) and winds
            # down on its own.  The parent's kill is the backstop, one
            # grace period later.
            env[BUDGET_WALL_ENV] = str(cfg.timeout_s)
            grace = (
                cfg.grace_s
                if cfg.grace_s is not None
                else default_grace_s(cfg.timeout_s)
            )
            kill_after = cfg.timeout_s + grace
        cmd = [sys.executable, "-m", "repro.harness.child", exp_id]
        try:
            proc = subprocess.run(
                cmd,
                capture_output=True,
                text=True,
                timeout=kill_after,
                env=env,
            )
        except subprocess.TimeoutExpired:
            return self._timeout_result(exp_id, cooperative=False)
        payload = self._parse_child_output(proc.stdout)
        if payload is None:
            tail = (proc.stderr or "").strip().splitlines()[-8:]
            return self._error_result(
                exp_id,
                {
                    "type": "ChildCrash",
                    "message": (
                        f"isolated child exited with code {proc.returncode} "
                        "without a result"
                    ),
                    "traceback": "\n".join(tail),
                },
            )
        metrics = payload.get("metrics")
        if isinstance(metrics, dict):
            obs.REGISTRY.merge_snapshot(metrics)
        if payload.get("ok"):
            return {**payload["result"], "status": STATUS_OK}
        budget_info = payload.get("budget")
        if isinstance(budget_info, dict):
            return self._budget_result(
                exp_id,
                str(budget_info.get("reason", "budget exceeded")),
                budget_info.get("partial"),
            )
        return self._error_result(exp_id, payload.get("error") or {})

    @staticmethod
    def _parse_child_output(stdout: str) -> dict | None:
        for line in reversed((stdout or "").splitlines()):
            if line.startswith(CHILD_SENTINEL):
                try:
                    return json.loads(line[len(CHILD_SENTINEL):])
                except json.JSONDecodeError:
                    return None
        return None

    # -- terminal result shapes ------------------------------------------------

    def _timeout_result(
        self,
        exp_id: str,
        cooperative: bool = False,
        truncation: str | None = None,
        partial: dict | None = None,
    ) -> dict[str, object]:
        result: dict[str, object] = {
            "holds": False,
            "status": STATUS_TIMEOUT,
            "experiment": exp_id,
            "timeout_s": self.config.timeout_s,
            "cooperative": cooperative,
        }
        if truncation is not None:
            result["truncation"] = truncation
        if partial is not None:
            result["partial"] = partial
        return result

    def _budget_result(
        self, exp_id: str, reason: str, partial: dict | None
    ) -> dict[str, object]:
        """Terminal shape of a budget trip.

        Deadline expiries and cancellations are *timeouts* that happened
        to land cooperatively (the partial made it out); memory/state
        ceilings are their own ``budget`` status.
        """
        if reason.startswith(("deadline", "cancelled")):
            return self._timeout_result(
                exp_id, cooperative=True, truncation=reason, partial=partial
            )
        result: dict[str, object] = {
            "holds": False,
            "status": STATUS_BUDGET,
            "experiment": exp_id,
            "truncation": reason,
        }
        if partial is not None:
            result["partial"] = partial
        return result

    @staticmethod
    def _error_result(exp_id: str, error: dict[str, str]) -> dict[str, object]:
        return {
            "holds": False,
            "status": STATUS_ERROR,
            "experiment": exp_id,
            "error": error,
        }

    # -- batches ---------------------------------------------------------------

    def run_many(
        self, exp_ids: Iterable[str], on_result=None
    ) -> dict[str, dict[str, object]]:
        """Run a batch, skipping checkpoint-completed experiments.

        Returns ``{id: result}`` in input order; resumed results carry
        ``"resumed": True``.  Never aborts mid-batch on experiment
        failure: every requested experiment gets a terminal result.  The
        one exception is cooperative cancellation (Ctrl-C/SIGTERM via the
        shared token): the batch stops cleanly after the experiment that
        observed it, returning what completed — the checkpoint picks the
        rest up on resume.

        ``on_result(exp_id, result)`` fires after each terminal result
        (including resumed ones) — the progress reporter's tap.
        """
        done = self.checkpoint.completed() if self.checkpoint else {}
        results: dict[str, dict[str, object]] = {}
        for exp_id in exp_ids:
            if self.token.cancelled:
                break
            key = exp_id.upper()
            if key in done:
                results[key] = {**done[key], "resumed": True}
                obs.inc("harness.resumed")
            else:
                results[key] = self.run_one(key)
            if on_result is not None:
                on_result(key, results[key])
        return results
