"""Experiment registry: one entry per paper artifact.

Every figure, lemma, theorem, corollary and proposition of the paper — plus
the substrate demonstrations its argument relies on — is registered here as
a named experiment returning a JSON-friendly result dict with a ``holds``
verdict.  The CLI (``repro-ca run E4``) and the benchmark harness both
drive this registry, so "what the paper claims" and "what we measured" stay
in one place (recorded in EXPERIMENTS.md).
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    Experiment,
    get_experiment,
    run_all,
    run_experiment,
)

__all__ = [
    "Experiment",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
    "run_all",
]
