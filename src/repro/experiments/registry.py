"""The experiment registry (one entry per paper artifact).

Experiment ids follow DESIGN.md's per-experiment index (E1-E16).  Each
``run`` callable is self-contained, uses only the public library API, and
returns a flat dict with at least ``{"holds": bool}``; anything else in the
dict is measurement detail recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.aca.subsumption import (
    aca_exceeds_interleavings,
    replay_parallel,
    replay_sequential,
)
from repro.core.automaton import CellularAutomaton
from repro.core.energy import (
    ThresholdNetwork,
    verify_parallel_energy_monotone,
    verify_sequential_energy_decrease,
)
from repro.core.evolution import sequential_converge
from repro.core.interleaving import interleaving_capture_report
from repro.core.nondet import NondetPhaseSpace
from repro.core.phase_space import PhaseSpace
from repro.core.rules import MajorityRule, XorRule
from repro.core.schedules import RandomPermutationSweeps, RandomSingleNode
from repro.core.theorems import (
    TheoremReport,
    check_bipartite_two_cycles,
    check_corollary1,
    check_lemma1_parallel,
    check_lemma1_sequential,
    check_lemma2_parallel,
    check_lemma2_sequential,
    check_monotone_boundary,
    check_nonhomogeneous_threshold,
    check_proposition1,
    check_theorem1,
)
from repro.interleave.programs import tosic_agha_example
from repro.obs import timed
from repro.sds.equivalence import verify_orientation_bound
from repro.sds.sds import SDS
from repro.spaces.graph import GraphSpace
from repro.spaces.infinite import SupportConfig, infinite_orbit, infinite_step
from repro.spaces.line import Ring

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "run_experiment", "run_all"]


@dataclass(frozen=True)
class Experiment:
    """A registered, runnable reproduction of one paper artifact."""

    id: str
    title: str
    paper_ref: str
    run: Callable[[], dict[str, object]] = field(repr=False)


def _theorem_dict(report: TheoremReport) -> dict[str, object]:
    return {
        "holds": report.holds,
        "statement": report.statement,
        "parameters": report.parameters,
        "witnesses": list(map(str, report.witnesses)),
        "counterexamples": list(map(str, report.counterexamples)),
        "details": {k: str(v) for k, v in report.details.items()},
    }


def _xor_two_node_ca() -> CellularAutomaton:
    """The paper's Fig. 1 automaton: two nodes, XOR of self and neighbor."""
    return CellularAutomaton(GraphSpace(nx.path_graph(2)), XorRule(), memory=True)


# -- E1 / E2: Figure 1 -----------------------------------------------------------


def run_fig1_parallel() -> dict[str, object]:
    """Figure 1(a): phase space of the parallel two-node XOR CA."""
    ca = _xor_two_node_ca()
    ps = PhaseSpace.from_automaton(ca)
    # Codes are little-endian: bit 0 = node 1 of the paper, bit 1 = node 2.
    expected_succ = [0b00, 0b11, 0b11, 0b00]
    succ_ok = ps.succ.tolist() == expected_succ
    sink_ok = (
        ps.fixed_points.tolist() == [0]
        and ps.max_transient() <= 2
        and not ps.has_proper_cycle()
    )
    return {
        "holds": succ_ok and sink_ok,
        "successors": ps.succ.tolist(),
        "expected": expected_succ,
        "fixed_points": ps.fixed_points.tolist(),
        "max_steps_to_sink": ps.max_transient(),
    }


def run_fig1_sequential() -> dict[str, object]:
    """Figure 1(b): phase space of the sequential two-node XOR CA."""
    ca = _xor_two_node_ca()
    nps = NondetPhaseSpace.from_automaton(ca)
    expected = {
        # code -> (successor updating node 0, successor updating node 1)
        0b00: (0b00, 0b00),
        0b01: (0b01, 0b11),  # '10' in paper order: node1=1, node2=0
        0b10: (0b11, 0b10),  # '01' in paper order
        0b11: (0b10, 0b01),
    }
    trans_ok = all(
        tuple(int(nps.node_succ[i, c]) for i in range(2)) == exp
        for c, exp in expected.items()
    )
    facts = {
        "fixed_points": nps.fixed_points.tolist(),
        "pseudo_fixed_points": sorted(nps.pseudo_fixed_points.tolist()),
        "unreachable": nps.unreachable_configs().tolist(),
        "has_proper_cycle": nps.has_proper_cycle(),
        "two_cycle_witness": nps.find_two_cycle(),
        "reach_00_from_11": nps.can_reach(0b11, 0b00),
    }
    facts_ok = (
        facts["fixed_points"] == [0]
        and facts["pseudo_fixed_points"] == [1, 2]
        and facts["unreachable"] == [0]
        and facts["has_proper_cycle"] is True
        and facts["two_cycle_witness"] is not None
        and facts["reach_00_from_11"] is False
    )
    # Section 3.1's stronger phrasing: no sequential order induces a map
    # even *isomorphic* to the parallel one.
    from repro.analysis.isomorphism import functional_graphs_isomorphic
    from repro.sds.sds import SDS

    parallel_map = ca.step_all()
    sds = SDS(ca.space, ca.rule)
    none_isomorphic = not any(
        functional_graphs_isomorphic(parallel_map, sds.word_map(list(word)))
        for word in ((0,), (1,), (0, 1), (1, 0), (0, 0), (1, 1))
    )
    facts["no_sequential_order_isomorphic_to_parallel"] = none_isomorphic
    return {
        "holds": trans_ok and facts_ok and none_isomorphic,
        "transitions_match": trans_ok,
        **facts,
    }


# -- E3: Section 1.1 granularity example ---------------------------------------------


def run_granularity() -> dict[str, object]:
    """Section 1.1: x+=1 || x+=2 at statement vs. machine granularity."""
    rep = tosic_agha_example()
    values = lambda outs: sorted(dict(o)["x"] for o in outs)  # noqa: E731
    return {
        "holds": (
            rep.parallel_escapes_high_level
            and rep.machine_captures_parallel
            and rep.machine_captures_high_level
        ),
        "high_level_sequential_x": values(rep.high_level_outcomes),
        "parallel_x": values(rep.parallel_outcomes_),
        "machine_x": values(rep.machine_outcomes),
        "machine_interleavings": rep.machine_interleavings,
    }


# -- E4-E10: theorems ------------------------------------------------------------------


def run_lemma1_parallel() -> dict[str, object]:
    """Lemma 1(i)."""
    return _theorem_dict(check_lemma1_parallel())


def run_lemma1_sequential() -> dict[str, object]:
    """Lemma 1(ii)."""
    return _theorem_dict(check_lemma1_sequential())


def run_theorem1() -> dict[str, object]:
    """Theorem 1."""
    return _theorem_dict(check_theorem1())


def run_lemma2() -> dict[str, object]:
    """Lemma 2, both parts."""
    par = check_lemma2_parallel()
    seq = check_lemma2_sequential()
    return {
        "holds": par.holds and seq.holds,
        "parallel": _theorem_dict(par),
        "sequential": _theorem_dict(seq),
    }


def run_corollary1() -> dict[str, object]:
    """Corollary 1."""
    return _theorem_dict(check_corollary1())


def run_proposition1() -> dict[str, object]:
    """Proposition 1 plus the two Lyapunov-energy audits."""
    report = check_proposition1()
    ca = CellularAutomaton(Ring(12), MajorityRule(), memory=True)
    rng = np.random.default_rng(2004)
    inits = rng.integers(0, 2, size=(64, ca.n)).astype(np.uint8)
    seq_audit = verify_sequential_energy_decrease(
        ca, RandomPermutationSweeps(7), inits
    )
    par_audit = verify_parallel_energy_monotone(ca, inits)
    return {
        "holds": report.holds and seq_audit.holds and par_audit.holds,
        "exhaustive": _theorem_dict(report),
        "sequential_energy_strictly_decreases": seq_audit.holds,
        "sequential_min_energy_drop": seq_audit.min_decrease,
        "parallel_energy_monotone": par_audit.holds,
    }


def run_bipartite() -> dict[str, object]:
    """Bipartite two-cycle constructions."""
    return _theorem_dict(check_bipartite_two_cycles())


# -- E11: the headline interleaving failure --------------------------------------------


def run_interleaving_failure() -> dict[str, object]:
    """No sequential interleaving captures the parallel threshold CA.

    Besides the exhaustive 8-ring audit, measures how the capture rates
    *scale*: the interleaving semantics gets monotonically worse as the
    automaton grows.
    """
    ca = CellularAutomaton(Ring(8), MajorityRule(), memory=True)
    rep = interleaving_capture_report(ca)
    step_series: dict[int, float] = {}
    orbit_series: dict[int, float] = {}
    for n in (6, 8, 10, 12):
        r = interleaving_capture_report(
            CellularAutomaton(Ring(n), MajorityRule(), memory=True)
        )
        step_series[n] = round(r.step_capture_rate, 4)
        orbit_series[n] = round(r.orbit_capture_rate, 4)
    sizes = sorted(step_series)
    rates_decay = all(
        step_series[a] > step_series[b] and orbit_series[a] >= orbit_series[b]
        for a, b in zip(sizes, sizes[1:])
    )
    return {
        # The paper's claim *holds* exactly when capture *fails* here.
        "holds": (
            not rep.interleavings_capture_concurrency
            and not rep.sequential_has_cycle
            and len(rep.orbit_capture_failures) > 0
            and rates_decay
        ),
        "automaton": rep.automaton,
        "configurations": rep.total_configs,
        "step_capture_rate": rep.step_capture_rate,
        "orbit_capture_rate": rep.orbit_capture_rate,
        "orbit_failures": len(rep.orbit_capture_failures),
        "parallel_two_cycle_basin": rep.parallel_two_cycle_configs,
        "sequential_has_cycle": rep.sequential_has_cycle,
        "step_capture_by_size": step_series,
        "orbit_capture_by_size": orbit_series,
        "capture_rates_decay_with_n": rates_decay,
    }


# -- E12: fair convergence ---------------------------------------------------------------


def run_fair_convergence() -> dict[str, object]:
    """Fair threshold SCA always converge to a fixed point, within the
    energy bound on effective flips."""
    ca = CellularAutomaton(Ring(12), MajorityRule(), memory=True)
    bound = ThresholdNetwork.from_automaton(ca).max_flip_bound()
    rng = np.random.default_rng(41)
    schedules = [
        RandomPermutationSweeps(11),
        RandomPermutationSweeps(12),
        RandomSingleNode(13),
    ]
    runs = 0
    converged = 0
    worst_flips = 0
    for schedule in schedules:
        for _ in range(32):
            x0 = rng.integers(0, 2, size=ca.n).astype(np.uint8)
            res = sequential_converge(ca, x0, schedule, max_updates=20_000)
            runs += 1
            converged += int(res.converged)
            worst_flips = max(worst_flips, res.effective_flips)
    return {
        "holds": converged == runs and worst_flips <= bound,
        "runs": runs,
        "converged": converged,
        "worst_effective_flips": worst_flips,
        "energy_flip_bound": bound,
    }


# -- E13: ACA subsumption ---------------------------------------------------------------


def run_aca_subsumption() -> dict[str, object]:
    """ACA replay CA and SCA exactly, and exceed both."""
    ca = CellularAutomaton(Ring(9), MajorityRule(), memory=True)
    rng = np.random.default_rng(5)
    x0 = rng.integers(0, 2, size=ca.n).astype(np.uint8)
    par_aca, par_ca = replay_parallel(ca, x0, 8)
    word = rng.integers(0, ca.n, size=40).tolist()
    seq_aca, seq_sca = replay_sequential(ca, x0, word)
    exceeds = aca_exceeds_interleavings()
    return {
        "holds": (
            bool(np.array_equal(par_aca, par_ca))
            and bool(np.array_equal(seq_aca, seq_sca))
            and exceeds.exceeded
        ),
        "parallel_replay_exact": bool(np.array_equal(par_aca, par_ca)),
        "sequential_replay_exact": bool(np.array_equal(seq_aca, seq_sca)),
        "aca_reached": exceeds.reached,
        "sca_reachable_set": list(exceeds.sequentially_reachable),
        "aca_exceeds_sca": exceeds.exceeded,
    }


# -- E14: SDS update-order equivalence ------------------------------------------------------


def run_sds_equivalence() -> dict[str, object]:
    """Distinct SDS maps vs. the acyclic-orientation bound, several graphs."""
    graphs = {
        "cycle5": nx.cycle_graph(5),
        "path5": nx.path_graph(5),
        "star4": nx.star_graph(4),
        "complete4": nx.complete_graph(4),
    }
    results = {}
    holds = True
    for name, g in graphs.items():
        rep = verify_orientation_bound(SDS(g, MajorityRule()))
        results[name] = {
            "distinct_maps": rep.distinct_maps,
            "acyclic_orientations": rep.acyclic_orientations,
            "bound_holds": rep.bound_holds,
        }
        holds &= rep.bound_holds
    return {"holds": holds, **results}


# -- E15: engine throughput ----------------------------------------------------------------


def run_engine_scaling() -> dict[str, object]:
    """Vectorized vs. naive synchronous step (correctness + a quick timing).

    Precise timings live in ``benchmarks/bench_engine_scaling.py``; this
    registry entry checks agreement and reports a coarse speedup.
    """
    ca = CellularAutomaton(Ring(4096), MajorityRule(), memory=True)
    rng = np.random.default_rng(9)
    x = rng.integers(0, 2, size=ca.n).astype(np.uint8)
    fast = ca.step(x)
    slow = ca.step_naive(x)
    agree = bool(np.array_equal(fast, slow))

    with timed("engine.step_vectorized_x20") as fast_sw:
        for _ in range(20):
            ca.step(x)
    fast_t = fast_sw.elapsed / 20
    with timed("engine.step_naive") as slow_sw:
        ca.step_naive(x)
    slow_t = slow_sw.elapsed
    return {
        "holds": agree and fast_t < slow_t,
        "n": ca.n,
        "vectorized_step_s": fast_t,
        "naive_step_s": slow_t,
        "speedup": slow_t / fast_t if fast_t > 0 else float("inf"),
    }


# -- E16: the infinite line ----------------------------------------------------------------


def run_infinite_line() -> dict[str, object]:
    """Exact infinite-line dynamics: witnesses and convergence.

    The alternating background is a genuine two-cycle of the *infinite*
    parallel MAJORITY CA; finite-support perturbations settle into orbits
    of period <= 2 (Proposition 1 in the infinite setting, checked exactly
    on eventually periodic configurations).
    """
    rule = MajorityRule().with_arity(3)
    alt = SupportConfig.periodic("01")
    t_alt, p_alt, _ = infinite_orbit(rule, alt)
    finite = SupportConfig.finite("110100111010011")
    t_fin, p_fin, _ = infinite_orbit(rule, finite)
    # A solid 1-block inside the alternating background *invades* it one
    # cell per side per step: a divergent orbit, possible only on the
    # infinite line ("if computation ... converges at all", Sec. 3).
    bumped = SupportConfig.build("01", "1111", "01", lo=0)
    steps = 12
    current = bumped
    widths = []
    for _ in range(steps):
        current = infinite_step(rule, current)
        widths.append(len(current.core))
    diverges = all(b > a for a, b in zip(widths, widths[1:]))
    return {
        "holds": (t_alt, p_alt) == (0, 2) and p_fin <= 2 and diverges,
        "alternating_orbit": {"transient": t_alt, "period": p_alt},
        "finite_support_orbit": {"transient": t_fin, "period": p_fin},
        "invading_block_core_widths": widths,
        "invading_block_diverges": diverges,
    }


# -- E17/E18: Section 4 extensions ("future work" the paper sketches) ---------------


def run_nonhomogeneous() -> dict[str, object]:
    """Non-homogeneous threshold CA keep the paper's dichotomy."""
    return _theorem_dict(check_nonhomogeneous_threshold())


def run_monotone_boundary() -> dict[str, object]:
    """Where sequential computations catch up: exactly the shift rules."""
    report = check_monotone_boundary()
    out = _theorem_dict(report)
    # The shift CA is also the case where sequential *can* reproduce the
    # parallel orbit structure: its nondeterministic phase space cycles.
    from repro.core.rules import TableRule

    shift = TableRule([0, 1, 0, 1, 0, 1, 0, 1], name="left-shift")
    ca = CellularAutomaton(Ring(6), shift, memory=True)
    nps = NondetPhaseSpace.from_automaton(ca)
    out["shift_sequential_has_cycles"] = bool(nps.has_proper_cycle())
    out["holds"] = bool(out["holds"]) and bool(nps.has_proper_cycle())
    return out


# -- E19/E20: census and synchrony-threshold studies ([19]-style analysis) -----------


def run_block_synchrony() -> dict[str, object]:
    """How much synchrony does oscillation need?  All of it."""
    from repro.core.block_maps import check_block_synchrony

    return _theorem_dict(check_block_synchrony())


def run_phase_space_census() -> dict[str, object]:
    """Census of MAJORITY-ring phase spaces, with an exact FP recurrence."""
    from repro.analysis.census import find_linear_recurrence, majority_ring_census

    rows = majority_ring_census(range(3, 15))
    fps = [r.fixed_points for r in rows]
    recurrence = find_linear_recurrence(fps)
    cycle_ok = all(
        r.cycle_configs == (2 if r.n % 2 == 0 else 0) for r in rows
    )
    fractions = [r.garden_fraction for r in rows]
    gardens_grow = all(a < b for a, b in zip(fractions[2:], fractions[3:]))
    return {
        "holds": recurrence is not None and cycle_ok and gardens_grow,
        "sizes": [r.n for r in rows],
        "fixed_points": fps,
        "fp_recurrence_order": None if recurrence is None else recurrence[0],
        "fp_recurrence": None
        if recurrence is None
        else [str(c) for c in recurrence[1]],
        "cycle_configs": [r.cycle_configs for r in rows],
        "garden_fractions": [round(f, 4) for f in fractions],
        "max_transients": [r.max_transient for r in rows],
    }


# -- E22: alpha-asynchronism ------------------------------------------------------------


def run_alpha_asynchronism() -> dict[str, object]:
    """The synchrony dial, probabilistic version: any alpha < 1 kills the
    oscillation almost surely; alpha = 1 sustains it forever.

    From the alternating configuration of a MAJORITY ring, every
    alpha-asynchronous run (each node fires independently with
    probability alpha per step) hits a fixed point; the pure synchronous
    run (alpha = 1) never does.  Mean survival time of the oscillation is
    reported per alpha.
    """
    from repro.core.schedules import AlphaAsynchronous

    n = 12
    ca = CellularAutomaton(Ring(n), MajorityRule(), memory=True)
    alt = np.arange(n, dtype=np.uint8) % 2
    survival: dict[float, float] = {}
    all_converged = True
    for alpha in (0.3, 0.5, 0.7, 0.9):
        times = []
        for seed in range(40):
            res = sequential_converge(
                ca, alt, AlphaAsynchronous(alpha, seed=seed), max_updates=5_000
            )
            all_converged &= res.converged
            times.append(res.updates_used)
        survival[alpha] = float(np.mean(times))
    sync = sequential_converge(
        ca, alt, AlphaAsynchronous(1.0, seed=0), max_updates=2_000
    )
    return {
        "holds": all_converged and not sync.converged,
        "ring": n,
        "mean_steps_to_fixed_point_by_alpha": survival,
        "alpha_1_converges": sync.converged,
        "runs_per_alpha": 40,
    }


# -- E21: the complete radius-1 picture -----------------------------------------------


def run_elementary_survey() -> dict[str, object]:
    """All 256 elementary rules vs. the paper's dichotomy."""
    from repro.analysis.elementary import survey_all_rules, survey_summary

    summary = survey_summary(survey_all_rules(ring_sizes=(5, 6, 7)))
    summary["holds"] = (
        summary["theorem1_violations"] == []
        and summary["monotone_sequential_cyclers"]
        == summary["expected_monotone_cyclers"]
        and summary["monotone_symmetric"] == 5
    )
    return summary


EXPERIMENTS: dict[str, Experiment] = {
    e.id: e
    for e in [
        Experiment("E1", "Figure 1(a): parallel two-node XOR phase space",
                   "Fig. 1(a)", run_fig1_parallel),
        Experiment("E2", "Figure 1(b): sequential two-node XOR phase space",
                   "Fig. 1(b)", run_fig1_sequential),
        Experiment("E3", "x+=1 || x+=2 at two granularities",
                   "Sec. 1.1", run_granularity),
        Experiment("E4", "Parallel MAJORITY r=1 has two-cycles",
                   "Lemma 1(i)", run_lemma1_parallel),
        Experiment("E5", "Sequential MAJORITY r=1 is cycle-free",
                   "Lemma 1(ii)", run_lemma1_sequential),
        Experiment("E6", "All monotone symmetric SCA are cycle-free",
                   "Theorem 1", run_theorem1),
        Experiment("E7", "Radius-2 MAJORITY: cycles in parallel, none sequential",
                   "Lemma 2", run_lemma2),
        Experiment("E8", "Two-cycles exist for every radius",
                   "Corollary 1", run_corollary1),
        Experiment("E9", "Threshold orbits have period <= 2 (+ energy audits)",
                   "Proposition 1", run_proposition1),
        Experiment("E10", "Bipartite spaces give parallel two-cycles",
                   "Sec. 3", run_bipartite),
        Experiment("E11", "Interleavings fail to capture threshold concurrency",
                   "Sec. 3 (main result)", run_interleaving_failure),
        Experiment("E12", "Fair threshold SCA converge to fixed points",
                   "Sec. 3, footnote 2", run_fair_convergence),
        Experiment("E13", "ACA subsume CA and SCA, and exceed them",
                   "Sec. 4", run_aca_subsumption),
        Experiment("E14", "SDS update-order equivalence vs. acyclic orientations",
                   "Sec. 4 / refs [3-6]", run_sds_equivalence),
        Experiment("E15", "Vectorized engine vs. naive reference",
                   "(implementation ablation)", run_engine_scaling),
        Experiment("E16", "Exact infinite-line dynamics",
                   "Sec. 3 (infinite case)", run_infinite_line),
        Experiment("E17", "Non-homogeneous threshold CA keep the dichotomy",
                   "Sec. 4 (extension)", run_nonhomogeneous),
        Experiment("E18", "Monotone boundary: only shift rules cycle sequentially",
                   "Sec. 4 (open question)", run_monotone_boundary),
        Experiment("E19", "Only perfect synchrony oscillates (block-sequential sweep)",
                   "Sec. 4 (synchrony remark)", run_block_synchrony),
        Experiment("E20", "Phase-space census: fixed-point recurrence, Gardens of Eden",
                   "ref [19] programme", run_phase_space_census),
        Experiment("E21", "All 256 elementary rules vs. the paper's dichotomy",
                   "Sec. 3 (rule-class landscape)", run_elementary_survey),
        Experiment("E22", "Alpha-asynchronism: any alpha < 1 kills the oscillation",
                   "Sec. 4 (bounded asynchrony)", run_alpha_asynchronism),
    ]
}


def get_experiment(exp_id: str) -> Experiment:
    """Look up an experiment by id (case-insensitive)."""
    key = exp_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]


def run_experiment(exp_id: str) -> dict[str, object]:
    """Run one experiment and return its result dict.

    Every run is timed into the metrics registry as
    ``experiment.<ID>`` so reports and run artifacts can show where the
    reproduction spends its time.  ``inject("experiment.<ID>")`` is the
    fault-injection checkpoint the resilience tests arm (a no-op unless
    ``REPRO_FAULTS`` / :func:`repro.harness.install` said otherwise).
    """
    from repro.harness import faults

    exp = get_experiment(exp_id)
    with timed(f"experiment.{exp.id}"):
        faults.inject(f"experiment.{exp.id}")
        return exp.run()


def run_all(runner=None) -> dict[str, dict[str, object]]:
    """Run the whole registry (the full paper reproduction).

    With no ``runner`` this is the bare historical loop: the first
    exception aborts the batch.  Pass a
    :class:`repro.harness.ExperimentRunner` to get structured error
    capture, timeouts, retries, isolation and checkpoint/resume — one
    broken experiment then costs one ``status: "error"`` row, not the
    reproduction.
    """
    if runner is not None:
        return runner.run_many(EXPERIMENTS)
    return {eid: run_experiment(eid) for eid in EXPERIMENTS}
