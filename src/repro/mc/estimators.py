"""Streaming estimator state for the Monte-Carlo engine.

All per-batch statistics reduce to one flat int64 counts vector — the
same shape-contract the attractor census uses — so the ``process`` shard
layer, budget frontiers, and resume all move a single small array around.
Every slot is an exact integer (counts and power sums), which is what
makes ``merge_mc_counts`` associative and the whole pipeline
byte-deterministic across serial / sharded / resumed runs.

Slots::

    samples         lanes classified (decided or horizon-expired)
    fixed_point     lanes whose trajectory reached a fixed point
    two_cycle       lanes whose trajectory entered a proper 2-cycle
    undecided       lanes still in transient at the step horizon
    conv_count/_sum/_sumsq/_max
                    moments of convergence time over decided lanes
    energy_count/_sum2/_sumsq4
                    moments of energy descent over fixed-point lanes,
                    in *doubled* units: E2(x,x) = 2 E_seq(x) is integer
                    (descent mean = sum2 / (2 count), variance = .../4)
    steps           total macro steps executed (throughput accounting)

The descent estimator covers fixed-point lanes only: a 2-cycle's state
energy alternates with its phase, so "final energy" is ill-defined there
(the pair energy E2(x, F(x)) is the quantity Proposition 1 bounds, not a
per-state one).  Fixed-point lanes keep their settled state under further
steps, so reading the final plane after the batch loop is exact.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.statistics import Z95, Z99, StreamingMoments, wilson_interval

__all__ = [
    "MC_COUNT_FIELDS",
    "K_MC_COUNTS",
    "zero_mc_counts",
    "merge_mc_counts",
    "mc_estimates",
]

MC_COUNT_FIELDS = (
    "samples",
    "fixed_point",
    "two_cycle",
    "undecided",
    "conv_count",
    "conv_sum",
    "conv_sumsq",
    "conv_max",
    "energy_count",
    "energy_sum2",
    "energy_sumsq4",
    "steps",
)

K_MC_COUNTS = len(MC_COUNT_FIELDS)

IDX = {name: i for i, name in enumerate(MC_COUNT_FIELDS)}

_CONV_MAX_IDX = IDX["conv_max"]


def zero_mc_counts() -> np.ndarray:
    """A fresh all-zero counts vector."""
    return np.zeros(K_MC_COUNTS, dtype=np.int64)


def merge_mc_counts(acc: np.ndarray, delta: np.ndarray) -> np.ndarray:
    """Fold ``delta`` into ``acc`` in place (sum slots, max-merge the max)."""
    keep = acc[_CONV_MAX_IDX]
    acc += delta
    acc[_CONV_MAX_IDX] = max(int(keep), int(delta[_CONV_MAX_IDX]))
    return acc


def _moments(counts: np.ndarray, prefix: str, *, sum_slot: str, sq_slot: str):
    m = StreamingMoments()
    m.count = int(counts[IDX[prefix + "_count"]])
    m.total = int(counts[IDX[sum_slot]])
    m.total_sq = int(counts[IDX[sq_slot]])
    return m


def mc_estimates(counts: np.ndarray, *, energy_enabled: bool = True) -> dict:
    """Human/JSON-facing estimates from one counts vector.

    Incidence rates carry Wilson 99% intervals (the acceptance gate the
    exact census oracle is checked against); convergence time and energy
    descent carry exact-moment means with normal 95% intervals.
    """
    samples = int(counts[IDX["samples"]])
    est: dict = {"samples": samples}
    for key in ("fixed_point", "two_cycle", "undecided"):
        hits = int(counts[IDX[key]])
        lo, hi = wilson_interval(hits, samples, Z99)
        est[key] = {
            "count": hits,
            "rate": hits / samples if samples else 0.0,
            "ci99": [lo, hi],
        }
    conv = _moments(counts, "conv", sum_slot="conv_sum", sq_slot="conv_sumsq")
    conv.maximum = int(counts[_CONV_MAX_IDX])
    clo, chi = conv.ci(Z95)
    est["convergence_time"] = {
        "count": conv.count,
        "mean": conv.mean,
        "variance": conv.variance,
        "ci95": [clo, chi],
        "max": conv.maximum,
    }
    if energy_enabled:
        e2 = _moments(
            counts, "energy", sum_slot="energy_sum2", sq_slot="energy_sumsq4"
        )
        elo, ehi = e2.ci(Z95)
        est["energy_descent"] = {
            "count": e2.count,
            "mean": e2.mean / 2.0,
            "variance": e2.variance / 4.0,
            "ci95": [elo / 2.0, ehi / 2.0],
        }
    else:
        est["energy_descent"] = None
    return est
