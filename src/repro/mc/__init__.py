"""Streaming Monte-Carlo engine for rings far beyond the exact ceiling.

Exact sweeps end near n=34 (``analysis.census``); the paper's results
become *scaling laws* only when measured statistically on huge rings.
This package samples seeded initial conditions in 64-configuration SWAR
batches (one trajectory per uint64 bit lane), drives them through the
bitplane step kernels chunked over nodes so n=10^6 stays in cache-sized
tiles, and streams fixed-point/2-cycle incidence (Wilson intervals),
convergence time and energy descent (exact-integer mergeable moments)
into governed, resumable, contract-validated ``repro-mc/1`` artifacts.
"""

from repro.mc.engine import build_mc_estimate, round_samples, write_mc_artifact
from repro.mc.estimators import (
    K_MC_COUNTS,
    MC_COUNT_FIELDS,
    mc_estimates,
    merge_mc_counts,
    zero_mc_counts,
)
from repro.mc.kernel import McKernel
from repro.mc.sampler import FAMILIES, lanes_for, sample_planes

__all__ = [
    "McKernel",
    "build_mc_estimate",
    "round_samples",
    "write_mc_artifact",
    "mc_estimates",
    "merge_mc_counts",
    "zero_mc_counts",
    "MC_COUNT_FIELDS",
    "K_MC_COUNTS",
    "FAMILIES",
    "lanes_for",
    "sample_planes",
]
