"""Batched SWAR trajectory kernel: 64 sampled configurations per word.

The exact census packs 64 *consecutive codes* per uint64; here each bit
lane carries one *sampled* initial condition instead, and the state is an
``(n, lanes // 64)`` bitplane array — node-major, so a synchronous step
is ``n`` evaluations of the very same lowered bitwise kernel the sweep
backends compiled (:func:`repro.perf.bitplane.eval_bit_kernel`), chunked
over node tiles that keep the working set cache-sized even at n=10^6.

Each batch runs to the paper's dichotomy: Proposition 1 says a parallel
threshold orbit ends in a fixed point or a 2-cycle, so per-lane
classification needs only two trailing states — lane masks
``cur == nxt`` (fixed point, convergence time ``t``) and ``prev == nxt``
(2-cycle, entered at ``t - 1``).  Lanes still live at the step horizon
are counted ``undecided``, never guessed.

The kernel also speaks the ``process`` shard protocol (``counts_slots``
/ ``census_range`` / ``merge`` / ...), so governed sharded runs reuse
the supervised worker layer unchanged: a shard is just a lane-aligned
slice of the deterministic sample stream.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core.rules import MajorityRule, SimpleThresholdRule, TableRule
from repro.mc import sampler
from repro.mc.estimators import IDX, zero_mc_counts, merge_mc_counts
from repro.perf.base import BackendUnsupported
from repro.perf.bitplane import eval_bit_kernel, lower_bit_kernel
from repro.spaces.line import Ring

__all__ = ["McKernel", "MC_TILE_WORDS", "count_threshold"]

#: uint64 words per node tile of the synchronous step (~256 KiB per
#: input plane), the cache-sizing knob for huge rings
MC_TILE_WORDS = 1 << 15

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def count_threshold(rule, width: int):
    """Firing threshold of a monotone symmetric rule, or ``None``.

    Mirrors :meth:`repro.core.energy.ThresholdNetwork.from_automaton`
    exactly, so the kernel's integer energy agrees with the scalar
    Lyapunov implementation slot for slot.
    """
    if isinstance(rule, SimpleThresholdRule):
        return int(rule.threshold)
    if isinstance(rule, MajorityRule):
        return width // 2 + 1 if rule.ties == "zero" else (width + 1) // 2
    if isinstance(rule, TableRule):
        t = rule.function.as_count_threshold()
        return None if t is None else int(t)
    return None


def _lane_bools(mask: np.ndarray, lanes: int) -> np.ndarray:
    """Per-lane booleans of a ``(nwords,)`` uint64 lane mask."""
    return np.unpackbits(
        np.ascontiguousarray(mask).view(np.uint8), bitorder="little"
    )[:lanes].astype(bool)


class McKernel:
    """Monte-Carlo trajectory driver for one homogeneous threshold ring.

    Built directly from ``(rule, n, radius, memory)`` — setup is O(1) in
    ``n`` (no window materialization, no automaton object), which is what
    keeps ``repro mc --n 1000000`` instant to start.
    """

    def __init__(
        self,
        rule,
        n: int,
        radius: int = 1,
        memory: bool = True,
        *,
        schedule: str = "parallel",
        perm=None,
        family: str = "uniform",
        seed: int = 0,
        horizon: int | None = None,
        density: float = 0.5,
        flips: int = 1,
        lanes: int | None = None,
    ):
        if sys.byteorder != "little":  # pragma: no cover - exotic hosts
            raise BackendUnsupported(
                "bit-plane packing assumes a little-endian host"
            )
        if n < 2 * radius + 1:
            raise ValueError(
                f"ring of {n} nodes cannot support radius {radius}; "
                f"need n >= {2 * radius + 1}"
            )
        if schedule not in ("parallel", "sweep"):
            raise ValueError(
                f"schedule must be 'parallel' or 'sweep', got {schedule!r}"
            )
        if family not in sampler.FAMILIES:
            raise ValueError(f"unknown sampler family {family!r}")
        self.rule = rule
        self.n = int(n)
        self.radius = int(radius)
        self.memory = bool(memory)
        self.schedule = schedule
        self.family = family
        self.seed = int(seed)
        self.density = float(density)
        self.flips = int(flips)
        self.width = 2 * self.radius + (1 if self.memory else 0)
        kern = lower_bit_kernel(rule, self.width)
        if kern is None:
            raise BackendUnsupported(
                f"rule {rule.name} has no bitwise lowering at width {self.width}"
            )
        self._kern = kern
        self.offsets = [
            d for d in range(-self.radius, self.radius + 1) if self.memory or d
        ]
        self.lanes = int(lanes) if lanes is not None else sampler.lanes_for(n)
        if self.lanes < 64 or self.lanes % 64:
            raise ValueError(
                f"lanes must be a positive multiple of 64, got {self.lanes}"
            )
        self.nwords = self.lanes // 64
        if perm is not None:
            perm = [int(i) for i in perm]
            if sorted(perm) != list(range(self.n)):
                raise ValueError("perm must be a permutation of range(n)")
        self.perm = perm if perm is not None else list(range(self.n))
        # Sequential sweeps converge within n(ish) sweeps (Theorem 1's flip
        # bound); parallel transients are O(n) too — 4n + 64 is a generous
        # default horizon with slack for tiny rings.
        self.horizon = int(horizon) if horizon is not None else 4 * self.n + 64
        if self.horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {self.horizon}")
        self.theta = count_threshold(rule, self.width)
        #: flipped off by the engine when theta is unknown or the integer
        #: power sums could overflow int64 at the requested sample count
        self.energy_enabled = self.theta is not None
        # -- process-shard protocol ------------------------------------------
        self.counts_slots = len(zero_mc_counts())
        self.shard_align = self.lanes
        self.poll_chunk = self.lanes
        self.sweep_total = 0  # set by the engine (rounded sample count)
    merge = staticmethod(merge_mc_counts)

    # -- construction from an automaton (qa / tests) -------------------------

    @classmethod
    def supports(cls, ca) -> str | None:
        """Reason this automaton cannot run the MC kernel, or ``None``."""
        if sys.byteorder != "little":  # pragma: no cover - exotic hosts
            return "bit-plane packing assumes a little-endian host"
        if not isinstance(ca.space, Ring):
            return f"monte-carlo kernel needs a ring space, got {ca.space.describe()}"
        rules = {id(ca.rule_at(i)) for i in range(ca.n)}
        if len(rules) > 1:
            return "monte-carlo kernel needs a homogeneous rule assignment"
        width = int(ca._lengths[0])
        if lower_bit_kernel(ca.rule_at(0), width) is None:
            return (
                f"rule {ca.rule_at(0).name} has no bitwise lowering "
                f"at window width {width}"
            )
        return None

    @classmethod
    def from_automaton(cls, ca, **kwargs) -> "McKernel":
        """Kernel over ``ca``'s rule/ring; raises when unsupported."""
        reason = cls.supports(ca)
        if reason is not None:
            raise BackendUnsupported(reason)
        return cls(
            ca.rule_at(0), ca.n, radius=ca.space.radius, memory=ca.memory, **kwargs
        )

    def describe(self) -> str:
        mem = "memory" if self.memory else "memoryless"
        return (
            f"mc[{self.rule.name} on Ring(n={self.n}, radius={self.radius}), "
            f"{mem}, {self.schedule}]"
        )

    # -- stepping -------------------------------------------------------------

    def step(self, planes: np.ndarray) -> np.ndarray:
        """One macro step of every lane: synchronous, or one full sweep."""
        if self.schedule == "sweep":
            return self._step_sweep(planes)
        return self._step_parallel(planes)

    def _step_parallel(self, planes: np.ndarray) -> np.ndarray:
        n, r = self.n, self.radius
        ext = np.concatenate([planes[n - r :], planes, planes[:r]], axis=0)
        out = np.empty_like(planes)
        tile = max(1, MC_TILE_WORDS // max(1, self.nwords))
        for t0 in range(0, n, tile):
            t1 = min(t0 + tile, n)
            inputs = [ext[t0 + r + d : t1 + r + d] for d in self.offsets]
            out[t0:t1] = eval_bit_kernel(
                self._kern, inputs, (t1 - t0, self.nwords)
            )
        return out

    def _step_sweep(self, planes: np.ndarray) -> np.ndarray:
        """One left-to-right sweep in ``perm`` order, all lanes at once.

        Node ``i`` reads the *current* (partially updated) plane — the
        fixed-permutation sequential semantics of the paper's SCA.
        """
        n = self.n
        out = planes.copy()
        for i in self.perm:
            inputs = [out[(i + d) % n] for d in self.offsets]
            out[i] = eval_bit_kernel(self._kern, inputs, self.nwords)
        return out

    # -- energy ---------------------------------------------------------------

    def energy2_bound(self):
        """Per-lane bound on ``|E2(x, x)|``, or ``None`` without a theta."""
        if self.theta is None:
            return None
        return (
            2 * abs(self.theta) * self.n
            + 2 * self.radius * self.n
            + (self.n if self.memory else 0)
        )

    def _lane_popcount(self, planes: np.ndarray) -> np.ndarray:
        """Per-lane column sums (int64) of a bitplane array."""
        out = np.zeros(self.lanes, dtype=np.int64)
        rows = max(1, (1 << 22) // max(1, self.lanes))
        for lo in range(0, planes.shape[0], rows):
            bits = np.unpackbits(
                np.ascontiguousarray(planes[lo : lo + rows]).view(np.uint8),
                axis=1,
                bitorder="little",
            )[:, : self.lanes]
            out += bits.sum(axis=0, dtype=np.int64)
        return out

    def energy2(self, planes: np.ndarray) -> np.ndarray:
        """Per-lane ``E2(x, x) = -x^T W x + 2 theta . x`` (int64).

        Exactly twice the scalar sequential Lyapunov of
        :mod:`repro.core.energy` — doubled so it stays an integer for
        odd thresholds.
        """
        if self.theta is None:
            raise BackendUnsupported(
                f"rule {self.rule.name} has no threshold form; energy disabled"
            )
        ones = self._lane_popcount(planes)
        acc = 2 * self.theta * ones
        for d in range(1, self.radius + 1):
            acc -= 2 * self._lane_popcount(planes & np.roll(planes, -d, axis=0))
        if self.memory:
            acc -= ones
        return acc

    # -- batch classification --------------------------------------------------

    @staticmethod
    def _lane_diff(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Lane mask of lanes where the two states differ anywhere."""
        return np.bitwise_or.reduce(a ^ b, axis=0)

    def _run_batch(self, counts: np.ndarray, batch_lo: int) -> None:
        """Sample, run, and classify one ``lanes``-wide batch into counts."""
        planes = sampler.sample_planes(
            self.family,
            self.n,
            self.lanes,
            self.seed,
            batch_lo,
            density=self.density,
            flips=self.flips,
        )
        want_energy = self.energy_enabled
        x0 = planes.copy() if want_energy else None
        cur = planes
        prev = None
        done = np.zeros(self.nwords, dtype=np.uint64)
        fp_mask = np.zeros(self.nwords, dtype=np.uint64)
        two_mask = np.zeros(self.nwords, dtype=np.uint64)
        conv_t = np.zeros(self.lanes, dtype=np.int64)
        steps = 0
        for t in range(self.horizon):
            nxt = self.step(cur)
            steps += 1
            live_fp = ~self._lane_diff(cur, nxt) & ~done
            if live_fp.any():
                fp_mask |= live_fp
                done |= live_fp
                conv_t[_lane_bools(live_fp, self.lanes)] = t
            if prev is not None:
                live_2c = ~self._lane_diff(prev, nxt) & ~done
                if live_2c.any():
                    two_mask |= live_2c
                    done |= live_2c
                    conv_t[_lane_bools(live_2c, self.lanes)] = t - 1
            if (done == _ONES).all():
                cur = nxt
                break
            prev, cur = cur, nxt
        fp = _lane_bools(fp_mask, self.lanes)
        two = _lane_bools(two_mask, self.lanes)
        decided = fp | two
        counts[IDX["samples"]] += self.lanes
        counts[IDX["fixed_point"]] += int(fp.sum())
        counts[IDX["two_cycle"]] += int(two.sum())
        counts[IDX["undecided"]] += self.lanes - int(decided.sum())
        counts[IDX["steps"]] += steps
        ts = conv_t[decided]
        if ts.size:
            counts[IDX["conv_count"]] += ts.size
            counts[IDX["conv_sum"]] += int(ts.sum())
            counts[IDX["conv_sumsq"]] += int((ts * ts).sum())
            counts[IDX["conv_max"]] = max(
                int(counts[IDX["conv_max"]]), int(ts.max())
            )
        if want_energy and fp.any():
            # Fixed-point lanes hold their settled state in `cur` (further
            # steps are identity there), so the descent is exact.
            drop = (self.energy2(x0) - self.energy2(cur))[fp]
            counts[IDX["energy_count"]] += drop.size
            counts[IDX["energy_sum2"]] += int(drop.sum())
            counts[IDX["energy_sumsq4"]] += int((drop * drop).sum())

    # -- shard protocol --------------------------------------------------------

    def census_range(self, lo: int, hi: int) -> np.ndarray:
        """Counts over the lane-aligned sample range ``[lo, hi)``."""
        if lo % self.lanes or (hi - lo) % self.lanes:
            raise ValueError(
                f"sample range [{lo}, {hi}) is not {self.lanes}-lane aligned"
            )
        counts = zero_mc_counts()
        for blo in range(lo, hi, self.lanes):
            self._run_batch(counts, blo)
        return counts

    def transient_bytes(self) -> int:
        """Peak working-set estimate of one batch (planes + step scratch)."""
        plane = (self.n + 2 * self.radius) * self.nwords * 8
        return 6 * plane + 64 * self.lanes
