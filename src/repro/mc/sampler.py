"""Seeded initial-condition samplers in lane-packed bitplane form.

A batch of ``lanes`` sampled ring configurations is stored as an
``(n, lanes // 64)`` uint64 array — node-major bitplanes, one sampled
configuration per bit lane, the same little-endian lane order the
bitplane sweep kernels use.  Three families:

* ``uniform`` — every configuration equiprobable (one raw-words draw);
* ``density`` — i.i.d. Bernoulli(``density``) cells, the biased regime
  where MAJORITY basin structure actually moves;
* ``perturb`` — the single-seed family: one centre cell on, then
  ``flips`` uniformly-random cell toggles per lane (damage-spreading
  style probes of the all-zeros basin boundary).

Determinism contract: the stream is keyed by ``(seed, batch_lo)`` via
``SeedSequence`` — batch ``lo`` draws the same planes no matter which
worker, shard, or resumed run asks for it.  That is what makes serial,
``process``-sharded, and budget-trip + ``--resume`` runs byte-identical.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FAMILIES", "MIN_LANES", "MAX_LANES", "lanes_for", "sample_planes"]

FAMILIES = ("uniform", "density", "perturb")

#: lanes per batch: always a multiple of 64 (whole uint64 words)
MIN_LANES = 64
MAX_LANES = 1 << 14

#: per-batch state-plane budget that :func:`lanes_for` targets (~8 MiB);
#: at n=10^6 this lands on the 64-lane minimum — one word per node.
_BATCH_BYTES = 8 << 20

#: float scratch budget of the density family's row tiles (counts floats)
_DENSITY_TILE_FLOATS = 1 << 21

_U64_MAX = np.iinfo(np.uint64).max


def lanes_for(n: int) -> int:
    """Batch width for an ``n``-node ring: the largest power-of-two lane
    count (multiple of 64, clamped to ``[MIN_LANES, MAX_LANES]``) whose
    ``(n, lanes/64)`` state plane stays under the ~8 MiB batch budget."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    lanes = MAX_LANES
    while lanes > MIN_LANES and n * (lanes // 8) > _BATCH_BYTES:
        lanes //= 2
    return lanes


def _batch_rng(seed: int, batch_lo: int) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence([int(seed), int(batch_lo)])
    )


def sample_planes(
    family: str,
    n: int,
    lanes: int,
    seed: int,
    batch_lo: int,
    *,
    density: float = 0.5,
    flips: int = 1,
) -> np.ndarray:
    """Draw batch ``[batch_lo, batch_lo + lanes)`` of the sample stream.

    Returns an ``(n, lanes // 64)`` uint64 bitplane array; lane ``j``
    holds sampled configuration ``batch_lo + j``.
    """
    if family not in FAMILIES:
        raise ValueError(f"unknown sampler family {family!r} (want {FAMILIES})")
    if lanes < 64 or lanes % 64:
        raise ValueError(f"lanes must be a positive multiple of 64, got {lanes}")
    nwords = lanes // 64
    rng = _batch_rng(seed, batch_lo)

    if family == "uniform":
        return rng.integers(
            0, _U64_MAX, size=(n, nwords), dtype=np.uint64, endpoint=True
        )

    if family == "density":
        if not 0.0 < density < 1.0:
            raise ValueError(f"density must be in (0, 1), got {density}")
        planes = np.empty((n, nwords), dtype=np.uint64)
        tile = max(1, _DENSITY_TILE_FLOATS // lanes)
        for lo in range(0, n, tile):
            hi = min(lo + tile, n)
            bits = (rng.random((hi - lo, lanes)) < density).astype(np.uint8)
            planes[lo:hi] = np.packbits(
                bits, axis=1, bitorder="little"
            ).view(np.uint64)
        return planes

    # perturb: centre cell on everywhere, then `flips` random toggles/lane
    if flips < 0:
        raise ValueError(f"flips must be >= 0, got {flips}")
    planes = np.zeros((n, nwords), dtype=np.uint64)
    planes[n // 2] = _U64_MAX
    word = np.arange(lanes) >> 6
    mask = np.uint64(1) << (np.arange(lanes, dtype=np.uint64) & np.uint64(63))
    for _ in range(int(flips)):
        rows = rng.integers(0, n, size=lanes)
        np.bitwise_xor.at(planes, (rows, word), mask)
    return planes
