"""Governed streaming Monte-Carlo estimation.

:func:`build_mc_estimate` mirrors the attractor census driver shape —
the same ``Partial`` honesty contract, pure-JSON frontier, budget-trip /
``--resume`` semantics, ``process``-shard path, and fault-injection
point — but over a *sample* range instead of a code range: samples
``[lo, hi)`` of the deterministic seeded stream, always in whole
lane-aligned batches, so counts of disjoint ranges merge exactly and
serial / sharded / resumed runs are byte-identical.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.budget import Budget, Partial, resolve_budget
from repro.core.durable import durable_write_json, register_write_site
from repro.obs import inc, set_gauge, span

from repro.mc.estimators import (
    IDX,
    K_MC_COUNTS,
    MC_COUNT_FIELDS,
    mc_estimates,
    merge_mc_counts,
    zero_mc_counts,
)
from repro.mc.kernel import McKernel

__all__ = [
    "MC_SCHEMA",
    "build_mc_estimate",
    "round_samples",
    "write_mc_artifact",
]

MC_SCHEMA = "repro-mc/1"

#: batches folded per governed chunk (budget-trip / cancel granularity)
_CHUNK_BATCHES = 4

register_write_site(
    "mc.artifact", "streaming Monte-Carlo estimate artifact (mc.json)"
)


def round_samples(samples: int, lanes: int) -> int:
    """Round a sample request up to whole ``lanes``-wide batches."""
    samples = int(samples)
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    return max(lanes, ((samples + lanes - 1) // lanes) * lanes)


def build_mc_estimate(
    kernel: McKernel,
    samples: int,
    budget: Budget | None = None,
    frontier: dict[str, object] | None = None,
    backend=None,
) -> Partial[dict]:
    """Governed MC estimate: complete, or truncated + resumable.

    ``backend`` is an optional sweep backend; a sharded one routes
    batches through the supervised ``process`` worker layer (worker
    death costs only the in-flight batch).  Anything else runs the
    kernel's serial loop — the kernel is already 64-way SWAR-parallel,
    so serial is the default even on multicore hosts.
    """
    from repro.harness import faults

    budget = resolve_budget(budget)
    samples = round_samples(samples, kernel.lanes)
    total = samples
    counts = zero_mc_counts()
    start = 0
    if frontier is not None:
        if (
            frontier.get("kind") != "mc"
            or int(frontier.get("n", -1)) != kernel.n
        ):
            raise ValueError(
                f"frontier is not an mc frontier for n={kernel.n}: "
                f"{ {k: frontier[k] for k in ('kind', 'n') if k in frontier} }"
            )
        if int(frontier.get("total", -1)) != total:
            raise ValueError(
                f"mc frontier covers {frontier.get('total')} samples, "
                f"resumed run wants {total}"
            )
        start = int(frontier["next_lo"])
        prior = np.asarray(frontier.get("counts", []), dtype=np.int64)
        if prior.size != K_MC_COUNTS:
            raise ValueError(
                f"mc frontier has {prior.size} count slots, "
                f"expected {K_MC_COUNTS}"
            )
        counts[:] = prior
    if start % kernel.lanes:
        raise ValueError(
            f"mc frontier resume point {start} is not "
            f"{kernel.lanes}-lane aligned"
        )
    # Disable the energy stream when no threshold form exists or the
    # exact integer power sums could overflow their int64 slots.
    bound = kernel.energy2_bound()
    if bound is None or total * (2 * bound) ** 2 >= 1 << 62:
        kernel.energy_enabled = False
    transient = kernel.transient_bytes()
    step = kernel.lanes * _CHUNK_BATCHES

    def _frontier(next_lo: int) -> dict[str, object]:
        return {
            "kind": "mc",
            "n": kernel.n,
            "automaton": kernel.describe(),
            "total": total,
            "next_lo": next_lo,
            "counts": [int(v) for v in counts],
        }

    def _stats() -> dict[str, int]:
        return {
            "samples_so_far": int(counts[IDX["samples"]]),
            "fixed_point_so_far": int(counts[IDX["fixed_point"]]),
            "two_cycle_so_far": int(counts[IDX["two_cycle"]]),
        }

    def _payload() -> dict[str, object]:
        return {
            "schema": MC_SCHEMA,
            "n": kernel.n,
            "samples": total,
            "automaton": kernel.describe(),
            "rule": kernel.rule.name,
            "schedule": kernel.schedule,
            "family": kernel.family,
            "seed": kernel.seed,
            "horizon": kernel.horizon,
            "lanes": kernel.lanes,
            "energy_enabled": bool(kernel.energy_enabled),
            "counts": {
                name: int(counts[i]) for i, name in enumerate(MC_COUNT_FIELDS)
            },
            "estimates": mc_estimates(
                counts, energy_enabled=kernel.energy_enabled
            ),
        }

    with span(
        "mc.estimate",
        n=kernel.n,
        samples=total,
        family=kernel.family,
        schedule=kernel.schedule,
        budget=budget.describe(),
    ) as mc_span:
        if backend is not None and backend.is_sharded:
            kernel.sweep_total = total
            next_lo, reason = backend.governed_sweep(
                counts,
                budget,
                start=start,
                per_state=0,
                mode="mc",
                kernel=kernel,
            )
            if reason is not None:
                mc_span.set(truncated=reason, explored=next_lo)
                return Partial.truncated(
                    reason,
                    explored=next_lo,
                    total=total,
                    stats=_stats(),
                    frontier=_frontier(next_lo),
                )
        else:
            lo = start
            while lo < total:
                hi = min(lo + step, total)
                reason = budget.over(
                    pending_bytes=transient, pending_states=hi - lo
                )
                if reason is not None:
                    mc_span.set(truncated=reason, explored=lo)
                    return Partial.truncated(
                        reason,
                        explored=lo,
                        total=total,
                        stats=_stats(),
                        frontier=_frontier(lo),
                    )
                faults.inject("mc.chunk")
                merge_mc_counts(counts, kernel.census_range(lo, hi))
                budget.charge(states=hi - lo, bytes_=0)
                lo = hi
        decided = int(counts[IDX["fixed_point"]]) + int(counts[IDX["two_cycle"]])
        inc("mc.runs")
        inc("mc.samples", int(counts[IDX["samples"]]) - _prior_samples(frontier))
        set_gauge(
            "mc.fixed_point_rate",
            int(counts[IDX["fixed_point"]]) / total if total else 0.0,
        )
        set_gauge(
            "mc.two_cycle_rate",
            int(counts[IDX["two_cycle"]]) / total if total else 0.0,
        )
        mc_span.set(
            fixed_point=int(counts[IDX["fixed_point"]]),
            two_cycle=int(counts[IDX["two_cycle"]]),
            undecided=total - decided,
        )
        return Partial.done(
            _payload(), explored=total, total=total, stats=_stats()
        )


def _prior_samples(frontier) -> int:
    """Samples already counted by the run a frontier resumes."""
    if not frontier:
        return 0
    prior = frontier.get("counts") or []
    return int(prior[IDX["samples"]]) if len(prior) == K_MC_COUNTS else 0


def write_mc_artifact(path, payload: dict) -> None:
    """Durably write a ``repro-mc/1`` artifact (deterministic bytes)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    durable_write_json(path, payload, site="mc.artifact", sort_keys=True)
