"""Functional equivalence of SDS update orders.

Two permutations are *functionally equivalent* when they induce the same
SDS map.  The classical bound (Mortveit–Reidys; cited by the paper via
[5, 6]): the number of functionally distinct SDS maps over a graph ``G`` is
at most ``a(G)``, the number of acyclic orientations of ``G`` — because the
map depends only on the relative order of *adjacent* vertices, and that
data is exactly an acyclic orientation.

``a(G)`` is computed exactly as ``|chi_G(-1)|`` (Stanley's theorem) via
deletion–contraction on multigraphs, memoised on a canonical form; fine for
the small graphs exhaustive SDS analysis handles anyway.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import networkx as nx

from repro.sds.sds import SDS

__all__ = [
    "sds_equivalence_classes",
    "acyclic_orientation_count",
    "verify_orientation_bound",
    "OrientationBoundReport",
]


def sds_equivalence_classes(
    sds: SDS, permutations: Iterable[Sequence[int]] | None = None
) -> dict[bytes, list[tuple[int, ...]]]:
    """Group update orders by the SDS map they induce.

    ``permutations`` defaults to all ``n!`` orders (exhaustive; keep the
    graph small).  Keys are map fingerprints; values the orders inducing
    that map.
    """
    if permutations is None:
        permutations = itertools.permutations(range(sds.n))
    classes: dict[bytes, list[tuple[int, ...]]] = {}
    for perm in permutations:
        variant = sds.with_permutation(perm)
        classes.setdefault(variant.map_fingerprint(), []).append(tuple(perm))
    return classes


def _canonical_multigraph(edges: tuple[tuple[int, int], ...], n: int) -> tuple:
    return (n, tuple(sorted(tuple(sorted(e)) for e in edges)))


def _chromatic_at(edges: tuple[tuple[int, int], ...], n: int, k: int,
                  memo: dict) -> int:
    """Evaluate the chromatic polynomial of a loopless multigraph at ``k``.

    Deletion–contraction: ``P(G) = P(G - e) - P(G / e)``.  Parallel edges
    are collapsed (they do not change proper colourings); loops created by
    contraction make the polynomial zero.
    """
    # Collapse parallel edges; detect loops.
    simple = set()
    for u, v in edges:
        if u == v:
            return 0
        simple.add((u, v) if u < v else (v, u))
    edges = tuple(sorted(simple))
    key = _canonical_multigraph(edges, n)
    if key in memo:
        return memo[key]
    if not edges:
        result = k**n
    else:
        u, v = edges[0]
        deleted = edges[1:]
        # Contract v into u.
        contracted = []
        for a, b in deleted:
            a2 = u if a == v else a
            b2 = u if b == v else b
            contracted.append((a2, b2))
        result = _chromatic_at(deleted, n, k, memo) - _chromatic_at(
            tuple(contracted), n - 1, k, memo
        )
    memo[key] = result
    return result


def acyclic_orientation_count(graph: nx.Graph) -> int:
    """Number of acyclic orientations: ``a(G) = |chi_G(-1)|`` (Stanley 1973)."""
    if graph.number_of_nodes() == 0:
        return 1
    nodes = {v: i for i, v in enumerate(graph.nodes)}
    edges = tuple(
        (nodes[u], nodes[v]) for u, v in graph.edges if u != v
    )
    value = _chromatic_at(edges, graph.number_of_nodes(), -1, {})
    return abs(value)


@dataclass(frozen=True)
class OrientationBoundReport:
    """Measured distinct-map count against the acyclic-orientation bound."""

    graph: str
    permutations: int
    distinct_maps: int
    acyclic_orientations: int

    @property
    def bound_holds(self) -> bool:
        """The Mortveit–Reidys inequality for this instance."""
        return self.distinct_maps <= self.acyclic_orientations


def verify_orientation_bound(sds: SDS) -> OrientationBoundReport:
    """Exhaustively check ``#distinct SDS maps <= a(G)`` for one system."""
    classes = sds_equivalence_classes(sds)
    graph = sds.space.graph
    return OrientationBoundReport(
        graph=sds.space.describe(),
        permutations=sum(len(v) for v in classes.values()),
        distinct_maps=len(classes),
        acyclic_orientations=acyclic_orientation_count(graph),
    )
