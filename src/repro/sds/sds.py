"""Sequential (SDS) and synchronous (SyDS) dynamical systems.

Following Barrett–Mortveit–Reidys: an SDS is a triple ``(G, {f_v}, pi)`` of
an undirected graph, one Boolean function per vertex over the vertex's
*closed* neighborhood (own state included — SDS are always "with memory"),
and a permutation ``pi``.  One application of the SDS map updates the
vertices in ``pi``'s order, each seeing the partially updated state.  The
SyDS drops ``pi`` and updates all vertices simultaneously.

Implementation: vertex updates are exactly the single-node successor maps
of a :class:`repro.core.CellularAutomaton` over the corresponding
:class:`repro.spaces.GraphSpace`, so an SDS map over all ``2**n``
configurations is just the *composition of permuted successor arrays* —
``n`` vectorized gathers, no per-configuration work.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import cached_property

import networkx as nx
import numpy as np

from repro.core.automaton import CellularAutomaton
from repro.core.heterogeneous import HeterogeneousCA
from repro.core.phase_space import PhaseSpace
from repro.core.rules import TableRule, UpdateRule
from repro.spaces.base import FiniteSpace
from repro.spaces.graph import GraphSpace
from repro.util.orders import is_permutation_word
from repro.util.validation import check_state_vector

__all__ = ["SDS", "SyDS", "VertexFunctions"]

VertexFunctions = UpdateRule | Sequence[UpdateRule]


class SDS:
    """A sequential dynamical system ``(graph, vertex functions, permutation)``.

    ``functions`` may be a single rule (homogeneous SDS) or one rule per
    vertex.  ``permutation`` defaults to the identity order.
    """

    def __init__(
        self,
        graph: nx.Graph | FiniteSpace,
        functions: VertexFunctions,
        permutation: Sequence[int] | None = None,
    ):
        self.space = graph if isinstance(graph, FiniteSpace) else GraphSpace(graph)
        n = self.space.n
        if isinstance(functions, UpdateRule):
            self._ca: CellularAutomaton = CellularAutomaton(
                self.space, functions, memory=True
            )
        else:
            self._ca = HeterogeneousCA(self.space, list(functions), memory=True)
        self.permutation = (
            tuple(range(n)) if permutation is None else tuple(int(i) for i in permutation)
        )
        if not is_permutation_word(self.permutation, n):
            raise ValueError(
                f"{self.permutation} is not a permutation of 0..{n - 1}"
            )

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.space.n

    def apply(self, state: np.ndarray) -> np.ndarray:
        """One application of the SDS map (one full sweep in pi's order)."""
        state = check_state_vector(state, self.n)
        for i in self.permutation:
            self._ca.update_node_inplace(state, i)
        return state

    @cached_property
    def global_map(self) -> np.ndarray:
        """The SDS map over all ``2**n`` packed configurations.

        Computed as the composition of the per-node successor arrays in
        permutation order — ``n`` fancy-indexing passes over ``2**n``
        entries.
        """
        n = self.n
        if n > 22:
            raise ValueError(f"global map over 2**{n} configurations is too large")
        result = np.arange(1 << n, dtype=np.int64)
        for i in self.permutation:
            succ_i = self._ca.node_successors(i)
            result = succ_i[result]
        return result

    def word_map(self, word: Sequence[int]) -> np.ndarray:
        """Global map of an arbitrary update *word* (word-SDS).

        The SDS literature generalises permutation orders to words over
        the vertex set — vertices may repeat or be skipped within a sweep.
        Returns the packed global map of applying the word left to right;
        ``word_map(w1 + w2)`` equals the composition of the two maps.
        """
        n = self.n
        if n > 22:
            raise ValueError(f"word map over 2**{n} configurations is too large")
        result = np.arange(1 << n, dtype=np.int64)
        for i in word:
            if not 0 <= int(i) < n:
                raise ValueError(f"word letter {i} out of range for n={n}")
            result = self._ca.node_successors(int(i))[result]
        return result

    def phase_space(self) -> PhaseSpace:
        """Deterministic phase space of the (deterministic) SDS map."""
        return PhaseSpace(self.global_map, self.n)

    def map_fingerprint(self) -> bytes:
        """Canonical bytes of the global map, for equality grouping."""
        return self.global_map.tobytes()

    def with_permutation(self, permutation: Sequence[int]) -> "SDS":
        """Same graph and functions under a different update order."""
        clone = SDS.__new__(SDS)
        clone.space = self.space
        clone._ca = self._ca
        perm = tuple(int(i) for i in permutation)
        if not is_permutation_word(perm, self.n):
            raise ValueError(f"{perm} is not a permutation of 0..{self.n - 1}")
        clone.permutation = perm
        return clone

    def describe(self) -> str:
        return f"SDS({self.space.describe()}, pi={self.permutation})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


class SyDS:
    """The synchronous counterpart: all vertices update simultaneously."""

    def __init__(self, graph: nx.Graph | FiniteSpace, functions: VertexFunctions):
        self.space = graph if isinstance(graph, FiniteSpace) else GraphSpace(graph)
        if isinstance(functions, UpdateRule):
            self._ca: CellularAutomaton = CellularAutomaton(
                self.space, functions, memory=True
            )
        else:
            self._ca = HeterogeneousCA(self.space, list(functions), memory=True)

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.space.n

    def apply(self, state: np.ndarray) -> np.ndarray:
        """One synchronous step."""
        return self._ca.step(state)

    @cached_property
    def global_map(self) -> np.ndarray:
        """The SyDS map over all packed configurations."""
        return self._ca.step_all()

    def phase_space(self) -> PhaseSpace:
        """Deterministic phase space of the SyDS map."""
        return PhaseSpace(self.global_map, self.n)

    def describe(self) -> str:
        return f"SyDS({self.space.describe()})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def constant_vertex_functions(space: FiniteSpace, rule: UpdateRule) -> list[TableRule]:
    """Materialise one fixed-arity table per vertex from a symmetric rule.

    Convenience for building heterogeneous SDS that start homogeneous.
    """
    _, lengths = space.windows(True)
    return [rule.with_arity(int(lengths[i])) for i in range(space.n)]
