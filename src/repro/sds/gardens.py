"""Garden-of-Eden configurations for SDS and SyDS.

A Garden of Eden is a configuration with no preimage — it can appear only
as an initial condition, never during evolution.  The paper's reference [3]
(Barrett et al., *Gardens of Eden and Fixed Points in Sequential Dynamical
Systems*) studies these for SDS; here we enumerate them exactly from the
global map and provide the membership test.

A structural fact worth noting (and tested): an SDS map is a composition of
single-vertex updates, each of which is *idempotent on its own output bit*,
and an SDS over invertible vertex functions permutes the configuration
space — in that case there are no Gardens of Eden at all.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cycles import FunctionalGraph
from repro.core.budget import Budget, resolve_budget
from repro.sds.sds import SDS, SyDS

__all__ = ["garden_of_eden_configs", "is_garden_of_eden", "is_invertible"]


def garden_of_eden_configs(
    system: SDS | SyDS, budget: Budget | None = None
) -> np.ndarray:
    """Packed codes of all configurations with no preimage.

    The in-degree enumeration runs under ``budget`` (explicit or ambient):
    the functional-graph loops poll it cooperatively and a trip raises
    :class:`~repro.core.budget.BudgetExceeded`.
    """
    budget = resolve_budget(budget)
    budget.check()
    return FunctionalGraph(system.global_map, budget=budget).gardens_of_eden


def is_garden_of_eden(system: SDS | SyDS, code: int) -> bool:
    """True iff ``code`` has no preimage under the system's global map."""
    if not 0 <= code < (1 << system.n):
        raise ValueError(f"configuration code {code} out of range")
    return not bool(np.any(system.global_map == code))


def is_invertible(system: SDS | SyDS) -> bool:
    """True iff the global map is a bijection on configurations.

    Equivalent to "no Gardens of Eden" for maps on a finite set.
    """
    return bool(np.unique(system.global_map).size == system.global_map.size)
