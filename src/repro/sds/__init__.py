"""Sequential and synchronous dynamical systems over arbitrary graphs.

The paper's references [2-6] (Barrett, Mortveit, Reidys, et al.) study
sequential CA generalised to arbitrary finite graphs: a *sequential
dynamical system* (SDS) applies one Boolean vertex function per node, in
the order of a fixed permutation, each node reading the current states of
its closed neighborhood; the *synchronous* variant (SyDS) updates all nodes
at once.  The paper leans on this theory both for context (its Section 4
extensions) and for specific notions — Gardens of Eden, update-order
(in)equivalence — which this package implements and cross-validates against
the CA machinery.
"""

from repro.sds.sds import SDS, SyDS
from repro.sds.equivalence import (
    acyclic_orientation_count,
    sds_equivalence_classes,
    verify_orientation_bound,
)
from repro.sds.gardens import garden_of_eden_configs, is_garden_of_eden

__all__ = [
    "SDS",
    "SyDS",
    "sds_equivalence_classes",
    "acyclic_orientation_count",
    "verify_orientation_bound",
    "garden_of_eden_configs",
    "is_garden_of_eden",
]
