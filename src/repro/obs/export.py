"""Prometheus textfile-collector rendering of metrics snapshots.

The node_exporter textfile collector scrapes ``*.prom`` files from a
spool directory; this module renders any :meth:`MetricsRegistry.snapshot
<repro.obs.metrics.MetricsRegistry.snapshot>`-shaped dict into that
exposition format so a cron-driven sweep can publish its counters and
timer quantiles without running an HTTP endpoint.

Naming follows Prometheus conventions: everything lives under the
``repro_`` namespace, counters gain a ``_total`` suffix, timers become
summaries in base seconds (``repro_<name>_seconds{quantile="0.5"}`` plus
``_sum``/``_count``).  Metric and label names are sanitised to
``[a-zA-Z0-9_]``; label values are escaped per the exposition format.
"""

from __future__ import annotations

import os
import re
from collections.abc import Mapping
from pathlib import Path

from repro.core import durable

__all__ = ["PROM_NAME", "render_prometheus", "write_textfile"]

#: File name used for the per-run export written at finalize.
PROM_NAME = "metrics.prom"

durable.register_write_site(
    "export.prom", "atomically replace a Prometheus textfile export"
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, suffix: str = "") -> str:
    base = _NAME_RE.sub("_", str(name))
    if base and base[0].isdigit():
        base = "_" + base
    return f"repro_{base}{suffix}"


def _escape(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(
    labels: Mapping[str, object] | None,
    extra: Mapping[str, object] | None = None,
) -> str:
    merged: dict[str, object] = dict(labels or {})
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{_NAME_RE.sub("_", str(k))}="{_escape(v)}"'
        for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def _num(value: object) -> str:
    # repr() keeps full float precision; integers render without ".0".
    f = float(value)  # type: ignore[arg-type]
    return str(int(f)) if f == int(f) else repr(f)


def render_prometheus(
    snapshot: Mapping[str, object],
    labels: Mapping[str, object] | None = None,
) -> str:
    """Render one metrics snapshot as Prometheus exposition text.

    ``labels`` (e.g. ``{"run_id": ..., "command": ...}``) are attached to
    every sample so multiple runs can share a spool directory.  Timers
    with reservoir quantiles emit the three conventional summary
    quantiles; timers observed before the quantile feature (or merged
    from child snapshots) still emit ``_sum``/``_count``.
    """
    lines: list[str] = []
    base_labels = _render_labels(labels)

    counters = snapshot.get("counters") or {}
    for name in sorted(counters):  # type: ignore[arg-type]
        metric = _metric_name(name, "_total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{base_labels} {_num(counters[name])}")

    gauges = snapshot.get("gauges") or {}
    for name in sorted(gauges):  # type: ignore[arg-type]
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{base_labels} {_num(gauges[name])}")

    timers = snapshot.get("timers") or {}
    for name in sorted(timers):  # type: ignore[arg-type]
        stats = timers[name]
        if not isinstance(stats, Mapping):
            continue
        metric = _metric_name(name, "_seconds")
        lines.append(f"# TYPE {metric} summary")
        for q, key in (("0.5", "p50_s"), ("0.95", "p95_s"), ("0.99", "p99_s")):
            if key in stats:
                q_labels = _render_labels(labels, {"quantile": q})
                lines.append(f"{metric}{q_labels} {_num(stats[key])}")
        lines.append(
            f"{metric}_sum{base_labels} {_num(stats.get('total_s', 0.0))}"
        )
        lines.append(
            f"{metric}_count{base_labels} {_num(stats.get('count', 0))}"
        )

    return "\n".join(lines) + "\n" if lines else ""


def write_textfile(
    path: str | os.PathLike[str],
    snapshot: Mapping[str, object],
    labels: Mapping[str, object] | None = None,
) -> Path:
    """Atomically write the rendered snapshot to ``path``; return it.

    Goes through the durable write protocol because the textfile
    collector may scrape the spool directory at any moment and must
    never see a half-written file (no ``.sum`` sidecar: the spool
    directory is scraped by glob, and a stale export is re-rendered on
    the next run anyway).
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    return durable.durable_write_text(
        target,
        render_prometheus(snapshot, labels),
        site="export.prom",
        checksum=False,
    )
