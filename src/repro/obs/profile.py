"""Span profiler: aggregate trace events into a call tree and export it.

Span events (from :mod:`repro.obs.trace`) arrive in *exit* order with
their entry depth and self time; :func:`build_profile` reconstructs the
call tree offline with a pending-stack pass and merges repeated calls of
the same frame under the same parent, accumulating call counts, total
and self times.  Two export formats cover the standard tooling:

* **speedscope** (``https://www.speedscope.app``): the ``evented`` JSON
  dialect, openable directly in the web viewer;
* **collapsed stacks** (Brendan Gregg's ``flamegraph.pl`` input):
  ``root;child;leaf <self-microseconds>`` lines.

A :class:`Profiler` is just a trace sink that retains span events for
the post-run tree build — the CLI installs one under ``--profile``.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable
from pathlib import Path

from repro.obs import trace
from repro.obs.artifacts import read_events

__all__ = [
    "ProfileNode",
    "Profiler",
    "build_profile",
    "profile_from_run",
    "to_speedscope",
    "to_collapsed",
    "write_profile",
]


class ProfileNode:
    """One frame in the aggregated profile tree."""

    __slots__ = ("name", "calls", "total_s", "self_s", "children")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.total_s = 0.0
        self.self_s = 0.0
        self.children: dict[str, ProfileNode] = {}

    def add(self, total_s: float, self_s: float, calls: int = 1) -> None:
        self.calls += calls
        self.total_s += total_s
        self.self_s += self_s

    def merge(self, other: "ProfileNode") -> None:
        """Fold another same-named node (and its subtree) into this one."""
        self.add(other.total_s, other.self_s, other.calls)
        for name, child in other.children.items():
            mine = self.children.get(name)
            if mine is None:
                self.children[name] = child
            else:
                mine.merge(child)

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly recursive view, children sorted by total time."""
        return {
            "name": self.name,
            "calls": self.calls,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "children": [
                c.as_dict()
                for c in sorted(
                    self.children.values(),
                    key=lambda c: c.total_s,
                    reverse=True,
                )
            ],
        }


class Profiler:
    """Trace sink retaining span events for a post-run profile build."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def record(self, payload: dict) -> None:
        if payload.get("event") == "span":
            self.events.append(payload)

    def install(self) -> None:
        trace.add_sink(self.record)

    def uninstall(self) -> None:
        trace.remove_sink(self.record)

    def profile(self) -> list[ProfileNode]:
        """Aggregate everything recorded so far into profile roots."""
        return build_profile(self.events)


def build_profile(events: Iterable[dict]) -> list[ProfileNode]:
    """Reconstruct the call tree from exit-ordered span events.

    Children exit before their parent, so when an event at depth ``d``
    arrives, every pending node deeper than ``d`` is one of its
    children (in reverse order).  Nodes still pending at the end —
    including orphans whose parent never exited (crashed run) — become
    roots.  Same-named siblings merge, accumulating calls and times.
    """
    pending: list[tuple[int, ProfileNode]] = []
    for ev in events:
        if ev.get("event") not in (None, "span") or "duration_s" not in ev:
            continue
        depth = int(ev.get("depth", 0))
        total = float(ev.get("duration_s", 0.0))
        # Events written before self-time tracking get self == total.
        self_s = float(ev.get("self_s", total))
        node = ProfileNode(str(ev.get("name", "?")))
        node.add(total, self_s)
        while pending and pending[-1][0] > depth:
            _, child = pending.pop()
            existing = node.children.get(child.name)
            if existing is None:
                node.children[child.name] = child
            else:
                existing.merge(child)
        pending.append((depth, node))
    roots: dict[str, ProfileNode] = {}
    for _, node in pending:
        existing = roots.get(node.name)
        if existing is None:
            roots[node.name] = node
        else:
            existing.merge(node)
    return list(roots.values())


def profile_from_run(directory: str | os.PathLike[str]) -> list[ProfileNode]:
    """Build a profile tree from a run directory's ``events.jsonl``."""
    return build_profile(
        ev for ev in read_events(directory) if ev.get("event") == "span"
    )


def _eff_total(node: ProfileNode) -> float:
    """Total time clamped so children always fit inside their parent.

    Float accumulation (and merged same-named frames) can make the sum
    of child totals exceed the parent's recorded total by a hair;
    speedscope's evented format requires strict nesting, so take the
    max.
    """
    return max(node.total_s, sum(_eff_total(c) for c in node.children.values()))


def to_speedscope(
    roots: list[ProfileNode], name: str = "repro"
) -> dict[str, object]:
    """Render the profile tree as a speedscope ``evented`` document."""
    frames: list[dict[str, str]] = []
    frame_index: dict[str, int] = {}

    def frame(frame_name: str) -> int:
        idx = frame_index.get(frame_name)
        if idx is None:
            idx = frame_index[frame_name] = len(frames)
            frames.append({"name": frame_name})
        return idx

    events: list[dict[str, object]] = []
    cursor = 0.0

    def emit(node: ProfileNode, at: float) -> float:
        idx = frame(node.name)
        width = _eff_total(node)
        events.append({"type": "O", "frame": idx, "at": at})
        child_at = at
        for child in sorted(node.children.values(), key=lambda c: c.name):
            child_at = emit(child, child_at)
        events.append({"type": "C", "frame": idx, "at": at + width})
        return at + width

    for root in sorted(roots, key=lambda r: r.name):
        cursor = emit(root, cursor)

    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "evented",
                "name": name,
                "unit": "seconds",
                "startValue": 0.0,
                "endValue": cursor,
                "events": events,
            }
        ],
        "name": name,
        "activeProfileIndex": 0,
        "exporter": "repro",
    }


def to_collapsed(roots: list[ProfileNode]) -> str:
    """Render collapsed-stack lines (``flamegraph.pl`` input).

    One line per stack with a positive self time, weighted in integer
    microseconds (the conventional unit for wall-clock flamegraphs).
    """
    lines: list[str] = []

    def walk(node: ProfileNode, prefix: str) -> None:
        stack = f"{prefix};{node.name}" if prefix else node.name
        micros = int(round(node.self_s * 1e6))
        if micros > 0:
            lines.append(f"{stack} {micros}")
        for child in sorted(node.children.values(), key=lambda c: c.name):
            walk(child, stack)

    for root in sorted(roots, key=lambda r: r.name):
        walk(root, "")
    return "\n".join(lines) + "\n" if lines else ""


def write_profile(
    path: str | os.PathLike[str],
    roots: list[ProfileNode],
    fmt: str = "speedscope",
    name: str = "repro",
) -> Path:
    """Write the profile in ``fmt`` (``speedscope``/``collapsed``)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    if fmt == "speedscope":
        target.write_text(
            json.dumps(to_speedscope(roots, name=name)) + "\n",
            encoding="utf-8",
        )
    elif fmt == "collapsed":
        target.write_text(to_collapsed(roots), encoding="utf-8")
    else:
        raise ValueError(f"unknown profile format {fmt!r}")
    return target
