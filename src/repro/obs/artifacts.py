"""Structured run artifacts: one directory per invocation.

Every traced CLI/experiment/benchmark run can persist itself as::

    <run-dir>/
        manifest.json    # who/when/how: command, argv, env, metrics
        events.jsonl     # one JSON object per span (append-only stream)

``manifest.json`` is written eagerly at construction (so a crashed run
still leaves a record) and rewritten by :meth:`RunArtifacts.finalize`
with the end timestamp, exit code and the full metrics snapshot.
``events.jsonl`` receives every span event while the writer is
:meth:`~RunArtifacts.activate`-d as a trace sink; it is created eagerly
too, so an untraced run leaves a valid empty stream rather than nothing.
"""

from __future__ import annotations

import atexit
import json
import os
import platform
import time
from collections.abc import Iterator, Sequence
from datetime import datetime, timezone
from pathlib import Path

from repro.core import durable
from repro.obs import trace
from repro.obs.export import PROM_NAME, write_textfile
from repro.obs.metrics import REGISTRY, MetricsRegistry

__all__ = ["RunArtifacts", "load_manifest", "read_events"]

MANIFEST_NAME = "manifest.json"
EVENTS_NAME = "events.jsonl"

#: schema version stamped into the manifest (validated by repro.contracts)
MANIFEST_SCHEMA = "repro-obs-manifest/1"

durable.register_write_site(
    "artifacts.manifest", "atomically replace manifest.json"
)
durable.register_write_site(
    "artifacts.write_event", "append one events.jsonl record (CRC-framed)"
)


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="milliseconds")


def _version() -> str | None:
    try:
        from repro import __version__
    except Exception:  # pragma: no cover - circular-import guard
        return None
    return __version__


class RunArtifacts:
    """Writer for one run directory (manifest + span-event stream).

    Use as a context manager for the common case::

        with RunArtifacts("/tmp/run1", command="phase-space") as run:
            obs.enable()
            ...  # spans stream into events.jsonl

    or drive ``activate()`` / ``finalize(exit_code)`` explicitly, as the
    CLI does.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        command: str | None = None,
        argv: Sequence[str] | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.registry = registry if registry is not None else REGISTRY
        self._t0 = time.perf_counter()
        self._active = False
        self._finalized = False
        self._events_fh = open(
            self.directory / EVENTS_NAME, "a", encoding="utf-8"
        )
        self.manifest: dict[str, object] = {
            "schema": MANIFEST_SCHEMA,
            "run_id": f"{command or 'run'}-{os.getpid()}-{time.time_ns():x}",
            "command": command,
            "argv": list(argv) if argv is not None else None,
            "started": _utc_now(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "repro_version": _version(),
        }
        self._write_manifest()
        # Best-effort crash marker: if the process exits without
        # finalize() (unhandled exception past the CLI, sys.exit deep in
        # a library), the manifest still records status="interrupted" so
        # the run index can tell a crash from a run still in flight.
        atexit.register(self._finalize_at_exit)

    # -- event stream ----------------------------------------------------------

    def write_event(self, payload: dict) -> None:
        """Append one JSON object to ``events.jsonl`` (flushed per line)."""
        # Lazy import: obs must stay importable without the harness
        # package (and vice versa).
        from repro.harness import faults

        line = durable.jsonl_line(payload)
        fault = faults.inject("artifacts.write_event")
        if fault is not None:  # partial-write: crash mid-record
            self._events_fh.write(line[: max(1, len(line) // 2)])
            self._events_fh.flush()
            raise faults.FaultError("artifacts.write_event", fault.kind)
        self._events_fh.write(line + "\n")
        self._events_fh.flush()

    def activate(self) -> None:
        """Start receiving span events from the tracing layer."""
        if not self._active:
            trace.add_sink(self.write_event)
            self._active = True

    # -- manifest --------------------------------------------------------------

    def _write_manifest(self) -> None:
        durable.durable_write_json(
            self.directory / MANIFEST_NAME,
            self.manifest,
            site="artifacts.manifest",
        )

    def finalize(
        self, exit_code: int | None = None, status: str | None = None
    ) -> dict[str, object]:
        """Seal the run: detach the sink, stamp timings + metrics, close.

        Idempotent; returns the final manifest dict.  ``status`` defaults
        to ``"complete"``; the atexit path passes ``"interrupted"``.
        Also writes the metrics snapshot as a Prometheus textfile
        (``metrics.prom``) beside the manifest.
        """
        if self._finalized:
            return self.manifest
        self._finalized = True
        atexit.unregister(self._finalize_at_exit)
        if self._active:
            trace.remove_sink(self.write_event)
            self._active = False
        self.manifest["finished"] = _utc_now()
        self.manifest["duration_s"] = time.perf_counter() - self._t0
        self.manifest["exit_code"] = exit_code
        self.manifest["status"] = status or "complete"
        self.manifest["metrics"] = self.registry.snapshot()
        self._write_manifest()
        self._events_fh.close()
        try:
            write_textfile(
                self.directory / PROM_NAME,
                self.manifest["metrics"],
                labels={
                    "run_id": self.manifest.get("run_id"),
                    "command": self.manifest.get("command") or "run",
                },
            )
        except OSError:
            pass  # the manifest is the artifact of record; .prom is extra
        return self.manifest

    def _finalize_at_exit(self) -> None:
        """Atexit hook: mark a never-finalized run as interrupted.

        Strictly best-effort — the run directory may be a test tmpdir
        that no longer exists by interpreter shutdown, so every failure
        is swallowed.
        """
        try:
            self.finalize(exit_code=None, status="interrupted")
        except Exception:
            pass

    # -- context manager -------------------------------------------------------

    def __enter__(self) -> "RunArtifacts":
        self.activate()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.finalize(exit_code=0 if exc_type is None else 1)
        return False


def load_manifest(directory: str | os.PathLike[str]) -> dict[str, object]:
    """Parse ``manifest.json`` from a run directory.

    Tolerates the *unfinalized* manifest a crashed or still-running run
    leaves behind (no ``finished``/``metrics``/``exit_code`` keys): the
    returned dict gains a derived ``finalized`` bool so callers can
    branch instead of tripping over missing keys.
    """
    path = Path(directory) / MANIFEST_NAME
    with open(path, encoding="utf-8") as fh:
        manifest = json.load(fh)
    manifest.setdefault("finalized", "finished" in manifest)
    return manifest


def read_events(
    directory: str | os.PathLike[str], strict: bool = False
) -> Iterator[dict]:
    """Lazily parse a run directory's ``events.jsonl``, in order.

    Returns a generator — fuzz and harness runs stream tens of thousands
    of events, and tailing/indexing must not materialise them all; wrap
    in ``list()`` when the full sequence is wanted.  The file opens on
    first iteration, not at call time.

    A truncated final line is the *normal* state of a crashed run's
    stream, so undecodable lines are skipped (and counted on the
    ``artifacts.partial_events`` metric) rather than raised, as are
    lines whose embedded CRC32 disagrees with their content (counted on
    ``artifacts.crc_mismatch``); pass ``strict=True`` to get the
    raising behaviour.
    """
    from repro.obs.metrics import inc

    path = Path(directory) / EVENTS_NAME
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            event, status = durable.decode_jsonl_line(line)
            if status == "garbled":
                if strict:
                    json.loads(line)  # raise the underlying JSONDecodeError
                    raise ValueError(f"{path}: non-object events.jsonl record")
                inc("artifacts.partial_events")
                continue
            if status == "mismatch":
                if strict:
                    raise ValueError(
                        f"{path}: events.jsonl record failed its CRC check"
                    )
                inc("artifacts.crc_mismatch")
                continue
            yield event
