"""Structured run artifacts: one directory per invocation.

Every traced CLI/experiment/benchmark run can persist itself as::

    <run-dir>/
        manifest.json    # who/when/how: command, argv, env, metrics
        events.jsonl     # one JSON object per span (append-only stream)

``manifest.json`` is written eagerly at construction (so a crashed run
still leaves a record) and rewritten by :meth:`RunArtifacts.finalize`
with the end timestamp, exit code and the full metrics snapshot.
``events.jsonl`` receives every span event while the writer is
:meth:`~RunArtifacts.activate`-d as a trace sink; it is created eagerly
too, so an untraced run leaves a valid empty stream rather than nothing.
"""

from __future__ import annotations

import json
import os
import platform
import time
from collections.abc import Sequence
from datetime import datetime, timezone
from pathlib import Path

from repro.obs import trace
from repro.obs.metrics import REGISTRY, MetricsRegistry

__all__ = ["RunArtifacts", "load_manifest", "read_events"]

MANIFEST_NAME = "manifest.json"
EVENTS_NAME = "events.jsonl"


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="milliseconds")


def _version() -> str | None:
    try:
        from repro import __version__
    except Exception:  # pragma: no cover - circular-import guard
        return None
    return __version__


class RunArtifacts:
    """Writer for one run directory (manifest + span-event stream).

    Use as a context manager for the common case::

        with RunArtifacts("/tmp/run1", command="phase-space") as run:
            obs.enable()
            ...  # spans stream into events.jsonl

    or drive ``activate()`` / ``finalize(exit_code)`` explicitly, as the
    CLI does.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        command: str | None = None,
        argv: Sequence[str] | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.registry = registry if registry is not None else REGISTRY
        self._t0 = time.perf_counter()
        self._active = False
        self._finalized = False
        self._events_fh = open(
            self.directory / EVENTS_NAME, "a", encoding="utf-8"
        )
        self.manifest: dict[str, object] = {
            "run_id": f"{command or 'run'}-{os.getpid()}-{time.time_ns():x}",
            "command": command,
            "argv": list(argv) if argv is not None else None,
            "started": _utc_now(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "repro_version": _version(),
        }
        self._write_manifest()

    # -- event stream ----------------------------------------------------------

    def write_event(self, payload: dict) -> None:
        """Append one JSON object to ``events.jsonl`` (flushed per line)."""
        # Lazy import: obs must stay importable without the harness
        # package (and vice versa).
        from repro.harness import faults

        line = json.dumps(payload, default=str)
        fault = faults.inject("artifacts.write_event")
        if fault is not None:  # partial-write: crash mid-record
            self._events_fh.write(line[: max(1, len(line) // 2)])
            self._events_fh.flush()
            raise faults.FaultError("artifacts.write_event", fault.kind)
        self._events_fh.write(line + "\n")
        self._events_fh.flush()

    def activate(self) -> None:
        """Start receiving span events from the tracing layer."""
        if not self._active:
            trace.add_sink(self.write_event)
            self._active = True

    # -- manifest --------------------------------------------------------------

    def _write_manifest(self) -> None:
        path = self.directory / MANIFEST_NAME
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(self.manifest, indent=2, default=str) + "\n",
            encoding="utf-8",
        )
        tmp.replace(path)

    def finalize(self, exit_code: int | None = None) -> dict[str, object]:
        """Seal the run: detach the sink, stamp timings + metrics, close.

        Idempotent; returns the final manifest dict.
        """
        if self._finalized:
            return self.manifest
        self._finalized = True
        if self._active:
            trace.remove_sink(self.write_event)
            self._active = False
        self.manifest["finished"] = _utc_now()
        self.manifest["duration_s"] = time.perf_counter() - self._t0
        self.manifest["exit_code"] = exit_code
        self.manifest["metrics"] = self.registry.snapshot()
        self._write_manifest()
        self._events_fh.close()
        return self.manifest

    # -- context manager -------------------------------------------------------

    def __enter__(self) -> "RunArtifacts":
        self.activate()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.finalize(exit_code=0 if exc_type is None else 1)
        return False


def load_manifest(directory: str | os.PathLike[str]) -> dict[str, object]:
    """Parse ``manifest.json`` from a run directory.

    Tolerates the *unfinalized* manifest a crashed or still-running run
    leaves behind (no ``finished``/``metrics``/``exit_code`` keys): the
    returned dict gains a derived ``finalized`` bool so callers can
    branch instead of tripping over missing keys.
    """
    path = Path(directory) / MANIFEST_NAME
    with open(path, encoding="utf-8") as fh:
        manifest = json.load(fh)
    manifest.setdefault("finalized", "finished" in manifest)
    return manifest


def read_events(
    directory: str | os.PathLike[str], strict: bool = False
) -> list[dict]:
    """Parse every event in a run directory's ``events.jsonl``, in order.

    A truncated final line is the *normal* state of a crashed run's
    stream, so undecodable lines are skipped (and counted on the
    ``artifacts.partial_events`` metric) rather than raised; pass
    ``strict=True`` to get the old raising behaviour.
    """
    from repro.obs.metrics import inc

    path = Path(directory) / EVENTS_NAME
    events: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                if strict:
                    raise
                inc("artifacts.partial_events")
    return events
