"""Cross-run sqlite index over every artifact dialect the library emits.

Five subsystems persist five artifact dialects:

* **obs runs** — ``manifest.json`` + ``events.jsonl`` (:mod:`repro.obs.artifacts`);
* **harness checkpoints** — ``journal.jsonl`` + ``checkpoint.json``
  (:mod:`repro.harness.checkpoint`);
* **budget frontiers** — ``frontier.json`` (+ ``frontier_succ.npy``) left
  by truncated governed sweeps;
* **benchmark reports** — ``BENCH_*.json`` (schema ``repro-bench/1``)
  from :mod:`benchmarks.conftest`;
* **qa findings** — ``finding-*.json`` from :mod:`repro.qa.findings`.

:class:`RunIndex` ingests any of them into one schema-versioned sqlite
database (``runs_index.sqlite``, WAL mode) with four tables — ``runs``,
``metrics``, ``spans``, ``findings`` — so "what ran, how fast, and is it
getting slower?" becomes a query instead of an archaeology dig.
Ingestion is as tolerant as the readers it builds on: truncated journal
lines are counted and skipped, unfinalized manifests index as
in-progress/interrupted rather than erroring, and re-indexing the same
artifact replaces its previous rows (idempotent).

:func:`compare_medians` is the shared regression arithmetic — both
``repro runs compare`` and ``benchmarks/compare_bench.py`` call it, so
the CLI gate and the CI gate can never drift apart.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from pathlib import Path

from repro.core import durable

__all__ = [
    "DB_NAME",
    "SCHEMA_VERSION",
    "RunIndex",
    "check_database",
    "open_with_recovery",
    "compare_medians",
    "bench_medians",
]

DB_NAME = "runs_index.sqlite"
SCHEMA_VERSION = 1

#: Quarantine name for a corrupt/foreign database moved aside by
#: :func:`open_with_recovery` (the previous quarantined copy, if any, is
#: overwritten — the rebuilt index is the artifact of record).
CORRUPT_SUFFIX = ".corrupt"

durable.register_write_site(
    "index.write", "ingest artifacts into runs_index.sqlite (WAL transactions)"
)

#: events.jsonl rows are inserted in batches of this many.
_SPAN_BATCH = 512

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id     TEXT PRIMARY KEY,
    path       TEXT NOT NULL,
    kind       TEXT NOT NULL,
    command    TEXT,
    status     TEXT,
    started    TEXT,
    finished   TEXT,
    duration_s REAL,
    exit_code  INTEGER,
    schema     TEXT,
    extra      TEXT,
    indexed_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS metrics (
    run_id  TEXT NOT NULL,
    name    TEXT NOT NULL,
    kind    TEXT NOT NULL,
    value   REAL,
    count   INTEGER,
    total_s REAL,
    mean_s  REAL,
    min_s   REAL,
    max_s   REAL,
    p50_s   REAL,
    p95_s   REAL,
    p99_s   REAL,
    PRIMARY KEY (run_id, name, kind)
);
CREATE TABLE IF NOT EXISTS spans (
    run_id     TEXT NOT NULL,
    seq        INTEGER NOT NULL,
    name       TEXT,
    depth      INTEGER,
    t_start    REAL,
    duration_s REAL,
    self_s     REAL,
    error      TEXT,
    attrs      TEXT,
    PRIMARY KEY (run_id, seq)
);
CREATE TABLE IF NOT EXISTS findings (
    run_id     TEXT NOT NULL,
    name       TEXT NOT NULL,
    check_name TEXT,
    digest     TEXT,
    spec       TEXT,
    shrunk     INTEGER,
    PRIMARY KEY (run_id, name)
);
CREATE INDEX IF NOT EXISTS idx_spans_name ON spans (name);
CREATE INDEX IF NOT EXISTS idx_metrics_name ON metrics (name);
"""


def _path_id(prefix: str, path: Path, salt: str = "") -> str:
    digest = hashlib.sha256(
        (str(path.resolve()) + "\0" + salt).encode("utf-8")
    ).hexdigest()[:12]
    return f"{prefix}-{digest}"


def _jdump(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, default=str)


class RunIndex:
    """Reader/writer for one ``runs_index.sqlite`` database."""

    def __init__(self, path: str | os.PathLike[str] = DB_NAME):
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self.conn = sqlite3.connect(self.path)
        self.conn.row_factory = sqlite3.Row
        self.conn.execute("PRAGMA journal_mode=WAL")
        version = self.conn.execute("PRAGMA user_version").fetchone()[0]
        if version not in (0, SCHEMA_VERSION):
            raise RuntimeError(
                f"{self.path}: index schema v{version} is newer than this "
                f"library's v{SCHEMA_VERSION}; refusing to touch it"
            )
        with self.conn:
            self.conn.executescript(_SCHEMA)
            self.conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "RunIndex":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- ingestion -------------------------------------------------------------

    def index_run(self, path: str | os.PathLike[str]) -> list[str]:
        """Ingest every artifact found at ``path`` (file or tree).

        A directory is walked recursively; each directory contributes
        whichever dialects it holds (a single run dir can hold several —
        e.g. a CLI run with both a manifest and a saved frontier).
        Returns the run_ids created or refreshed.
        """
        # Lazy import mirrors the dialect readers below: obs must stay
        # importable without the harness package.
        from repro.harness import faults

        faults.inject("index.write")
        p = Path(path)
        if p.is_file():
            run_id = self._ingest_file(p)
            return [run_id] if run_id else []
        if not p.is_dir():
            raise FileNotFoundError(f"no such run path: {p}")
        ingested: list[str] = []
        for dirpath, _dirnames, filenames in os.walk(p):
            d = Path(dirpath)
            names = set(filenames)
            if "manifest.json" in names:
                ingested.append(self._ingest_manifest(d))
            if "journal.jsonl" in names or "checkpoint.json" in names:
                ingested.append(self._ingest_harness(d))
            if "frontier.json" in names:
                rid = self._ingest_frontier(d)
                if rid:
                    ingested.append(rid)
            for fname in sorted(names):
                fp = d / fname
                if fname.startswith("BENCH_") and fname.endswith(".json"):
                    rid = self._ingest_bench(fp)
                elif fname.startswith("finding") and fname.endswith(".json"):
                    rid = self._ingest_finding(fp)
                else:
                    continue
                if rid:
                    ingested.append(rid)
        return ingested

    def _ingest_file(self, path: Path) -> str | None:
        name = path.name
        if name.startswith("BENCH_") and name.endswith(".json"):
            return self._ingest_bench(path)
        if name == "manifest.json":
            return self._ingest_manifest(path.parent)
        if name in ("journal.jsonl", "checkpoint.json"):
            return self._ingest_harness(path.parent)
        if name == "frontier.json":
            return self._ingest_frontier(path.parent)
        if name.endswith(".json"):
            return self._ingest_finding(path)
        raise ValueError(f"unrecognised artifact file: {path}")

    def _replace_run(
        self,
        run_id: str,
        *,
        path: Path,
        kind: str,
        command: str | None = None,
        status: str | None = None,
        started: str | None = None,
        finished: str | None = None,
        duration_s: float | None = None,
        exit_code: int | None = None,
        schema: str | None = None,
        extra: dict | None = None,
    ) -> None:
        with self.conn:
            for table in ("metrics", "spans", "findings"):
                self.conn.execute(
                    f"DELETE FROM {table} WHERE run_id = ?", (run_id,)
                )
            self.conn.execute(
                "INSERT OR REPLACE INTO runs (run_id, path, kind, command, "
                "status, started, finished, duration_s, exit_code, schema, "
                "extra, indexed_at) VALUES (?,?,?,?,?,?,?,?,?,?,?,?)",
                (
                    run_id,
                    str(path.resolve()),
                    kind,
                    command,
                    status,
                    started,
                    finished,
                    duration_s,
                    exit_code,
                    schema,
                    _jdump(extra) if extra else None,
                    time.time(),
                ),
            )

    def _insert_metrics(self, run_id: str, snapshot: dict) -> None:
        rows: list[tuple] = []
        for name, value in (snapshot.get("counters") or {}).items():
            rows.append(
                (run_id, name, "counter", float(value), None, None, None,
                 None, None, None, None, None)
            )
        for name, value in (snapshot.get("gauges") or {}).items():
            rows.append(
                (run_id, name, "gauge", float(value), None, None, None,
                 None, None, None, None, None)
            )
        for name, stats in (snapshot.get("timers") or {}).items():
            if not isinstance(stats, dict):
                continue
            rows.append(
                (
                    run_id, name, "timer", None,
                    stats.get("count"), stats.get("total_s"),
                    stats.get("mean_s"), stats.get("min_s"),
                    stats.get("max_s"), stats.get("p50_s"),
                    stats.get("p95_s"), stats.get("p99_s"),
                )
            )
        if rows:
            with self.conn:
                self.conn.executemany(
                    "INSERT OR REPLACE INTO metrics VALUES "
                    "(?,?,?,?,?,?,?,?,?,?,?,?)",
                    rows,
                )

    # -- dialect: obs manifest + events ---------------------------------------

    def _ingest_manifest(self, directory: Path) -> str:
        from repro.obs.artifacts import load_manifest, read_events

        manifest = load_manifest(directory)
        run_id = str(manifest.get("run_id") or _path_id("manifest", directory))
        if manifest.get("finalized"):
            status = str(manifest.get("status") or "complete")
        else:
            status = "in-progress"
        extra = {
            k: manifest.get(k)
            for k in ("python", "platform", "repro_version", "argv")
            if manifest.get(k) is not None
        }
        self._replace_run(
            run_id,
            path=directory,
            kind="manifest",
            command=manifest.get("command"),
            status=status,
            started=manifest.get("started"),
            finished=manifest.get("finished"),
            duration_s=manifest.get("duration_s"),
            exit_code=manifest.get("exit_code"),
            extra=extra or None,
        )
        metrics = manifest.get("metrics")
        if isinstance(metrics, dict):
            self._insert_metrics(run_id, metrics)
        # Stream the event log in bounded batches — it can be huge.
        batch: list[tuple] = []
        seq = 0
        for ev in read_events(directory):
            if ev.get("event") not in (None, "span"):
                continue
            batch.append(
                (
                    run_id, seq,
                    ev.get("name"), ev.get("depth"), ev.get("t_start"),
                    ev.get("duration_s"), ev.get("self_s"), ev.get("error"),
                    _jdump(ev["attrs"]) if ev.get("attrs") else None,
                )
            )
            seq += 1
            if len(batch) >= _SPAN_BATCH:
                self._flush_spans(batch)
                batch = []
        self._flush_spans(batch)
        return run_id

    def _flush_spans(self, rows: list[tuple]) -> None:
        if rows:
            with self.conn:
                self.conn.executemany(
                    "INSERT OR REPLACE INTO spans VALUES (?,?,?,?,?,?,?,?,?)",
                    rows,
                )

    # -- dialect: harness journal + checkpoint --------------------------------

    def _ingest_harness(self, directory: Path) -> str:
        from repro.harness.checkpoint import journal_summary

        summary = journal_summary(directory)
        run_id = _path_id("harness", directory)
        statuses = summary["statuses"]
        if summary["in_flight"]:
            status = "in-progress"
        elif statuses and all(s == "ok" for s in statuses.values()):
            status = "complete"
        elif statuses:
            bad = sorted(s for s in statuses.values() if s != "ok")
            status = bad[0] if bad else "complete"
        else:
            status = "empty"
        first_ts = summary.get("first_ts")
        last_ts = summary.get("last_ts")
        self._replace_run(
            run_id,
            path=directory,
            kind="harness",
            command="run",
            status=status,
            started=_iso(first_ts),
            finished=_iso(last_ts) if not summary["in_flight"] else None,
            duration_s=(
                last_ts - first_ts
                if first_ts is not None and last_ts is not None
                else None
            ),
            extra={
                "experiments": len(statuses),
                "in_flight": summary["in_flight"],
                "skipped_journal_lines": summary["skipped"],
                "statuses": statuses,
            },
        )
        durations = summary.get("durations") or {}
        rows = [
            (
                run_id, f"experiment.{eid}", "timer", None,
                1, dur, dur, dur, dur, None, None, None,
            )
            for eid, dur in durations.items()
            if isinstance(dur, (int, float))
        ]
        if rows:
            with self.conn:
                self.conn.executemany(
                    "INSERT OR REPLACE INTO metrics VALUES "
                    "(?,?,?,?,?,?,?,?,?,?,?,?)",
                    rows,
                )
        return run_id

    # -- dialect: budget frontier ---------------------------------------------

    def _ingest_frontier(self, directory: Path) -> str | None:
        try:
            meta = json.loads(
                (directory / "frontier.json").read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError):
            return None  # torn first write — same tolerance as load_frontier
        run_id = _path_id("frontier", directory)
        saved = meta.get("saved_ts")
        self._replace_run(
            run_id,
            path=directory,
            kind="frontier",
            command="sweep",
            status="truncated",
            started=_iso(saved),
            finished=_iso(saved),
            extra={
                k: meta.get(k)
                for k in ("kind", "n", "reason", "explored", "next_lo",
                          "next_row", "mode")
                if meta.get(k) is not None
            },
        )
        stats = meta.get("stats")
        if isinstance(stats, dict):
            gauges = {
                k: v for k, v in stats.items() if isinstance(v, (int, float))
            }
            if gauges:
                self._insert_metrics(run_id, {"gauges": gauges})
        return run_id

    # -- dialect: benchmark report --------------------------------------------

    def _ingest_bench(self, path: Path) -> str | None:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict) or "benchmarks" not in payload:
            return None
        module = str(payload.get("module") or path.stem)
        run_id = _path_id(
            f"bench-{module.removeprefix('bench_')}",
            path,
            salt=str(payload.get("generated", "")),
        )
        exit_status = payload.get("exit_status")
        self._replace_run(
            run_id,
            path=path,
            kind="bench",
            command=module,
            status="complete" if exit_status in (0, None) else "failing",
            started=payload.get("generated"),
            finished=payload.get("generated"),
            exit_code=exit_status,
            schema=payload.get("schema"),
            extra=payload.get("environment"),
        )
        rows: list[tuple] = []
        for entry in payload.get("benchmarks", []):
            if not isinstance(entry, dict):
                continue
            stats = entry.get("stats") or {}
            fullname = entry.get("fullname")
            if not fullname:
                continue
            rows.append(
                (
                    run_id, str(fullname), "timer", None,
                    stats.get("rounds"), stats.get("total_s"),
                    stats.get("mean_s"), stats.get("min_s"),
                    stats.get("max_s"), stats.get("median_s"),
                    None, None,
                )
            )
        if rows:
            with self.conn:
                self.conn.executemany(
                    "INSERT OR REPLACE INTO metrics VALUES "
                    "(?,?,?,?,?,?,?,?,?,?,?,?)",
                    rows,
                )
        metrics = payload.get("metrics")
        if isinstance(metrics, dict):
            self._insert_metrics(run_id, metrics)
        return run_id

    # -- dialect: qa finding ---------------------------------------------------

    def _ingest_finding(self, path: Path) -> str | None:
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(data, dict) or "check" not in data or "spec" not in data:
            return None
        digest = str(data.get("digest") or _path_id("qa", path)[3:])
        run_id = f"qa-{digest}"
        self._replace_run(
            run_id,
            path=path,
            kind="finding",
            command="fuzz",
            status="failing",
            extra={
                "backends": data.get("backends"),
                "shrink_steps": data.get("shrink_steps"),
            },
        )
        with self.conn:
            self.conn.execute(
                "INSERT OR REPLACE INTO findings VALUES (?,?,?,?,?,?)",
                (
                    run_id,
                    path.stem,
                    data.get("check"),
                    digest,
                    _jdump(data.get("spec")),
                    1 if data.get("shrunk") else 0,
                ),
            )
        return run_id

    # -- queries ---------------------------------------------------------------

    def list_runs(self, kind: str | None = None) -> list[dict]:
        """All indexed runs, newest started first."""
        sql = "SELECT * FROM runs"
        params: tuple = ()
        if kind is not None:
            sql += " WHERE kind = ?"
            params = (kind,)
        sql += " ORDER BY COALESCE(started, '') DESC, run_id"
        return [dict(r) for r in self.conn.execute(sql, params)]

    def get_run(self, run_id: str) -> dict | None:
        row = self.conn.execute(
            "SELECT * FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        return dict(row) if row else None

    def resolve_run(self, token: str) -> dict:
        """Find one run by exact id or unique id prefix; raise otherwise."""
        run = self.get_run(token)
        if run is not None:
            return run
        rows = self.conn.execute(
            "SELECT * FROM runs WHERE run_id LIKE ? ORDER BY run_id",
            (token + "%",),
        ).fetchall()
        if len(rows) == 1:
            return dict(rows[0])
        if not rows:
            raise KeyError(f"no indexed run matches {token!r}")
        ids = ", ".join(r["run_id"] for r in rows[:5])
        raise KeyError(f"ambiguous run {token!r}: matches {ids}")

    def run_metrics(self, run_id: str) -> list[dict]:
        return [
            dict(r)
            for r in self.conn.execute(
                "SELECT * FROM metrics WHERE run_id = ? ORDER BY kind, name",
                (run_id,),
            )
        ]

    def run_spans(self, run_id: str, limit: int | None = None) -> list[dict]:
        sql = "SELECT * FROM spans WHERE run_id = ? ORDER BY seq"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        return [dict(r) for r in self.conn.execute(sql, (run_id,))]

    def run_findings(self, run_id: str) -> list[dict]:
        return [
            dict(r)
            for r in self.conn.execute(
                "SELECT * FROM findings WHERE run_id = ? ORDER BY name",
                (run_id,),
            )
        ]

    def counts(self, run_id: str) -> dict[str, int]:
        """Row counts per child table for one run (show/test helper)."""
        out: dict[str, int] = {}
        for table in ("metrics", "spans", "findings"):
            out[table] = self.conn.execute(
                f"SELECT COUNT(*) FROM {table} WHERE run_id = ?", (run_id,)
            ).fetchone()[0]
        return out

    def timer_medians(self, run_id: str) -> dict[str, float]:
        """Timer name -> best-available median seconds for one run.

        Prefers the recorded p50 (reservoir quantile for obs runs,
        ``median_s`` for bench entries), falling back to the mean — the
        same "median wall time per name" contract
        ``benchmarks/compare_bench.py`` gates on.
        """
        out: dict[str, float] = {}
        for row in self.conn.execute(
            "SELECT name, p50_s, mean_s FROM metrics "
            "WHERE run_id = ? AND kind = 'timer'",
            (run_id,),
        ):
            median = row["p50_s"]
            if median is None:
                median = row["mean_s"]
            if isinstance(median, (int, float)) and median > 0:
                out[row["name"]] = float(median)
        return out

    # -- maintenance -----------------------------------------------------------

    def gc(self, keep: int | None = None) -> int:
        """Drop rows whose artifact path no longer exists; returns count.

        With ``keep=N``, additionally retains only the ``N`` most
        recently indexed runs of each kind.
        """
        doomed = [
            row["run_id"]
            for row in self.conn.execute("SELECT run_id, path FROM runs")
            if not Path(row["path"]).exists()
        ]
        if keep is not None:
            by_kind: dict[str, list] = {}
            for row in self.conn.execute(
                "SELECT run_id, kind FROM runs ORDER BY indexed_at DESC"
            ):
                by_kind.setdefault(row["kind"], []).append(row["run_id"])
            for ids in by_kind.values():
                doomed.extend(ids[keep:])
        doomed = sorted(set(doomed))
        with self.conn:
            for run_id in doomed:
                for table in ("metrics", "spans", "findings", "runs"):
                    self.conn.execute(
                        f"DELETE FROM {table} WHERE run_id = ?", (run_id,)
                    )
        return len(doomed)


def check_database(path: str | os.PathLike[str]) -> str | None:
    """Probe one index database; return a problem description or ``None``.

    Checks, in order: the file opens as sqlite at all, ``PRAGMA
    quick_check`` reports ``ok``, and ``PRAGMA user_version`` is a schema
    this library can write (0 for a fresh file, else
    :data:`SCHEMA_VERSION`).  Never raises on a broken database — the
    whole point is to classify them.
    """
    try:
        conn = sqlite3.connect(Path(path))
        try:
            row = conn.execute("PRAGMA quick_check").fetchone()
            if row is None or str(row[0]).lower() != "ok":
                return f"integrity check failed: {row[0] if row else 'empty'}"
            version = conn.execute("PRAGMA user_version").fetchone()[0]
            if version not in (0, SCHEMA_VERSION):
                return (
                    f"schema v{version} does not match this library's "
                    f"v{SCHEMA_VERSION}"
                )
        finally:
            conn.close()
    except sqlite3.DatabaseError as exc:
        return f"not a readable sqlite database: {exc}"
    return None


def open_with_recovery(
    path: str | os.PathLike[str] = DB_NAME,
    rebuild_from: list[str | os.PathLike[str]] | None = None,
) -> tuple[RunIndex, dict | None]:
    """Open ``path`` as a :class:`RunIndex`, healing a broken database.

    On a clean open returns ``(index, None)``.  If :func:`check_database`
    finds the file corrupt or schema-mismatched, the database (plus its
    ``-wal``/``-shm`` companions) is moved aside to ``<name>.corrupt``, a
    fresh index is created in its place, and every path in
    ``rebuild_from`` is re-ingested; the second element then describes
    the recovery (``problem``, ``moved_to``, ``reindexed``).  Callers
    that want the hard-failure behaviour keep constructing
    :class:`RunIndex` directly.
    """
    db = Path(path)
    if not db.exists():
        return RunIndex(db), None
    problem = check_database(db)
    if problem is None:
        return RunIndex(db), None
    moved: list[str] = []
    quarantined = db.with_name(db.name + CORRUPT_SUFFIX)
    os.replace(db, quarantined)
    moved.append(str(quarantined))
    for suffix in ("-wal", "-shm"):
        companion = db.with_name(db.name + suffix)
        if companion.exists():
            target = companion.with_name(companion.name + CORRUPT_SUFFIX)
            os.replace(companion, target)
            moved.append(str(target))
    index = RunIndex(db)
    reindexed: list[str] = []
    for root in rebuild_from or []:
        try:
            reindexed.extend(index.index_run(root))
        except FileNotFoundError:
            continue
    return index, {
        "problem": problem,
        "moved_to": moved,
        "reindexed": sorted(set(reindexed)),
    }


def _iso(ts: float | None) -> str | None:
    if ts is None:
        return None
    from datetime import datetime, timezone

    return datetime.fromtimestamp(float(ts), timezone.utc).isoformat(
        timespec="milliseconds"
    )


def bench_medians(path: str | os.PathLike[str]) -> dict[str, float]:
    """Benchmark fullname -> median seconds from one ``BENCH_*.json``."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    out: dict[str, float] = {}
    for entry in payload.get("benchmarks", []):
        median = entry.get("stats", {}).get("median_s")
        name = entry.get("fullname")
        if name and isinstance(median, (int, float)) and median > 0:
            out[str(name)] = float(median)
    return out


def compare_medians(
    baseline: dict[str, float],
    current: dict[str, float],
    tolerance: float = 2.0,
) -> tuple[list[str], bool]:
    """Per-timer report lines and whether any regression trips.

    Names are matched exactly; a timer present on only one side is
    reported (``NEW``/``MISSING``) but never fails the gate.  The gate
    trips when ``current > tolerance * baseline`` for any shared name —
    the exact arithmetic ``benchmarks/compare_bench.py`` has always
    applied to benchmark medians.
    """
    lines: list[str] = []
    failed = False
    for name in sorted(set(baseline) | set(current)):
        old = baseline.get(name)
        new = current.get(name)
        if old is None:
            lines.append(f"  NEW      {name}: {new:.4f}s (no baseline)")
            continue
        if new is None:
            lines.append(f"  MISSING  {name}: baseline {old:.4f}s, not rerun")
            continue
        ratio = new / old
        verdict = "OK"
        if ratio > tolerance:
            verdict = "REGRESSED"
            failed = True
        lines.append(
            f"  {verdict:<9}{name}: {old:.4f}s -> {new:.4f}s "
            f"({ratio:.2f}x)"
        )
    return lines, failed
