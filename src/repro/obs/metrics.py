"""Process-local metrics registry: counters, gauges and timers.

The registry is the single accumulation point for every measurement the
library takes — tracing spans (:mod:`repro.obs.trace`) feed their
durations into it, explicit :func:`timed` blocks record into it whether
or not tracing is enabled, and run artifacts persist its
:meth:`~MetricsRegistry.snapshot` into ``manifest.json``.  Everything is
plain in-process state: no background threads, no sockets, no global
side effects beyond the module-level :data:`REGISTRY`.
"""

from __future__ import annotations

import json
import math
import os
import random
import threading
import zlib
from contextlib import contextmanager
from time import perf_counter

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "RESERVOIR_SIZE",
    "MetricsRegistry",
    "REGISTRY",
    "Stopwatch",
    "inc",
    "set_gauge",
    "observe",
    "timed",
]


class Counter:
    """A monotonically adjustable integer (increments may be negative)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, delta: int = 1) -> int:
        """Add ``delta`` and return the new value."""
        self.value += delta
        return self.value


class Gauge:
    """A last-write-wins scalar (queue depths, sizes, ratios)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> float:
        """Record the current level and return it."""
        self.value = float(value)
        return self.value


#: Fixed reservoir size for timer quantiles — small enough that a
#: snapshot stays cheap, large enough that p99 of a long run is stable.
RESERVOIR_SIZE = 512


def _reservoir_seed(name: str) -> int:
    """Deterministic per-timer RNG seed: crc32(name) mixed with REPRO_SEED.

    Ties the sampling decisions to the run's declared seed so repeated
    runs produce identical quantile estimates.
    """
    try:
        base = int(os.environ.get("REPRO_SEED", "0") or "0")
    except ValueError:
        base = 0
    return zlib.crc32(name.encode("utf-8")) ^ base


class Timer:
    """Accumulated duration statistics for one named operation.

    Besides the running count/total/min/max, a bounded reservoir
    (Algorithm R, :data:`RESERVOIR_SIZE` samples, seeded deterministically
    from the timer name and ``REPRO_SEED``) retains a uniform sample of
    observations so :meth:`quantile` can estimate p50/p95/p99 without
    unbounded memory.
    """

    __slots__ = ("count", "total", "min", "max", "last", "_samples", "_rng")

    def __init__(self, seed: int | None = None) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        self.last = 0.0
        self._samples: list[float] = []
        self._rng = random.Random(0 if seed is None else seed)

    def observe(self, seconds: float) -> None:
        """Fold one measured duration (in seconds) into the statistics."""
        seconds = float(seconds)
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)
        self.last = seconds
        if len(self._samples) < RESERVOIR_SIZE:
            self._samples.append(seconds)
        else:
            j = self._rng.randrange(self.count)
            if j < RESERVOIR_SIZE:
                self._samples[j] = seconds

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) from the reservoir sample.

        Linear interpolation between closest ranks; 0.0 before the first
        observation.
        """
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        pos = max(0.0, min(1.0, q)) * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    @property
    def mean(self) -> float:
        """Mean duration over all observations (0.0 before the first)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, stats: dict) -> None:
        """Fold another timer's ``as_dict()`` statistics into this one.

        Used to merge a subprocess child's snapshot into the parent
        registry; the child's ``last`` wins (it is the more recent run).
        The child's reservoir is not folded in (snapshots carry only
        derived quantiles, not raw samples), so merged quantiles reflect
        this process's own observations.
        """
        count = int(stats.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(stats.get("total_s", 0.0))
        self.min = min(self.min, float(stats.get("min_s", math.inf)))
        self.max = max(self.max, float(stats.get("max_s", 0.0)))
        self.last = float(stats.get("last_s", self.last))

    def as_dict(self) -> dict[str, float | int]:
        """JSON-friendly statistics, all durations in seconds."""
        stats: dict[str, float | int] = {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.mean,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
            "last_s": self.last,
        }
        if self._samples:
            stats["p50_s"] = self.quantile(0.50)
            stats["p95_s"] = self.quantile(0.95)
            stats["p99_s"] = self.quantile(0.99)
        return stats


class MetricsRegistry:
    """A named collection of counters, gauges and timers.

    Metric objects are created on first access and live until
    :meth:`reset`; holding a reference (``c = registry.counter("x")``)
    and bumping it in a loop avoids the dict lookup on hot paths.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created if absent)."""
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created if absent)."""
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def timer(self, name: str) -> Timer:
        """The timer registered under ``name`` (created if absent)."""
        with self._lock:
            timer = self._timers.get(name)
            if timer is None:
                timer = self._timers[name] = Timer(seed=_reservoir_seed(name))
            return timer

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Plain-dict view of every metric, sorted by name, JSON-safe."""
        with self._lock:
            return {
                "counters": {
                    k: self._counters[k].value for k in sorted(self._counters)
                },
                "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
                "timers": {
                    k: self._timers[k].as_dict() for k in sorted(self._timers)
                },
            }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a ``snapshot()``-shaped dict from another registry in.

        Counters add, gauges last-write-win, timers fold their full
        statistics.  This is how an ``--isolate`` child's measurements
        reach the parent process's registry.
        """
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(int(value))
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name).set(float(value))
        for name, stats in (snapshot.get("timers") or {}).items():
            if isinstance(stats, dict):
                self.timer(name).merge(stats)

    def reset(self) -> None:
        """Drop every metric (names and values)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()

    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot serialised as JSON."""
        return json.dumps(self.snapshot(), indent=indent)

    def is_empty(self) -> bool:
        """True iff nothing has been recorded since construction/reset."""
        with self._lock:
            return not (self._counters or self._gauges or self._timers)


#: The process-wide default registry every convenience function targets.
REGISTRY = MetricsRegistry()


def inc(name: str, delta: int = 1) -> int:
    """Increment a counter in the default registry."""
    return REGISTRY.counter(name).inc(delta)


def set_gauge(name: str, value: float) -> float:
    """Set a gauge in the default registry."""
    return REGISTRY.gauge(name).set(value)


def observe(name: str, seconds: float) -> None:
    """Record a duration against a timer in the default registry."""
    REGISTRY.timer(name).observe(seconds)


class Stopwatch:
    """The value yielded by :func:`timed`; ``elapsed`` is set on exit."""

    __slots__ = ("elapsed",)

    def __init__(self) -> None:
        self.elapsed: float = 0.0


@contextmanager
def timed(name: str, registry: MetricsRegistry | None = None):
    """Measure a block's wall time and record it as timer ``name``.

    Unlike :func:`repro.obs.trace.span`, this *always* measures — it is
    the explicit-measurement API for code whose timing is part of its
    result (benchmark registry entries, report runtimes).  The yielded
    :class:`Stopwatch` exposes the duration as ``.elapsed`` after the
    block exits, including on exceptions.
    """
    sw = Stopwatch()
    t0 = perf_counter()
    try:
        yield sw
    finally:
        sw.elapsed = perf_counter() - t0
        (registry if registry is not None else REGISTRY).timer(name).observe(
            sw.elapsed
        )
