"""repro.obs — instrumentation: tracing spans, metrics, run artifacts.

Three small layers, designed so every later performance PR can prove its
win with numbers instead of anecdotes:

* :mod:`repro.obs.trace` — nestable ``span("name", **attrs)`` context
  managers.  Off by default and zero-cost when off (a single branch
  returning a shared no-op object); when on, each span records its wall
  time into the metrics registry and streams a JSON event to any
  registered sink.
* :mod:`repro.obs.metrics` — a process-local registry of counters,
  gauges and timers with ``snapshot()`` / ``reset()`` / JSON export,
  plus :func:`timed` for code whose timing is part of its *result*
  (always measured, tracing or not).
* :mod:`repro.obs.artifacts` — :class:`RunArtifacts` persists one run
  as ``manifest.json`` + ``events.jsonl`` under a directory of your
  choosing; the CLI's ``--artifacts-dir`` flag wires it up.

Quickstart::

    from repro import obs

    obs.enable()
    with obs.span("phase_space.build", n=12):
        ...
    print(obs.REGISTRY.to_json())
"""

from repro.obs.artifacts import RunArtifacts, load_manifest, read_events
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    MetricsRegistry,
    Stopwatch,
    Timer,
    inc,
    observe,
    set_gauge,
    timed,
)
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    add_sink,
    clear_sinks,
    disable,
    emit_event,
    enable,
    enable_from_env,
    is_enabled,
    remove_sink,
    span,
)

__all__ = [
    # tracing
    "span",
    "Span",
    "NOOP_SPAN",
    "enable",
    "disable",
    "is_enabled",
    "enable_from_env",
    "add_sink",
    "remove_sink",
    "clear_sinks",
    "emit_event",
    # metrics
    "MetricsRegistry",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Timer",
    "Stopwatch",
    "inc",
    "set_gauge",
    "observe",
    "timed",
    # artifacts
    "RunArtifacts",
    "load_manifest",
    "read_events",
]
