"""repro.obs — instrumentation: tracing, metrics, artifacts, cross-run.

Per-run layers, designed so every later performance PR can prove its
win with numbers instead of anecdotes:

* :mod:`repro.obs.trace` — nestable ``span("name", **attrs)`` context
  managers.  Off by default and zero-cost when off (a single branch
  returning a shared no-op object); when on, each span records its wall
  and self time into the metrics registry and streams a JSON event to
  any registered sink.
* :mod:`repro.obs.metrics` — a process-local registry of counters,
  gauges and timers (with reservoir-sampled p50/p95/p99 quantiles),
  ``snapshot()`` / ``reset()`` / JSON export, plus :func:`timed` for
  code whose timing is part of its *result* (always measured, tracing
  or not).
* :mod:`repro.obs.artifacts` — :class:`RunArtifacts` persists one run
  as ``manifest.json`` + ``events.jsonl`` (+ a ``metrics.prom``
  Prometheus textfile) under a directory of your choosing; the CLI's
  ``--artifacts-dir`` flag wires it up.

Cross-run layers built on those:

* :mod:`repro.obs.progress` — throttled rate/ETA heartbeats fed by the
  governed enumerators' budget charges (``--progress``, ``repro tail``);
* :mod:`repro.obs.profile` — span self-time profile trees with
  speedscope and collapsed-stack (flamegraph) exporters (``--profile``);
* :mod:`repro.obs.export` — Prometheus textfile-collector rendering of
  any metrics snapshot (``repro stats --format prom``);
* :mod:`repro.obs.index` — the sqlite run index over every artifact
  dialect (``repro runs``).  Imported lazily by the CLI, **not**
  re-exported here: it pulls in the harness package, which itself
  imports ``repro.obs``.

Quickstart::

    from repro import obs

    obs.enable()
    with obs.span("phase_space.build", n=12):
        ...
    print(obs.REGISTRY.to_json())
"""

from repro.obs.artifacts import RunArtifacts, load_manifest, read_events
from repro.obs.export import render_prometheus, write_textfile
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    MetricsRegistry,
    Stopwatch,
    Timer,
    inc,
    observe,
    set_gauge,
    timed,
)
from repro.obs.profile import (
    Profiler,
    build_profile,
    profile_from_run,
    to_collapsed,
    to_speedscope,
    write_profile,
)
from repro.obs.progress import (
    ProgressReporter,
    format_heartbeat,
    iter_progress,
)
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    add_sink,
    clear_sinks,
    current_stack,
    disable,
    emit_event,
    enable,
    enable_from_env,
    is_enabled,
    remove_sink,
    span,
)

__all__ = [
    # tracing
    "span",
    "Span",
    "NOOP_SPAN",
    "enable",
    "disable",
    "is_enabled",
    "enable_from_env",
    "add_sink",
    "remove_sink",
    "clear_sinks",
    "emit_event",
    "current_stack",
    # metrics
    "MetricsRegistry",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Timer",
    "Stopwatch",
    "inc",
    "set_gauge",
    "observe",
    "timed",
    # artifacts
    "RunArtifacts",
    "load_manifest",
    "read_events",
    # progress
    "ProgressReporter",
    "iter_progress",
    "format_heartbeat",
    # profiling
    "Profiler",
    "build_profile",
    "profile_from_run",
    "to_speedscope",
    "to_collapsed",
    "write_profile",
    # prometheus export
    "render_prometheus",
    "write_textfile",
]
