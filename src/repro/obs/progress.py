"""Live progress/ETA heartbeats for governed enumerations.

Every governed enumerator in the library already funnels its work
through :meth:`Budget.charge <repro.core.budget.Budget.charge>`; a
:class:`ProgressReporter` hooks that same call (via the budget's
``on_charge`` slot) and turns the stream of charges into throttled
rate/ETA heartbeats on stderr and, when a run directory is active, into
a ``progress.jsonl`` sink that ``repro tail`` can follow.

Cost discipline: the hook is a single attribute check in ``charge`` when
no reporter is attached (``on_charge is None``), and when attached the
reporter only reads the clock every *stride* charges — the stride adapts
upward (doubling, capped) while heartbeats come back early, so even
``states=1`` hot loops (census, fuzz, sequential orbits) pay a counter
increment and an occasional clock read, not a syscall per charge.
"""

from __future__ import annotations

import json
import os
import sys
import time
from collections.abc import Iterator
from pathlib import Path

__all__ = [
    "PROGRESS_NAME",
    "ProgressReporter",
    "iter_progress",
    "format_heartbeat",
]

#: File name of the heartbeat sink inside a run directory.
PROGRESS_NAME = "progress.jsonl"

#: Never re-read the clock more often than every charge, never less
#: often than every _MAX_STRIDE charges.
_MAX_STRIDE = 1024


class ProgressReporter:
    """Turns budget charges into throttled rate/ETA heartbeat events.

    Parameters
    ----------
    label:
        Human-readable name of the enumeration (``"phase-space n=24"``).
    total:
        Expected number of states/items, or ``None`` when unknown (ETA
        is then omitted from heartbeats).
    interval:
        Minimum seconds between heartbeats (floored at 1.0 — the issue
        contract is "throttled to >= 1 s").
    stream:
        Text stream for human-readable lines (default ``sys.stderr``).
    path:
        Optional ``progress.jsonl`` path; one JSON heartbeat per line.
    """

    def __init__(
        self,
        label: str,
        total: int | None = None,
        interval: float = 1.0,
        stream=None,
        path: str | os.PathLike[str] | None = None,
        clock=time.monotonic,
    ):
        self.label = label
        self.total = int(total) if total is not None else None
        self.interval = max(1.0, float(interval))
        self.stream = sys.stderr if stream is None else stream
        self._clock = clock
        self.done = 0
        self.heartbeats = 0
        self._t0 = clock()
        self._last_emit = self._t0
        self._stride = 1
        self._since_check = 0
        self._finished = False
        self._fh = None
        if path is not None:
            p = Path(path)
            p.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(p, "a", encoding="utf-8")

    # -- hot path --------------------------------------------------------------

    def on_charge(self, budget, states: int) -> None:
        """Budget ``on_charge`` hook: count work, occasionally emit.

        ``states=0`` pings (e.g. the process-pool wait loop) don't add
        work but still drive the clock check, so heartbeats keep flowing
        while a long shard runs elsewhere.
        """
        self.done += states
        self._since_check += 1
        if self._since_check < self._stride and states:
            return
        self._since_check = 0
        now = self._clock()
        since = now - self._last_emit
        if since >= self.interval:
            self._emit(now)
        elif since < self.interval * 0.25 and self._stride < _MAX_STRIDE:
            # Checking far too early: back off the clock reads.
            self._stride *= 2

    def update(self, items: int = 1) -> None:
        """Manual advance for non-budget work (e.g. per-experiment)."""
        self.on_charge(None, items)

    # -- emission --------------------------------------------------------------

    def _heartbeat(self, now: float, final: bool = False) -> dict:
        elapsed = max(now - self._t0, 1e-9)
        rate = self.done / elapsed
        ev: dict[str, object] = {
            "event": "progress",
            "label": self.label,
            "done": self.done,
            "elapsed_s": round(elapsed, 3),
            "rate": round(rate, 3),
            "ts": time.time(),
        }
        if self.total is not None:
            ev["total"] = self.total
            ev["frac"] = round(min(1.0, self.done / self.total), 6) if self.total else 1.0
            if rate > 0 and not final:
                ev["eta_s"] = round(max(0.0, self.total - self.done) / rate, 3)
        if final:
            ev["final"] = True
        return ev

    def _emit(self, now: float, final: bool = False) -> None:
        ev = self._heartbeat(now, final=final)
        self._last_emit = now
        self.heartbeats += 1
        try:
            print(format_heartbeat(ev), file=self.stream, flush=True)
        except (OSError, ValueError):
            pass
        if self._fh is not None:
            try:
                self._fh.write(json.dumps(ev) + "\n")
                self._fh.flush()
            except (OSError, ValueError):
                pass

    def finish(self) -> None:
        """Emit one final heartbeat and close the jsonl sink (idempotent)."""
        if self._finished:
            return
        self._finished = True
        self._emit(self._clock(), final=True)
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def format_heartbeat(ev: dict) -> str:
    """One human-readable line for a heartbeat event dict."""
    label = ev.get("label", "?")
    done = ev.get("done", 0)
    total = ev.get("total")
    rate = float(ev.get("rate", 0.0))
    parts = [f"[{label}]"]
    if total:
        pct = 100.0 * float(ev.get("frac", 0.0))
        parts.append(f"{done}/{total} ({pct:.1f}%)")
    else:
        parts.append(f"{done} done")
    parts.append(f"{rate:,.0f}/s")
    if "eta_s" in ev:
        parts.append(f"ETA {_fmt_secs(float(ev['eta_s']))}")
    if ev.get("final"):
        parts.append(f"finished in {_fmt_secs(float(ev.get('elapsed_s', 0)))}")
    return " ".join(parts)


def _fmt_secs(seconds: float) -> str:
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m" if hours else f"{minutes}m{secs:02d}s"


def iter_progress(
    directory: str | os.PathLike[str],
    follow: bool = False,
    poll_interval: float = 0.5,
    timeout: float | None = None,
) -> Iterator[dict]:
    """Yield heartbeat events from a run directory's ``progress.jsonl``.

    With ``follow=True`` this keeps polling for appended lines (like
    ``tail -f``) until a ``final`` heartbeat arrives, the optional
    ``timeout`` elapses, or the file never appears within the timeout.
    Partial trailing lines (a writer mid-flush) are retried, not lost.
    """
    path = Path(directory) / PROGRESS_NAME
    deadline = None if timeout is None else time.monotonic() + timeout
    while not path.exists():
        if not follow or (deadline is not None and time.monotonic() > deadline):
            return
        time.sleep(poll_interval)
    with open(path, encoding="utf-8") as fh:
        buffer = ""
        while True:
            chunk = fh.readline()
            if chunk:
                buffer += chunk
                if not buffer.endswith("\n"):
                    continue  # partial line: wait for the writer's flush
                line, buffer = buffer.strip(), ""
                if not line:
                    continue
                try:
                    ev = json.loads(line)
                except json.JSONDecodeError:
                    continue
                yield ev
                if ev.get("final"):
                    return
                continue
            if not follow:
                return
            if deadline is not None and time.monotonic() > deadline:
                return
            time.sleep(poll_interval)
