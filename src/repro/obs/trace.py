"""Nestable tracing spans with a zero-cost disabled path.

``with span("phase_space.build", n=12): ...`` times a region, records the
duration into the metrics registry under the span's name, and emits one
JSON-safe *span event* to every registered sink (the run-artifact writer
installs itself as one).  Tracing is off by default: :func:`span` then
returns a shared stateless no-op object, so instrumented hot paths pay a
single module-flag branch and nothing else — no allocation, no clock
reads, no registry traffic.

Optional memory tracing (``enable(trace_memory=True)`` or
``REPRO_TRACE_MEMORY=1``) starts :mod:`tracemalloc` and annotates each
span event with the traced-memory delta across the span and the global
traced peak.  The peak is process-wide (tracemalloc has one peak
counter), so for nested spans it bounds, rather than isolates, the
span's own allocation.

State is process-global and not thread-aware: spans on concurrent
threads will interleave depths.  That matches the rest of the library,
which is single-threaded numpy.
"""

from __future__ import annotations

import os
import time
import tracemalloc
from collections.abc import Callable, Mapping

from repro.obs.metrics import REGISTRY

__all__ = [
    "Span",
    "NOOP_SPAN",
    "span",
    "enable",
    "disable",
    "is_enabled",
    "enable_from_env",
    "add_sink",
    "remove_sink",
    "clear_sinks",
    "emit_event",
    "current_stack",
]

_enabled = False
_trace_memory = False
_stack: list[str] = []
#: per-open-frame accumulator of completed child wall time, parallel to
#: ``_stack`` — this is what lets each span event carry its *self* time
#: (duration minus traced children), the quantity profilers care about.
_child_acc: list[float] = []
_sinks: list[Callable[[dict], None]] = []

_FALSY = {"", "0", "false", "no", "off"}


def is_enabled() -> bool:
    """True iff spans are currently being recorded."""
    return _enabled


def enable(trace_memory: bool = False) -> None:
    """Turn tracing on (idempotent); optionally start tracemalloc too."""
    global _enabled, _trace_memory
    _enabled = True
    _trace_memory = bool(trace_memory)
    if _trace_memory and not tracemalloc.is_tracing():
        tracemalloc.start()


def disable() -> None:
    """Turn tracing off and clear the nesting stack.

    Metrics already accumulated stay in the registry; only future spans
    become no-ops.  Stops tracemalloc if :func:`enable` started it.
    """
    global _enabled, _trace_memory
    _enabled = False
    if _trace_memory and tracemalloc.is_tracing():
        tracemalloc.stop()
    _trace_memory = False
    _stack.clear()
    _child_acc.clear()


def current_stack() -> tuple[str, ...]:
    """Names of the currently open spans, outermost first.

    Inside a sink callback (which fires from ``Span.__exit__``) this is
    the *ancestor* path of the span being closed — the closing span has
    already been popped — which is exactly what a live profiler needs to
    key its call tree.
    """
    return tuple(_stack)


def enable_from_env(environ: Mapping[str, str] | None = None) -> bool:
    """Enable tracing when ``REPRO_TRACE`` is set truthy; return whether.

    ``REPRO_TRACE_MEMORY`` additionally turns on memory tracing.  Lets
    benchmark and cron runs opt in without plumbing flags.
    """
    env = os.environ if environ is None else environ
    if env.get("REPRO_TRACE", "").strip().lower() in _FALSY:
        return False
    enable(
        trace_memory=env.get("REPRO_TRACE_MEMORY", "").strip().lower()
        not in _FALSY
    )
    return True


def add_sink(sink: Callable[[dict], None]) -> None:
    """Register a callable receiving every span/event payload dict."""
    if sink not in _sinks:
        _sinks.append(sink)


def remove_sink(sink: Callable[[dict], None]) -> None:
    """Unregister a sink previously added (no-op if absent)."""
    try:
        _sinks.remove(sink)
    except ValueError:
        pass


def clear_sinks() -> None:
    """Drop all registered sinks (test teardown helper)."""
    _sinks.clear()


def emit_event(payload: dict) -> None:
    """Push one JSON-safe event dict to every registered sink."""
    for sink in list(_sinks):
        sink(payload)


class _NoopSpan:
    """Shared stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: object) -> "_NoopSpan":
        """Discard attributes (mirrors :meth:`Span.set`)."""
        return self


#: The singleton every disabled :func:`span` call returns.
NOOP_SPAN = _NoopSpan()


class Span:
    """A live traced region; use via :func:`span`, not directly."""

    __slots__ = (
        "name",
        "attrs",
        "depth",
        "t_start",
        "elapsed",
        "self_s",
        "calls",
        "_clock0",
        "_mem0",
    )

    def __init__(self, name: str, attrs: dict[str, object]):
        self.name = name
        self.attrs = attrs
        self.depth = 0
        self.t_start = 0.0
        self.elapsed = 0.0
        self.self_s = 0.0
        self.calls = 1
        self._clock0 = 0.0
        self._mem0 = 0

    def set(self, **attrs: object) -> "Span":
        """Attach result attributes (sizes, counts) before the span ends."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.depth = len(_stack)
        _stack.append(self.name)
        _child_acc.append(0.0)
        self.t_start = time.time()
        if _trace_memory:
            self._mem0 = tracemalloc.get_traced_memory()[0]
        self._clock0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = time.perf_counter() - self._clock0
        # Truncate, don't pop: survives nesting torn up by exceptions.
        if len(_stack) > self.depth:
            del _stack[self.depth :]
        child = _child_acc[self.depth] if len(_child_acc) > self.depth else 0.0
        del _child_acc[self.depth :]
        if _child_acc:
            _child_acc[-1] += self.elapsed
        self.self_s = max(0.0, self.elapsed - child)
        REGISTRY.timer(self.name).observe(self.elapsed)
        payload: dict[str, object] = {
            "event": "span",
            "name": self.name,
            "depth": self.depth,
            "t_start": self.t_start,
            "duration_s": self.elapsed,
            "self_s": self.self_s,
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if exc_type is not None:
            payload["error"] = exc_type.__name__
        if _trace_memory:
            current, peak = tracemalloc.get_traced_memory()
            payload["mem_delta_kb"] = round((current - self._mem0) / 1024, 3)
            payload["mem_peak_kb"] = round(peak / 1024, 3)
        emit_event(payload)
        return False


def span(name: str, **attrs: object):
    """A context manager tracing one named region.

    When tracing is disabled this returns :data:`NOOP_SPAN` — the same
    object every time, so the disabled path allocates nothing.  When
    enabled, entering starts the clock and exiting records the duration
    into ``REGISTRY.timer(name)`` and emits a span event carrying
    ``attrs`` (plus anything added via :meth:`Span.set`).
    """
    if not _enabled:
        return NOOP_SPAN
    return Span(name, attrs)
