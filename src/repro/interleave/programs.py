"""High-level statements vs. machine granularity.

Models the paper's Section 1.1 programs at both levels:

* **High level** — each statement is an atomic read-modify-write
  (``AtomicAdd``).  Sequential executions are permutations of whole
  statements; the *parallel* execution has every statement read the initial
  store simultaneously and the colliding writes resolved by one winner per
  variable (each possible winner is an outcome).
* **Machine level** — each statement compiles to ``LOAD; ADDI; STORE``, and
  the interleavings of those instructions are explored exhaustively.

:func:`granularity_report` packages the three outcome sets and the two
claims the paper makes: the parallel outcome escapes the high-level
interleavings but not the machine-level ones.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.interleave.explorer import count_interleavings, explore_outcomes
from repro.interleave.machine import AddI, Load, Store, Thread

__all__ = [
    "AtomicAdd",
    "compile_statement",
    "high_level_sequential_outcomes",
    "parallel_outcomes",
    "GranularityReport",
    "granularity_report",
    "tosic_agha_example",
]

Outcome = frozenset[tuple[str, int]]


@dataclass(frozen=True)
class AtomicAdd:
    """High-level statement ``var := var + amount``, atomic as a whole."""

    var: str
    amount: int

    def apply(self, store: dict[str, int]) -> None:
        if self.var not in store:
            raise KeyError(f"undefined shared variable {self.var!r}")
        store[self.var] += self.amount


def compile_statement(stmt: AtomicAdd, thread_name: str) -> Thread:
    """Compile one high-level statement to a LOAD/ADDI/STORE thread.

    The register is private to the thread, so the name is reused freely.
    """
    return Thread(
        name=thread_name,
        code=(
            Load("r", stmt.var),
            AddI("r", stmt.amount),
            Store(stmt.var, "r"),
        ),
    )


def high_level_sequential_outcomes(
    statements: Sequence[AtomicAdd], shared: Mapping[str, int]
) -> set[Outcome]:
    """Final stores over all permutations of atomic statements.

    For commutative ``AtomicAdd`` statements this is always a single
    outcome — which is exactly why the parallel result below is *not*
    obtainable at this granularity.
    """
    outcomes: set[Outcome] = set()
    for order in itertools.permutations(statements):
        store = dict(shared)
        for stmt in order:
            stmt.apply(store)
        outcomes.add(frozenset(store.items()))
    return outcomes


def parallel_outcomes(
    statements: Sequence[AtomicAdd], shared: Mapping[str, int]
) -> set[Outcome]:
    """Final stores when all statements execute logically simultaneously.

    Every statement reads the *initial* store; colliding writes to the same
    variable are resolved by one writer winning, and each choice of winners
    is a distinct outcome (this is the standard concurrent-write model the
    paper's example appeals to).
    """
    writes: dict[str, list[int]] = {}
    for stmt in statements:
        base = dict(shared)
        if stmt.var not in base:
            raise KeyError(f"undefined shared variable {stmt.var!r}")
        writes.setdefault(stmt.var, []).append(base[stmt.var] + stmt.amount)
    outcomes: set[Outcome] = set()
    variables = sorted(writes)
    for winners in itertools.product(*(writes[v] for v in variables)):
        store = dict(shared)
        for var, value in zip(variables, winners):
            store[var] = value
        outcomes.add(frozenset(store.items()))
    return outcomes


@dataclass(frozen=True)
class GranularityReport:
    """The Section 1.1 comparison, fully enumerated."""

    high_level_outcomes: frozenset[Outcome]
    parallel_outcomes_: frozenset[Outcome]
    machine_outcomes: frozenset[Outcome]
    machine_interleavings: int

    @property
    def parallel_escapes_high_level(self) -> bool:
        """Some parallel outcome is NOT a high-level sequential outcome."""
        return not self.parallel_outcomes_ <= self.high_level_outcomes

    @property
    def machine_captures_parallel(self) -> bool:
        """Every parallel outcome IS some machine-level interleaving outcome."""
        return self.parallel_outcomes_ <= self.machine_outcomes

    @property
    def machine_captures_high_level(self) -> bool:
        """Every high-level sequential outcome survives compilation."""
        return self.high_level_outcomes <= self.machine_outcomes


def granularity_report(
    statements: Sequence[AtomicAdd], shared: Mapping[str, int]
) -> GranularityReport:
    """Run the full three-way comparison for any statement set."""
    threads = [
        compile_statement(stmt, f"T{k}") for k, stmt in enumerate(statements)
    ]
    return GranularityReport(
        high_level_outcomes=frozenset(
            high_level_sequential_outcomes(statements, shared)
        ),
        parallel_outcomes_=frozenset(parallel_outcomes(statements, shared)),
        machine_outcomes=frozenset(explore_outcomes(threads, shared)),
        machine_interleavings=count_interleavings(threads),
    )


def tosic_agha_example() -> GranularityReport:
    """The paper's exact example: ``x += 1  ||  x += 2`` from ``x = 0``.

    High-level sequential: always ``x = 3``.  Parallel: ``x in {1, 2}``.
    Machine level: ``x in {1, 2, 3}`` — granularity refinement restores the
    interleaving semantics.
    """
    return granularity_report(
        [AtomicAdd("x", 1), AtomicAdd("x", 2)], {"x": 0}
    )
