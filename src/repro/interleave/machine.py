"""A minimal shared-memory register machine.

Threads are straight-line instruction lists over private registers and
shared variables; the only instructions are the three the paper's Section
1.1 example needs:

* ``Load(reg, var)``   — read a shared variable into a private register;
* ``AddI(reg, const)`` — add an immediate to a private register;
* ``Store(var, reg)``  — write a private register to a shared variable.

Each instruction is atomic; an *interleaving* is any merge of the threads'
instruction streams.  The machine is deliberately tiny — its whole point is
to make "granularity of the basic operations" a formal, executable knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

__all__ = ["Load", "AddI", "Store", "Instruction", "Thread", "MachineState",
           "run_schedule"]


@dataclass(frozen=True)
class Load:
    """``reg := shared[var]``"""

    reg: str
    var: str


@dataclass(frozen=True)
class AddI:
    """``reg := reg + const``"""

    reg: str
    const: int


@dataclass(frozen=True)
class Store:
    """``shared[var] := reg``"""

    var: str
    reg: str


Instruction = Load | AddI | Store


@dataclass(frozen=True)
class Thread:
    """A named straight-line program."""

    name: str
    code: tuple[Instruction, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "code", tuple(self.code))

    def __len__(self) -> int:
        return len(self.code)


@dataclass
class MachineState:
    """Shared memory plus per-thread registers and program counters."""

    shared: dict[str, int]
    registers: dict[str, dict[str, int]]
    pcs: dict[str, int]

    @classmethod
    def initial(
        cls, threads: Sequence[Thread], shared: Mapping[str, int]
    ) -> "MachineState":
        names = [t.name for t in threads]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate thread names in {names}")
        return cls(
            shared=dict(shared),
            registers={t.name: {} for t in threads},
            pcs={t.name: 0 for t in threads},
        )

    def snapshot(self) -> tuple:
        """Hashable key for memoised exploration."""
        return (
            tuple(sorted(self.shared.items())),
            tuple(
                (name, tuple(sorted(regs.items())))
                for name, regs in sorted(self.registers.items())
            ),
            tuple(sorted(self.pcs.items())),
        )

    def copy(self) -> "MachineState":
        return MachineState(
            shared=dict(self.shared),
            registers={k: dict(v) for k, v in self.registers.items()},
            pcs=dict(self.pcs),
        )


def _execute(state: MachineState, thread: Thread) -> None:
    """Run the next instruction of ``thread`` in place."""
    pc = state.pcs[thread.name]
    if pc >= len(thread.code):
        raise IndexError(f"thread {thread.name} has terminated")
    instr = thread.code[pc]
    regs = state.registers[thread.name]
    if isinstance(instr, Load):
        if instr.var not in state.shared:
            raise KeyError(f"undefined shared variable {instr.var!r}")
        regs[instr.reg] = state.shared[instr.var]
    elif isinstance(instr, AddI):
        if instr.reg not in regs:
            raise KeyError(f"register {instr.reg!r} used before load")
        regs[instr.reg] += instr.const
    elif isinstance(instr, Store):
        if instr.reg not in regs:
            raise KeyError(f"register {instr.reg!r} stored before load")
        state.shared[instr.var] = regs[instr.reg]
    else:  # pragma: no cover - exhaustive over the union type
        raise TypeError(f"unknown instruction {instr!r}")
    state.pcs[thread.name] = pc + 1


def run_schedule(
    threads: Sequence[Thread],
    schedule: Sequence[str],
    shared: Mapping[str, int],
) -> dict[str, int]:
    """Execute one explicit interleaving and return final shared memory.

    ``schedule`` names, in order, the thread executing each step; it must
    run every thread to completion (a complete merge of the streams).
    """
    by_name = {t.name: t for t in threads}
    state = MachineState.initial(threads, shared)
    for name in schedule:
        if name not in by_name:
            raise KeyError(f"unknown thread {name!r} in schedule")
        _execute(state, by_name[name])
    for t in threads:
        if state.pcs[t.name] != len(t.code):
            raise ValueError(
                f"schedule leaves thread {t.name} at pc {state.pcs[t.name]} "
                f"of {len(t.code)}"
            )
    return state.shared
