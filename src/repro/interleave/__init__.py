"""The interleaving semantics of concurrency, as runnable machinery.

Section 1.1 of the paper motivates everything with a classic exercise:
``x += 1`` and ``x += 2`` executed in parallel can produce a result (both
read 0, writes collide) that no *high-level* sequential interleaving yields,
yet refining granularity to machine instructions (LOAD / ADDI / STORE)
recovers every parallel outcome as some interleaving.  This package builds
that argument concretely: a tiny shared-memory register machine, exhaustive
interleaving exploration at both granularities, and the paper's example
packaged as :func:`tosic_agha_example`.
"""

from repro.interleave.machine import (
    AddI,
    Load,
    MachineState,
    Store,
    Thread,
    run_schedule,
)
from repro.interleave.explorer import (
    count_interleavings,
    explore_outcomes,
    outcome_schedules,
)
from repro.interleave.programs import (
    AtomicAdd,
    GranularityReport,
    compile_statement,
    granularity_report,
    high_level_sequential_outcomes,
    parallel_outcomes,
    tosic_agha_example,
)

__all__ = [
    "Load",
    "AddI",
    "Store",
    "Thread",
    "MachineState",
    "run_schedule",
    "explore_outcomes",
    "outcome_schedules",
    "count_interleavings",
    "AtomicAdd",
    "compile_statement",
    "parallel_outcomes",
    "high_level_sequential_outcomes",
    "granularity_report",
    "GranularityReport",
    "tosic_agha_example",
]
