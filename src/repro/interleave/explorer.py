"""Exhaustive interleaving exploration.

Enumerates every merge of the threads' instruction streams (memoising on
machine state so the search is over *states*, not the exponentially larger
set of schedules) and reports the set of reachable final shared memories.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from repro.core.budget import Budget, BudgetExceeded, Partial, resolve_budget
from repro.interleave.machine import MachineState, Thread, _execute
from repro.obs import span

__all__ = ["explore_outcomes", "outcome_schedules", "count_interleavings"]


def count_interleavings(threads: Sequence[Thread]) -> int:
    """Number of distinct complete interleavings (the multinomial coefficient)."""
    lengths = [len(t) for t in threads]
    total = math.factorial(sum(lengths))
    for length in lengths:
        total //= math.factorial(length)
    return total


def _check_dfs_budget(budget: Budget, seen: set, outcomes) -> None:
    """Poll ``budget`` at a DFS expansion; trip with the progress snapshot."""
    reason = budget.over()
    if reason is not None:
        raise BudgetExceeded(
            reason,
            partial=Partial.truncated(
                reason,
                explored=len(seen),
                stats={"states_seen": len(seen), "outcomes_so_far": len(outcomes)},
            ),
        )


def explore_outcomes(
    threads: Sequence[Thread],
    shared: Mapping[str, int],
    budget: Budget | None = None,
) -> set[frozenset[tuple[str, int]]]:
    """All final shared memories reachable by *some* interleaving.

    Each outcome is a frozenset of ``(variable, value)`` items.  The search
    is a DFS over machine states with memoisation, so identical
    intermediate states reached by different schedules are expanded once.
    The budget (explicit or ambient) is polled at every expansion; each
    memoised state charges one state unit.
    """
    budget = resolve_budget(budget)
    outcomes: set[frozenset[tuple[str, int]]] = set()
    seen: set[tuple] = set()

    def dfs(state: MachineState) -> None:
        key = state.snapshot()
        if key in seen:
            return
        _check_dfs_budget(budget, seen, outcomes)
        seen.add(key)
        budget.charge(states=1)
        runnable = [t for t in threads if state.pcs[t.name] < len(t.code)]
        if not runnable:
            outcomes.add(frozenset(state.shared.items()))
            return
        for t in runnable:
            nxt = state.copy()
            _execute(nxt, t)
            dfs(nxt)

    with span("interleave.explore", threads=len(threads)) as sp:
        dfs(MachineState.initial(threads, shared))
        sp.set(states=len(seen), outcomes=len(outcomes))
    return outcomes


def outcome_schedules(
    threads: Sequence[Thread],
    shared: Mapping[str, int],
    budget: Budget | None = None,
) -> dict[frozenset[tuple[str, int]], tuple[str, ...]]:
    """One witness schedule per reachable outcome.

    Returns a mapping from each final shared memory to an explicit
    interleaving (sequence of thread names) producing it — the
    constructive half of the paper's granularity argument ("there
    certainly exists a choice of a sequential interleaving ...").
    Governed exactly like :func:`explore_outcomes`.
    """
    budget = resolve_budget(budget)
    witnesses: dict[frozenset[tuple[str, int]], tuple[str, ...]] = {}
    seen: set[tuple] = set()

    def dfs(state: MachineState, trace: tuple[str, ...]) -> None:
        key = state.snapshot()
        if key in seen:
            return
        _check_dfs_budget(budget, seen, witnesses)
        seen.add(key)
        budget.charge(states=1)
        runnable = [t for t in threads if state.pcs[t.name] < len(t.code)]
        if not runnable:
            witnesses.setdefault(frozenset(state.shared.items()), trace)
            return
        for t in runnable:
            nxt = state.copy()
            _execute(nxt, t)
            dfs(nxt, trace + (t.name,))

    with span("interleave.witnesses", threads=len(threads)) as sp:
        dfs(MachineState.initial(threads, shared), ())
        sp.set(states=len(seen), outcomes=len(witnesses))
    return witnesses
