"""Boolean-function toolkit.

The paper's results hinge on structural properties of local update rules:
*symmetry* (totalistic rules), *monotonicity*, and *linear-threshold
representability*.  :class:`BooleanFunction` wraps a truth table and decides
each property; the enumeration helpers generate exactly the rule classes the
theorems quantify over (e.g. Theorem 1's "all monotone symmetric Boolean
rules").

Input convention: a ``k``-ary function's input ``j`` is bit ``j`` of the
truth-table index, matching :func:`repro.util.bitops.bits_to_int`.  For 1-D
windows this means input 0 is the leftmost cell of the window.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from functools import cached_property

import numpy as np
from scipy.optimize import linprog

from repro.util.bitops import popcount
from repro.util.validation import check_positive

__all__ = [
    "BooleanFunction",
    "all_boolean_functions",
    "symmetric_functions",
    "monotone_symmetric_functions",
    "majority_function",
    "threshold_count_function",
    "xor_function",
    "wolfram_table",
]

_MAX_ARITY = 20  # 2**20-entry tables; beyond this the dense table explodes


class BooleanFunction:
    """A Boolean function of fixed arity, stored as a dense truth table.

    >>> f = BooleanFunction([0, 0, 0, 1])   # AND of two inputs
    >>> f.evaluate([1, 1])
    1
    >>> f.is_monotone() and f.is_symmetric()
    True
    """

    def __init__(self, table: Sequence[int] | np.ndarray):
        tab = np.asarray(table, dtype=np.uint8).ravel()
        size = tab.size
        if size == 0 or size & (size - 1):
            raise ValueError(f"truth table length must be a power of two, got {size}")
        if not np.all(tab <= 1):
            raise ValueError("truth table entries must be 0 or 1")
        self.table = tab
        self.table.setflags(write=False)
        self.arity = int(size).bit_length() - 1
        if self.arity > _MAX_ARITY:
            raise ValueError(f"arity {self.arity} too large for a dense table")

    # -- evaluation --------------------------------------------------------

    def evaluate(self, inputs: Sequence[int]) -> int:
        """Apply the function to a bit sequence of length ``arity``."""
        if len(inputs) != self.arity:
            raise ValueError(
                f"expected {self.arity} inputs, got {len(inputs)}"
            )
        code = 0
        for j, b in enumerate(inputs):
            if b:
                code |= 1 << j
        return int(self.table[code])

    def __call__(self, *inputs: int) -> int:
        return self.evaluate(inputs)

    def apply_codes(self, codes: np.ndarray) -> np.ndarray:
        """Vectorized lookup by packed input code."""
        return self.table[codes]

    # -- structural properties ----------------------------------------------

    @cached_property
    def _counts(self) -> np.ndarray:
        idx = np.arange(self.table.size, dtype=np.uint32)
        counts = np.zeros(self.table.size, dtype=np.int64)
        for j in range(self.arity):
            counts += (idx >> j) & 1
        return counts

    def is_constant(self) -> bool:
        """True for the two constant functions."""
        return bool(np.all(self.table == self.table[0]))

    def is_symmetric(self) -> bool:
        """True iff the value depends only on the number of ones.

        Symmetric rules are exactly the *totalistic* CA rules of the paper.
        """
        for c in range(self.arity + 1):
            vals = self.table[self._counts == c]
            if vals.size and not np.all(vals == vals[0]):
                return False
        return True

    def is_monotone(self) -> bool:
        """True iff ``x <= y`` (bitwise) implies ``f(x) <= f(y)``.

        Checked over all covering pairs, which suffices by transitivity.
        """
        size = self.table.size
        for x in range(size):
            fx = self.table[x]
            for j in range(self.arity):
                if not (x >> j) & 1 and fx > self.table[x | (1 << j)]:
                    return False
        return True

    def count_profile(self) -> tuple[int, ...]:
        """For symmetric functions: output per ones-count ``0..arity``."""
        if not self.is_symmetric():
            raise ValueError("count_profile() requires a symmetric function")
        out = []
        for c in range(self.arity + 1):
            vals = self.table[self._counts == c]
            out.append(int(vals[0]))
        return tuple(out)

    def as_count_threshold(self) -> int | None:
        """If monotone symmetric, the threshold ``T`` with f=1 iff count>=T.

        Every monotone symmetric Boolean function is a count threshold:
        ``T = 0`` is the constant 1, ``T = arity + 1`` the constant 0.
        Returns ``None`` for functions outside the class.
        """
        if not self.is_symmetric():
            return None
        profile = self.count_profile()
        # Monotone symmetric <=> profile is 0...0 1...1.
        ones_started = False
        threshold = self.arity + 1
        for c, v in enumerate(profile):
            if v and not ones_started:
                ones_started = True
                threshold = c
            elif not v and ones_started:
                return None
        return threshold

    def threshold_representation(
        self,
    ) -> tuple[np.ndarray, float] | None:
        """Weights/threshold realising f as a linear threshold function.

        Solves the separation LP: find ``w, theta`` with ``w.x >= theta``
        whenever ``f(x) = 1`` and ``w.x <= theta - 1`` whenever ``f(x) = 0``
        (the unit margin is without loss of generality by scaling).  Returns
        ``None`` when the LP is infeasible — i.e. the function is *not* a
        linear threshold function (e.g. XOR).
        """
        k = self.arity
        size = self.table.size
        # Variables: w_0..w_{k-1}, theta.  Constraints in A_ub @ v <= b_ub.
        rows, rhs = [], []
        idx = np.arange(size)
        bits = ((idx[:, None] >> np.arange(k)) & 1).astype(float)
        for x in range(size):
            if self.table[x]:
                # -(w.x) + theta <= 0
                rows.append(np.concatenate([-bits[x], [1.0]]))
                rhs.append(0.0)
            else:
                # w.x - theta <= -1
                rows.append(np.concatenate([bits[x], [-1.0]]))
                rhs.append(-1.0)
        result = linprog(
            c=np.zeros(k + 1),
            A_ub=np.array(rows),
            b_ub=np.array(rhs),
            bounds=[(None, None)] * (k + 1),
            method="highs",
        )
        if not result.success:
            return None
        weights = result.x[:k]
        theta = float(result.x[k])
        return weights, theta

    def is_linear_threshold(self) -> bool:
        """True iff some weight vector and threshold realise the function."""
        return self.threshold_representation() is not None

    def preserves_quiescence(self) -> bool:
        """True iff the all-zero input maps to 0 (Definition 1's quiescent state)."""
        return int(self.table[0]) == 0

    # -- algebra -------------------------------------------------------------

    def negate(self) -> "BooleanFunction":
        """Pointwise complement."""
        return BooleanFunction(1 - self.table)

    def dual(self) -> "BooleanFunction":
        """The dual ``x -> not f(not x)``; self-dual iff equal to self."""
        size = self.table.size
        flipped = np.empty_like(self.table)
        for x in range(size):
            flipped[x] = 1 - self.table[(size - 1) ^ x]
        return BooleanFunction(flipped)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BooleanFunction):
            return NotImplemented
        return self.arity == other.arity and bool(np.all(self.table == other.table))

    def __hash__(self) -> int:
        return hash((self.arity, self.table.tobytes()))

    def __repr__(self) -> str:
        bits = "".join(map(str, self.table.tolist()))
        if len(bits) > 16:
            bits = bits[:16] + "..."
        return f"BooleanFunction(arity={self.arity}, table={bits})"


# -- enumeration ------------------------------------------------------------


def all_boolean_functions(arity: int) -> Iterator[BooleanFunction]:
    """All ``2**(2**arity)`` Boolean functions; sensible only for arity <= 4."""
    check_positive(arity, "arity")
    if arity > 4:
        raise ValueError(f"2**(2**{arity}) functions is too many to enumerate")
    size = 1 << arity
    for code in range(1 << size):
        table = [(code >> i) & 1 for i in range(size)]
        yield BooleanFunction(table)


def symmetric_functions(arity: int) -> Iterator[BooleanFunction]:
    """All ``2**(arity+1)`` symmetric (totalistic) functions of given arity."""
    check_positive(arity, "arity")
    idx = np.arange(1 << arity, dtype=np.uint32)
    counts = np.zeros(1 << arity, dtype=np.int64)
    for j in range(arity):
        counts += (idx >> j) & 1
    for code in range(1 << (arity + 1)):
        profile = np.array([(code >> c) & 1 for c in range(arity + 1)], dtype=np.uint8)
        yield BooleanFunction(profile[counts])


def threshold_count_function(arity: int, threshold: int) -> BooleanFunction:
    """The monotone symmetric function ``f(x) = [count(x) >= threshold]``.

    ``threshold = 0`` gives the constant 1; ``threshold = arity + 1`` the
    constant 0.
    """
    check_positive(arity, "arity")
    if not 0 <= threshold <= arity + 1:
        raise ValueError(
            f"threshold must be in 0..{arity + 1}, got {threshold}"
        )
    idx = np.arange(1 << arity, dtype=np.uint32)
    counts = np.zeros(1 << arity, dtype=np.int64)
    for j in range(arity):
        counts += (idx >> j) & 1
    return BooleanFunction((counts >= threshold).astype(np.uint8))


def monotone_symmetric_functions(arity: int) -> Iterator[BooleanFunction]:
    """Exactly the ``arity + 2`` monotone symmetric functions of given arity.

    These are the count-threshold functions — the class Theorem 1
    quantifies over.
    """
    for threshold in range(arity + 2):
        yield threshold_count_function(arity, threshold)


def majority_function(arity: int) -> BooleanFunction:
    """Strict majority: fires iff more than half the inputs are 1.

    For odd arity (the paper's with-memory windows) there are no ties and
    this is *the* MAJORITY rule; for even arity ties resolve to 0.
    """
    return threshold_count_function(arity, arity // 2 + 1)


def xor_function(arity: int) -> BooleanFunction:
    """Parity of the inputs — symmetric but *not* monotone.

    The paper's Section 3.1 warm-up example rule.
    """
    check_positive(arity, "arity")
    idx = np.arange(1 << arity, dtype=np.uint32)
    counts = np.zeros(1 << arity, dtype=np.int64)
    for j in range(arity):
        counts += (idx >> j) & 1
    return BooleanFunction((counts % 2).astype(np.uint8))


def wolfram_table(rule_number: int) -> BooleanFunction:
    """Elementary (radius-1, with-memory) CA rule in Wolfram numbering.

    Wolfram indexes neighborhoods ``(left, self, right)`` as the big-endian
    value ``4*left + 2*self + right``; our tables index inputs little-endian
    (input 0 = leftmost).  This is the one place the conversion happens.
    """
    if not 0 <= rule_number <= 255:
        raise ValueError(f"Wolfram rule number must be in 0..255, got {rule_number}")
    table = np.zeros(8, dtype=np.uint8)
    for code in range(8):
        left, centre, right = code & 1, (code >> 1) & 1, (code >> 2) & 1
        wolfram_index = 4 * left + 2 * centre + right
        table[code] = (rule_number >> wolfram_index) & 1
    return BooleanFunction(table)


def popcount_of_index(x: int) -> int:
    """Popcount helper re-exported for symmetry with the table indexing."""
    return popcount(x)
