"""Update schedules: who updates when.

The paper's comparison is between two disciplines — all nodes at once
(classical CA) and one node at a time in arbitrary order (SCA).  Both are
special cases of *block-sequential* scheduling, where each macro-step
simultaneously updates one block of nodes.  Every schedule here therefore
yields a stream of **blocks** (tuples of node indices updated together):

* :class:`Synchronous` — one block containing every node (the classical CA);
* :class:`FixedPermutation`, :class:`FixedWord`, :class:`RandomPermutationSweeps`,
  :class:`RandomSingleNode` — singleton blocks (SCA under various orders);
* :class:`BlockSequential` — arbitrary ordered partitions, the bridge
  between the two extremes.

This uniform shape lets one evolution engine (:mod:`repro.core.evolution`)
run every dynamics in the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator, Sequence

import numpy as np

from repro.util.orders import is_permutation_word
from repro.util.validation import check_positive

__all__ = [
    "UpdateSchedule",
    "Synchronous",
    "FixedPermutation",
    "FixedWord",
    "BlockSequential",
    "RandomPermutationSweeps",
    "RandomSingleNode",
    "AlphaAsynchronous",
]


class UpdateSchedule(ABC):
    """A (possibly randomized) infinite stream of update blocks."""

    @abstractmethod
    def blocks(self, n: int) -> Iterator[tuple[int, ...]]:
        """Infinite iterator of blocks for an ``n``-node automaton."""

    @property
    def is_sequential(self) -> bool:
        """True if every block is a singleton (a genuine SCA schedule)."""
        return True

    def fairness_bound(self, n: int) -> int | None:
        """A B such that every node updates within any B consecutive blocks,
        or None if no deterministic bound exists."""
        return None

    def describe(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


class Synchronous(UpdateSchedule):
    """The classical CA discipline: every node, every step, simultaneously."""

    def blocks(self, n: int) -> Iterator[tuple[int, ...]]:
        block = tuple(range(n))
        while True:
            yield block

    @property
    def is_sequential(self) -> bool:
        return False

    def fairness_bound(self, n: int) -> int:
        return 1


class FixedPermutation(UpdateSchedule):
    """SCA schedule repeating one permutation of the nodes forever.

    ``perm=None`` uses the identity order ``0, 1, ..., n-1``.
    """

    def __init__(self, perm: Sequence[int] | None = None):
        self.perm = None if perm is None else tuple(int(i) for i in perm)

    def blocks(self, n: int) -> Iterator[tuple[int, ...]]:
        order = tuple(range(n)) if self.perm is None else self.perm
        if not is_permutation_word(order, n):
            raise ValueError(f"{order} is not a permutation of 0..{n - 1}")
        while True:
            for i in order:
                yield (i,)

    def fairness_bound(self, n: int) -> int:
        return 2 * n - 1

    def describe(self) -> str:
        return f"FixedPermutation({self.perm if self.perm is not None else 'identity'})"


class FixedWord(UpdateSchedule):
    """SCA schedule repeating an arbitrary finite word of node indices.

    The word need not be a permutation — the paper's update orders are
    "arbitrary sequences of node indices, not necessarily permutations".
    An unfair word (one missing some node) is allowed; convergence theorems
    then do not apply, which the fairness experiments exploit.
    """

    def __init__(self, word: Sequence[int]):
        self.word = tuple(int(i) for i in word)
        if not self.word:
            raise ValueError("schedule word must be non-empty")

    def blocks(self, n: int) -> Iterator[tuple[int, ...]]:
        for i in self.word:
            if not 0 <= i < n:
                raise ValueError(f"word letter {i} out of range for n={n}")
        while True:
            for i in self.word:
                yield (i,)

    def fairness_bound(self, n: int) -> int | None:
        from repro.util.orders import fairness_bound

        return fairness_bound(self.word, n)

    def describe(self) -> str:
        return f"FixedWord({self.word})"


class BlockSequential(UpdateSchedule):
    """Repeats an ordered partition of the nodes, one block at a time.

    ``BlockSequential([all nodes])`` is synchronous; singleton blocks give a
    fixed-permutation SCA; anything in between interpolates.  Blocks must
    partition ``0..n-1``.
    """

    def __init__(self, partition: Sequence[Sequence[int]]):
        self.partition = tuple(tuple(int(i) for i in block) for block in partition)
        if not self.partition or any(not b for b in self.partition):
            raise ValueError("partition must consist of non-empty blocks")

    def blocks(self, n: int) -> Iterator[tuple[int, ...]]:
        flat = sorted(i for block in self.partition for i in block)
        if flat != list(range(n)):
            raise ValueError(
                f"blocks {self.partition} do not partition 0..{n - 1}"
            )
        while True:
            yield from self.partition

    @property
    def is_sequential(self) -> bool:
        return all(len(b) == 1 for b in self.partition)

    def fairness_bound(self, n: int) -> int:
        return 2 * len(self.partition) - 1

    def describe(self) -> str:
        return f"BlockSequential({self.partition})"


class RandomPermutationSweeps(UpdateSchedule):
    """SCA schedule: an endless stream of fresh uniformly random sweeps.

    Deterministically fair (every node appears in every sweep) yet
    order-randomized — the canonical "random order" dynamics of the
    asynchronous-CA literature.
    """

    def __init__(self, seed: int | np.random.Generator = 0):
        self._seed = seed

    def _rng(self) -> np.random.Generator:
        if isinstance(self._seed, np.random.Generator):
            return self._seed
        return np.random.default_rng(self._seed)

    def blocks(self, n: int) -> Iterator[tuple[int, ...]]:
        check_positive(n, "n")
        rng = self._rng()
        while True:
            for i in rng.permutation(n).tolist():
                yield (int(i),)

    def fairness_bound(self, n: int) -> int:
        return 2 * n - 1

    def describe(self) -> str:
        return f"RandomPermutationSweeps(seed={self._seed})"


class RandomSingleNode(UpdateSchedule):
    """SCA schedule of i.i.d. uniform node picks (Ingerson–Buvel asynchrony).

    Fair with probability one but not B-fair for any fixed B, so the
    deterministic convergence bound does not apply — only almost-sure
    convergence, which the statistical experiments confirm.
    """

    def __init__(self, seed: int | np.random.Generator = 0):
        self._seed = seed

    def blocks(self, n: int) -> Iterator[tuple[int, ...]]:
        check_positive(n, "n")
        rng = (
            self._seed
            if isinstance(self._seed, np.random.Generator)
            else np.random.default_rng(self._seed)
        )
        while True:
            yield (int(rng.integers(n)),)

    def describe(self) -> str:
        return f"RandomSingleNode(seed={self._seed})"


class AlphaAsynchronous(UpdateSchedule):
    """Alpha-asynchronous updating: each step, every node fires
    independently with probability ``alpha``.

    The standard dial between the paper's two extremes (Fatès'
    alpha-asynchronism): ``alpha = 1`` is the classical synchronous CA,
    small ``alpha`` approaches fully sequential behaviour.  Steps may
    update any subset of nodes simultaneously — including none (an empty
    step is skipped and re-drawn so the stream always yields non-empty
    blocks).
    """

    def __init__(self, alpha: float, seed: int | np.random.Generator = 0):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._seed = seed

    def blocks(self, n: int) -> Iterator[tuple[int, ...]]:
        check_positive(n, "n")
        rng = (
            self._seed
            if isinstance(self._seed, np.random.Generator)
            else np.random.default_rng(self._seed)
        )
        while True:
            fire = np.flatnonzero(rng.random(n) < self.alpha)
            if fire.size:
                yield tuple(int(i) for i in fire)

    @property
    def is_sequential(self) -> bool:
        return False

    def describe(self) -> str:
        return f"AlphaAsynchronous(alpha={self.alpha}, seed={self._seed})"
