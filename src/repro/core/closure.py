"""Transitive closure of sequential phase spaces, as packed bitsets.

The interleaving audit asks many reachability queries against the same
nondeterministic transition graph — per-source BFS repeats work
quadratically.  This module computes the *full* reachability relation
once: condense the change-edge digraph by strongly connected components
(configurations in one SCC reach exactly the same set), process the
condensation in reverse topological order, and accumulate per-component
reachable sets as packed ``uint64`` bitsets — the union of two reachable
sets is then a vectorized OR over ``2**n / 64`` words.

Memory is ``n_components * 2**n / 8`` bytes: ~2 MB at n = 12, ~32 MB at
n = 14 (the enforced cap).  Above that, fall back to per-query BFS
(:meth:`repro.core.nondet.NondetPhaseSpace.reachable_from`).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cycles import scc_labels
from repro.core.nondet import NondetPhaseSpace

__all__ = ["ReachabilityClosure"]

_MAX_NODES = 14  # 2**14 configs -> 32 MB of bitsets; quadratic beyond


class ReachabilityClosure:
    """All-pairs reachability over a sequential phase space.

    ``closure.can_reach(a, b)`` answers "does some interleaving drive
    ``a`` to ``b``" in O(1) after the one-time construction.
    """

    def __init__(self, nps: NondetPhaseSpace):
        if nps.n_nodes > _MAX_NODES:
            raise ValueError(
                f"closure over 2**{nps.n_nodes} configurations needs "
                f"{(1 << (2 * nps.n_nodes)) // 8 / 1e9:.1f}+ GB; "
                f"use per-query BFS beyond n = {_MAX_NODES}"
            )
        self.nps = nps
        size = nps.size
        srcs, dsts, _ = nps._change_edges

        n_comp, labels = scc_labels(srcs, dsts, size)
        self.labels = labels
        self.n_components = n_comp

        # Condensation edges (deduplicated, self-edges dropped).
        if srcs.size:
            comp_edges = np.unique(
                np.stack([labels[srcs], labels[dsts]], axis=1), axis=0
            )
            comp_edges = comp_edges[comp_edges[:, 0] != comp_edges[:, 1]]
        else:
            comp_edges = np.empty((0, 2), dtype=np.int64)

        # Kahn topological order of the condensation.
        indeg = np.zeros(n_comp, dtype=np.int64)
        np.add.at(indeg, comp_edges[:, 1], 1)
        adj_order = np.argsort(comp_edges[:, 0], kind="stable")
        sorted_edges = comp_edges[adj_order]
        starts = np.searchsorted(
            sorted_edges[:, 0], np.arange(n_comp + 1)
        )
        topo: list[int] = []
        queue = list(np.flatnonzero(indeg == 0))
        while queue:
            v = int(queue.pop())
            topo.append(v)
            for k in range(starts[v], starts[v + 1]):
                w = int(sorted_edges[k, 1])
                indeg[w] -= 1
                if indeg[w] == 0:
                    queue.append(w)
        if len(topo) != n_comp:  # pragma: no cover - SCC condensation is a DAG
            raise AssertionError("condensation is not acyclic")

        # Membership bitsets: bit c of row k <=> config c in component k.
        words = (size + 63) // 64
        bits = np.zeros((n_comp, words), dtype=np.uint64)
        codes = np.arange(size, dtype=np.int64)
        np.bitwise_or.at(
            bits,
            (labels[codes], codes >> 6),
            np.uint64(1) << (codes & 63).astype(np.uint64),
        )

        # Reverse topological accumulation: R(v) = members(v) | U R(succ).
        for v in reversed(topo):
            for k in range(starts[v], starts[v + 1]):
                bits[v] |= bits[int(sorted_edges[k, 1])]
        self._bits = bits

    # -- queries -----------------------------------------------------------------

    def reachable_row(self, code: int) -> np.ndarray:
        """Packed bitset of configurations reachable from ``code``."""
        return self._bits[int(self.labels[code])]

    def can_reach(self, source: int, target: int) -> bool:
        """True iff some update sequence drives ``source`` to ``target``."""
        row = self.reachable_row(source)
        return bool(
            (row[target >> 6] >> np.uint64(target & 63)) & np.uint64(1)
        )

    def can_reach_all(self, source: int, targets: list[int]) -> bool:
        """True iff every target is reachable from ``source``."""
        row = self.reachable_row(source)
        return all(
            (row[t >> 6] >> np.uint64(t & 63)) & np.uint64(1) for t in targets
        )

    def reachable_count(self, code: int) -> int:
        """Number of configurations reachable from ``code`` (incl. itself)."""
        row = self.reachable_row(code)
        return int(np.bitwise_count(row).sum()) if hasattr(np, "bitwise_count") \
            else int(sum(bin(int(w)).count("1") for w in row))
