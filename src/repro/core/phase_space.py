"""Deterministic phase spaces and the FP/CC/TC classification.

Definition 3 of the paper classifies the configurations of a deterministic
automaton into fixed points (FP), cycle configurations (CC) and transient
configurations (TC) — and observes that determinism makes the three classes
a partition.  :class:`PhaseSpace` materialises the full phase space of a
parallel CA (the functional graph of its global map over all ``2**n``
configurations) and answers every question the paper asks of it: cycles and
their lengths, attractors and basins, unreachable (Garden-of-Eden)
configurations, transient depths.
"""

from __future__ import annotations

from enum import IntEnum
from functools import cached_property

import networkx as nx
import numpy as np

from repro.analysis.cycles import FunctionalGraph
from repro.core.automaton import CellularAutomaton
from repro.obs import span
from repro.util.bitops import config_str

__all__ = ["ConfigClass", "PhaseSpace"]


class ConfigClass(IntEnum):
    """Definition 3's configuration types."""

    FIXED_POINT = 0
    CYCLE = 1  # proper cycle configuration, period >= 2
    TRANSIENT = 2


class PhaseSpace:
    """The full phase space of a deterministic automaton.

    Construct with :meth:`from_automaton` (which computes the global map
    vectorized over all configurations) or directly from a packed successor
    array.
    """

    def __init__(self, succ: np.ndarray, n_nodes: int):
        succ = np.asarray(succ, dtype=np.int64).ravel()
        if succ.size != 1 << n_nodes:
            raise ValueError(
                f"successor array has {succ.size} entries, expected 2**{n_nodes}"
            )
        self.succ = succ
        self.n_nodes = n_nodes
        self.graph = FunctionalGraph(succ)

    @classmethod
    def from_automaton(cls, ca: CellularAutomaton) -> "PhaseSpace":
        """Build the synchronous (parallel) phase space of an automaton."""
        with span("phase_space.build", n=ca.n, configs=1 << ca.n):
            with span("phase_space.global_map", n=ca.n):
                succ = ca.step_all()
            return cls(succ, ca.n)

    @property
    def size(self) -> int:
        """Number of configurations (``2**n``)."""
        return self.succ.size

    # -- Definition 3 ----------------------------------------------------------

    @cached_property
    def classes(self) -> np.ndarray:
        """Per-configuration :class:`ConfigClass`, as an int8 array."""
        out = np.full(self.size, int(ConfigClass.TRANSIENT), dtype=np.int8)
        out[self.graph.on_cycle] = int(ConfigClass.CYCLE)
        out[self.graph.fixed_points] = int(ConfigClass.FIXED_POINT)
        return out

    def classify(self, code: int) -> ConfigClass:
        """The class of one packed configuration."""
        return ConfigClass(int(self.classes[code]))

    @property
    def fixed_points(self) -> np.ndarray:
        """Packed codes of all fixed points."""
        return self.graph.fixed_points

    @property
    def cycle_configs(self) -> np.ndarray:
        """Packed codes of all proper-cycle configurations (period >= 2)."""
        return np.flatnonzero(self.classes == int(ConfigClass.CYCLE))

    @property
    def transient_configs(self) -> np.ndarray:
        """Packed codes of all transient configurations."""
        return np.flatnonzero(self.classes == int(ConfigClass.TRANSIENT))

    # -- cycles and attractors ---------------------------------------------------

    @property
    def cycles(self) -> list[list[int]]:
        """All attractor cycles (fixed points appear as length-1 cycles)."""
        return self.graph.cycles

    @property
    def proper_cycles(self) -> list[list[int]]:
        """Temporal cycles of period >= 2 — what Lemma 1(i) exhibits."""
        return self.graph.proper_cycles

    def has_proper_cycle(self) -> bool:
        """True iff some configuration is on a cycle of period >= 2."""
        return len(self.graph.proper_cycles) > 0

    def cycle_lengths(self) -> list[int]:
        """Sorted multiset of attractor cycle lengths."""
        return sorted(len(c) for c in self.graph.cycles)

    def attractor_of(self, code: int) -> list[int]:
        """The cycle that the orbit of ``code`` eventually enters."""
        return self.graph.cycles[int(self.graph.attractor_of[code])]

    def basin_sizes(self) -> np.ndarray:
        """Basin size per attractor, aligned with :attr:`cycles`."""
        return self.graph.basin_sizes()

    def basin_members(self, attractor_index: int) -> np.ndarray:
        """All configurations draining into attractor ``attractor_index``
        (the attractor's own configurations included), as packed codes."""
        if not 0 <= attractor_index < len(self.cycles):
            raise ValueError(
                f"attractor index {attractor_index} out of range "
                f"(phase space has {len(self.cycles)} attractors)"
            )
        return np.flatnonzero(self.graph.attractor_of == attractor_index)

    def attractor_index_of(self, code: int) -> int:
        """Index into :attr:`cycles` of the attractor ``code`` falls into."""
        return int(self.graph.attractor_of[code])

    def transient_length(self, code: int) -> int:
        """Steps from ``code`` until its orbit first enters its cycle."""
        return int(self.graph.steps_to_cycle[code])

    def max_transient(self) -> int:
        """The deepest transient in the whole phase space."""
        return self.graph.max_transient()

    # -- reachability ------------------------------------------------------------

    @property
    def gardens_of_eden(self) -> np.ndarray:
        """Configurations with no preimage under the global map."""
        return self.graph.gardens_of_eden

    def predecessors(self, code: int) -> np.ndarray:
        """All configurations mapping onto ``code`` in one step."""
        return np.flatnonzero(self.succ == code)

    def is_stable_attractor(self, code: int) -> bool:
        """Deterministic FPs are always stable sinks: once there, stay there.

        Provided for symmetry with the SCA notion of *pseudo*-fixed points,
        which are not stable; for a deterministic phase space this is just
        fixed-point membership.
        """
        return bool(self.succ[code] == code)

    # -- export ------------------------------------------------------------------

    def to_networkx(self) -> nx.DiGraph:
        """The phase space as a DiGraph with 0/1-string node labels."""
        g = nx.DiGraph()
        for code in range(self.size):
            g.add_node(code, label=config_str(code, self.n_nodes))
        for code in range(self.size):
            g.add_edge(code, int(self.succ[code]))
        return g

    def summary(self) -> dict[str, object]:
        """Headline statistics, as a plain dict (CLI/benchmark friendly)."""
        return {
            "configurations": self.size,
            "fixed_points": int(self.fixed_points.size),
            "proper_cycles": len(self.proper_cycles),
            "cycle_lengths": self.cycle_lengths(),
            "transient_configs": int(self.transient_configs.size),
            "gardens_of_eden": int(self.gardens_of_eden.size),
            "max_transient": self.max_transient(),
        }
