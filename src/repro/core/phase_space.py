"""Deterministic phase spaces and the FP/CC/TC classification.

Definition 3 of the paper classifies the configurations of a deterministic
automaton into fixed points (FP), cycle configurations (CC) and transient
configurations (TC) — and observes that determinism makes the three classes
a partition.  :class:`PhaseSpace` materialises the full phase space of a
parallel CA (the functional graph of its global map over all ``2**n``
configurations) and answers every question the paper asks of it: cycles and
their lengths, attractors and basins, unreachable (Garden-of-Eden)
configurations, transient depths.
"""

from __future__ import annotations

from enum import IntEnum
from functools import cached_property

import networkx as nx
import numpy as np

from repro.analysis.cycles import FunctionalGraph
from repro.core.automaton import CellularAutomaton
from repro.core.budget import (
    PHASE_ANALYSIS_BYTES_PER_STATE,
    SUCC_BYTES_PER_STATE,
    Budget,
    BudgetExceeded,
    Partial,
    resolve_budget,
)
from repro.obs import span
from repro.perf.base import CHUNK as _CHUNK
from repro.perf.base import MAX_SWEEP_N
from repro.util.bitops import config_str

__all__ = ["ConfigClass", "PhaseSpace", "build_phase_space"]

#: extra per-configuration bytes the cycle analysis holds beyond ``succ``
#: (in-degree + peel order int64, on-cycle + classes masks).
_ANALYSIS_EXTRA_PER_STATE = PHASE_ANALYSIS_BYTES_PER_STATE - SUCC_BYTES_PER_STATE


class ConfigClass(IntEnum):
    """Definition 3's configuration types."""

    FIXED_POINT = 0
    CYCLE = 1  # proper cycle configuration, period >= 2
    TRANSIENT = 2


class PhaseSpace:
    """The full phase space of a deterministic automaton.

    Construct with :meth:`from_automaton` (which computes the global map
    vectorized over all configurations) or directly from a packed successor
    array.
    """

    def __init__(self, succ: np.ndarray, n_nodes: int, budget: Budget | None = None):
        succ = np.asarray(succ, dtype=np.int64).ravel()
        if succ.size != 1 << n_nodes:
            raise ValueError(
                f"successor array has {succ.size} entries, expected 2**{n_nodes}"
            )
        self.succ = succ
        self.n_nodes = n_nodes
        self.graph = FunctionalGraph(succ, budget=budget)

    @classmethod
    def from_automaton(
        cls, ca: CellularAutomaton, budget: Budget | None = None
    ) -> "PhaseSpace":
        """Build the synchronous (parallel) phase space of an automaton.

        Governed by ``budget`` (or the ambient budget when None).  A budget
        trip raises :class:`~repro.core.budget.BudgetExceeded` whose
        ``partial`` carries the explored frontier; callers that want the
        truncated result as a value use :func:`build_phase_space` instead.
        """
        partial = build_phase_space(ca, budget=budget)
        if not partial.complete:
            raise BudgetExceeded(partial.reason, partial=partial)
        return partial.value

    @property
    def size(self) -> int:
        """Number of configurations (``2**n``)."""
        return self.succ.size

    # -- Definition 3 ----------------------------------------------------------

    @cached_property
    def classes(self) -> np.ndarray:
        """Per-configuration :class:`ConfigClass`, as an int8 array."""
        out = np.full(self.size, int(ConfigClass.TRANSIENT), dtype=np.int8)
        out[self.graph.on_cycle] = int(ConfigClass.CYCLE)
        out[self.graph.fixed_points] = int(ConfigClass.FIXED_POINT)
        return out

    def classify(self, code: int) -> ConfigClass:
        """The class of one packed configuration."""
        return ConfigClass(int(self.classes[code]))

    @property
    def fixed_points(self) -> np.ndarray:
        """Packed codes of all fixed points."""
        return self.graph.fixed_points

    @property
    def cycle_configs(self) -> np.ndarray:
        """Packed codes of all proper-cycle configurations (period >= 2)."""
        return np.flatnonzero(self.classes == int(ConfigClass.CYCLE))

    @property
    def transient_configs(self) -> np.ndarray:
        """Packed codes of all transient configurations."""
        return np.flatnonzero(self.classes == int(ConfigClass.TRANSIENT))

    # -- cycles and attractors ---------------------------------------------------

    @property
    def cycles(self) -> list[list[int]]:
        """All attractor cycles (fixed points appear as length-1 cycles)."""
        return self.graph.cycles

    @property
    def proper_cycles(self) -> list[list[int]]:
        """Temporal cycles of period >= 2 — what Lemma 1(i) exhibits."""
        return self.graph.proper_cycles

    def has_proper_cycle(self) -> bool:
        """True iff some configuration is on a cycle of period >= 2."""
        return len(self.graph.proper_cycles) > 0

    def cycle_lengths(self) -> list[int]:
        """Sorted multiset of attractor cycle lengths."""
        return sorted(len(c) for c in self.graph.cycles)

    def attractor_of(self, code: int) -> list[int]:
        """The cycle that the orbit of ``code`` eventually enters."""
        return self.graph.cycles[int(self.graph.attractor_of[code])]

    def basin_sizes(self) -> np.ndarray:
        """Basin size per attractor, aligned with :attr:`cycles`."""
        return self.graph.basin_sizes()

    def basin_members(self, attractor_index: int) -> np.ndarray:
        """All configurations draining into attractor ``attractor_index``
        (the attractor's own configurations included), as packed codes."""
        if not 0 <= attractor_index < len(self.cycles):
            raise ValueError(
                f"attractor index {attractor_index} out of range "
                f"(phase space has {len(self.cycles)} attractors)"
            )
        return np.flatnonzero(self.graph.attractor_of == attractor_index)

    def attractor_index_of(self, code: int) -> int:
        """Index into :attr:`cycles` of the attractor ``code`` falls into."""
        return int(self.graph.attractor_of[code])

    def transient_length(self, code: int) -> int:
        """Steps from ``code`` until its orbit first enters its cycle."""
        return int(self.graph.steps_to_cycle[code])

    def max_transient(self) -> int:
        """The deepest transient in the whole phase space."""
        return self.graph.max_transient()

    # -- reachability ------------------------------------------------------------

    @property
    def gardens_of_eden(self) -> np.ndarray:
        """Configurations with no preimage under the global map."""
        return self.graph.gardens_of_eden

    @cached_property
    def _pred_index(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR-style inverse of the global map: ``(indptr, order)``.

        ``order`` lists all configurations sorted by successor; the
        predecessors of ``code`` are ``order[indptr[code]:indptr[code+1]]``.
        Built once in O(2**n log 2**n); each query is then O(in-degree)
        instead of a fresh O(2**n) scan of ``succ``.
        """
        order = np.argsort(self.succ, kind="stable").astype(np.int64)
        counts = np.bincount(self.succ, minlength=self.size)
        indptr = np.zeros(self.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, order

    def predecessors(self, code: int) -> np.ndarray:
        """All configurations mapping onto ``code`` in one step."""
        if not 0 <= code < self.size:
            raise ValueError(f"configuration code {code} out of range")
        indptr, order = self._pred_index
        return np.sort(order[indptr[code] : indptr[code + 1]])

    def is_stable_attractor(self, code: int) -> bool:
        """Deterministic FPs are always stable sinks: once there, stay there.

        Provided for symmetry with the SCA notion of *pseudo*-fixed points,
        which are not stable; for a deterministic phase space this is just
        fixed-point membership.
        """
        return bool(self.succ[code] == code)

    # -- export ------------------------------------------------------------------

    def to_networkx(self) -> nx.DiGraph:
        """The phase space as a DiGraph with 0/1-string node labels."""
        g = nx.DiGraph()
        # Vectorized labels: unpack all codes to a (size, n) bit matrix,
        # view each '0'/'1' byte row as one fixed-width bytes scalar.
        codes = np.arange(self.size, dtype=np.int64)
        bits = (codes[:, None] >> np.arange(self.n_nodes, dtype=np.int64)) & 1
        chars = (bits + ord("0")).astype(np.uint8)
        labels = np.ascontiguousarray(chars).view(f"S{self.n_nodes}").ravel()
        g.add_nodes_from(
            (int(code), {"label": label.decode("ascii")})
            for code, label in zip(codes, labels)
        )
        g.add_edges_from(zip(codes.tolist(), self.succ.tolist()))
        return g

    def summary(self) -> dict[str, object]:
        """Headline statistics, as a plain dict (CLI/benchmark friendly)."""
        return {
            "configurations": self.size,
            "fixed_points": int(self.fixed_points.size),
            "proper_cycles": len(self.proper_cycles),
            "cycle_lengths": self.cycle_lengths(),
            "transient_configs": int(self.transient_configs.size),
            "gardens_of_eden": int(self.gardens_of_eden.size),
            "max_transient": self.max_transient(),
        }


def build_phase_space(
    ca: CellularAutomaton,
    budget: Budget | None = None,
    frontier: dict[str, object] | None = None,
) -> Partial[PhaseSpace]:
    """Governed phase-space build: exact, or honestly truncated + resumable.

    Enumerates the global map in bounded chunks, consulting ``budget``
    (explicit, or the ambient one) before each chunk.  Memory accounting
    is deterministic — the build *charges* the bytes the eventual analysis
    will hold (:data:`~repro.core.budget.PHASE_ANALYSIS_BYTES_PER_STATE`
    per configuration) rather than sampling the allocator, so the same
    budget trips at the same configuration on every machine.

    On a trip the returned :class:`~repro.core.budget.Partial` carries the
    filled successor prefix as a resume ``frontier``; persist it with
    :func:`repro.harness.checkpoint.save_frontier` and pass the loaded
    frontier back here to continue.  A resumed frontier's successor array
    is a disk-backed memmap, so the resumed enumeration charges only chunk
    transients and can finish the sweep under the same ceiling — the
    cycle-analysis gate then decides (again deterministically) whether a
    full :class:`PhaseSpace` fits, or returns the streamed statistics
    (fixed-point count) as a complete-enumeration partial.
    """
    budget = resolve_budget(budget)
    n = ca.n
    if n > MAX_SWEEP_N:
        raise ValueError(f"phase space over 2**{n} configurations is too large")
    total = 1 << n
    # Lazy import: repro.harness imports the checkpoint layer which imports
    # this budget machinery; at call time the cycle is long resolved.
    from repro.harness import faults

    if frontier is not None:
        if frontier.get("kind") != "phase_space" or int(frontier.get("n", -1)) != n:
            raise ValueError(
                f"frontier is not a phase-space frontier for n={n}: "
                f"{ {k: frontier[k] for k in ('kind', 'n') if k in frontier} }"
            )
        succ = frontier["succ"]
        start = int(frontier["next_lo"])
        fp_count = int(frontier.get("fixed_points_so_far", 0))
    else:
        succ = np.empty(total, dtype=np.int64)
        start = 0
        fp_count = 0
    # Disk-backed (resumed) successor arrays live outside the memory
    # envelope: only the per-chunk scratch is charged, which is what lets
    # a resume make progress under the very ceiling that truncated it.
    per_state = 0 if isinstance(succ, np.memmap) else PHASE_ANALYSIS_BYTES_PER_STATE
    transient = ca.sweep_transient_bytes()

    def _frontier(next_lo: int) -> dict[str, object]:
        return {
            "kind": "phase_space",
            "n": n,
            "automaton": ca.describe(),
            "total": total,
            "next_lo": next_lo,
            "fixed_points_so_far": fp_count,
            "succ": succ,
        }

    with span(
        "phase_space.build", n=n, configs=total, budget=budget.describe()
    ) as build_span:
        with span("phase_space.global_map", n=n, resumed_from=start):
            backend = ca.backend
            if backend.is_sharded:
                # The shard layer drives its own dispatch/merge loop; it
                # charges the budget as the contiguous completed prefix
                # advances and reports the honest resume point on a trip.
                def _count_fps(lo: int, hi: int) -> None:
                    nonlocal fp_count
                    fp_count += int(
                        np.count_nonzero(
                            succ[lo:hi] == np.arange(lo, hi, dtype=np.int64)
                        )
                    )

                next_lo, reason = backend.governed_sweep(
                    succ,
                    budget,
                    start=start,
                    per_state=per_state,
                    mode="step",
                    on_prefix=_count_fps,
                )
                if reason is not None:
                    build_span.set(truncated=reason, explored=next_lo)
                    return Partial.truncated(
                        reason,
                        explored=next_lo,
                        total=total,
                        stats={"fixed_points_so_far": fp_count},
                        frontier=_frontier(next_lo),
                    )
            else:
                lo = start
                while lo < total:
                    hi = min(lo + _CHUNK, total)
                    reason = budget.over(
                        pending_bytes=transient + per_state * (hi - lo)
                    )
                    if reason is not None:
                        build_span.set(truncated=reason, explored=lo)
                        return Partial.truncated(
                            reason,
                            explored=lo,
                            total=total,
                            stats={"fixed_points_so_far": fp_count},
                            frontier=_frontier(lo),
                        )
                    faults.inject("phase_space.chunk")
                    chunk = ca.step_all_range(lo, hi)
                    succ[lo:hi] = chunk
                    fp_count += int(
                        np.count_nonzero(
                            chunk == np.arange(lo, hi, dtype=np.int64)
                        )
                    )
                    budget.charge(states=hi - lo, bytes_=per_state * (hi - lo))
                    lo = hi
        # Enumeration complete.  Gate the cycle analysis on the *projected*
        # analysis footprint so the FunctionalGraph arrays never OOM: the
        # in-memory path pre-charged the analysis share per state, the
        # disk-backed path must fit the analysis arrays (succ stays on disk).
        analysis_pending = (
            _ANALYSIS_EXTRA_PER_STATE * total if per_state == 0 else 0
        )
        reason = budget.over(pending_bytes=analysis_pending)
        if reason is not None:
            build_span.set(truncated=reason, explored=total)
            return Partial.truncated(
                reason,
                explored=total,
                total=total,
                stats={"fixed_points": fp_count},
                frontier=_frontier(total),
            )
        budget.charge(bytes_=analysis_pending)
        ps = PhaseSpace(succ, n, budget=budget)
        return Partial.done(
            ps, explored=total, total=total, stats={"fixed_points": fp_count}
        )
