"""Can sequential interleavings capture the concurrent CA computation?

This module turns the paper's central question into decidable queries on
finite automata:

* **Step capture** — from configuration ``x``, is the parallel image
  ``F(x)`` reachable by *some* sequence of single-node updates?
* **Orbit capture** — can any (fair or not) sequential schedule reproduce
  the parallel orbit of ``x``, i.e. visit the orbit's cycle configurations
  infinitely often?  For a parallel two-cycle this requires the SCA's
  nondeterministic phase space to contain a proper cycle through the two
  configurations — which Theorem 1 rules out for threshold rules.  That
  gap, made checkable, *is* the paper's headline result.

The report produced by :func:`interleaving_capture_report` quantifies the
gap over the whole configuration space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.automaton import CellularAutomaton
from repro.core.budget import Budget, resolve_budget
from repro.core.evolution import parallel_orbit
from repro.core.nondet import NondetPhaseSpace
from repro.core.phase_space import PhaseSpace

__all__ = [
    "InterleavingReport",
    "OrbitCaptureResult",
    "sequential_reachable_set",
    "captures_parallel_step",
    "orbit_reproducible_sequentially",
    "interleaving_capture_report",
]


@dataclass(frozen=True)
class OrbitCaptureResult:
    """Whether one parallel orbit is sequentially reproducible, and why."""

    start: int
    parallel_period: int
    parallel_cycle: tuple[int, ...]
    reproducible: bool
    reason: str


@dataclass(frozen=True)
class InterleavingReport:
    """Space-wide audit of the interleaving semantics against the CA.

    ``step_capture_failures`` lists configurations whose one-step parallel
    image no interleaving can reach; ``orbit_capture_failures`` lists
    configurations whose eventual parallel behaviour (its attractor) no
    interleaving can reproduce.  The paper's result is that for threshold
    CA the latter is non-empty — every configuration attracted to a
    two-cycle is a witness — even when the former may be empty.
    """

    automaton: str
    total_configs: int
    step_capture_failures: tuple[int, ...]
    orbit_capture_failures: tuple[int, ...]
    parallel_two_cycle_configs: int
    sequential_has_cycle: bool
    #: configurations actually audited — equals ``total_configs`` unless a
    #: budget truncated the sweep (fields default for compatibility with
    #: pre-governance constructions).
    explored_configs: int | None = None
    #: budget trip reason when the audit stopped early, else None.
    truncation: str | None = None

    @property
    def audited_configs(self) -> int:
        """Configurations the audit actually covered."""
        return (
            self.total_configs if self.explored_configs is None
            else self.explored_configs
        )

    @property
    def complete(self) -> bool:
        """True iff the audit covered the whole configuration space."""
        return self.truncation is None

    @property
    def step_capture_rate(self) -> float:
        """Fraction of audited configurations whose parallel step is
        interleavable."""
        if self.audited_configs == 0:
            return 0.0
        return 1.0 - len(self.step_capture_failures) / self.audited_configs

    @property
    def orbit_capture_rate(self) -> float:
        """Fraction of audited configurations whose parallel orbit is
        interleavable."""
        if self.audited_configs == 0:
            return 0.0
        return 1.0 - len(self.orbit_capture_failures) / self.audited_configs

    @property
    def interleavings_capture_concurrency(self) -> bool:
        """The paper's question, answered for this automaton."""
        return not self.step_capture_failures and not self.orbit_capture_failures


def sequential_reachable_set(
    ca: CellularAutomaton, code: int, nps: NondetPhaseSpace | None = None
) -> np.ndarray:
    """Packed codes of all configurations reachable from ``code`` by
    single-node updates in any order (the union over all interleavings)."""
    if nps is None:
        nps = NondetPhaseSpace.from_automaton(ca)
    return nps.reachable_from(code)


def captures_parallel_step(
    ca: CellularAutomaton,
    code: int,
    nps: NondetPhaseSpace | None = None,
    succ: np.ndarray | None = None,
) -> bool:
    """Is the parallel successor of ``code`` sequentially reachable from it?"""
    if nps is None:
        nps = NondetPhaseSpace.from_automaton(ca)
    target = (
        int(succ[code]) if succ is not None else ca.pack(ca.step(ca.unpack(code)))
    )
    return nps.can_reach(code, target)


def orbit_reproducible_sequentially(
    ca: CellularAutomaton,
    code: int,
    nps: NondetPhaseSpace | None = None,
) -> OrbitCaptureResult:
    """Decide whether the parallel orbit of ``code`` has a sequential replay.

    * Period-1 orbits: reproducible iff the fixed point is sequentially
      reachable from ``code`` (it then stays there, like the parallel run).
    * Period >= 2 orbits: reproducible iff the SCA can reach the cycle and
      then cycle through it — i.e. all cycle configurations lie in one
      strongly connected component of the change-edge digraph reachable
      from ``code``.
    """
    if nps is None:
        nps = NondetPhaseSpace.from_automaton(ca)
    orbit = parallel_orbit(ca, ca.unpack(code))
    cycle = orbit.cycle
    if orbit.period == 1:
        ok = nps.can_reach(code, cycle[0])
        reason = (
            "fixed point sequentially reachable"
            if ok
            else "fixed point not sequentially reachable"
        )
        return OrbitCaptureResult(code, 1, cycle, ok, reason)

    reachable = set(int(c) for c in nps.reachable_from(code))
    if not all(c in reachable for c in cycle):
        return OrbitCaptureResult(
            code, orbit.period, cycle, False,
            "parallel cycle configurations not all sequentially reachable",
        )
    comp_sets = [set(int(c) for c in comp) for comp in nps.proper_cycle_components()]
    in_one_scc = any(all(c in comp for c in cycle) for comp in comp_sets)
    if in_one_scc:
        return OrbitCaptureResult(
            code, orbit.period, cycle, True,
            "cycle configurations share a strongly connected component",
        )
    return OrbitCaptureResult(
        code, orbit.period, cycle, False,
        "sequential phase space has no cycle through the parallel cycle "
        "configurations",
    )


def interleaving_capture_report(
    ca: CellularAutomaton, budget: Budget | None = None
) -> InterleavingReport:
    """Audit every configuration of ``ca`` for step and orbit capture.

    Exhaustive over ``2**n`` configurations.  For ``n <= 14`` the audit
    runs against a one-shot all-pairs reachability closure
    (:class:`repro.core.closure.ReachabilityClosure`); beyond that it
    falls back to per-configuration BFS, which is quadratically slower.

    Governed: the two phase-space builds run under ``budget`` (explicit or
    ambient) and the audit loop polls it every 256 configurations.  On a
    mid-audit trip the report is returned *truncated* — failure lists and
    rates cover only :attr:`InterleavingReport.audited_configs` codes and
    :attr:`InterleavingReport.truncation` records why.
    """
    from repro.core.closure import ReachabilityClosure

    budget = resolve_budget(budget)
    nps = NondetPhaseSpace.from_automaton(ca, budget=budget)
    ps = PhaseSpace.from_automaton(ca, budget=budget)
    succ = ps.succ

    closure: ReachabilityClosure | None
    try:
        closure = ReachabilityClosure(nps)
    except ValueError:
        closure = None

    def reach_all(code: int, targets: list[int]) -> bool:
        if closure is not None:
            return closure.can_reach_all(code, targets)
        reachable = set(int(c) for c in nps.reachable_from(code))
        return all(t in reachable for t in targets)

    step_failures: list[int] = []
    orbit_failures: list[int] = []
    comp_sets = [set(int(c) for c in comp) for comp in nps.proper_cycle_components()]
    attractors = ps.graph.attractor_of
    cycles = ps.cycles

    # Orbit capture is a property of (start, attractor); decide each
    # attractor once and each start's reachability once.
    attractor_sequentially_cyclable: dict[int, bool] = {}
    for k, cyc in enumerate(cycles):
        if len(cyc) == 1:
            attractor_sequentially_cyclable[k] = True  # staying put is trivial
        else:
            attractor_sequentially_cyclable[k] = any(
                all(c in comp for c in cyc) for comp in comp_sets
            )

    two_cycle_configs = 0
    explored = ps.size
    truncation: str | None = None
    for code in range(ps.size):
        if code % 256 == 0:
            reason = budget.over()
            if reason is not None:
                explored = code
                truncation = reason
                break
        if not reach_all(code, [int(succ[code])]):
            step_failures.append(code)
        k = int(attractors[code])
        cyc = cycles[k]
        if len(cyc) >= 2:
            two_cycle_configs += 1
            ok = attractor_sequentially_cyclable[k] and reach_all(
                code, [int(c) for c in cyc]
            )
        else:
            ok = reach_all(code, [int(cyc[0])])
        if not ok:
            orbit_failures.append(code)

    return InterleavingReport(
        automaton=ca.describe(),
        total_configs=ps.size,
        step_capture_failures=tuple(step_failures),
        orbit_capture_failures=tuple(orbit_failures),
        parallel_two_cycle_configs=two_cycle_configs,
        sequential_has_cycle=nps.has_proper_cycle(),
        explored_configs=explored,
        truncation=truncation,
    )
