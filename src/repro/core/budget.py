"""Resource governance: budgets, cooperative cancellation, partial results.

The paper's phase spaces blow up as ``2**n`` (and the interleaving spaces
worse), and the PSPACE-completeness results for majority automata networks
say this is intrinsic.  A service that enumerates them must therefore
*govern* the explosion instead of hoping it fits: every unbounded loop in
the core enumerators periodically consults a :class:`Budget` — a wall-clock
deadline, a memory ceiling, a state-count cap and a :class:`CancelToken` —
and winds down cooperatively when any of them trips.

Degradation ladder
------------------
* **exact** — the budget never trips; governed builders return a complete
  :class:`Partial` whose ``value`` is the ordinary result.
* **truncated** — the budget trips mid-enumeration; the builder returns a
  :class:`Partial` carrying the explored frontier, counts so far and the
  truncation reason, instead of dying by OOM or watchdog kill.
* **resumable** — the frontier can be persisted by the harness checkpoint
  layer (:func:`repro.harness.checkpoint.save_frontier`) and handed back to
  the builder to make further progress under a fresh budget.

Functions that cannot return a partial value (orbit drivers, DFS
explorers) raise :class:`BudgetExceeded` whose ``partial`` attribute still
carries the progress snapshot.

Budgets thread two ways: explicitly (``build_phase_space(ca, budget=b)``)
or ambiently — :func:`use_budget` installs a budget that every governed
loop picks up via :func:`resolve_budget`, which is how the CLI's
``--budget-*`` flags and the harness runner's cooperative ``--timeout``
deadline reach experiment code without changing any experiment signature.
The default ambient budget is unlimited, so ungoverned callers pay one
cheap ``over()`` check per chunk and nothing else.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field
from math import log2
from typing import Generic, TypeVar

from repro import obs

__all__ = [
    "Budget",
    "BudgetExceeded",
    "CancelToken",
    "Partial",
    "ambient_budget",
    "set_ambient",
    "use_budget",
    "resolve_budget",
    "parse_size",
    "format_bytes",
    "format_pow2",
    "SUCC_BYTES_PER_STATE",
    "PHASE_ANALYSIS_BYTES_PER_STATE",
    "NONDET_BYTES_PER_STATE",
    "estimate_succ_bytes",
    "estimate_phase_space_bytes",
    "estimate_nondet_bytes",
]

T = TypeVar("T")

#: bytes per configuration held by a packed successor array (int64).
SUCC_BYTES_PER_STATE = 8

#: peak bytes per configuration of a governed deterministic phase-space
#: build *including* cycle analysis: the successor array plus
#: :class:`~repro.analysis.cycles.FunctionalGraph`'s in-degree and peel
#: arrays (int64 each) and the on-cycle/classes masks (1 byte each).
PHASE_ANALYSIS_BYTES_PER_STATE = 26

#: peak bytes per (configuration, node) pair of a governed sequential
#: phase-space build: the per-node successor row plus the change-edge
#: src/dst arrays the SCC analysis materialises.
NONDET_BYTES_PER_STATE = 24

_ENV_WALL = "REPRO_BUDGET_WALL_S"
_ENV_MEM = "REPRO_BUDGET_MEM"
_ENV_STATES = "REPRO_BUDGET_STATES"

_SIZE_SUFFIXES = {
    "": 1,
    "B": 1,
    "K": 1 << 10,
    "KB": 1 << 10,
    "M": 1 << 20,
    "MB": 1 << 20,
    "G": 1 << 30,
    "GB": 1 << 30,
    "T": 1 << 40,
    "TB": 1 << 40,
}


def parse_size(spec: int | float | str) -> int:
    """Parse a human memory size (``"256M"``, ``"1.5GB"``, ``4096``) to bytes."""
    if isinstance(spec, (int, float)):
        value = int(spec)
    else:
        text = spec.strip().upper().replace(" ", "")
        digits = text.rstrip("KMGTB")
        suffix = text[len(digits):]
        if suffix not in _SIZE_SUFFIXES or not digits:
            raise ValueError(f"cannot parse memory size {spec!r} (try '256M', '2GB')")
        try:
            value = int(float(digits) * _SIZE_SUFFIXES[suffix])
        except ValueError as err:
            raise ValueError(f"cannot parse memory size {spec!r}") from err
    if value <= 0:
        raise ValueError(f"memory size must be positive, got {spec!r}")
    return value


def format_bytes(nbytes: int) -> str:
    """Human-readable byte count (``436.2MB``)."""
    value = float(nbytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024 or unit == "TB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024
    raise AssertionError  # pragma: no cover

def format_pow2(count: int) -> str:
    """``16777216`` as ``2^24``, ``11534336`` as ``2^23.5`` — phase-space
    sizes read better as powers of two."""
    if count <= 0:
        return str(count)
    exponent = log2(count)
    if exponent == int(exponent):
        return f"2^{int(exponent)}"
    return f"2^{exponent:.1f}"


def estimate_succ_bytes(n_nodes: int) -> int:
    """Bytes of the bare ``2**n`` packed successor table."""
    return (1 << n_nodes) * SUCC_BYTES_PER_STATE


def estimate_phase_space_bytes(n_nodes: int) -> int:
    """Peak bytes of a full deterministic phase-space build + analysis."""
    return (1 << n_nodes) * PHASE_ANALYSIS_BYTES_PER_STATE


def estimate_nondet_bytes(n_nodes: int) -> int:
    """Peak bytes of a full sequential (nondeterministic) phase-space build."""
    return n_nodes * (1 << n_nodes) * NONDET_BYTES_PER_STATE


class CancelToken:
    """Cooperative cancellation flag, shared across threads.

    ``cancel(reason)`` is one-shot (the first reason wins) and thread-safe;
    governed loops observe it at their next budget check.  Signal handlers
    (SIGTERM, Ctrl-C mapping) and the harness watchdog cancel the token
    instead of killing the process, so enumerators flush partial results.
    """

    __slots__ = ("_event", "_reason", "_lock")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reason: str | None = None
        self._lock = threading.Lock()

    def cancel(self, reason: str = "cancelled") -> bool:
        """Request cancellation; returns True iff this call was the first."""
        with self._lock:
            if self._event.is_set():
                return False
            self._reason = reason
            self._event.set()
            return True

    @property
    def cancelled(self) -> bool:
        """True iff :meth:`cancel` has been called."""
        return self._event.is_set()

    @property
    def reason(self) -> str | None:
        """The first cancellation reason, or None while not cancelled."""
        return self._reason

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"cancelled: {self._reason}" if self.cancelled else "armed"
        return f"CancelToken({state})"


@dataclass
class Partial(Generic[T]):
    """A governed enumerator's result: complete, or honestly truncated.

    ``value`` is the ordinary result when ``complete``; ``explored`` /
    ``total`` count enumerated units (configurations, states); ``reason``
    says which budget dimension tripped; ``stats`` carries whatever
    streaming counts the enumerator accumulated before stopping; and
    ``frontier`` is the resume state (may hold numpy arrays — persist it
    with :func:`repro.harness.checkpoint.save_frontier`).
    """

    value: T | None
    complete: bool
    explored: int
    total: int | None = None
    reason: str | None = None
    stats: dict[str, object] = field(default_factory=dict)
    frontier: dict[str, object] | None = None

    @classmethod
    def done(
        cls,
        value: T,
        explored: int,
        total: int | None = None,
        stats: dict[str, object] | None = None,
    ) -> "Partial[T]":
        """A complete result (the budget never tripped)."""
        return cls(value, True, explored, total, None, dict(stats or {}))

    @classmethod
    def truncated(
        cls,
        reason: str,
        explored: int,
        total: int | None = None,
        value: T | None = None,
        stats: dict[str, object] | None = None,
        frontier: dict[str, object] | None = None,
    ) -> "Partial[T]":
        """A truncated result carrying the frontier and the trip reason."""
        return cls(value, False, explored, total, reason, dict(stats or {}), frontier)

    def describe(self) -> str:
        """One honest line: ``explored 2^23.5/2^24 configs — truncated: ...``."""
        span_txt = format_pow2(self.explored)
        if self.total is not None:
            span_txt += f"/{format_pow2(self.total)}"
        if self.complete:
            return f"explored {span_txt} configs (complete)"
        return f"explored {span_txt} configs — truncated: {self.reason}"

    def summary_dict(self) -> dict[str, object]:
        """JSON-safe summary (frontier arrays dropped) for harness results."""
        out: dict[str, object] = {
            "complete": self.complete,
            "explored": int(self.explored),
        }
        if self.total is not None:
            out["total"] = int(self.total)
        if self.reason is not None:
            out["reason"] = self.reason
        if self.stats:
            out["stats"] = {k: v for k, v in self.stats.items()}
        out["resumable"] = self.frontier is not None
        return out


class BudgetExceeded(RuntimeError):
    """A budget dimension tripped inside a governed loop.

    ``reason`` is the human-readable trip reason; ``partial`` (when the
    raiser could snapshot progress) is a :class:`Partial` of work done so
    far, so even the exception path degrades gracefully.
    """

    def __init__(self, reason: str, partial: Partial | None = None):
        super().__init__(reason)
        self.reason = reason
        self.partial = partial


class Budget:
    """Resource envelope for one governed computation.

    Parameters
    ----------
    wall_s:
        Wall-clock allowance in seconds, measured from construction.
    mem_bytes:
        Ceiling on *accounted* bytes — governed enumerators
        :meth:`charge` the persistent arrays they build (and project the
        next chunk via ``over(pending_bytes=...)``), so trips are
        deterministic and machine-independent.
    max_states:
        Cap on enumerated work units (configurations, DFS states).
    token:
        Shared :class:`CancelToken`; a fresh one is created if omitted.

    All dimensions default to unlimited; checks on an unlimited budget are
    a handful of attribute reads, cheap enough for per-chunk use.
    """

    __slots__ = (
        "wall_s",
        "mem_bytes",
        "max_states",
        "token",
        "states_used",
        "bytes_held",
        "on_charge",
        "_t0",
        "_deadline",
        "_tripped",
    )

    def __init__(
        self,
        wall_s: float | None = None,
        mem_bytes: int | None = None,
        max_states: int | None = None,
        token: CancelToken | None = None,
    ):
        if wall_s is not None and wall_s <= 0:
            raise ValueError(f"wall_s must be positive, got {wall_s}")
        if mem_bytes is not None and mem_bytes <= 0:
            raise ValueError(f"mem_bytes must be positive, got {mem_bytes}")
        if max_states is not None and max_states <= 0:
            raise ValueError(f"max_states must be positive, got {max_states}")
        self.wall_s = wall_s
        self.mem_bytes = mem_bytes
        self.max_states = max_states
        self.token = token if token is not None else CancelToken()
        self.states_used = 0
        self.bytes_held = 0
        #: optional progress hook ``cb(budget, states)`` invoked on every
        #: charge — the observability layer's tap into governed loops
        #: (see :class:`repro.obs.progress.ProgressReporter`).  None (the
        #: default) keeps the hot path to a single attribute check.
        self.on_charge = None
        self._t0 = time.monotonic()
        self._deadline = None if wall_s is None else self._t0 + wall_s
        self._tripped = False

    @classmethod
    def from_env(
        cls,
        environ: Mapping[str, str] | None = None,
        token: CancelToken | None = None,
    ) -> "Budget":
        """Budget from ``REPRO_BUDGET_WALL_S`` / ``_MEM`` / ``_STATES``.

        Unset variables leave that dimension unlimited — the harness child
        process installs this so cooperative deadlines cross the
        ``--isolate`` boundary.
        """
        env = os.environ if environ is None else environ
        wall = env.get(_ENV_WALL, "").strip()
        mem = env.get(_ENV_MEM, "").strip()
        states = env.get(_ENV_STATES, "").strip()
        return cls(
            wall_s=float(wall) if wall else None,
            mem_bytes=parse_size(mem) if mem else None,
            max_states=int(states) if states else None,
            token=token,
        )

    # -- accounting ------------------------------------------------------------

    def charge(self, states: int = 0, bytes_: int = 0) -> None:
        """Record ``states`` enumerated units and ``bytes_`` held bytes."""
        self.states_used += states
        self.bytes_held += bytes_
        cb = self.on_charge
        if cb is not None:
            cb(self, states)

    def release_bytes(self, nbytes: int) -> None:
        """Return ``nbytes`` of previously charged memory."""
        self.bytes_held = max(0, self.bytes_held - nbytes)

    @property
    def elapsed_s(self) -> float:
        """Seconds since the budget clock started."""
        return time.monotonic() - self._t0

    @property
    def remaining_s(self) -> float | None:
        """Wall-clock seconds left, or None when unlimited."""
        if self._deadline is None:
            return None
        return self._deadline - time.monotonic()

    @property
    def is_unlimited(self) -> bool:
        """True iff no dimension can ever trip (barring cancellation)."""
        return (
            self.wall_s is None
            and self.mem_bytes is None
            and self.max_states is None
        )

    def fits_memory(self, nbytes: int) -> bool:
        """Would holding ``nbytes`` more stay under the ceiling?"""
        if self.mem_bytes is None:
            return True
        return self.bytes_held + nbytes <= self.mem_bytes

    # -- checks ----------------------------------------------------------------

    def over(self, pending_bytes: int = 0, pending_states: int = 0) -> str | None:
        """The trip reason, or None while every dimension has headroom.

        ``pending_bytes`` projects the next allocation: governed loops ask
        "may I hold one more chunk?" *before* allocating it, which is what
        turns an OOM kill into a clean truncation.  ``pending_states``
        likewise projects work already dispatched but not yet charged —
        the sharded sweep uses it so a states cap trips at the same
        configuration the serial chunk loop trips at.
        """
        reason: str | None = None
        if self.token.cancelled:
            reason = f"cancelled: {self.token.reason}"
        elif self._deadline is not None and time.monotonic() >= self._deadline:
            reason = f"deadline: wall-clock budget {self.wall_s:g}s exhausted"
        elif self.mem_bytes is not None and (
            self.bytes_held + pending_bytes > self.mem_bytes
        ):
            reason = (
                f"memory: holding {format_bytes(self.bytes_held)}"
                + (f" + {format_bytes(pending_bytes)} pending" if pending_bytes else "")
                + f" exceeds the {format_bytes(self.mem_bytes)} ceiling"
            )
        elif self.max_states is not None and (
            self.states_used + pending_states >= self.max_states
        ):
            reason = (
                f"states: enumerated {self.states_used + pending_states} "
                f">= cap {self.max_states}"
            )
        if reason is not None and not self._tripped:
            self._tripped = True
            obs.inc("budget.trips")
        return reason

    def check(self, pending_bytes: int = 0, partial: Partial | None = None) -> None:
        """Raise :class:`BudgetExceeded` if any dimension has tripped."""
        reason = self.over(pending_bytes=pending_bytes)
        if reason is not None:
            raise BudgetExceeded(reason, partial=partial)

    def describe(self) -> str:
        """The envelope, compact (``wall=10s mem=256.0MB states=2^22``)."""
        parts = []
        if self.wall_s is not None:
            parts.append(f"wall={self.wall_s:g}s")
        if self.mem_bytes is not None:
            parts.append(f"mem={format_bytes(self.mem_bytes)}")
        if self.max_states is not None:
            parts.append(f"states={format_pow2(self.max_states)}")
        return " ".join(parts) if parts else "unlimited"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Budget({self.describe()})"


#: The do-nothing envelope governed loops see when nothing is installed.
_UNLIMITED = Budget()

#: Ambient budget stack (module-global, like the tracing state — the
#: library is single-threaded numpy; the harness installs per-attempt
#: budgets around whole experiments, not concurrently).
_AMBIENT: list[Budget] = []


def ambient_budget() -> Budget:
    """The innermost installed budget (an unlimited one by default)."""
    return _AMBIENT[-1] if _AMBIENT else _UNLIMITED


def resolve_budget(budget: Budget | None) -> Budget:
    """``budget`` if given, else the ambient budget — never None."""
    return budget if budget is not None else ambient_budget()


def set_ambient(budget: Budget | None) -> Budget | None:
    """Install ``budget`` as the sole ambient budget; returns the previous.

    ``set_ambient(None)`` clears the stack.  The CLI uses this to make its
    ``--budget-*`` flags govern the whole invocation.
    """
    previous = _AMBIENT[-1] if _AMBIENT else None
    _AMBIENT.clear()
    if budget is not None:
        _AMBIENT.append(budget)
    return previous


@contextmanager
def use_budget(budget: Budget) -> Iterator[Budget]:
    """Context manager installing ``budget`` ambiently for the duration."""
    _AMBIENT.append(budget)
    try:
        yield budget
    finally:
        if _AMBIENT and _AMBIENT[-1] is budget:
            _AMBIENT.pop()
        elif budget in _AMBIENT:  # pragma: no cover - torn nesting
            _AMBIENT.remove(budget)
