"""Trajectory engines: running CA, SCA and block-sequential dynamics.

Covers the paper's notion of "computation": the orbit of a configuration
under the chosen update discipline.  The deterministic parallel case gets
exact orbit analysis (transient length and period, which Proposition 1
predicts to be 1 or 2 for threshold rules); the sequential case gets a
convergence driver used by the fair-schedule experiments.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.automaton import CellularAutomaton
from repro.core.budget import Budget, BudgetExceeded, Partial, resolve_budget
from repro.core.schedules import UpdateSchedule
from repro.obs import span
from repro.util.bitops import bits_to_int
from repro.util.validation import check_non_negative, check_state_vector

__all__ = [
    "OrbitInfo",
    "ConvergenceResult",
    "block_step",
    "run_schedule",
    "parallel_trajectory",
    "parallel_orbit",
    "brent_orbit",
    "sequential_trajectory",
    "sequential_converge",
]


@dataclass(frozen=True)
class OrbitInfo:
    """Exact structure of a deterministic orbit.

    ``transient`` steps lead from the start into a cycle of length
    ``period``; ``cycle`` lists the packed codes of the cycle in visit
    order, starting at the first revisited configuration.
    """

    transient: int
    period: int
    cycle: tuple[int, ...]

    @property
    def is_fixed_point(self) -> bool:
        """True iff the orbit ends in a fixed point (period 1)."""
        return self.period == 1

    @property
    def is_two_cycle(self) -> bool:
        """True iff the orbit ends in a proper two-cycle."""
        return self.period == 2


@dataclass(frozen=True)
class ConvergenceResult:
    """Outcome of a sequential run driven until quiescence or a step cap."""

    converged: bool
    final_state: np.ndarray
    updates_used: int
    effective_flips: int
    flip_times: tuple[int, ...] = field(default=(), repr=False)

    @property
    def fixed_point_code(self) -> int | None:
        """Packed code of the fixed point reached, or None if not converged."""
        if not self.converged:
            return None
        return bits_to_int(self.final_state)


def block_step(
    ca: CellularAutomaton, state: np.ndarray, block: Sequence[int]
) -> np.ndarray:
    """Update the nodes of ``block`` simultaneously, all others unchanged.

    All nodes in the block read the *same* pre-step state — this is what
    "logically simultaneous" means, and with ``block = all nodes`` it is
    exactly the classical CA step.
    """
    new = check_state_vector(state, ca.n)
    values = [ca.node_next(state, i) for i in block]
    for i, v in zip(block, values):
        new[i] = v
    return new


def run_schedule(
    ca: CellularAutomaton,
    state: np.ndarray,
    schedule: UpdateSchedule,
    macro_steps: int,
    budget: Budget | None = None,
) -> Iterator[np.ndarray]:
    """Yield the state after each of ``macro_steps`` schedule blocks.

    The initial state is not yielded.  Full-space blocks take the
    vectorized fast path.  The budget (explicit or ambient) is polled
    between blocks; a trip raises
    :class:`~repro.core.budget.BudgetExceeded` whose partial records how
    many blocks ran (the consumer already holds every yielded state).
    """
    check_non_negative(macro_steps, "macro_steps")
    state = check_state_vector(state, ca.n)
    budget = resolve_budget(budget)
    full = tuple(range(ca.n))
    stream = schedule.blocks(ca.n)
    for t in range(macro_steps):
        reason = budget.over()
        if reason is not None:
            raise BudgetExceeded(
                reason,
                partial=Partial.truncated(reason, explored=t, total=macro_steps),
            )
        block = next(stream)
        state = ca.step(state) if block == full else block_step(ca, state, block)
        yield state


def parallel_trajectory(
    ca: CellularAutomaton, state: np.ndarray, steps: int
) -> np.ndarray:
    """Array of ``steps + 1`` synchronous states; row 0 is the input."""
    return ca.trajectory_steps(state, steps)


def parallel_orbit(
    ca: CellularAutomaton,
    state: np.ndarray,
    max_steps: int | None = None,
    budget: Budget | None = None,
) -> OrbitInfo:
    """Exact transient and period of the parallel orbit of ``state``.

    Iterates the global map, hashing visited configurations.  A finite
    deterministic system always closes a cycle within ``2**n`` steps, so
    ``max_steps=None`` is safe for moderate ``n``; pass a cap to fail fast
    in exploratory sweeps.  The budget (explicit or ambient) is polled
    every step and each visited configuration charges one state unit, so
    long orbit sweeps degrade cooperatively instead of running unbounded.
    """
    state = check_state_vector(state, ca.n)
    budget = resolve_budget(budget)
    with span("orbit.parallel", n=ca.n) as sp:
        seen: dict[int, int] = {}
        codes: list[int] = []
        current = state
        t = 0
        while True:
            reason = budget.over()
            if reason is not None:
                raise BudgetExceeded(
                    reason,
                    partial=Partial.truncated(
                        reason, explored=t, stats={"codes_visited": len(codes)}
                    ),
                )
            code = ca.pack(current)
            if code in seen:
                start = seen[code]
                sp.set(transient=start, period=t - start)
                return OrbitInfo(
                    transient=start,
                    period=t - start,
                    cycle=tuple(codes[start:]),
                )
            seen[code] = t
            codes.append(code)
            budget.charge(states=1)
            if max_steps is not None and t >= max_steps:
                raise RuntimeError(f"no repeat within {max_steps} steps")
            current = ca.step(current)
            t += 1


def brent_orbit(
    ca: CellularAutomaton, state: np.ndarray, budget: Budget | None = None
) -> OrbitInfo:
    """Orbit structure via Brent's cycle-finding algorithm.

    O(1) memory — it never stores the trajectory — so it scales to state
    spaces far too large for the hashing approach.  Returns the same
    OrbitInfo (the cycle tuple is reconstructed once the period is known).
    Both search phases poll the budget (explicit or ambient) every step.
    """
    state = check_state_vector(state, ca.n)
    budget = resolve_budget(budget)

    def _check(steps: int, phase: str) -> None:
        reason = budget.over()
        if reason is not None:
            raise BudgetExceeded(
                reason,
                partial=Partial.truncated(
                    reason, explored=steps, stats={"phase": phase}
                ),
            )

    with span("orbit.brent", n=ca.n) as sp:
        # Phase 1: find the period lambda.
        power = 1
        lam = 1
        steps = 0
        tortoise = state
        hare = ca.step(state)
        while not np.array_equal(tortoise, hare):
            _check(steps, "period-search")
            if power == lam:
                tortoise = hare
                power *= 2
                lam = 0
            hare = ca.step(hare)
            lam += 1
            steps += 1

        # Phase 2: find the transient mu with two aligned pointers.
        tortoise = state
        hare = state
        for _ in range(lam):
            hare = ca.step(hare)
        mu = 0
        while not np.array_equal(tortoise, hare):
            _check(steps + mu, "transient-search")
            tortoise = ca.step(tortoise)
            hare = ca.step(hare)
            mu += 1

        cycle = []
        current = tortoise
        for _ in range(lam):
            cycle.append(ca.pack(current))
            current = ca.step(current)
        sp.set(transient=mu, period=lam)
        return OrbitInfo(transient=mu, period=lam, cycle=tuple(cycle))


def sequential_trajectory(
    ca: CellularAutomaton,
    state: np.ndarray,
    schedule: UpdateSchedule,
    updates: int,
) -> np.ndarray:
    """Array of states after each of ``updates`` schedule blocks (row 0 = input)."""
    out = np.empty((updates + 1, ca.n), dtype=np.uint8)
    out[0] = check_state_vector(state, ca.n)
    for t, s in enumerate(run_schedule(ca, state, schedule, updates)):
        out[t + 1] = s
    return out


def sequential_converge(
    ca: CellularAutomaton,
    state: np.ndarray,
    schedule: UpdateSchedule,
    max_updates: int = 100_000,
    record_flips: bool = False,
    budget: Budget | None = None,
) -> ConvergenceResult:
    """Drive a sequential/block run until a fixed point or the update cap.

    Fixed-point detection is exact (with-memory rules make "no node wants
    to change" schedule-independent): the run stops as soon as the current
    state is a fixed point of the global map, checked whenever a window of
    ``n`` consecutive blocks produced no change.

    The budget (explicit or ambient) is polled every update; on a trip the
    raised :class:`~repro.core.budget.BudgetExceeded` carries a partial
    whose ``value`` is the honest not-converged
    :class:`ConvergenceResult` at the point of interruption.
    """
    state = check_state_vector(state, ca.n)
    budget = resolve_budget(budget)
    with span("converge.sequential", n=ca.n) as sp:
        stream = schedule.blocks(ca.n)
        flips = 0
        flip_times: list[int] = []
        quiet = 0
        if ca.is_fixed_point(state):
            sp.set(updates=0, flips=0, converged=True)
            return ConvergenceResult(True, state, 0, 0, ())
        for t in range(1, max_updates + 1):
            reason = budget.over()
            if reason is not None:
                snapshot = ConvergenceResult(
                    False, state.copy(), t - 1, flips, tuple(flip_times)
                )
                raise BudgetExceeded(
                    reason,
                    partial=Partial.truncated(
                        reason,
                        explored=t - 1,
                        total=max_updates,
                        value=snapshot,
                        stats={"flips": flips},
                    ),
                )
            block = next(stream)
            changed = False
            if len(block) == 1:
                changed = ca.update_node_inplace(state, block[0])
            else:
                new = block_step(ca, state, block)
                changed = not np.array_equal(new, state)
                state = new
            if changed:
                flips += 1
                quiet = 0
                if record_flips:
                    flip_times.append(t)
            else:
                quiet += 1
                if quiet >= ca.n and ca.is_fixed_point(state):
                    sp.set(updates=t, flips=flips, converged=True)
                    return ConvergenceResult(
                        True, state, t, flips, tuple(flip_times)
                    )
        converged = ca.is_fixed_point(state)
        sp.set(updates=max_updates, flips=flips, converged=converged)
        return ConvergenceResult(
            converged, state, max_updates, flips, tuple(flip_times)
        )
