"""Non-homogeneous cellular automata: a different rule at every node.

Section 4 of the paper proposes "extending our study to non-homogeneous
threshold CA, where not all the nodes necessarily update according to one
and the same threshold update rule".  :class:`HeterogeneousCA` implements
that model as a drop-in :class:`repro.core.CellularAutomaton`: every
engine, phase-space, energy and theorem facility works unchanged.

The key theoretical fact (verified by ``check_nonhomogeneous_threshold``
in :mod:`repro.core.theorems`): the Goles–Martinez energy argument never
used homogeneity — it needs a *symmetric weight matrix* and per-node
thresholds, both of which survive per-node count thresholds over a fixed
graph.  So non-homogeneous threshold SCA are still cycle-free, and their
parallel counterparts still satisfy Proposition 1.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.automaton import CellularAutomaton
from repro.core.rules import UpdateRule
from repro.spaces.base import FiniteSpace
from repro.util.validation import check_state_vector

__all__ = ["HeterogeneousCA"]


class HeterogeneousCA(CellularAutomaton):
    """A CA whose nodes carry individual local rules.

    Parameters
    ----------
    space:
        Any finite cellular space.
    rules:
        One :class:`UpdateRule` per node.  Fixed-arity rules must match
        their node's window width; symmetric (count) rules fit any node.
    memory:
        Whether each node's own state is part of its window (default True,
        the paper's convention).
    backend, workers:
        Sweep-backend selection, as for :class:`CellularAutomaton`.
    """

    def __init__(
        self,
        space: FiniteSpace,
        rules: Sequence[UpdateRule],
        memory: bool = True,
        backend: str | None = None,
        workers: int | None = None,
    ):
        rules = list(rules)
        if len(rules) != space.n:
            raise ValueError(
                f"{len(rules)} rules supplied for {space.n} nodes"
            )
        # Bypass the parent's uniform-arity validation; validate per node.
        self.space = space
        self.rule = rules[0]  # representative, used only for describe()
        self.rules = rules
        self.memory = memory
        self._windows, self._lengths = space.windows(memory)
        for i, rule in enumerate(rules):
            if rule.arity is not None and rule.arity != int(self._lengths[i]):
                raise ValueError(
                    f"node {i}: rule {rule.name} has arity {rule.arity} but "
                    f"the window has width {int(self._lengths[i])}"
                )
        self._init_backend(backend, workers)

    def describe(self) -> str:
        names = {r.name for r in self.rules}
        label = next(iter(names)) if len(names) == 1 else f"{len(names)} rules"
        mem = "memory" if self.memory else "memoryless"
        return f"HeterogeneousCA[{self.space.describe()}, {label}, {mem}]"

    # -- scalar paths ---------------------------------------------------------

    def rule_at(self, i: int) -> UpdateRule:
        return self.rules[i]

    def node_next(self, state: np.ndarray, i: int) -> int:
        window = self.space.input_window(i, self.memory)
        inputs = [0 if j < 0 else int(state[j]) for j in window]
        return self.rules[i].evaluate(inputs)

    def step(self, state: np.ndarray) -> np.ndarray:
        """Synchronous step: per-node vectorized window application.

        Nodes sharing a rule object are batched, so a two-rule automaton
        still takes only two vectorized passes.
        """
        state = check_state_vector(state, self.n)
        ext = np.concatenate([state, np.zeros(1, dtype=np.uint8)])
        out = np.empty(self.n, dtype=np.uint8)
        for rule, nodes in self._rule_groups():
            inputs = ext[self._windows[nodes]]
            out[nodes] = rule.apply_windows(inputs, self._lengths[nodes])
        return out

    def step_naive(self, state: np.ndarray) -> np.ndarray:
        state = check_state_vector(state, self.n)
        out = np.empty(self.n, dtype=np.uint8)
        for i in range(self.n):
            out[i] = self.node_next(state, i)
        return out

    def _rule_groups(self) -> list[tuple[UpdateRule, np.ndarray]]:
        groups: dict[int, list[int]] = {}
        by_id: dict[int, UpdateRule] = {}
        for i, rule in enumerate(self.rules):
            groups.setdefault(id(rule), []).append(i)
            by_id[id(rule)] = rule
        out = []
        for key, nodes in groups.items():
            rule = by_id[key]
            idx = np.array(nodes, dtype=np.int64)
            # A fixed-arity rule can only be batched over nodes whose
            # windows share its width; group members already passed the
            # per-node check, but ragged padding must be sliced off.
            if rule.arity is not None:
                widths = self._lengths[idx]
                for w in np.unique(widths):
                    sub = idx[widths == w]
                    out.append((_SlicedRule(rule, int(w)), sub))
            else:
                out.append((rule, idx))
        return out

    # Whole-space sweeps need no overrides: the sweep backends compile the
    # per-node rules through ``rule_at`` / ``_rule_groups`` directly.


class _SlicedRule:
    """Adapter truncating padded windows to a fixed-arity rule's width."""

    def __init__(self, rule: UpdateRule, width: int):
        self._rule = rule
        self._width = width
        self.arity = rule.arity
        self.name = rule.name

    def apply_windows(self, inputs: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        return self._rule.apply_windows(
            inputs[..., : self._width], np.minimum(lengths, self._width)
        )

    def evaluate(self, inputs) -> int:  # pragma: no cover - not used directly
        return self._rule.evaluate(inputs[: self._width])
