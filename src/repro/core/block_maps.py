"""Block-sequential global maps: dialing synchrony between SCA and CA.

A block-sequential schedule updates one block of nodes simultaneously, the
blocks in a fixed order — singleton blocks give an SCA sweep, the single
full block gives the classical CA.  Because the schedule is deterministic,
one macro-sweep induces a deterministic *global map* on configurations,
and the paper's cycle question can be asked of every ordered partition:
**how much simultaneity does a threshold CA need before it can oscillate?**

The answer, measured by :func:`check_block_synchrony` (experiment E19), is
stark: for MAJORITY rings, *every* ordered partition except the single
full block yields a cycle-free global map — exhaustively over all 4683
ordered partitions of the 6-ring, and over structured families on larger
rings.  Perfect synchrony is not just sufficient for the paper's
two-cycles; it is (empirically) necessary, sharpening Section 4's remark
that the cycles "can be ascribed directly to the assumption of perfect
synchrony".
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.core.automaton import CellularAutomaton
from repro.core.phase_space import PhaseSpace
from repro.core.rules import MajorityRule
from repro.core.theorems import TheoremReport
from repro.spaces.line import Ring

__all__ = [
    "block_sequential_map",
    "ordered_partitions",
    "structured_partitions",
    "check_block_synchrony",
]


def block_sequential_map(
    ca: CellularAutomaton, partition: Sequence[Sequence[int]]
) -> np.ndarray:
    """Global map of one block-sequential macro-sweep, over all ``2**n``
    configurations.

    Within a block, every node reads the same pre-block configuration
    (logical simultaneity); successive blocks see the updates of earlier
    ones.  Implemented by composing vectorized per-node successor maps,
    with all of a block's new bits derived from the block's common source.
    """
    n = ca.n
    flat = sorted(i for block in partition for i in block)
    if flat != list(range(n)):
        raise ValueError(f"blocks {partition} do not partition 0..{n - 1}")
    result = np.arange(1 << n, dtype=np.int64)
    for block in partition:
        source = result
        out = source.copy()
        for i in block:
            succ_i = ca.node_successors(i)
            bit = (succ_i[source] >> np.int64(i)) & 1
            out = (out & ~(np.int64(1) << np.int64(i))) | (bit << np.int64(i))
        result = out
    return result


def ordered_partitions(n: int) -> Iterator[list[list[int]]]:
    """All ordered set partitions of ``0..n-1`` (Fubini-number many).

    Fubini numbers grow fast (4683 at n = 6, 47292 at n = 7); exhaustive
    sweeps should stay at n <= 6.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")

    def rec(items: list[int]) -> Iterator[list[list[int]]]:
        if not items:
            yield []
            return
        first, rest = items[0], items[1:]
        for sub in rec(rest):
            for k in range(len(sub) + 1):
                yield sub[:k] + [[first]] + sub[k:]
            for k in range(len(sub)):
                yield sub[:k] + [[first] + sub[k]] + sub[k + 1 :]

    return rec(list(range(n)))


def structured_partitions(n: int) -> dict[str, list[list[int]]]:
    """A named family of structured ordered partitions of an ``n``-ring.

    Used on rings too large for exhaustion: the partitions that "almost"
    restore synchrony (one straggler node, two halves, matched pairs, the
    bipartition sweep) — the natural candidates for recovering the
    synchronous two-cycle, all of which fail.
    """
    if n < 4 or n % 2:
        raise ValueError(f"structured partitions need even n >= 4, got {n}")
    return {
        "full-sync": [list(range(n))],
        "straggler-last": [list(range(n - 1)), [n - 1]],
        "straggler-first": [[n - 1], list(range(n - 1))],
        "two-halves": [list(range(n // 2)), list(range(n // 2, n))],
        "evens-then-odds": [list(range(0, n, 2)), list(range(1, n, 2))],
        "adjacent-pairs": [[i, i + 1] for i in range(0, n, 2)],
        "singletons": [[i] for i in range(n)],
    }


def check_block_synchrony(
    exhaustive_n: int = 6,
    structured_sizes: Iterable[int] = (8, 10),
) -> TheoremReport:
    """E19: only perfect synchrony lets a MAJORITY ring oscillate.

    Exhaustive over every ordered partition of the ``exhaustive_n``-ring,
    plus the structured families on larger rings: the full block must be
    the *only* schedule with a proper cycle in its global map.
    """
    counterexamples: list[object] = []
    witnesses: list[object] = []
    details: dict[str, object] = {}

    ca = CellularAutomaton(Ring(exhaustive_n), MajorityRule(), memory=True)
    total = 0
    cyclic = 0
    for part in ordered_partitions(exhaustive_n):
        total += 1
        succ = block_sequential_map(ca, part)
        if PhaseSpace(succ, exhaustive_n).has_proper_cycle():
            cyclic += 1
            if part == [list(range(exhaustive_n))]:
                witnesses.append(("full-sync", exhaustive_n))
            else:
                counterexamples.append(
                    (exhaustive_n, [list(b) for b in part], "unexpected cycle")
                )
    details[f"ring{exhaustive_n}_ordered_partitions"] = total
    details[f"ring{exhaustive_n}_cyclic_partitions"] = cyclic
    if cyclic != 1:
        counterexamples.append(
            (exhaustive_n, f"{cyclic} cyclic partitions, expected exactly 1")
        )

    for n in sorted(set(int(m) for m in structured_sizes)):
        ca_n = CellularAutomaton(Ring(n), MajorityRule(), memory=True)
        for name, part in structured_partitions(n).items():
            succ = block_sequential_map(ca_n, part)
            has_cycle = PhaseSpace(succ, n).has_proper_cycle()
            details[f"ring{n}_{name}"] = has_cycle
            if name == "full-sync":
                if has_cycle:
                    witnesses.append((name, n))
                else:
                    counterexamples.append((n, name, "synchronous cycle missing"))
            elif has_cycle:
                counterexamples.append((n, name, "proper schedule has a cycle"))

    return TheoremReport(
        name="Block-sequential synchrony threshold (E19)",
        statement=(
            "For MAJORITY rings, the fully synchronous schedule is the only "
            "ordered partition whose global map has a proper cycle: any "
            "loss of simultaneity restores convergence"
        ),
        holds=not counterexamples,
        parameters={
            "exhaustive_n": exhaustive_n,
            "structured_sizes": sorted(set(int(m) for m in structured_sizes)),
        },
        witnesses=tuple(witnesses),
        counterexamples=tuple(counterexamples),
        details=details,
    )
