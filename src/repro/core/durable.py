"""The single durability layer for every artifact the system writes.

Five subsystems persist five artifact dialects (obs manifests + event
streams, harness journals + checkpoints, budget frontiers, ``BENCH_*``
reports, qa findings).  Before this module each hand-rolled its own
write path with inconsistent atomicity; now they all go through one
protocol:

* **whole-file writes** (:func:`durable_write_bytes` and friends) —
  temp file *in the same directory*, flush, ``fsync``, ``os.replace``,
  then an ``fsync`` of the containing directory so the rename itself is
  durable.  A crash at any point leaves either the previous complete
  file or the new complete file, never a torn one.  An optional sidecar
  (``<name>.sum``) records the content's sha256 and byte length so
  silent corruption (bit rot, a torn copy) is detectable later;
* **append-only JSONL** (:func:`jsonl_line` / :func:`decode_jsonl_line`)
  — each record embeds a CRC32 of its own serialisation under the
  :data:`CRC_KEY` key, so a reader can tell a torn tail (the normal
  state of a crashed run) from mid-file corruption, record by record.
  Newline framing carries the record length; a line that fails to
  decode or whose CRC mismatches is by construction not a record;
* **memmap arrays** (the ``frontier_succ.npy`` prefix) — callers use
  :func:`crc32_of_array_prefix` to stamp a length + checksum into the
  atomically-replaced metadata file written *after* the array, so
  metadata can never describe bytes that were not flushed first.

Every write path registers itself in :data:`WRITE_SITES` and probes
:func:`repro.harness.faults.inject` at its protocol points — including
the new ``crash`` fault kind, which SIGKILLs the process mid-protocol —
which is what lets the crash-consistency test matrix prove that a kill
at *every* site leaves a state ``repro doctor`` classifies as
consistent and ``--resume`` completes from.

The sidecar deliberately lags the payload (payload replaced first, then
the sidecar refreshed): after a crash between the two, the payload is a
complete, parseable file whose sidecar is stale — the doctor verifies
the payload on its own merits and refreshes the sidecar, rather than
quarantining good data.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from pathlib import Path
from typing import Any

__all__ = [
    "CRC_KEY",
    "SIDECAR_SUFFIX",
    "TMP_SUFFIX",
    "WRITE_SITES",
    "register_write_site",
    "registered_write_sites",
    "durable_write_bytes",
    "durable_write_text",
    "durable_write_json",
    "fsync_directory",
    "jsonl_line",
    "decode_jsonl_line",
    "crc32_hex",
    "crc32_of_array_prefix",
    "sidecar_path",
    "write_sidecar",
    "read_sidecar",
    "verify_sidecar",
]

#: JSON key carrying the per-record CRC32 in append-only JSONL streams.
CRC_KEY = "#crc"

#: Suffix of the integrity sidecar written next to durable whole files.
SIDECAR_SUFFIX = ".sum"

#: Suffix of the in-flight temp file (same directory as the target).
TMP_SUFFIX = ".tmp"

#: Registry of every durable write site: ``site -> description``.  The
#: crash-consistency matrix enumerates this to SIGKILL the process at
#: each one; keep descriptions short and operator-facing.
WRITE_SITES: dict[str, str] = {}

# Syscall hooks, swappable by the power-cut simulator in the tests: the
# simulator records the (write, fsync, replace, dir-fsync) sequence and
# replays every crash prefix to prove old-or-new-complete semantics.
_fsync = os.fsync
_replace = os.replace


def register_write_site(site: str, description: str) -> str:
    """Register (and return) a durable write site name."""
    WRITE_SITES[site] = description
    return site


def registered_write_sites() -> dict[str, str]:
    """Snapshot of the write-site registry (site -> description)."""
    return dict(WRITE_SITES)


def fsync_directory(directory: str | os.PathLike[str]) -> None:
    """``fsync`` a directory so a rename inside it survives power loss.

    Best-effort: some filesystems (and non-POSIX platforms) refuse
    directory handles; the rename is then only as durable as the OS
    makes it, which is the pre-existing behaviour everywhere.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        _fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


# -- integrity sidecars --------------------------------------------------------


def sidecar_path(path: str | os.PathLike[str]) -> Path:
    """``<name>.sum`` next to ``path``."""
    p = Path(path)
    return p.with_name(p.name + SIDECAR_SUFFIX)


def write_sidecar(path: str | os.PathLike[str], data: bytes) -> Path:
    """Write ``path``'s integrity sidecar (atomic, no recursion).

    Format: one line, ``sha256:<hex>:<length>``.  The sidecar is itself
    replaced atomically but carries no sidecar of its own.
    """
    side = sidecar_path(path)
    digest = hashlib.sha256(data).hexdigest()
    content = f"sha256:{digest}:{len(data)}\n".encode("ascii")
    tmp = side.with_name(side.name + TMP_SUFFIX)
    with open(tmp, "wb") as fh:
        fh.write(content)
        fh.flush()
        try:
            _fsync(fh.fileno())
        except OSError:
            pass
    _replace(tmp, side)
    return side


def read_sidecar(path: str | os.PathLike[str]) -> tuple[str, str, int] | None:
    """Parse ``path``'s sidecar into ``(algo, hexdigest, length)``.

    Returns ``None`` when the sidecar is missing or garbled (a garbled
    sidecar never condemns the payload — the payload is validated on
    its own merits).
    """
    try:
        raw = sidecar_path(path).read_text(encoding="ascii").strip()
    except (OSError, UnicodeDecodeError):
        return None
    fields = raw.split(":")
    if len(fields) != 3:
        return None
    algo, digest, length = fields
    try:
        return algo, digest, int(length)
    except ValueError:
        return None


def verify_sidecar(path: str | os.PathLike[str]) -> str:
    """Check ``path`` against its sidecar.

    Returns one of:

    * ``"ok"`` — sidecar present and the payload matches;
    * ``"missing"`` — no (readable) sidecar: integrity unknown;
    * ``"stale"`` — sidecar present but does not describe the payload.
      Either the payload rotted, or a crash landed between the payload
      replace and the sidecar refresh — the caller decides by
      validating the payload itself;
    * ``"unreadable"`` — the payload itself cannot be read.
    """
    parsed = read_sidecar(path)
    if parsed is None:
        return "missing"
    algo, digest, length = parsed
    try:
        data = Path(path).read_bytes()
    except OSError:
        return "unreadable"
    if len(data) != length:
        return "stale"
    if algo != "sha256" or hashlib.sha256(data).hexdigest() != digest:
        return "stale"
    return "ok"


# -- whole-file durable writes -------------------------------------------------


def durable_write_bytes(
    path: str | os.PathLike[str],
    data: bytes,
    *,
    site: str | None = None,
    checksum: bool = True,
    fsync: bool = True,
) -> Path:
    """Atomically and durably replace ``path`` with ``data``.

    Protocol: write ``<name>.tmp`` in the target's directory, flush +
    ``fsync`` it, ``os.replace`` over the target, ``fsync`` the
    directory, then refresh the ``<name>.sum`` sidecar (when
    ``checksum``).  ``fsync=False`` keeps the atomicity (tmp + replace)
    but skips the syncs for hot paths where the OS cache is acceptable.

    ``site`` names the fault-injection checkpoint: ``<site>`` fires
    before anything is written (a ``partial-write`` fault truncates the
    payload into the temp file and raises, leaving the target intact),
    ``<site>@rename`` between the durable temp and the replace, and
    ``<site>@dirsync`` between the replace and the directory sync — the
    three distinct crash windows of the protocol.
    """
    from repro.harness import faults

    target = Path(path)
    tmp = target.with_name(target.name + TMP_SUFFIX)
    if site is not None:
        fault = faults.inject(site)
        if fault is not None:  # partial-write: torn temp, target untouched
            with open(tmp, "wb") as fh:
                fh.write(data[: max(1, len(data) // 2)])
                fh.flush()
            raise faults.FaultError(site, fault.kind)
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        if fsync:
            try:
                _fsync(fh.fileno())
            except OSError:
                pass
    if site is not None:
        faults.inject(site + "@rename")
    _replace(tmp, target)
    if site is not None:
        faults.inject(site + "@dirsync")
    if fsync:
        fsync_directory(target.parent)
    if checksum:
        write_sidecar(target, data)
    return target


def durable_write_text(
    path: str | os.PathLike[str],
    text: str,
    *,
    site: str | None = None,
    checksum: bool = True,
    fsync: bool = True,
    encoding: str = "utf-8",
) -> Path:
    """:func:`durable_write_bytes` for text content."""
    return durable_write_bytes(
        path, text.encode(encoding), site=site, checksum=checksum, fsync=fsync
    )


def durable_write_json(
    path: str | os.PathLike[str],
    obj: Any,
    *,
    site: str | None = None,
    checksum: bool = True,
    fsync: bool = True,
    indent: int | None = 2,
    sort_keys: bool = False,
) -> Path:
    """:func:`durable_write_bytes` for a JSON document (+ trailing LF)."""
    payload = json.dumps(obj, indent=indent, sort_keys=sort_keys, default=str)
    return durable_write_bytes(
        path,
        (payload + "\n").encode("utf-8"),
        site=site,
        checksum=checksum,
        fsync=fsync,
    )


# -- append-only JSONL integrity -----------------------------------------------


def crc32_hex(data: bytes) -> str:
    """CRC32 of ``data`` as eight lowercase hex digits."""
    return f"{zlib.crc32(data) & 0xFFFFFFFF:08x}"


def jsonl_line(payload: dict) -> str:
    """Serialise one JSONL record with an embedded CRC32 (no newline).

    The CRC is computed over the record serialised *without* the
    :data:`CRC_KEY` key, which is then appended as the final key — so
    :func:`decode_jsonl_line` can pop it and recompute over the same
    byte sequence.  The line remains plain JSON for any consumer that
    ignores the extra key.
    """
    body = json.dumps(payload, default=str)
    crc = crc32_hex(body.encode("utf-8"))
    if body == "{}":
        return json.dumps({CRC_KEY: crc})
    return f'{body[:-1]}, "{CRC_KEY}": "{crc}"}}'


def decode_jsonl_line(line: str) -> tuple[dict | None, str]:
    """Parse one JSONL line; returns ``(payload, status)``.

    ``status`` is one of:

    * ``"ok"`` — decoded and the embedded CRC matches;
    * ``"unchecked"`` — decoded but carries no CRC (a pre-durability
      record, or one written by an external tool) — trusted as before;
    * ``"mismatch"`` — decoded JSON whose CRC disagrees: mid-file
      corruption, payload is returned for forensics but must not be
      trusted;
    * ``"garbled"`` — not decodable at all (the torn tail of a crashed
      run, or arbitrary corruption), payload is ``None``.
    """
    try:
        obj = json.loads(line)
    except json.JSONDecodeError:
        return None, "garbled"
    if not isinstance(obj, dict):
        return None, "garbled"
    crc = obj.pop(CRC_KEY, None)
    if crc is None:
        return obj, "unchecked"
    body = json.dumps(obj, default=str)
    if crc32_hex(body.encode("utf-8")) != crc:
        return obj, "mismatch"
    return obj, "ok"


# -- memmap prefix checksums ---------------------------------------------------


def crc32_of_array_prefix(array, rows: int, chunk_rows: int = 1 << 20) -> str:
    """CRC32 (hex) over the first ``rows`` rows of a (mem)mapped array.

    Chunked so a multi-hundred-MB frontier never materialises in RAM;
    the resulting stamp goes into the atomically-written metadata that
    trails the array, giving resumed builds torn-write detection.
    """
    crc = 0
    for lo in range(0, int(rows), chunk_rows):
        hi = min(int(rows), lo + chunk_rows)
        chunk = array[lo:hi]
        crc = zlib.crc32(chunk.tobytes() if hasattr(chunk, "tobytes") else bytes(chunk), crc)
    return f"{crc & 0xFFFFFFFF:08x}"
