"""The paper's primary contribution, as executable mathematics.

This package implements classical (parallel/concurrent) cellular automata,
their sequential counterparts (SCA), the phase-space machinery needed to
compare them, the Goles–Martinez Lyapunov energy that explains the paper's
convergence results, and executable versions of every lemma, theorem,
corollary and proposition in the paper.
"""

from repro.core.automaton import CellularAutomaton
from repro.core.budget import (
    Budget,
    BudgetExceeded,
    CancelToken,
    Partial,
    ambient_budget,
    parse_size,
    set_ambient,
    use_budget,
)
from repro.core.boolean import (
    BooleanFunction,
    all_boolean_functions,
    majority_function,
    monotone_symmetric_functions,
    symmetric_functions,
    xor_function,
)
from repro.core.heterogeneous import HeterogeneousCA
from repro.core.energy import (
    ThresholdNetwork,
    parallel_pair_energy,
    sequential_energy,
    verify_parallel_energy_monotone,
    verify_sequential_energy_decrease,
)
from repro.core.evolution import (
    OrbitInfo,
    parallel_orbit,
    parallel_trajectory,
    sequential_converge,
    sequential_trajectory,
)
from repro.core.interleaving import (
    InterleavingReport,
    captures_parallel_step,
    interleaving_capture_report,
    orbit_reproducible_sequentially,
    sequential_reachable_set,
)
from repro.core.nondet import NondetPhaseSpace, build_nondet_phase_space
from repro.core.phase_space import ConfigClass, PhaseSpace, build_phase_space
from repro.core.rules import (
    MajorityRule,
    SimpleThresholdRule,
    TableRule,
    TotalisticRule,
    UpdateRule,
    WolframRule,
    XorRule,
)
from repro.core.schedules import (
    AlphaAsynchronous,
    BlockSequential,
    FixedPermutation,
    FixedWord,
    RandomPermutationSweeps,
    RandomSingleNode,
    Synchronous,
)
from repro.core.theorems import (
    TheoremReport,
    check_corollary1,
    check_lemma1_parallel,
    check_lemma1_sequential,
    check_lemma2_parallel,
    check_lemma2_sequential,
    check_monotone_boundary,
    check_nonhomogeneous_threshold,
    check_proposition1,
    check_theorem1,
    check_bipartite_two_cycles,
)

__all__ = [
    "CellularAutomaton",
    "HeterogeneousCA",
    "Budget",
    "BudgetExceeded",
    "CancelToken",
    "Partial",
    "ambient_budget",
    "parse_size",
    "set_ambient",
    "use_budget",
    "build_phase_space",
    "build_nondet_phase_space",
    "BooleanFunction",
    "all_boolean_functions",
    "majority_function",
    "monotone_symmetric_functions",
    "symmetric_functions",
    "xor_function",
    "ThresholdNetwork",
    "sequential_energy",
    "parallel_pair_energy",
    "verify_sequential_energy_decrease",
    "verify_parallel_energy_monotone",
    "OrbitInfo",
    "parallel_orbit",
    "parallel_trajectory",
    "sequential_converge",
    "sequential_trajectory",
    "InterleavingReport",
    "captures_parallel_step",
    "interleaving_capture_report",
    "orbit_reproducible_sequentially",
    "sequential_reachable_set",
    "NondetPhaseSpace",
    "PhaseSpace",
    "ConfigClass",
    "UpdateRule",
    "TableRule",
    "MajorityRule",
    "SimpleThresholdRule",
    "TotalisticRule",
    "WolframRule",
    "XorRule",
    "Synchronous",
    "AlphaAsynchronous",
    "FixedPermutation",
    "FixedWord",
    "BlockSequential",
    "RandomPermutationSweeps",
    "RandomSingleNode",
    "TheoremReport",
    "check_lemma1_parallel",
    "check_lemma1_sequential",
    "check_lemma2_parallel",
    "check_lemma2_sequential",
    "check_theorem1",
    "check_corollary1",
    "check_proposition1",
    "check_bipartite_two_cycles",
    "check_nonhomogeneous_threshold",
    "check_monotone_boundary",
]
