"""Executable versions of the paper's formal results.

Each ``check_*`` function reproduces one lemma/theorem/corollary/proposition
as an exhaustive finite verification plus (where the paper gives one) an
explicit witness construction, and returns a structured
:class:`TheoremReport`.  The benchmark harness runs these checks and
EXPERIMENTS.md records their verdicts against the paper's claims.

Conventions (Section 3 of the paper): Boolean automata, rules *with memory*
unless noted, finite cellular spaces are rings (circular boundary), and the
infinite results are checked exactly on the two-way infinite line via
:mod:`repro.spaces.infinite`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.automaton import CellularAutomaton
from repro.core.boolean import monotone_symmetric_functions
from repro.core.nondet import NondetPhaseSpace
from repro.core.phase_space import PhaseSpace
from repro.core.rules import MajorityRule, SimpleThresholdRule, TableRule
from repro.spaces.base import FiniteSpace
from repro.spaces.grid import Grid2D
from repro.spaces.hypercube import Hypercube
from repro.spaces.infinite import SupportConfig, infinite_step
from repro.spaces.line import Ring
from repro.util.bitops import bits_to_int, config_str

__all__ = [
    "TheoremReport",
    "alternating_config",
    "block_config",
    "check_lemma1_parallel",
    "check_lemma1_sequential",
    "check_theorem1",
    "check_lemma2_parallel",
    "check_lemma2_sequential",
    "check_corollary1",
    "check_proposition1",
    "check_bipartite_two_cycles",
    "check_nonhomogeneous_threshold",
    "check_monotone_boundary",
]


@dataclass(frozen=True)
class TheoremReport:
    """Verdict of one executable theorem check.

    ``holds`` is True when every instance checked agrees with the paper;
    ``witnesses`` carries positive evidence (e.g. the two-cycles a lemma
    promises), ``counterexamples`` any violations (always empty when
    ``holds``), and ``details`` per-instance measurements.
    """

    name: str
    statement: str
    holds: bool
    parameters: dict[str, object] = field(default_factory=dict)
    witnesses: tuple[object, ...] = ()
    counterexamples: tuple[object, ...] = ()
    details: dict[str, object] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.holds


# -- witness constructions ----------------------------------------------------


def alternating_config(n: int) -> np.ndarray:
    """The configuration ``0101...`` on ``n`` nodes (node i has state i mod 2).

    The paper's Lemma 1(i) two-cycle witness (for even rings and odd radii).
    """
    return (np.arange(n) % 2).astype(np.uint8)


def block_config(n: int, radius: int) -> np.ndarray:
    """Blocks of ``radius`` zeros then ``radius`` ones, repeated: ``0^r 1^r ...``.

    Corollary 1's two-cycle witness for radius ``r``; needs ``2r | n``.
    """
    if n % (2 * radius):
        raise ValueError(f"block config needs n divisible by {2 * radius}")
    return ((np.arange(n) % (2 * radius)) >= radius).astype(np.uint8)


def _is_two_cycle(ca: CellularAutomaton, state: np.ndarray) -> bool:
    """True iff ``state`` lies on a proper two-cycle of the parallel map."""
    one = ca.step(state)
    two = ca.step(one)
    return (not np.array_equal(one, state)) and np.array_equal(two, state)


# -- Lemma 1 --------------------------------------------------------------------


def check_lemma1_parallel(
    ring_sizes: Iterable[int] = (4, 6, 8, 10, 12, 14),
    exhaustive_limit: int = 14,
) -> TheoremReport:
    """Lemma 1(i): parallel 1-D MAJORITY CA (r=1) have temporal cycles.

    For each even ring size the alternating configuration is verified to be
    a two-cycle; rings up to ``exhaustive_limit`` get a full phase-space
    search confirming the two-cycles found are real and of period exactly 2.
    The infinite-line witness ``...0101...`` is checked exactly via the
    eventually-periodic configuration machinery.
    """
    witnesses: list[object] = []
    counterexamples: list[object] = []
    details: dict[str, object] = {}
    sizes = sorted(set(int(n) for n in ring_sizes))
    for n in sizes:
        if n % 2:
            raise ValueError(f"Lemma 1(i) witness needs even ring size, got {n}")
        ca = CellularAutomaton(Ring(n, radius=1), MajorityRule(), memory=True)
        alt = alternating_config(n)
        if _is_two_cycle(ca, alt):
            witnesses.append((n, config_str(bits_to_int(alt), n)))
        else:
            counterexamples.append((n, "alternating configuration not a two-cycle"))
        if n <= exhaustive_limit:
            ps = PhaseSpace.from_automaton(ca)
            proper = ps.proper_cycles
            details[f"ring{n}_proper_cycles"] = len(proper)
            details[f"ring{n}_cycle_lengths"] = sorted(len(c) for c in proper)
            if not proper:
                counterexamples.append((n, "no proper cycle in exhaustive search"))

    # Infinite line: ...0101... <-> ...1010... is an exact two-cycle.
    rule = MajorityRule().with_arity(3)
    alt_inf = SupportConfig.periodic("01")
    image = infinite_step(rule, alt_inf)
    back = infinite_step(rule, image)
    infinite_ok = image != alt_inf and back == alt_inf
    details["infinite_line_two_cycle"] = infinite_ok
    if infinite_ok:
        witnesses.append(("infinite", "(01)* <-> (10)*"))
    else:
        counterexamples.append(("infinite", "periodic 01 not a two-cycle"))

    return TheoremReport(
        name="Lemma 1(i)",
        statement=(
            "1-D parallel CA with r=1 and the MAJORITY update rule have "
            "finite temporal cycles in the phase space"
        ),
        holds=not counterexamples,
        parameters={"ring_sizes": sizes, "radius": 1},
        witnesses=tuple(witnesses),
        counterexamples=tuple(counterexamples),
        details=details,
    )


def check_lemma1_sequential(
    ring_sizes: Iterable[int] = (3, 4, 5, 6, 7, 8, 9, 10, 11, 12),
) -> TheoremReport:
    """Lemma 1(ii): sequential 1-D MAJORITY CA (r=1) are cycle-free.

    Exhaustive: the full nondeterministic transition graph over all
    configurations and all node choices is built for each ring size, and
    searched for strongly connected components of size >= 2 — none may
    exist, *irrespective of the update ordering* (the nondeterministic
    graph subsumes every ordering).
    """
    counterexamples: list[object] = []
    details: dict[str, object] = {}
    sizes = sorted(set(int(n) for n in ring_sizes))
    for n in sizes:
        ca = CellularAutomaton(Ring(n, radius=1), MajorityRule(), memory=True)
        nps = NondetPhaseSpace.from_automaton(ca)
        cyc = nps.has_proper_cycle()
        details[f"ring{n}_has_cycle"] = cyc
        details[f"ring{n}_fixed_points"] = int(nps.fixed_points.size)
        if cyc:
            counterexamples.append((n, "proper cycle found in sequential PS"))
    return TheoremReport(
        name="Lemma 1(ii)",
        statement=(
            "1-D sequential CA with r=1 and the MAJORITY update rule have no "
            "finite cycles in the phase space, irrespective of update order"
        ),
        holds=not counterexamples,
        parameters={"ring_sizes": sizes, "radius": 1},
        counterexamples=tuple(counterexamples),
        details=details,
    )


# -- Theorem 1 --------------------------------------------------------------------


def check_theorem1(
    ring_sizes: Iterable[int] = (3, 4, 5, 6, 7, 8, 9, 10),
    radius: int = 1,
) -> TheoremReport:
    """Theorem 1: every monotone symmetric Boolean SCA (r=1) is cycle-free.

    The class of monotone symmetric rules at arity ``2r + 1`` is exactly the
    ``2r + 3`` count-threshold functions; each is checked exhaustively on
    every requested ring size.
    """
    counterexamples: list[object] = []
    details: dict[str, object] = {}
    sizes = sorted(set(int(n) for n in ring_sizes))
    arity = 2 * radius + 1
    rules = list(monotone_symmetric_functions(arity))
    for t, func in enumerate(rules):
        rule = TableRule(func, name=f"threshold>={t}")
        for n in sizes:
            if n < 2 * radius + 1:
                continue
            ca = CellularAutomaton(Ring(n, radius=radius), rule, memory=True)
            nps = NondetPhaseSpace.from_automaton(ca)
            if nps.has_proper_cycle():
                counterexamples.append((n, rule.name))
    details["rules_checked"] = len(rules)
    details["rule_class"] = f"monotone symmetric, arity {arity}"
    return TheoremReport(
        name="Theorem 1",
        statement=(
            "For any monotone symmetric Boolean 1-D sequential CA and any "
            "update order, the phase space is cycle-free"
        ),
        holds=not counterexamples,
        parameters={"ring_sizes": sizes, "radius": radius},
        counterexamples=tuple(counterexamples),
        details=details,
    )


# -- Lemma 2 (radius 2) ------------------------------------------------------------


def check_lemma2_parallel(
    ring_sizes: Iterable[int] = (8, 12, 16),
    exhaustive_limit: int = 12,
) -> TheoremReport:
    """Lemma 2(i): parallel 1-D MAJORITY CA with r=2 have cycles.

    The witness is Corollary 1's block configuration ``0^2 1^2 0^2 1^2 ...``
    (ring sizes divisible by 4), plus exhaustive search at small sizes and
    the exact infinite-line check of the periodic word ``0011``.
    """
    witnesses: list[object] = []
    counterexamples: list[object] = []
    details: dict[str, object] = {}
    sizes = sorted(set(int(n) for n in ring_sizes))
    for n in sizes:
        if n % 4:
            raise ValueError(f"Lemma 2(i) witness needs 4 | n, got {n}")
        ca = CellularAutomaton(Ring(n, radius=2), MajorityRule(), memory=True)
        blocks = block_config(n, radius=2)
        if _is_two_cycle(ca, blocks):
            witnesses.append((n, config_str(bits_to_int(blocks), n)))
        else:
            counterexamples.append((n, "block configuration not a two-cycle"))
        if n <= exhaustive_limit:
            ps = PhaseSpace.from_automaton(ca)
            details[f"ring{n}_proper_cycles"] = len(ps.proper_cycles)
            if not ps.proper_cycles:
                counterexamples.append((n, "no proper cycle in exhaustive search"))

    rule = MajorityRule().with_arity(5)
    blocks_inf = SupportConfig.periodic("0011")
    image = infinite_step(rule, blocks_inf)
    back = infinite_step(rule, image)
    infinite_ok = image != blocks_inf and back == blocks_inf
    details["infinite_line_two_cycle"] = infinite_ok
    if infinite_ok:
        witnesses.append(("infinite", "(0011)* <-> (1100)*"))
    else:
        counterexamples.append(("infinite", "periodic 0011 not a two-cycle"))

    return TheoremReport(
        name="Lemma 2(i)",
        statement=(
            "1-D parallel CA with r=2 and the MAJORITY update rule have "
            "finite cycles in the phase space"
        ),
        holds=not counterexamples,
        parameters={"ring_sizes": sizes, "radius": 2},
        witnesses=tuple(witnesses),
        counterexamples=tuple(counterexamples),
        details=details,
    )


def check_lemma2_sequential(
    ring_sizes: Iterable[int] = (5, 6, 7, 8, 9, 10, 11),
) -> TheoremReport:
    """Lemma 2(ii): sequential 1-D MAJORITY CA with r=2 are cycle-free."""
    counterexamples: list[object] = []
    details: dict[str, object] = {}
    sizes = sorted(set(int(n) for n in ring_sizes))
    for n in sizes:
        ca = CellularAutomaton(Ring(n, radius=2), MajorityRule(), memory=True)
        nps = NondetPhaseSpace.from_automaton(ca)
        cyc = nps.has_proper_cycle()
        details[f"ring{n}_has_cycle"] = cyc
        if cyc:
            counterexamples.append((n, "proper cycle found in sequential PS"))
    return TheoremReport(
        name="Lemma 2(ii)",
        statement=(
            "1-D sequential CA with r=2 and the MAJORITY update rule have a "
            "cycle-free phase space for every sequential update order"
        ),
        holds=not counterexamples,
        parameters={"ring_sizes": sizes, "radius": 2},
        counterexamples=tuple(counterexamples),
        details=details,
    )


# -- Corollary 1 ----------------------------------------------------------------------


def check_corollary1(radii: Iterable[int] = (1, 2, 3, 4, 5, 6)) -> TheoremReport:
    """Corollary 1: for every r >= 1 some threshold CA has a two-cycle.

    For each radius the block configuration ``0^r 1^r ...`` is verified to
    be a two-cycle of MAJORITY on a suitable ring, and for odd radii the
    alternating configuration gives a second, distinct two-cycle (the
    corollary's "at least two distinct two-cycles" refinement).
    """
    witnesses: list[object] = []
    counterexamples: list[object] = []
    details: dict[str, object] = {}
    radii = sorted(set(int(r) for r in radii))
    for r in radii:
        n = max(4 * r, 2 * (2 * r + 1) + 2)
        n += (-n) % (2 * r)  # make 2r | n; 2r is even, so n stays even too
        ca = CellularAutomaton(Ring(n, radius=r), MajorityRule(), memory=True)
        blocks = block_config(n, r)
        block_ok = _is_two_cycle(ca, blocks)
        details[f"r{r}_n"] = n
        details[f"r{r}_block_two_cycle"] = block_ok
        if block_ok:
            witnesses.append((r, n, "block", config_str(bits_to_int(blocks), n)))
        else:
            counterexamples.append((r, n, "block configuration not a two-cycle"))
        if r % 2 == 1:
            alt = alternating_config(n)
            alt_ok = _is_two_cycle(ca, alt)
            details[f"r{r}_alternating_two_cycle"] = alt_ok
            if not alt_ok:
                counterexamples.append(
                    (r, n, "alternating configuration not a two-cycle")
                )
            elif r > 1:
                # For r >= 3 the alternating and block cycles are distinct,
                # giving the corollary's "at least two distinct two-cycles".
                distinct = not np.array_equal(alt, blocks) and not np.array_equal(
                    alt, ca.step(blocks)
                )
                details[f"r{r}_two_distinct_cycles"] = distinct
                if distinct:
                    witnesses.append(
                        (r, n, "alternating", config_str(bits_to_int(alt), n))
                    )
                else:
                    counterexamples.append(
                        (r, n, "odd radius lacks a second distinct two-cycle")
                    )
            else:
                witnesses.append(
                    (r, n, "alternating", config_str(bits_to_int(alt), n))
                )
    return TheoremReport(
        name="Corollary 1",
        statement=(
            "For all r there exists a monotone symmetric (threshold) CA with "
            "finite cycles; odd r gives at least two distinct two-cycles"
        ),
        holds=not counterexamples,
        parameters={"radii": radii},
        witnesses=tuple(witnesses),
        counterexamples=tuple(counterexamples),
        details=details,
    )


# -- Proposition 1 ----------------------------------------------------------------------


def check_proposition1(
    spaces: Sequence[FiniteSpace] | None = None,
    thresholds: Iterable[int] | None = None,
) -> TheoremReport:
    """Proposition 1 (Goles–Martinez): threshold orbits have period <= 2.

    Exhaustively verifies, for every configuration of every (space, rule)
    pair, that the parallel orbit ends in a fixed point or a two-cycle —
    i.e. every attractor cycle of the phase space has length <= 2.
    """
    if spaces is None:
        spaces = [
            Ring(8, radius=1),
            Ring(9, radius=1),
            Ring(10, radius=2),
            Grid2D(3, 4, torus=True),
            Hypercube(3),
            Hypercube(4),
        ]
    counterexamples: list[object] = []
    details: dict[str, object] = {}
    checked = 0
    for space in spaces:
        widths = sorted({len(space.input_window(i, True)) for i in range(space.n)})
        rule_list: list[tuple[str, object]] = [("majority", MajorityRule())]
        ths = (
            sorted(set(int(t) for t in thresholds))
            if thresholds is not None
            else list(range(1, max(widths) + 1))
        )
        for t in ths:
            rule_list.append((f"threshold>={t}", SimpleThresholdRule(t)))
        for rname, rule in rule_list:
            ca = CellularAutomaton(space, rule, memory=True)
            ps = PhaseSpace.from_automaton(ca)
            lengths = ps.cycle_lengths()
            checked += 1
            key = f"{space.describe()}::{rname}"
            details[key] = {
                "max_cycle_length": max(lengths),
                "two_cycles": sum(1 for length in lengths if length == 2),
                "fixed_points": sum(1 for length in lengths if length == 1),
            }
            if max(lengths) > 2:
                counterexamples.append((key, f"cycle of length {max(lengths)}"))
    return TheoremReport(
        name="Proposition 1",
        statement=(
            "For elementary symmetric threshold rules on finite cellular "
            "spaces, F^(t+2) = F^t eventually: every orbit converges to a "
            "fixed point or a two-cycle"
        ),
        holds=not counterexamples,
        parameters={
            "spaces": [s.describe() for s in spaces],
            "pairs_checked": checked,
        },
        counterexamples=tuple(counterexamples),
        details=details,
    )


# -- bipartite two-cycles ------------------------------------------------------------------


def check_bipartite_two_cycles(
    spaces: Sequence[FiniteSpace] | None = None,
) -> TheoremReport:
    """Section 3's remark: bipartite cellular spaces give parallel two-cycles.

    For every bipartite space with minimum degree >= 2 the indicator of one
    side of the bipartition is a two-cycle of MAJORITY-with-memory: each
    1-node sees mostly 0s and flips down, each 0-node sees mostly 1s and
    flips up, so the configuration alternates with its complement.
    """
    if spaces is None:
        spaces = [
            Ring(6, radius=1),
            Ring(10, radius=1),
            Grid2D(4, 4, torus=True),
            Grid2D(4, 6, torus=True),
            Hypercube(2),
            Hypercube(3),
            Hypercube(4),
        ]
    witnesses: list[object] = []
    counterexamples: list[object] = []
    details: dict[str, object] = {}
    for space in spaces:
        if not space.is_bipartite():
            counterexamples.append((space.describe(), "space is not bipartite"))
            continue
        min_deg = min(space.degree(i) for i in range(space.n))
        if min_deg < 2:
            counterexamples.append(
                (space.describe(), f"minimum degree {min_deg} < 2")
            )
            continue
        left, _ = space.bipartition()
        state = np.zeros(space.n, dtype=np.uint8)
        for i in left:
            state[i] = 1
        ca = CellularAutomaton(space, MajorityRule(), memory=True)
        ok = _is_two_cycle(ca, state)
        details[space.describe()] = ok
        if ok:
            witnesses.append((space.describe(), config_str(bits_to_int(state), space.n)))
        else:
            counterexamples.append(
                (space.describe(), "bipartition indicator is not a two-cycle")
            )
    return TheoremReport(
        name="Bipartite two-cycles",
        statement=(
            "For any bipartite cellular space (min degree >= 2), the parallel "
            "threshold CA has temporal two-cycles"
        ),
        holds=not counterexamples,
        parameters={"spaces": [s.describe() for s in (spaces or [])]},
        witnesses=tuple(witnesses),
        counterexamples=tuple(counterexamples),
        details=details,
    )


# -- Section 4 extensions -------------------------------------------------------------------


def check_nonhomogeneous_threshold(
    ring_sizes: Iterable[int] = (6, 8, 10),
    assignments_per_size: int = 8,
    seed: int = 2004,
) -> TheoremReport:
    """Section 4 extension: non-homogeneous threshold CA behave like
    homogeneous ones.

    Every node gets its *own* count threshold (drawn at random, including
    the constant rules); the Goles-Martinez energy argument only needs the
    symmetric unit-weight graph plus per-node thresholds, so the paper's
    dichotomy should persist: parallel orbits of period <= 2, sequential
    phase spaces cycle-free.  Verified exhaustively per sampled assignment.
    """
    from repro.core.heterogeneous import HeterogeneousCA
    from repro.core.rules import SimpleThresholdRule

    rng = np.random.default_rng(seed)
    counterexamples: list[object] = []
    details: dict[str, object] = {}
    sizes = sorted(set(int(n) for n in ring_sizes))
    checked = 0
    for n in sizes:
        space = Ring(n, radius=1)
        width = 3  # with-memory radius-1 windows
        for trial in range(assignments_per_size):
            thetas = rng.integers(0, width + 2, size=n)
            rules = [SimpleThresholdRule(int(t)) for t in thetas]
            ca = HeterogeneousCA(space, rules, memory=True)
            ps = PhaseSpace(ca.step_all(), n)
            max_len = max(ps.cycle_lengths())
            seq_cycles = NondetPhaseSpace(
                ca.all_node_successors(), n
            ).has_proper_cycle()
            checked += 1
            key = f"ring{n}_trial{trial}"
            details[key] = {
                "thetas": thetas.tolist(),
                "max_parallel_cycle": max_len,
                "sequential_cycles": seq_cycles,
            }
            if max_len > 2:
                counterexamples.append((key, f"parallel cycle length {max_len}"))
            if seq_cycles:
                counterexamples.append((key, "sequential proper cycle"))
    return TheoremReport(
        name="Non-homogeneous thresholds (Sec. 4 extension)",
        statement=(
            "Threshold CA with per-node thresholds keep the homogeneous "
            "dichotomy: parallel orbits have period <= 2 and sequential "
            "phase spaces are cycle-free"
        ),
        holds=not counterexamples,
        parameters={
            "ring_sizes": sizes,
            "assignments_per_size": assignments_per_size,
            "assignments_checked": checked,
            "seed": seed,
        },
        counterexamples=tuple(counterexamples),
        details=details,
    )


def check_monotone_boundary(
    ring_sizes: Iterable[int] = (3, 4, 5, 6, 7),
) -> TheoremReport:
    """Section 4's open question, answered at radius 1: where do sequential
    computations "catch up" with concurrency?

    Exhaustive over all 20 monotone 3-input rules (symmetric or not) on the
    given rings: exactly the two *shift* rules — the pure projections onto
    the left or right neighbor, x_i' = x_{i-1} and x_i' = x_{i+1} — have
    proper cycles in their sequential phase spaces (single-node updates can
    rotate a pattern around the ring and return).  Every other monotone
    rule, including every non-symmetric one, remains sequentially
    cycle-free: dropping symmetry alone does NOT let interleavings cycle;
    dropping the self-input (and with it the positive diagonal of the
    energy form) does.
    """
    from repro.core.boolean import all_boolean_functions

    left_shift = tuple((c >> 0) & 1 for c in range(8))   # input 0 = left
    right_shift = tuple((c >> 2) & 1 for c in range(8))  # input 2 = right
    expected_cyclic = {left_shift, right_shift}

    counterexamples: list[object] = []
    details: dict[str, object] = {}
    witnesses: list[object] = []
    sizes = sorted(set(int(n) for n in ring_sizes))
    monotone = [f for f in all_boolean_functions(3) if f.is_monotone()]
    details["monotone_rules"] = len(monotone)
    for func in monotone:
        rule = TableRule(func)
        cyclic_on = []
        for n in sizes:
            ca = CellularAutomaton(Ring(n, radius=1), rule, memory=True)
            if NondetPhaseSpace.from_automaton(ca).has_proper_cycle():
                cyclic_on.append(n)
        table_key = tuple(int(b) for b in func.table)
        label = "".join(map(str, table_key))
        details[label] = {
            "symmetric": func.is_symmetric(),
            "sequential_cycles_on": cyclic_on,
        }
        should_cycle = table_key in expected_cyclic
        if should_cycle and cyclic_on == sizes:
            witnesses.append((label, "shift rule cycles on every ring"))
        elif should_cycle:
            counterexamples.append((label, f"shift rule only cycles on {cyclic_on}"))
        elif cyclic_on:
            counterexamples.append((label, f"unexpected cycles on {cyclic_on}"))
    return TheoremReport(
        name="Monotone boundary (Sec. 4 open question)",
        statement=(
            "Among monotone radius-1 rules, exactly the two neighbor "
            "projections (shifts) admit sequential cycles; all other "
            "monotone rules, symmetric or not, are sequentially cycle-free"
        ),
        holds=not counterexamples,
        parameters={"ring_sizes": sizes},
        witnesses=tuple(witnesses),
        counterexamples=tuple(counterexamples),
        details=details,
    )
