"""Goles–Martinez Lyapunov energy for threshold automata.

The deep reason behind the paper's results (its Proposition 1 cites Garzon
and Goles–Martinez) is that threshold networks admit energy functions:

* **Sequential energy** ``E(x) = -1/2 x^T W x + theta^T x`` with symmetric
  integer weights ``W`` (diagonal = the with-memory self-weight) strictly
  decreases on every *effective* sequential flip when ``w_ii > 0``, and
  cannot sustain a cycle even when ``w_ii = 0`` (each returning walk would
  need energy-neutral up-flips matched by strictly-decreasing down-flips).
  Bounded below, it forbids cycles in any threshold SCA — the content of
  Lemma 1(ii) and Theorem 1 — and yields an explicit bound on the number of
  effective flips, hence convergence under any fair schedule.

* **Parallel pair energy** ``E2(x, y) = -x^T W y + theta^T (x + y)`` is
  non-increasing along synchronous orbits (with ``y = F(x)``) and is
  stationary only on orbits of period <= 2 — Proposition 1's "fixed point
  or two-cycle" dichotomy.

:class:`ThresholdNetwork` converts any monotone-symmetric-rule automaton
into weight/threshold form; the ``verify_*`` helpers check the Lyapunov
properties numerically, providing an independent, scalable confirmation of
the exhaustive phase-space results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.automaton import CellularAutomaton
from repro.core.rules import MajorityRule, SimpleThresholdRule, TableRule
from repro.core.schedules import UpdateSchedule
from repro.util.validation import check_positive, check_state_vector

__all__ = [
    "ThresholdNetwork",
    "sequential_energy",
    "parallel_pair_energy",
    "verify_sequential_energy_decrease",
    "verify_parallel_energy_monotone",
    "EnergyAudit",
]


class ThresholdNetwork:
    """A Boolean threshold network: ``x_i' = [ (W x)_i >= theta_i ]``.

    ``W`` is a symmetric integer matrix whose diagonal carries the
    with-memory self-weight; ``theta`` is the per-node firing threshold.
    """

    def __init__(self, weights: np.ndarray | sparse.spmatrix, theta: np.ndarray):
        w = (
            weights.toarray()
            if sparse.issparse(weights)
            else np.asarray(weights, dtype=np.int64)
        ).astype(np.int64)
        if w.ndim != 2 or w.shape[0] != w.shape[1]:
            raise ValueError(f"weight matrix must be square, got shape {w.shape}")
        if not np.array_equal(w, w.T):
            raise ValueError("weight matrix must be symmetric")
        th = np.asarray(theta, dtype=np.int64).ravel()
        if th.size != w.shape[0]:
            raise ValueError(
                f"theta has {th.size} entries for {w.shape[0]} nodes"
            )
        self.weights = w
        self.theta = th

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.theta.size

    @classmethod
    def from_automaton(cls, ca: CellularAutomaton) -> "ThresholdNetwork":
        """Weight/threshold form of a monotone-symmetric-rule automaton.

        Every monotone symmetric rule is a count threshold; the network has
        unit weights on the space's edges, a unit diagonal when the
        automaton is with-memory, and ``theta_i`` equal to the rule's count
        threshold at node ``i``'s window width.
        """
        rule = ca.rule
        w = ca.space.adjacency_matrix().toarray().astype(np.int64)
        if ca.memory:
            np.fill_diagonal(w, 1)
        _, lengths = ca.space.windows(ca.memory)
        theta = np.empty(ca.n, dtype=np.int64)
        for i in range(ca.n):
            length = int(lengths[i])
            if isinstance(rule, SimpleThresholdRule):
                theta[i] = rule.threshold
            elif isinstance(rule, MajorityRule):
                theta[i] = (
                    length // 2 + 1 if rule.ties == "zero" else (length + 1) // 2
                )
            elif isinstance(rule, TableRule):
                t = rule.function.as_count_threshold()
                if t is None:
                    raise ValueError(
                        f"{rule.name} is not monotone symmetric; no threshold form"
                    )
                theta[i] = t
            else:
                raise ValueError(
                    f"cannot derive a threshold form for rule {rule.name}"
                )
        # Quiescent boundary slots (windows wider than 1 + degree) contribute
        # zero weight and zero count, so no adjustment to theta is needed.
        return cls(w, theta)

    # -- dynamics (independent implementation, used for cross-validation) ----

    def node_next(self, state: np.ndarray, i: int) -> int:
        """Next value of node ``i``: fires iff its weighted input sum >= theta."""
        s = int(self.weights[i] @ state.astype(np.int64))
        return int(s >= self.theta[i])

    def step(self, state: np.ndarray) -> np.ndarray:
        """Synchronous step of the whole network."""
        state = check_state_vector(state, self.n)
        sums = self.weights @ state.astype(np.int64)
        return (sums >= self.theta).astype(np.uint8)

    # -- energies ---------------------------------------------------------------

    def sequential_energy(self, state: np.ndarray) -> float:
        """``E(x) = -1/2 x^T W x + theta^T x`` — the sequential Lyapunov."""
        x = check_state_vector(state, self.n).astype(np.int64)
        return float(-0.5 * (x @ self.weights @ x) + self.theta @ x)

    def parallel_pair_energy(self, x: np.ndarray, y: np.ndarray) -> float:
        """``E2(x, y) = -x^T W y + theta^T (x + y)`` — the parallel Lyapunov."""
        xv = check_state_vector(x, self.n).astype(np.int64)
        yv = check_state_vector(y, self.n).astype(np.int64)
        return float(-(xv @ self.weights @ yv) + self.theta @ (xv + yv))

    def min_flip_decrease(self) -> float:
        """Guaranteed energy drop per effective sequential flip.

        ``w_ii / 2`` for an up-flip and ``1 + w_ii / 2`` for a down-flip
        (integer weights); the bound below is the up-flip one, minimised
        over nodes.  Positive iff every node has memory weight > 0.
        """
        return float(np.min(np.diag(self.weights)) / 2.0)

    def max_flip_bound(self) -> int:
        """Upper bound on effective flips in *any* sequential run.

        The energy range divided by the per-flip decrease.  Finite only for
        networks with positive diagonal; with the unit-weight, with-memory
        construction this is O(edges + n).
        """
        delta = self.min_flip_decrease()
        if delta <= 0:
            raise ValueError(
                "flip bound requires positive self-weights (with-memory rules)"
            )
        span = 0.5 * np.abs(self.weights).sum() + np.abs(self.theta).sum()
        return int(np.ceil(2 * span / delta))


def sequential_energy(net: ThresholdNetwork, state: np.ndarray) -> float:
    """Module-level alias for :meth:`ThresholdNetwork.sequential_energy`."""
    return net.sequential_energy(state)


def parallel_pair_energy(
    net: ThresholdNetwork, x: np.ndarray, y: np.ndarray
) -> float:
    """Module-level alias for :meth:`ThresholdNetwork.parallel_pair_energy`."""
    return net.parallel_pair_energy(x, y)


@dataclass(frozen=True)
class EnergyAudit:
    """Outcome of a numerical Lyapunov verification."""

    holds: bool
    runs: int
    flips_observed: int
    min_decrease: float
    violations: int

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.holds


def verify_sequential_energy_decrease(
    ca: CellularAutomaton,
    schedule: UpdateSchedule,
    initial_states: np.ndarray,
    max_updates: int = 10_000,
) -> EnergyAudit:
    """Check that every effective sequential flip strictly drops the energy.

    Runs the given schedule from each initial state, recomputing
    ``E`` after every singleton update; any non-decreasing effective flip
    is a violation (and would disprove Lemma 1(ii)/Theorem 1).
    """
    check_positive(max_updates, "max_updates")
    net = ThresholdNetwork.from_automaton(ca)
    flips = 0
    violations = 0
    min_dec = np.inf
    initial_states = np.atleast_2d(np.asarray(initial_states, dtype=np.uint8))
    for row in initial_states:
        state = check_state_vector(row, ca.n)
        energy = net.sequential_energy(state)
        stream = schedule.blocks(ca.n)
        for _ in range(max_updates):
            block = next(stream)
            if len(block) != 1:
                raise ValueError("sequential energy audit needs singleton blocks")
            if ca.update_node_inplace(state, block[0]):
                new_energy = net.sequential_energy(state)
                drop = energy - new_energy
                flips += 1
                min_dec = min(min_dec, drop)
                if drop <= 0:
                    violations += 1
                energy = new_energy
            if ca.is_fixed_point(state):
                break
    return EnergyAudit(
        holds=violations == 0,
        runs=len(initial_states),
        flips_observed=flips,
        min_decrease=float(min_dec) if flips else 0.0,
        violations=violations,
    )


def verify_parallel_energy_monotone(
    ca: CellularAutomaton,
    initial_states: np.ndarray,
    max_steps: int = 10_000,
) -> EnergyAudit:
    """Check the parallel pair energy is non-increasing and orbits have
    period <= 2 — the numerical form of Proposition 1."""
    net = ThresholdNetwork.from_automaton(ca)
    steps = 0
    violations = 0
    min_dec = np.inf
    initial_states = np.atleast_2d(np.asarray(initial_states, dtype=np.uint8))
    for row in initial_states:
        prev = check_state_vector(row, ca.n)
        curr = ca.step(prev)
        energy = net.parallel_pair_energy(prev, curr)
        for _ in range(max_steps):
            nxt = ca.step(curr)
            if np.array_equal(nxt, prev):  # period <= 2 reached
                break
            new_energy = net.parallel_pair_energy(curr, nxt)
            drop = energy - new_energy
            steps += 1
            min_dec = min(min_dec, drop)
            if drop < 0:
                violations += 1
            prev, curr, energy = curr, nxt, new_energy
        else:
            violations += 1  # orbit failed to settle into period <= 2
    return EnergyAudit(
        holds=violations == 0,
        runs=len(initial_states),
        flips_observed=steps,
        min_decrease=float(min_dec) if steps else 0.0,
        violations=violations,
    )
