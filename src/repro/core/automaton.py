"""The cellular automaton engine.

A :class:`CellularAutomaton` pairs a finite cellular space with a local
update rule (Definition 2 of the paper).  It exposes:

* :meth:`step` — one synchronous (classical, parallel) global step, fully
  vectorized: one gather through the space's window matrix plus one
  vectorized rule application;
* :meth:`update_node` / :meth:`node_next` — the sequential primitive, a
  single node update (the "basic operation" whose interleavings the paper
  studies);
* :meth:`step_all` / :meth:`node_successors` — the same two maps applied to
  *all* ``2**n`` configurations at once, producing the packed successor
  arrays that the phase-space machinery consumes.  Work is chunked so peak
  memory stays bounded regardless of ``n``.
"""

from __future__ import annotations

import numpy as np

from repro.core.rules import UpdateRule
from repro.spaces.base import FiniteSpace
from repro.util.bitops import bits_to_int, int_to_bits
from repro.util.validation import check_node_index, check_state_vector

__all__ = ["CellularAutomaton"]

#: configurations processed per chunk in whole-space sweeps (2**16 keeps the
#: intermediate gather under ~35 MB even at n = 24, radius 2)
_CHUNK = 1 << 16


class CellularAutomaton:
    """A Boolean cellular automaton over a finite cellular space.

    Parameters
    ----------
    space:
        The cellular space (ring, line, grid, hypercube, graph, ...).
    rule:
        The local update rule applied at every node (homogeneous CA).
    memory:
        If True (the paper's default), a node's own state is part of its
        rule's window; if False the node sees only its neighbors.
    """

    def __init__(self, space: FiniteSpace, rule: UpdateRule, memory: bool = True):
        self.space = space
        self.rule = rule
        self.memory = memory
        self._windows, self._lengths = space.windows(memory)
        if rule.arity is not None:
            widths = np.unique(self._lengths)
            if widths.size != 1 or widths[0] != rule.arity:
                raise ValueError(
                    f"rule {rule.name} has arity {rule.arity} but space "
                    f"{space.describe()} has window widths {widths.tolist()}"
                )

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.space.n

    def describe(self) -> str:
        mem = "memory" if self.memory else "memoryless"
        return f"CA[{self.space.describe()}, {self.rule.name}, {mem}]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()

    # -- packing helpers -----------------------------------------------------

    def pack(self, state: np.ndarray) -> int:
        """Packed integer code of a state vector."""
        return bits_to_int(state)

    def unpack(self, code: int) -> np.ndarray:
        """State vector of a packed configuration code."""
        return int_to_bits(code, self.n)

    # -- synchronous (parallel) dynamics --------------------------------------

    def step(self, state: np.ndarray) -> np.ndarray:
        """One synchronous global step: every node updates simultaneously."""
        state = check_state_vector(state, self.n)
        ext = np.concatenate([state, np.zeros(1, dtype=np.uint8)])
        inputs = ext[self._windows]  # (n, k_max)
        return self.rule.apply_windows(inputs, self._lengths).astype(np.uint8)

    def step_naive(self, state: np.ndarray) -> np.ndarray:
        """Reference synchronous step with explicit Python loops.

        Semantically identical to :meth:`step`; kept as the correctness
        oracle for property tests and as the baseline in the
        vectorization-ablation benchmark.
        """
        state = check_state_vector(state, self.n)
        out = np.empty(self.n, dtype=np.uint8)
        for i in range(self.n):
            window = self.space.input_window(i, self.memory)
            inputs = [0 if j < 0 else int(state[j]) for j in window]
            out[i] = self.rule.evaluate(inputs)
        return out

    def trajectory_steps(self, state: np.ndarray, steps: int) -> np.ndarray:
        """Stack of ``steps + 1`` synchronous states, row 0 the input."""
        state = check_state_vector(state, self.n)
        out = np.empty((steps + 1, self.n), dtype=np.uint8)
        out[0] = state
        for t in range(steps):
            out[t + 1] = self.step(out[t])
        return out

    # -- sequential dynamics ---------------------------------------------------

    def node_next(self, state: np.ndarray, i: int) -> int:
        """The value node ``i`` would take if it updated now."""
        check_node_index(i, self.n)
        state = check_state_vector(state, self.n)
        window = self.space.input_window(i, self.memory)
        inputs = [0 if j < 0 else int(state[j]) for j in window]
        return self.rule.evaluate(inputs)

    def update_node(self, state: np.ndarray, i: int) -> np.ndarray:
        """Sequential step: a fresh state with only node ``i`` updated."""
        new = check_state_vector(state, self.n)
        new[i] = self.node_next(state, i)
        return new

    def update_node_inplace(self, state: np.ndarray, i: int) -> bool:
        """In-place sequential step; returns True iff the state changed.

        The in-place variant is what the long sequential simulations use —
        no per-step allocation (see the HPC guide on in-place operations).
        """
        new_bit = self.node_next(state, i)
        changed = new_bit != state[i]
        state[i] = new_bit
        return bool(changed)

    def is_fixed_point(self, state: np.ndarray) -> bool:
        """True iff no node would change — the same test for CA and SCA.

        For with-memory rules a configuration is a parallel fixed point iff
        it is fixed under every single-node update, so this one predicate
        serves both dynamics.
        """
        state = check_state_vector(state, self.n)
        return bool(np.array_equal(self.step(state), state))

    # -- whole-phase-space sweeps ----------------------------------------------

    def _config_chunk(self, lo: int, hi: int) -> np.ndarray:
        codes = np.arange(lo, hi, dtype=np.int64)
        return ((codes[:, None] >> np.arange(self.n, dtype=np.int64)) & 1).astype(
            np.uint8
        )

    def step_all_range(self, lo: int, hi: int) -> np.ndarray:
        """Packed synchronous successors of configurations ``lo .. hi - 1``.

        One bounded-memory chunk of :meth:`step_all`; the governed
        phase-space builder calls this directly so it can consult its
        budget between chunks.
        """
        n = self.n
        place = np.int64(1) << np.arange(n, dtype=np.int64)
        configs = self._config_chunk(lo, hi)
        ext = np.concatenate(
            [configs, np.zeros((hi - lo, 1), dtype=np.uint8)], axis=1
        )
        inputs = ext[:, self._windows]  # (chunk, n, k_max)
        new = self.rule.apply_windows(inputs, self._lengths)
        return new.astype(np.int64) @ place

    def sweep_transient_bytes(self) -> int:
        """Peak transient bytes of one chunk of a whole-space sweep.

        The per-chunk scratch (bit-unpacked configs, the gathered window
        tensor, the new-state matrix and the packed output) — what a
        budget must have headroom for *besides* the persistent successor
        array.
        """
        k_max = self._windows.shape[1]
        # configs + ext + inputs (uint8 each), new (uint8), packed (int64)
        return _CHUNK * ((self.n + 1) + self.n * k_max + self.n + 8)

    def step_all(self, budget=None) -> np.ndarray:
        """Packed synchronous successor of every configuration.

        Returns ``succ`` with ``succ[c] = pack(step(unpack(c)))`` for all
        ``c`` in ``0 .. 2**n - 1`` — the full global map as one array.
        An optional :class:`~repro.core.budget.Budget` is consulted between
        chunks (wall-clock/cancellation only; memory-governed builds with
        resumable frontiers live in :func:`repro.core.phase_space.build_phase_space`).
        """
        n = self.n
        if n > 24:
            raise ValueError(f"step_all over 2**{n} configurations is too large")
        total = 1 << n
        succ = np.empty(total, dtype=np.int64)
        for lo in range(0, total, _CHUNK):
            if budget is not None:
                budget.check()
            hi = min(lo + _CHUNK, total)
            succ[lo:hi] = self.step_all_range(lo, hi)
        return succ

    def node_successors(self, i: int, budget=None) -> np.ndarray:
        """Packed successor of every configuration under updating node ``i``.

        ``succ_i[c]`` differs from ``c`` in at most bit ``i``.  The family
        ``{succ_i}`` is the full nondeterministic sequential transition
        relation of the SCA.
        """
        check_node_index(i, self.n)
        n = self.n
        if n > 24:
            raise ValueError(f"node_successors over 2**{n} configurations is too large")
        total = 1 << n
        succ = np.empty(total, dtype=np.int64)
        # Slice off rectangular padding: beyond the node's true window
        # length every entry is the quiescent slot, which fixed-arity rules
        # must not see as an extra input.
        window = self._windows[i][: self._lengths[i]]
        length = self._lengths[i : i + 1]
        for lo in range(0, total, _CHUNK):
            if budget is not None:
                budget.check()
            hi = min(lo + _CHUNK, total)
            codes = np.arange(lo, hi, dtype=np.int64)
            configs = self._config_chunk(lo, hi)
            ext = np.concatenate(
                [configs, np.zeros((hi - lo, 1), dtype=np.uint8)], axis=1
            )
            inputs = ext[:, window]  # (chunk, k)
            new_bits = self.rule.apply_windows(inputs, length).astype(np.int64)
            old_bits = (codes >> i) & 1
            succ[lo:hi] = codes ^ ((old_bits ^ new_bits) << i)
        return succ

    def all_node_successors(self, budget=None) -> np.ndarray:
        """Matrix of shape ``(n, 2**n)``: row ``i`` is :meth:`node_successors(i)`."""
        return np.stack(
            [self.node_successors(i, budget=budget) for i in range(self.n)]
        )
