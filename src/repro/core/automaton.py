"""The cellular automaton engine.

A :class:`CellularAutomaton` pairs a finite cellular space with a local
update rule (Definition 2 of the paper).  It exposes:

* :meth:`step` — one synchronous (classical, parallel) global step, fully
  vectorized: one gather through the space's window matrix plus one
  vectorized rule application;
* :meth:`update_node` / :meth:`node_next` — the sequential primitive, a
  single node update (the "basic operation" whose interleavings the paper
  studies);
* :meth:`step_all` / :meth:`node_successors` — the same two maps applied to
  *all* ``2**n`` configurations at once, producing the packed successor
  arrays that the phase-space machinery consumes.  Work is chunked so peak
  memory stays bounded regardless of ``n``.
"""

from __future__ import annotations

import numpy as np

from repro.core.budget import BudgetExceeded, resolve_budget
from repro.core.rules import UpdateRule
from repro.perf.base import CHUNK as _CHUNK
from repro.perf.base import MAX_SWEEP_N
from repro.spaces.base import FiniteSpace
from repro.util.bitops import bits_to_int, int_to_bits
from repro.util.validation import check_node_index, check_state_vector

__all__ = ["CellularAutomaton"]


class CellularAutomaton:
    """A Boolean cellular automaton over a finite cellular space.

    Parameters
    ----------
    space:
        The cellular space (ring, line, grid, hypercube, graph, ...).
    rule:
        The local update rule applied at every node (homogeneous CA).
    memory:
        If True (the paper's default), a node's own state is part of its
        rule's window; if False the node sees only its neighbors.
    backend:
        Sweep-backend name (``auto``, ``bitplane``, ``table``, ``numpy``,
        ``process``) for the whole-space sweeps; None defers to the
        ``REPRO_BACKEND`` env var and then the ``auto`` policy.  See
        :mod:`repro.perf`.
    workers:
        Worker-process count for the ``process`` backend (None: the
        ``REPRO_WORKERS`` env var, then the CPU count).
    """

    def __init__(
        self,
        space: FiniteSpace,
        rule: UpdateRule,
        memory: bool = True,
        backend: str | None = None,
        workers: int | None = None,
    ):
        self.space = space
        self.rule = rule
        self.memory = memory
        self._windows, self._lengths = space.windows(memory)
        if rule.arity is not None:
            widths = np.unique(self._lengths)
            if widths.size != 1 or widths[0] != rule.arity:
                raise ValueError(
                    f"rule {rule.name} has arity {rule.arity} but space "
                    f"{space.describe()} has window widths {widths.tolist()}"
                )
        self._init_backend(backend, workers)

    def _init_backend(self, backend: str | None, workers: int | None) -> None:
        """Record the backend selection; construction is lazy (the compiled
        backends do real work — LUTs, kernel lowering — that pure-dynamics
        callers never need), but an explicit bad name fails fast here."""
        if backend is not None:
            from repro.perf import _check_name

            backend = _check_name(backend)
        self._backend_spec = backend
        self._workers = workers
        self._backend = None

    @property
    def backend(self):
        """The bound :class:`~repro.perf.SweepBackend` (built on first use)."""
        if self._backend is None:
            from repro.perf import resolve_backend

            self._backend = resolve_backend(
                self, self._backend_spec, self._workers
            )
        return self._backend

    def rule_at(self, i: int) -> UpdateRule:
        """The local rule of node ``i`` (uniform here; heterogeneous CAs
        override this — it is the per-node contract the backends compile)."""
        return self.rule

    def _rule_groups(self) -> list[tuple[UpdateRule, np.ndarray]]:
        """``(rule, nodes)`` batches for vectorized application — one batch
        for a homogeneous automaton."""
        return [(self.rule, np.arange(self.n, dtype=np.int64))]

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.space.n

    def describe(self) -> str:
        mem = "memory" if self.memory else "memoryless"
        return f"CA[{self.space.describe()}, {self.rule.name}, {mem}]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()

    # -- packing helpers -----------------------------------------------------

    def pack(self, state: np.ndarray) -> int:
        """Packed integer code of a state vector."""
        return bits_to_int(state)

    def unpack(self, code: int) -> np.ndarray:
        """State vector of a packed configuration code."""
        return int_to_bits(code, self.n)

    # -- synchronous (parallel) dynamics --------------------------------------

    def step(self, state: np.ndarray) -> np.ndarray:
        """One synchronous global step: every node updates simultaneously."""
        state = check_state_vector(state, self.n)
        ext = np.concatenate([state, np.zeros(1, dtype=np.uint8)])
        inputs = ext[self._windows]  # (n, k_max)
        return self.rule.apply_windows(inputs, self._lengths).astype(np.uint8)

    def step_naive(self, state: np.ndarray) -> np.ndarray:
        """Reference synchronous step with explicit Python loops.

        Semantically identical to :meth:`step`; kept as the correctness
        oracle for property tests and as the baseline in the
        vectorization-ablation benchmark.
        """
        state = check_state_vector(state, self.n)
        out = np.empty(self.n, dtype=np.uint8)
        for i in range(self.n):
            window = self.space.input_window(i, self.memory)
            inputs = [0 if j < 0 else int(state[j]) for j in window]
            out[i] = self.rule.evaluate(inputs)
        return out

    def trajectory_steps(self, state: np.ndarray, steps: int) -> np.ndarray:
        """Stack of ``steps + 1`` synchronous states, row 0 the input."""
        state = check_state_vector(state, self.n)
        out = np.empty((steps + 1, self.n), dtype=np.uint8)
        out[0] = state
        for t in range(steps):
            out[t + 1] = self.step(out[t])
        return out

    # -- sequential dynamics ---------------------------------------------------

    def node_next(self, state: np.ndarray, i: int) -> int:
        """The value node ``i`` would take if it updated now."""
        check_node_index(i, self.n)
        state = check_state_vector(state, self.n)
        window = self.space.input_window(i, self.memory)
        inputs = [0 if j < 0 else int(state[j]) for j in window]
        return self.rule.evaluate(inputs)

    def update_node(self, state: np.ndarray, i: int) -> np.ndarray:
        """Sequential step: a fresh state with only node ``i`` updated."""
        new = check_state_vector(state, self.n)
        new[i] = self.node_next(state, i)
        return new

    def update_node_inplace(self, state: np.ndarray, i: int) -> bool:
        """In-place sequential step; returns True iff the state changed.

        The in-place variant is what the long sequential simulations use —
        no per-step allocation (see the HPC guide on in-place operations).
        """
        new_bit = self.node_next(state, i)
        changed = new_bit != state[i]
        state[i] = new_bit
        return bool(changed)

    def is_fixed_point(self, state: np.ndarray) -> bool:
        """True iff no node would change — the same test for CA and SCA.

        For with-memory rules a configuration is a parallel fixed point iff
        it is fixed under every single-node update, so this one predicate
        serves both dynamics.
        """
        state = check_state_vector(state, self.n)
        return bool(np.array_equal(self.step(state), state))

    # -- whole-phase-space sweeps ----------------------------------------------

    def _config_chunk(self, lo: int, hi: int) -> np.ndarray:
        codes = np.arange(lo, hi, dtype=np.int64)
        return ((codes[:, None] >> np.arange(self.n, dtype=np.int64)) & 1).astype(
            np.uint8
        )

    def step_all_range(self, lo: int, hi: int) -> np.ndarray:
        """Packed synchronous successors of configurations ``lo .. hi - 1``.

        One bounded-memory chunk of :meth:`step_all`, computed by the
        bound sweep backend; the governed phase-space builder calls this
        directly so it can consult its budget between chunks.
        """
        return self.backend.step_all_range(lo, hi)

    def sweep_transient_bytes(self) -> int:
        """Peak transient bytes of one chunk of a whole-space sweep.

        The backend's per-chunk scratch — what a budget must have headroom
        for *besides* the persistent successor array.
        """
        return self.backend.transient_bytes()

    def _check_sweep_size(self, what: str) -> int:
        if self.n > MAX_SWEEP_N:
            raise ValueError(
                f"{what} over 2**{self.n} configurations is too large"
            )
        return 1 << self.n

    def step_all(self, budget=None) -> np.ndarray:
        """Packed synchronous successor of every configuration.

        Returns ``succ`` with ``succ[c] = pack(step(unpack(c)))`` for all
        ``c`` in ``0 .. 2**n - 1`` — the full global map as one array.
        An optional :class:`~repro.core.budget.Budget` is consulted between
        chunks (wall-clock/cancellation only; memory-governed builds with
        resumable frontiers live in :func:`repro.core.phase_space.build_phase_space`).
        """
        total = self._check_sweep_size("step_all")
        succ = np.empty(total, dtype=np.int64)
        backend = self.backend
        if backend.is_sharded:
            _, reason = backend.governed_sweep(
                succ, resolve_budget(budget), mode="step"
            )
            if reason is not None:
                raise BudgetExceeded(reason)
            return succ
        for lo in range(0, total, _CHUNK):
            if budget is not None:
                budget.check()
            hi = min(lo + _CHUNK, total)
            succ[lo:hi] = backend.step_all_range(lo, hi)
        return succ

    def node_successors(self, i: int, budget=None) -> np.ndarray:
        """Packed successor of every configuration under updating node ``i``.

        ``succ_i[c]`` differs from ``c`` in at most bit ``i``.  The family
        ``{succ_i}`` is the full nondeterministic sequential transition
        relation of the SCA.
        """
        check_node_index(i, self.n)
        total = self._check_sweep_size("node_successors")
        succ = np.empty(total, dtype=np.int64)
        backend = self.backend
        if backend.is_sharded:
            _, reason = backend.governed_sweep(
                succ, resolve_budget(budget), mode="node", node=i
            )
            if reason is not None:
                raise BudgetExceeded(reason)
            return succ
        for lo in range(0, total, _CHUNK):
            if budget is not None:
                budget.check()
            hi = min(lo + _CHUNK, total)
            succ[lo:hi] = backend.node_successors_range(i, lo, hi)
        return succ

    def all_node_successors(self, budget=None) -> np.ndarray:
        """Matrix of shape ``(n, 2**n)``: row ``i`` is :meth:`node_successors(i)`.

        One shared sweep fills all ``n`` rows per chunk — the per-chunk
        setup (configuration unpacking, input planes) is paid once instead
        of once per node.
        """
        total = self._check_sweep_size("all_node_successors")
        out = np.empty((self.n, total), dtype=np.int64)
        backend = self.backend
        if backend.is_sharded:
            for i in range(self.n):
                out[i] = self.node_successors(i, budget=budget)
            return out
        for lo in range(0, total, _CHUNK):
            if budget is not None:
                budget.check()
            hi = min(lo + _CHUNK, total)
            backend.sweep_all_nodes_range(lo, hi, out[:, lo:hi])
        return out
