"""Nondeterministic phase spaces of sequential cellular automata.

An SCA from a given configuration may update any node next, so its phase
space is a node-labelled nondeterministic transition graph — Figure 1(b) of
the paper.  :class:`NondetPhaseSpace` materialises it from the per-node
successor arrays and answers the paper's questions:

* Is the phase space *cycle-free*?  (Lemma 1(ii), Theorem 1.)  A *proper
  cycle* is a closed walk through at least two distinct configurations;
  updates that do not change the configuration are self-loops and never
  count.  Proper cycles exist iff the "change-edge" digraph has a strongly
  connected component of size >= 2.
* Which configurations are genuine fixed points, and which merely
  *pseudo-fixed points* — non-fixed configurations that some update orders
  keep revisiting because one of their single-node updates is a self-loop?
* What is sequentially reachable from where? (Used by the interleaving
  experiments: e.g. ``00`` in Fig. 1(b) is a fixed point that no other
  configuration can reach.)
"""

from __future__ import annotations

from functools import cached_property

import networkx as nx
import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from repro.analysis.cycles import scc_labels
from repro.core.automaton import CellularAutomaton
from repro.core.budget import (
    NONDET_BYTES_PER_STATE,
    SUCC_BYTES_PER_STATE,
    Budget,
    BudgetExceeded,
    Partial,
    resolve_budget,
)
from repro.obs import span
from repro.perf.base import MAX_SWEEP_N
from repro.util.bitops import config_str

__all__ = ["NondetPhaseSpace", "build_nondet_phase_space"]

#: extra per-(configuration, node) bytes the SCC analysis holds beyond the
#: successor matrix (worst-case change-edge src + dst arrays, int64 each).
_EDGE_EXTRA_PER_STATE = NONDET_BYTES_PER_STATE - SUCC_BYTES_PER_STATE


class NondetPhaseSpace:
    """The full sequential (one-node-at-a-time) phase space of an automaton."""

    def __init__(self, node_succ: np.ndarray, n_nodes: int):
        node_succ = np.asarray(node_succ, dtype=np.int64)
        if node_succ.shape != (n_nodes, 1 << n_nodes):
            raise ValueError(
                f"node successor matrix has shape {node_succ.shape}, "
                f"expected ({n_nodes}, {1 << n_nodes})"
            )
        self.node_succ = node_succ
        self.n_nodes = n_nodes

    @classmethod
    def from_automaton(
        cls, ca: CellularAutomaton, budget: Budget | None = None
    ) -> "NondetPhaseSpace":
        """Build the sequential phase space of an automaton.

        Governed by ``budget`` (or the ambient budget); raises
        :class:`~repro.core.budget.BudgetExceeded` carrying the partial on
        a trip.  Use :func:`build_nondet_phase_space` to receive the
        truncated result as a value instead.
        """
        partial = build_nondet_phase_space(ca, budget=budget)
        if not partial.complete:
            raise BudgetExceeded(partial.reason, partial=partial)
        return partial.value

    @property
    def size(self) -> int:
        """Number of configurations (``2**n``)."""
        return 1 << self.n_nodes

    # -- basic structure -----------------------------------------------------

    def transitions(self, code: int) -> list[tuple[int, int]]:
        """All ``(node, successor)`` pairs from a configuration
        (self-loops included)."""
        return [(i, int(self.node_succ[i, code])) for i in range(self.n_nodes)]

    @cached_property
    def _change_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Edges that actually change the configuration: (src, dst, node)."""
        srcs, dsts, nodes = [], [], []
        codes = np.arange(self.size, dtype=np.int64)
        for i in range(self.n_nodes):
            succ = self.node_succ[i]
            mask = succ != codes
            srcs.append(codes[mask])
            dsts.append(succ[mask])
            nodes.append(np.full(int(mask.sum()), i, dtype=np.int64))
        return (
            np.concatenate(srcs) if srcs else np.empty(0, dtype=np.int64),
            np.concatenate(dsts) if dsts else np.empty(0, dtype=np.int64),
            np.concatenate(nodes) if nodes else np.empty(0, dtype=np.int64),
        )

    @cached_property
    def _union_csr(self) -> sparse.csr_matrix:
        srcs, dsts, _ = self._change_edges
        return sparse.csr_matrix(
            (np.ones(srcs.size, dtype=np.int8), (srcs, dsts)),
            shape=(self.size, self.size),
        )

    # -- fixed points ----------------------------------------------------------

    @cached_property
    def fixed_points(self) -> np.ndarray:
        """Configurations fixed under *every* single-node update.

        For with-memory rules these coincide with the parallel CA's fixed
        points — one of the structural facts the integration tests check.
        """
        codes = np.arange(self.size, dtype=np.int64)
        stable = np.ones(self.size, dtype=bool)
        for i in range(self.n_nodes):
            stable &= self.node_succ[i] == codes
        return np.flatnonzero(stable)

    @cached_property
    def pseudo_fixed_points(self) -> np.ndarray:
        """Non-fixed configurations with at least one self-loop update.

        The paper's Fig. 1(b) calls these (unstable) pseudo-fixed points:
        under some update orders they look fixed, yet other orders leave
        them.
        """
        codes = np.arange(self.size, dtype=np.int64)
        any_loop = np.zeros(self.size, dtype=bool)
        all_loop = np.ones(self.size, dtype=bool)
        for i in range(self.n_nodes):
            loop = self.node_succ[i] == codes
            any_loop |= loop
            all_loop &= loop
        return np.flatnonzero(any_loop & ~all_loop)

    # -- cycles ------------------------------------------------------------------

    @cached_property
    def _scc(self) -> tuple[int, np.ndarray]:
        srcs, dsts, _ = self._change_edges
        return scc_labels(srcs, dsts, self.size)

    def has_proper_cycle(self) -> bool:
        """True iff some update order revisits a configuration after leaving it."""
        n_comp, labels = self._scc
        return bool(np.any(np.bincount(labels, minlength=n_comp) >= 2))

    def proper_cycle_components(self) -> list[np.ndarray]:
        """The SCCs of size >= 2 of the change-edge digraph.

        Every proper cycle lies inside one of these components, and every
        component of size >= 2 contains a proper cycle.
        """
        n_comp, labels = self._scc
        sizes = np.bincount(labels, minlength=n_comp)
        return [np.flatnonzero(labels == k) for k in np.flatnonzero(sizes >= 2)]

    def find_two_cycle(self) -> tuple[int, int, int, int] | None:
        """A witness two-cycle ``(a, node_ab, b, node_ba)`` if one exists.

        Looks for configurations ``a != b`` with an update taking ``a`` to
        ``b`` and an update taking ``b`` back to ``a`` (the kind of cycle
        Fig. 1(b) exhibits for the XOR SCA).
        """
        for comp in self.proper_cycle_components():
            comp_set = set(int(c) for c in comp)
            for a in comp_set:
                for i in range(self.n_nodes):
                    b = int(self.node_succ[i, a])
                    if b == a or b not in comp_set:
                        continue
                    for j in range(self.n_nodes):
                        if int(self.node_succ[j, b]) == a:
                            return a, i, b, j
        return None

    # -- reachability ---------------------------------------------------------

    def reachable_from(self, code: int) -> np.ndarray:
        """All configurations reachable from ``code`` by some update sequence.

        ``code`` itself is included (the empty sequence).
        """
        order = csgraph.breadth_first_order(
            self._union_csr, int(code), directed=True, return_predecessors=False
        )
        mask = np.zeros(self.size, dtype=bool)
        mask[order] = True
        mask[code] = True
        return np.flatnonzero(mask)

    def can_reach(self, source: int, target: int) -> bool:
        """True iff some sequential interleaving drives source to target."""
        if source == target:
            return True
        mask = np.zeros(self.size, dtype=bool)
        order = csgraph.breadth_first_order(
            self._union_csr, int(source), directed=True, return_predecessors=False
        )
        mask[order] = True
        return bool(mask[target])

    def coreachable_to(self, code: int) -> np.ndarray:
        """All configurations from which ``code`` is reachable (incl. itself)."""
        order = csgraph.breadth_first_order(
            self._union_csr.T.tocsr(),
            int(code),
            directed=True,
            return_predecessors=False,
        )
        mask = np.zeros(self.size, dtype=bool)
        mask[order] = True
        mask[code] = True
        return np.flatnonzero(mask)

    def shortest_schedule(self, source: int, target: int) -> list[int] | None:
        """An explicit update word driving ``source`` to ``target``, if any.

        Returns the node indices of a shortest sequence of *effective*
        single-node updates (the constructive witness behind "there exists
        an interleaving"), ``[]`` when source == target, or ``None`` when
        no interleaving reaches the target.
        """
        if not 0 <= source < self.size or not 0 <= target < self.size:
            raise ValueError("configuration code out of range")
        if source == target:
            return []
        order, predecessors = csgraph.breadth_first_order(
            self._union_csr, int(source), directed=True, return_predecessors=True
        )
        del order
        if predecessors[target] < 0:
            return None
        # Walk predecessors back to the source, then label each edge.
        path = [int(target)]
        while path[-1] != source:
            path.append(int(predecessors[path[-1]]))
        path.reverse()
        word: list[int] = []
        for a, b in zip(path, path[1:]):
            for i in range(self.n_nodes):
                if int(self.node_succ[i, a]) == b:
                    word.append(i)
                    break
            else:  # pragma: no cover - BFS edge must exist
                raise AssertionError(f"no node labels edge {a} -> {b}")
        return word

    def unreachable_configs(self) -> np.ndarray:
        """Configurations with no incoming change edge from any other config.

        The SCA analogue of Gardens of Eden; in Fig. 1(b), ``00`` is one.
        """
        srcs, dsts, _ = self._change_edges
        indeg = np.bincount(dsts, minlength=self.size)
        return np.flatnonzero(indeg == 0)

    # -- export ------------------------------------------------------------------

    def to_networkx(self, include_self_loops: bool = False) -> nx.MultiDiGraph:
        """Node-labelled transition graph (edge attribute ``node`` = updater)."""
        g = nx.MultiDiGraph()
        for code in range(self.size):
            g.add_node(code, label=config_str(code, self.n_nodes))
        for code in range(self.size):
            for i in range(self.n_nodes):
                dst = int(self.node_succ[i, code])
                if dst != code or include_self_loops:
                    g.add_edge(code, dst, node=i)
        return g

    def summary(self) -> dict[str, object]:
        """Headline statistics, mirroring :meth:`PhaseSpace.summary`."""
        return {
            "configurations": self.size,
            "fixed_points": int(self.fixed_points.size),
            "pseudo_fixed_points": int(self.pseudo_fixed_points.size),
            "has_proper_cycle": self.has_proper_cycle(),
            "proper_cycle_components": len(self.proper_cycle_components()),
            "unreachable_configs": int(self.unreachable_configs().size),
        }


def build_nondet_phase_space(
    ca: CellularAutomaton,
    budget: Budget | None = None,
    frontier: dict[str, object] | None = None,
) -> Partial[NondetPhaseSpace]:
    """Governed sequential phase-space build, resumable at row granularity.

    The ``(n, 2**n)`` node-successor matrix is filled one node row at a
    time; the budget is consulted before each row (projecting the row's
    :data:`~repro.core.budget.NONDET_BYTES_PER_STATE` footprint, which
    also covers the change-edge arrays the SCC analysis later holds) and
    cooperatively inside the row's chunked sweep.  On a trip the returned
    :class:`~repro.core.budget.Partial` carries a ``frontier`` with the
    completed rows; resumed frontiers are disk-backed memmaps charged only
    for chunk transients, exactly like
    :func:`repro.core.phase_space.build_phase_space`.

    ``explored``/``total`` count (configuration, node) transition units,
    i.e. ``rows_done * 2**n`` of ``n * 2**n``.
    """
    budget = resolve_budget(budget)
    n = ca.n
    if n > MAX_SWEEP_N:
        raise ValueError(
            f"sequential phase space over 2**{n} configurations is too large"
        )
    size = 1 << n
    total = n * size
    from repro.harness import faults

    if frontier is not None:
        if frontier.get("kind") != "nondet" or int(frontier.get("n", -1)) != n:
            raise ValueError(
                f"frontier is not a nondet frontier for n={n}: "
                f"{ {k: frontier[k] for k in ('kind', 'n') if k in frontier} }"
            )
        node_succ = frontier["succ"]
        start_row = int(frontier["next_row"])
    else:
        node_succ = np.empty((n, size), dtype=np.int64)
        start_row = 0
    per_state = 0 if isinstance(node_succ, np.memmap) else NONDET_BYTES_PER_STATE
    transient = ca.sweep_transient_bytes()

    def _frontier(next_row: int) -> dict[str, object]:
        return {
            "kind": "nondet",
            "n": n,
            "automaton": ca.describe(),
            "total": total,
            "next_row": next_row,
            "succ": node_succ,
        }

    def _truncated(reason: str, rows_done: int) -> Partial[NondetPhaseSpace]:
        return Partial.truncated(
            reason,
            explored=rows_done * size,
            total=total,
            stats={"rows_done": rows_done, "rows_total": n},
            frontier=_frontier(rows_done),
        )

    with span(
        "nondet.build", n=n, configs=size, budget=budget.describe()
    ) as build_span:
        with span("nondet.node_successors", n=n, resumed_from=start_row):
            for i in range(start_row, n):
                reason = budget.over(pending_bytes=transient + per_state * size)
                if reason is not None:
                    build_span.set(truncated=reason, rows_done=i)
                    return _truncated(reason, i)
                faults.inject("nondet.row")
                try:
                    node_succ[i] = ca.node_successors(i, budget=budget)
                except BudgetExceeded as err:
                    # The row's chunked sweep tripped mid-row; resume
                    # granularity is whole rows, so the partial row is
                    # discarded and the frontier restarts at row ``i``.
                    build_span.set(truncated=err.reason, rows_done=i)
                    return _truncated(err.reason, i)
                budget.charge(states=size, bytes_=per_state * size)
        edge_pending = _EDGE_EXTRA_PER_STATE * total if per_state == 0 else 0
        reason = budget.over(pending_bytes=edge_pending)
        if reason is not None:
            build_span.set(truncated=reason, rows_done=n)
            return _truncated(reason, n)
        budget.charge(bytes_=edge_pending)
        nps = NondetPhaseSpace(node_succ, n)
        return Partial.done(nps, explored=total, total=total)
