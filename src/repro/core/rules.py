"""Local update rules (the CA "software" of Definition 2).

Two families:

* **Table rules** — arbitrary Boolean functions of a fixed-width window,
  applied by packed-code lookup.  This covers Wolfram's elementary rules and
  the XOR example of the paper's Section 3.1.
* **Symmetric (totalistic) rules** — the value depends only on the *count*
  of ones in the window, so one rule object applies uniformly to windows of
  any width (rings of any radius, grids, hypercubes, irregular graphs).
  MAJORITY and the simple-threshold rules — the paper's protagonists — live
  here.

Both families implement the same two-method interface: scalar
:meth:`UpdateRule.evaluate` for sequential single-node updates and the exact
semantics, and vectorized :meth:`UpdateRule.apply_windows` used by the
synchronous engine (one call handles every node of every configuration in a
batch — no Python loop on the hot path, per the HPC guide).

Two *lowerings* feed the compiled sweep backends (:mod:`repro.perf`):

* :meth:`UpdateRule.lut` materialises the rule at a concrete window width
  as a ``2**k`` lookup table (the ``table`` backend's format);
* :meth:`UpdateRule.count_profile` exposes the count profile of totalistic
  rules (the ``bitplane`` backend's format — threshold/majority/parity
  rules become pure bitwise kernels over 64-configuration words).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from repro.core.boolean import (
    BooleanFunction,
    majority_function,
    threshold_count_function,
    wolfram_table,
    xor_function,
)
from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "UpdateRule",
    "TableRule",
    "WolframRule",
    "SymmetricRule",
    "MajorityRule",
    "SimpleThresholdRule",
    "XorRule",
    "TotalisticRule",
    "OuterTotalisticRule",
    "life_rule",
]


class UpdateRule(ABC):
    """Abstract local update rule.

    :attr:`arity` is the required window width, or ``None`` when the rule is
    count-based and accepts any width.
    """

    #: window width the rule requires; None = any width (symmetric rules)
    arity: int | None = None

    @abstractmethod
    def evaluate(self, inputs: Sequence[int]) -> int:
        """The next state for one window of current states (0/1 ints)."""

    @abstractmethod
    def apply_windows(self, inputs: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Vectorized application.

        ``inputs`` has shape ``(..., k_max)`` with zero padding beyond each
        window's true length; ``lengths`` has shape ``(n,)``, broadcastable
        against the leading dimensions, giving true window widths.  Returns
        a ``uint8`` array of shape ``inputs.shape[:-1]``.
        """

    @property
    def name(self) -> str:
        return type(self).__name__

    def truth_table(self, arity: int | None = None) -> BooleanFunction:
        """Materialise the rule at a concrete arity as a BooleanFunction."""
        k = arity if arity is not None else self.arity
        if k is None:
            raise ValueError("symmetric rule needs an explicit arity")
        if self.arity is not None and k != self.arity:
            raise ValueError(f"rule has fixed arity {self.arity}, requested {k}")
        check_non_negative(k, "arity")
        idx = np.arange(1 << k, dtype=np.uint32)
        table = np.empty(1 << k, dtype=np.uint8)
        for code in range(1 << k):
            bits = [(code >> j) & 1 for j in range(k)]
            table[code] = self.evaluate(bits)
        del idx
        return BooleanFunction(table)

    def with_arity(self, arity: int) -> "UpdateRule":
        """A fixed-arity view of the rule (needed by the infinite line)."""
        return TableRule(self.truth_table(arity), name=f"{self.name}[{arity}]")

    # -- lowerings for the compiled sweep backends -----------------------------

    def lut(self, width: int) -> np.ndarray:
        """The rule at window width ``width`` as a ``2**width`` uint8 table.

        Entry ``c`` is the next state for the window whose input ``j`` is
        bit ``j`` of ``c`` (little-endian, matching the packed-code
        convention everywhere else).  Subclasses override this with
        vectorized constructions; the generic fallback enumerates the
        truth table scalar by scalar, so it is gated to small widths.
        """
        if width > 20:
            raise ValueError(
                f"refusing to materialise a 2**{width}-entry lookup table"
            )
        return self.truth_table(width).table

    def count_profile(self, width: int) -> np.ndarray | None:
        """``profile[c]`` = next state when exactly ``c`` of ``width``
        inputs are 1, or ``None`` when the rule is not totalistic at this
        width.  Totalistic rules are exactly what the ``bitplane`` backend
        lowers to carry-save-adder kernels."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class TableRule(UpdateRule):
    """Arbitrary fixed-arity rule given by a truth table.

    The window must have uniform width ``arity`` on every node (quiescent
    boundary slots count — they read 0), which every 1-D space guarantees.
    """

    def __init__(self, function: BooleanFunction | Sequence[int], name: str | None = None):
        if not isinstance(function, BooleanFunction):
            function = BooleanFunction(function)
        self.function = function
        self.arity = function.arity
        self._name = name or f"TableRule(arity={self.arity})"
        # Precomputed little-endian place values for packed-code lookup.
        self._weights = (1 << np.arange(self.arity, dtype=np.int64))

    def evaluate(self, inputs: Sequence[int]) -> int:
        return self.function.evaluate(inputs)

    def apply_windows(self, inputs: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        if inputs.shape[-1] != self.arity or not np.all(lengths == self.arity):
            raise ValueError(
                f"{self._name} needs uniform windows of width {self.arity}; "
                f"got widths {np.unique(lengths).tolist()}"
            )
        codes = inputs.astype(np.int64) @ self._weights
        return self.function.table[codes]

    def lut(self, width: int) -> np.ndarray:
        if width != self.arity:
            raise ValueError(
                f"{self._name} has fixed arity {self.arity}, requested "
                f"width {width}"
            )
        return self.function.table

    def count_profile(self, width: int) -> np.ndarray | None:
        if width != self.arity or not self.function.is_symmetric():
            return None
        # Symmetric: any representative of each count works; use the
        # all-low-bits code ``(1 << c) - 1`` which has popcount ``c``.
        reps = (1 << np.arange(width + 1, dtype=np.int64)) - 1
        return self.function.table[reps]

    @property
    def name(self) -> str:
        return self._name

    def is_monotone(self) -> bool:
        return self.function.is_monotone()

    def is_symmetric(self) -> bool:
        return self.function.is_symmetric()


class WolframRule(TableRule):
    """Elementary CA rule (radius 1, with memory) in Wolfram numbering.

    Notable instances: rule 232 is MAJORITY, rule 150 is 3-input XOR.
    """

    def __init__(self, rule_number: int):
        super().__init__(wolfram_table(rule_number), name=f"WolframRule({rule_number})")
        self.rule_number = rule_number


class SymmetricRule(UpdateRule):
    """Base for count-based (totalistic) rules of arbitrary window width."""

    arity: int | None = None

    @abstractmethod
    def decide(self, counts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Next states from ones-counts and window widths (vectorized)."""

    def evaluate(self, inputs: Sequence[int]) -> int:
        if self.arity is not None and len(inputs) != self.arity:
            raise ValueError(
                f"{self.name} has fixed arity {self.arity}, got {len(inputs)} inputs"
            )
        count = np.asarray(int(sum(int(b) for b in inputs)))
        length = np.asarray(len(inputs))
        return int(self.decide(count, length))

    def apply_windows(self, inputs: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        if self.arity is not None and not np.all(lengths == self.arity):
            raise ValueError(
                f"{self.name} has fixed arity {self.arity}; "
                f"got widths {np.unique(lengths).tolist()}"
            )
        counts = inputs.sum(axis=-1, dtype=np.int64)
        return self.decide(counts, np.broadcast_to(lengths, counts.shape))

    def _check_width(self, width: int) -> None:
        if self.arity is not None and width != self.arity:
            raise ValueError(
                f"{self.name} has fixed arity {self.arity}, requested "
                f"width {width}"
            )

    def lut(self, width: int) -> np.ndarray:
        from repro.util.bitops import popcount_array

        self._check_width(width)
        if width > 20:
            raise ValueError(
                f"refusing to materialise a 2**{width}-entry lookup table"
            )
        counts = popcount_array(np.arange(1 << width, dtype=np.int64))
        lengths = np.full(counts.shape, width, dtype=np.int64)
        return self.decide(counts, lengths).astype(np.uint8)

    def count_profile(self, width: int) -> np.ndarray | None:
        self._check_width(width)
        counts = np.arange(width + 1, dtype=np.int64)
        lengths = np.full(width + 1, width, dtype=np.int64)
        return self.decide(counts, lengths).astype(np.uint8)


class MajorityRule(SymmetricRule):
    """Strict MAJORITY: next state 1 iff more than half the inputs are 1.

    With-memory 1-D windows have odd width ``2r + 1``, so no ties arise and
    this is exactly the paper's MAJORITY rule.  For even windows the
    ``ties`` policy applies: ``'zero'`` (default) breaks ties to 0,
    ``'one'`` to 1 — both keep the rule monotone symmetric.
    """

    def __init__(self, ties: str = "zero", arity: int | None = None):
        if ties not in ("zero", "one"):
            raise ValueError(f"ties must be 'zero' or 'one', got {ties!r}")
        self.ties = ties
        if arity is not None:
            check_non_negative(arity, "arity")
        self.arity = arity

    def decide(self, counts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        doubled = 2 * counts
        if self.ties == "zero":
            return (doubled > lengths).astype(np.uint8)
        return (doubled >= lengths).astype(np.uint8)

    @property
    def name(self) -> str:
        suffix = "" if self.ties == "zero" else ", ties=one"
        return f"MajorityRule({suffix.lstrip(', ')})" if suffix else "MajorityRule()"


class SimpleThresholdRule(SymmetricRule):
    """``k``-threshold rule: next state 1 iff at least ``threshold`` inputs are 1.

    This is the general monotone symmetric rule (every monotone symmetric
    Boolean function is of this form); MAJORITY is the special case
    ``threshold = floor(width/2) + 1``.
    """

    def __init__(self, threshold: int, arity: int | None = None):
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        self.threshold = threshold
        if arity is not None:
            check_non_negative(arity, "arity")
        self.arity = arity

    def decide(self, counts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        return (counts >= self.threshold).astype(np.uint8)

    @property
    def name(self) -> str:
        return f"SimpleThresholdRule(threshold={self.threshold})"


class XorRule(SymmetricRule):
    """Parity rule — symmetric but non-monotone.

    The paper's Section 3.1 uses the two-input with-memory version (each
    node XORs its own state with its only neighbor's).
    """

    def __init__(self, arity: int | None = None):
        if arity is not None:
            check_non_negative(arity, "arity")
        self.arity = arity

    def decide(self, counts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        return (counts % 2).astype(np.uint8)

    @property
    def name(self) -> str:
        return "XorRule()"


class TotalisticRule(SymmetricRule):
    """Fixed-arity totalistic rule given by its count profile.

    ``profile[c]`` is the next state when exactly ``c`` inputs are 1.
    """

    def __init__(self, profile: Sequence[int]):
        prof = np.asarray(profile, dtype=np.uint8).ravel()
        if prof.size < 1:
            raise ValueError("profile needs at least 1 entry (arity >= 0)")
        if not np.all(prof <= 1):
            raise ValueError("profile entries must be 0 or 1")
        self.profile = prof
        self.profile.setflags(write=False)
        self.arity = prof.size - 1

    def decide(self, counts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        return self.profile[counts]

    @property
    def name(self) -> str:
        return f"TotalisticRule({''.join(map(str, self.profile.tolist()))})"


def majority_table_rule(arity: int) -> TableRule:
    """MAJORITY at a fixed arity, as a table rule (for cross-validation)."""
    return TableRule(majority_function(arity), name=f"MajorityTable[{arity}]")


def threshold_table_rule(arity: int, threshold: int) -> TableRule:
    """Count-threshold at a fixed arity, as a table rule."""
    return TableRule(
        threshold_count_function(arity, threshold),
        name=f"ThresholdTable[{arity},{threshold}]",
    )


def xor_table_rule(arity: int) -> TableRule:
    """Parity at a fixed arity, as a table rule."""
    return TableRule(xor_function(arity), name=f"XorTable[{arity}]")


def OuterTotalisticRule(
    degree: int,
    birth: Sequence[int],
    survive: Sequence[int],
    self_position: int = 0,
    name: str | None = None,
) -> TableRule:
    """Outer-totalistic rule: next state from (own state, neighbor count).

    The classic Game-of-Life family: a dead cell becomes alive iff its
    live-neighbor count is in ``birth``; a live cell stays alive iff the
    count is in ``survive``.  Materialised as a fixed-arity table over the
    with-memory window, so it plugs into every engine unchanged.

    ``self_position`` is the index of the node's own state inside its
    window: 0 for graph-like spaces (grids, hypercubes, arbitrary graphs),
    ``r`` for 1-D spaces of radius ``r`` (their windows are ordered left
    to right).  ``degree`` is the number of neighbors, so the window width
    is ``degree + 1``.
    """
    check_positive(degree, "degree")
    width = degree + 1
    if not 0 <= self_position < width:
        raise ValueError(
            f"self_position {self_position} outside window of width {width}"
        )
    birth_set = set(int(b) for b in birth)
    survive_set = set(int(s) for s in survive)
    for count in birth_set | survive_set:
        if not 0 <= count <= degree:
            raise ValueError(f"neighbor count {count} exceeds degree {degree}")
    table = np.zeros(1 << width, dtype=np.uint8)
    for code in range(1 << width):
        me = (code >> self_position) & 1
        neighbors = bin(code & ~(1 << self_position)).count("1")
        alive = neighbors in (survive_set if me else birth_set)
        table[code] = int(alive)
    label = name or (
        f"OuterTotalistic(B{''.join(map(str, sorted(birth_set)))}/"
        f"S{''.join(map(str, sorted(survive_set)))}, degree={degree})"
    )
    return TableRule(BooleanFunction(table), name=label)


def life_rule(degree: int = 8, self_position: int = 0) -> TableRule:
    """Conway's Game of Life (B3/S23), for Moore-neighborhood grids."""
    return OuterTotalisticRule(
        degree, birth=(3,), survive=(2, 3), self_position=self_position,
        name=f"GameOfLife(degree={degree})",
    )
