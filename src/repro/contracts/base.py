"""Classification vocabulary shared by every artifact contract.

A *contract* pairs a versioned schema identifier (``repro-<dialect>/<n>``)
with a ``validate()`` that classifies one on-disk file as:

* :data:`VALID` — complete and self-consistent; safe to read;
* :data:`TRUNCATED` — damaged in the way a crash legitimately leaves
  behind (a torn JSONL tail, an array newer than its metadata stamp, an
  orphaned temp file) and mechanically repairable without guessing;
* :data:`CORRUPT` — damaged in a way no crash of the durable write
  protocol can produce (failed CRC mid-file, unparseable atomic JSON,
  digest mismatch): the file must be quarantined, not trusted.

The distinction is the whole point of ``repro doctor``: TRUNCATED files
get repaired in place, CORRUPT ones get moved to ``quarantine/`` —
nothing is ever silently deleted.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = [
    "VALID",
    "TRUNCATED",
    "CORRUPT",
    "STATUSES",
    "FileCheck",
    "Contract",
    "load_json_object",
    "check_schema",
    "check_fields",
]

VALID = "valid"
TRUNCATED = "truncated-recoverable"
CORRUPT = "corrupt"
STATUSES = (VALID, TRUNCATED, CORRUPT)


@dataclass
class FileCheck:
    """The verdict one contract renders on one file."""

    path: str  #: file path as given to ``validate()``
    dialect: str  #: owning dialect, e.g. ``"obs"`` or ``"harness"``
    status: str  #: one of :data:`STATUSES`
    detail: str = ""  #: human-readable explanation of the verdict
    schema: str | None = None  #: schema id found in the file, if any
    repair: str | None = None  #: repair action id the doctor can apply
    extra: dict = field(default_factory=dict)  #: contract-specific facts

    def to_dict(self) -> dict:
        out = asdict(self)
        if not out["extra"]:
            del out["extra"]
        if out["repair"] is None:
            del out["repair"]
        if out["schema"] is None:
            del out["schema"]
        return out


class Contract:
    """Base class: one file kind, one schema version, one ``validate``.

    Subclasses set :attr:`name` (the dialect), :attr:`schema` (the
    versioned identifier stamped into files they own) and implement
    :meth:`validate`.
    """

    name: str = "?"
    schema: str | None = None

    def validate(self, path: str | Path) -> FileCheck:  # pragma: no cover
        raise NotImplementedError

    # -- verdict helpers (uniform FileCheck construction) ----------------------

    def ok(self, path, detail: str = "", **kw) -> FileCheck:
        return FileCheck(str(path), self.name, VALID, detail,
                         schema=self.schema, **kw)

    def truncated(self, path, detail: str, repair: str | None = None,
                  **kw) -> FileCheck:
        return FileCheck(str(path), self.name, TRUNCATED, detail,
                         schema=self.schema, repair=repair, **kw)

    def corrupt(self, path, detail: str, repair: str | None = None,
                **kw) -> FileCheck:
        return FileCheck(str(path), self.name, CORRUPT, detail,
                         schema=self.schema, repair=repair, **kw)


def load_json_object(path: str | Path) -> tuple[dict | None, str | None]:
    """Read ``path`` as one JSON object; returns ``(obj, problem)``.

    Exactly one of the pair is ``None``.  ``problem`` distinguishes the
    unreadable, the unparseable and the wrong-shaped.
    """
    try:
        raw = Path(path).read_bytes()
    except OSError as exc:
        return None, f"unreadable: {exc}"
    try:
        obj = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        return None, f"not parseable JSON: {exc}"
    if not isinstance(obj, dict):
        return None, f"expected a JSON object, got {type(obj).__name__}"
    return obj, None


def check_schema(obj: dict, expected: str) -> str | None:
    """Validate ``obj``'s declared schema against ``expected``.

    A missing ``schema`` key is tolerated (pre-contract artifacts are
    grandfathered in); any *declared* schema must match exactly —
    ``repro-checkpoint/2`` in a library that speaks ``/1`` is a refusal,
    not a guess.
    """
    declared = obj.get("schema")
    if declared is None:
        return None
    if declared != expected:
        return f"declared schema {declared!r}, this library speaks {expected!r}"
    return None


def check_fields(obj: dict, required: dict[str, type | tuple]) -> str | None:
    """First missing/mistyped required field as a problem string, or None."""
    for key, types in required.items():
        if key not in obj:
            return f"missing required field {key!r}"
        if not isinstance(obj[key], types):
            want = getattr(types, "__name__", None) or "/".join(
                t.__name__ for t in types  # type: ignore[union-attr]
            )
            return (
                f"field {key!r} is {type(obj[key]).__name__}, expected {want}"
            )
    return None
