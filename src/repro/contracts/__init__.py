"""Versioned artifact contracts + the ``repro doctor`` repair engine.

Every artifact dialect the library persists (obs manifests + event
streams, harness journals + checkpoints, budget frontiers, ``BENCH_*``
reports, qa findings) declares a versioned schema and a ``validate()``
here; :func:`run_doctor` applies them to classify a run directory as
valid / truncated-recoverable / corrupt, repair what it mechanically
can, and quarantine the rest.  See :mod:`repro.contracts.base` for the
classification semantics and :mod:`repro.contracts.doctor` for the
repair catalogue.
"""

from repro.contracts.base import (
    CORRUPT,
    STATUSES,
    TRUNCATED,
    VALID,
    Contract,
    FileCheck,
)
from repro.contracts.dialects import DIALECTS, contract_for
from repro.contracts.doctor import (
    QUARANTINE_DIR,
    REPORT_NAME,
    REPORT_SCHEMA,
    diagnose,
    run_doctor,
)

__all__ = [
    "VALID",
    "TRUNCATED",
    "CORRUPT",
    "STATUSES",
    "Contract",
    "FileCheck",
    "DIALECTS",
    "contract_for",
    "diagnose",
    "run_doctor",
    "REPORT_NAME",
    "REPORT_SCHEMA",
    "QUARANTINE_DIR",
]
