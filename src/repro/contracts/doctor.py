"""``repro doctor``: classify, repair and quarantine a run directory.

:func:`diagnose` walks a run tree and applies each file's contract
(:mod:`repro.contracts.dialects`), yielding one
:class:`~repro.contracts.base.FileCheck` per recognised artifact plus
checks for the things contracts don't own: orphaned ``.tmp`` files from
interrupted durable writes, stale/orphaned ``.sum`` sidecars, and the
``runs_index.sqlite`` database (probed via
:func:`repro.obs.index.check_database`).

:func:`run_doctor` then repairs what is mechanically repairable —

* ``rewrite-valid-records`` — drop torn/corrupt JSONL lines, keeping
  every record whose CRC (or legacy CRC-less decode) holds;
* ``rebuild-from-journal`` — regenerate ``checkpoint.json`` from the
  journal's finish records (results carry ``"recovered": true`` so a
  later reader knows the full payload was lost);
* ``rebuild-index`` — move a corrupt/foreign sqlite index aside and
  re-ingest the surviving artifacts;
* ``refresh-sidecar`` — recompute a sidecar that lags its (valid)
  payload, the normal crash window of the sidecar-last protocol;
* ``quarantine`` / ``quarantine-frontier`` — move what cannot be
  trusted into ``<run>/quarantine/`` (nothing is ever deleted) —

and writes a machine-readable ``doctor_report.json``.  Exit codes:
**0** the tree was already consistent, **1** repairs were applied and
the tree is now consistent, **2** corruption remains (repair disabled
or impossible).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.contracts.base import CORRUPT, TRUNCATED, VALID, FileCheck
from repro.contracts.dialects import contract_for
from repro.core import durable

__all__ = [
    "REPORT_NAME",
    "REPORT_SCHEMA",
    "QUARANTINE_DIR",
    "diagnose",
    "run_doctor",
]

REPORT_NAME = "doctor_report.json"
REPORT_SCHEMA = "repro-doctor-report/1"
QUARANTINE_DIR = "quarantine"

#: Files the walk never classifies: the doctor's own output, prometheus
#: exports (regenerated every run, scraped by glob) and the sqlite WAL
#: companions (owned by the database check).
_SKIP_NAMES = {REPORT_NAME, "metrics.prom"}
_SKIP_SUFFIXES = ("-wal", "-shm")


def _iter_files(run_dir: Path):
    for path in sorted(run_dir.rglob("*")):
        if not path.is_file():
            continue
        if QUARANTINE_DIR in path.relative_to(run_dir).parts:
            continue
        if path.name in _SKIP_NAMES or path.name.endswith(_SKIP_SUFFIXES):
            continue
        yield path


def diagnose(run_dir: str | Path) -> list[FileCheck]:
    """Classify every recognised artifact under ``run_dir``."""
    from repro.obs.index import DB_NAME, check_database

    run_dir = Path(run_dir)
    checks: list[FileCheck] = []
    for path in _iter_files(run_dir):
        name = path.name
        if name.endswith(durable.TMP_SUFFIX):
            checks.append(
                FileCheck(
                    str(path), "durable", TRUNCATED,
                    "orphaned temp file from an interrupted durable write",
                    repair="quarantine",
                )
            )
            continue
        if name == DB_NAME:
            problem = check_database(path)
            if problem is None:
                checks.append(FileCheck(str(path), "index", VALID))
            else:
                checks.append(
                    FileCheck(str(path), "index", TRUNCATED, problem,
                              repair="rebuild-index")
                )
            continue
        if name.endswith(durable.SIDECAR_SUFFIX):
            payload = path.with_name(name[: -len(durable.SIDECAR_SUFFIX)])
            if not payload.exists():
                checks.append(
                    FileCheck(
                        str(path), "durable", TRUNCATED,
                        "orphaned sidecar: its payload is gone",
                        repair="quarantine",
                    )
                )
            continue  # live sidecars are folded into their payload's check
        contract = contract_for(path)
        if contract is None:
            continue
        check = contract.validate(path)
        if check.status == VALID and durable.sidecar_path(path).exists():
            verdict = durable.verify_sidecar(path)
            if verdict in ("stale", "unreadable"):
                # The payload validated on its own merits; only the
                # sidecar lags (crash between replace and refresh).
                check.detail = (
                    f"{check.detail + '; ' if check.detail else ''}"
                    f"sidecar is {verdict}"
                )
                check.repair = "refresh-sidecar"
        checks.append(check)
    # A journal whose snapshot vanished (crash between the journal append
    # and the snapshot replace) is recoverable even though no file is
    # individually broken — surface it as a repairable absence.
    journal = run_dir_journal_without_snapshot(run_dir)
    if journal is not None:
        checks.append(
            FileCheck(
                str(journal.parent / "checkpoint.json"), "harness", TRUNCATED,
                "journal records finishes but checkpoint.json is missing",
                repair="rebuild-from-journal",
            )
        )
    return checks


def run_dir_journal_without_snapshot(run_dir: Path) -> Path | None:
    """First ``journal.jsonl`` with finish records but no snapshot."""
    from repro.harness.checkpoint import read_journal

    for journal in sorted(Path(run_dir).rglob("journal.jsonl")):
        if QUARANTINE_DIR in journal.relative_to(run_dir).parts:
            continue
        if (journal.parent / "checkpoint.json").exists():
            continue
        events, _skipped = read_journal(journal.parent)
        if any(ev.get("ev") == "finish" for ev in events):
            return journal
    return None


# -- repairs -------------------------------------------------------------------


def _quarantine(run_dir: Path, path: Path) -> str:
    """Move ``path`` (and its sidecar, if any) into ``quarantine/``."""
    qdir = run_dir / QUARANTINE_DIR
    qdir.mkdir(parents=True, exist_ok=True)
    moved = []
    for victim in (path, durable.sidecar_path(path)):
        if not victim.exists():
            continue
        rel = victim.relative_to(run_dir)
        target = qdir / "__".join(rel.parts)
        serial = 0
        while target.exists():
            serial += 1
            target = qdir / ("__".join(rel.parts) + f".{serial}")
        victim.replace(target)
        moved.append(str(target))
    return ", ".join(moved)


def _rewrite_valid_records(path: Path) -> tuple[int, int]:
    """Keep only intact JSONL records; returns ``(kept, dropped)``."""
    text = path.read_text(encoding="utf-8", errors="replace")
    kept: list[str] = []
    dropped = 0
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        _, status = durable.decode_jsonl_line(stripped)
        if status in ("ok", "unchecked"):
            kept.append(stripped)
        else:
            dropped += 1
    body = "".join(ln + "\n" for ln in kept)
    durable.durable_write_text(path, body, checksum=False)
    return len(kept), dropped


def _rebuild_snapshot(directory: Path) -> int:
    """Regenerate ``checkpoint.json`` from the journal; returns #results.

    Recovered results keep only what the journal knows (status, holds,
    duration) and are marked ``"recovered": true`` — resume treats a
    recovered ``ok`` as completed, everything else re-runs, exactly the
    pre-crash semantics.
    """
    from repro.harness.checkpoint import SNAPSHOT_SCHEMA, read_journal

    events, _skipped = read_journal(directory)
    results: dict[str, dict] = {}
    for ev in events:
        if ev.get("ev") != "finish" or "id" not in ev:
            continue
        results[ev["id"]] = {
            "status": ev.get("status"),
            "holds": ev.get("holds"),
            "duration_s": ev.get("duration_s"),
            "recovered": True,
        }
    durable.durable_write_json(
        directory / "checkpoint.json",
        {
            "schema": SNAPSHOT_SCHEMA,
            "updated": time.time(),
            "recovered": True,
            "results": results,
        },
    )
    return len(results)


def _apply_repair(run_dir: Path, check: FileCheck) -> dict | None:
    """Apply one check's repair; returns a repair record or ``None``."""
    path = Path(check.path)
    action = check.repair
    if action is None:
        return None
    if action == "quarantine":
        return {"action": action, "path": check.path,
                "detail": _quarantine(run_dir, path)}
    if action == "quarantine-frontier":
        details = []
        for name in ("frontier.json", "frontier_succ.npy"):
            victim = path.with_name(name)
            if victim.exists():
                details.append(_quarantine(run_dir, victim))
        return {"action": action, "path": check.path,
                "detail": ", ".join(d for d in details if d)}
    if action == "rewrite-valid-records":
        kept, dropped = _rewrite_valid_records(path)
        return {"action": action, "path": check.path,
                "detail": f"kept {kept} records, dropped {dropped}"}
    if action == "rebuild-from-journal":
        if path.exists():  # corrupt snapshot: preserve the evidence
            _quarantine(run_dir, path)
        n = _rebuild_snapshot(path.parent)
        return {"action": action, "path": check.path,
                "detail": f"regenerated from journal ({n} results)"}
    if action == "rebuild-index":
        from repro.obs.index import open_with_recovery

        index, recovery = open_with_recovery(path, rebuild_from=[run_dir])
        index.close()
        detail = "already healthy" if recovery is None else (
            f"{recovery['problem']}; reindexed "
            f"{len(recovery['reindexed'])} run(s)"
        )
        return {"action": action, "path": check.path, "detail": detail}
    if action == "refresh-sidecar":
        durable.write_sidecar(path, path.read_bytes())
        return {"action": action, "path": check.path,
                "detail": "recomputed from the payload"}
    return None


def run_doctor(run_dir: str | Path, repair: bool = True) -> dict:
    """Diagnose (and by default repair) ``run_dir``; returns the report.

    The report is also written durably to ``<run_dir>/doctor_report.json``.
    ``report["exit_code"]``: 0 consistent as found, 1 repaired into
    consistency, 2 corruption remains.
    """
    run_dir = Path(run_dir)
    checks = diagnose(run_dir)
    repairs: list[dict] = []
    if repair:
        for check in checks:
            if check.status == VALID and check.repair is None:
                continue
            record = _apply_repair(run_dir, check)
            if record is not None:
                repairs.append(record)
        remaining = diagnose(run_dir)
    else:
        remaining = checks
    summary = {status: 0 for status in (VALID, TRUNCATED, CORRUPT)}
    for check in checks:
        summary[check.status] += 1
    needs_repair = [
        c for c in checks if c.status != VALID or c.repair is not None
    ]
    unresolved = [c for c in remaining if c.status != VALID]
    if repair:
        # 2 only if a repair pass could not restore consistency.
        exit_code = 2 if unresolved else (1 if repairs else 0)
    else:
        # Report-only: 2 for untrusted data, 1 for repairable damage.
        if any(c.status == CORRUPT for c in checks):
            exit_code = 2
        elif needs_repair:
            exit_code = 1
        else:
            exit_code = 0
    report = {
        "schema": REPORT_SCHEMA,
        "run_dir": str(run_dir),
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "repair": repair,
        "files": [c.to_dict() for c in checks],
        "summary": summary,
        "repairs": repairs,
        "unresolved": [c.to_dict() for c in unresolved],
        "clean": not needs_repair,
        "exit_code": exit_code,
    }
    try:
        durable.durable_write_json(
            run_dir / REPORT_NAME, report, checksum=False
        )
    except OSError:
        pass  # a read-only tree still gets the in-memory report
    return report
