"""Versioned contracts for the six artifact dialects the library emits.

========================  ==========================  =====================
dialect                   files                       schema
========================  ==========================  =====================
``obs``                   manifest.json,              ``repro-obs-manifest/1``
                          events.jsonl
``harness``               journal.jsonl,              ``repro-checkpoint/1``
                          checkpoint.json
``frontier``              frontier.json,              ``repro-frontier/1``
                          frontier_succ.npy
``bench``                 BENCH_*.json                ``repro-bench/1``
``finding``               finding-*.json              ``repro-finding/1``
``mc``                    mc.json, mc-*.json          ``repro-mc/1``
========================  ==========================  =====================

Each contract's ``validate()`` classifies one file as valid /
truncated-recoverable / corrupt (see :mod:`repro.contracts.base`).  The
JSONL contracts additionally report exactly which line range must be
dropped, so the doctor's repair is a mechanical rewrite, not a guess.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.contracts.base import (
    FileCheck,
    Contract,
    check_fields,
    check_schema,
    load_json_object,
)
from repro.core import durable

__all__ = [
    "JsonContract",
    "JsonlContract",
    "ObsManifestContract",
    "CheckpointContract",
    "FrontierMetaContract",
    "FrontierArrayContract",
    "BenchContract",
    "FindingContract",
    "McContract",
    "DIALECTS",
    "contract_for",
]


class JsonContract(Contract):
    """Whole-file JSON artifact written through the durable protocol.

    The atomic replace makes a *partially written* file impossible, so
    unparseable JSON here is corruption (or a file that never went
    through the protocol) — never a normal crash state.
    """

    required: dict[str, type | tuple] = {}
    corrupt_repair: str | None = "quarantine"

    def validate(self, path: str | Path) -> FileCheck:
        obj, problem = load_json_object(path)
        if obj is None:
            return self.corrupt(path, problem or "unreadable",
                                repair=self.corrupt_repair)
        problem = check_schema(obj, self.schema or "")
        if problem is None:
            problem = check_fields(obj, self.required)
        if problem is not None:
            return self.corrupt(path, problem, repair=self.corrupt_repair)
        return self.finish(path, obj)

    def finish(self, path: str | Path, obj: dict) -> FileCheck:
        """Hook for dialect-specific cross-checks once the shape holds."""
        return self.ok(path)


class JsonlContract(Contract):
    """Append-only CRC-framed JSONL stream (journal, span events).

    Any undecodable or CRC-failing line makes the file repairable rather
    than corrupt: records are independent, so a rewrite keeping only the
    intact lines recovers everything a crash did not destroy.  The check
    records how many lines survive and how many drop, and whether the
    damage is confined to the torn tail (the normal crash signature) or
    sits mid-file (bit rot — still recoverable, but worth flagging).
    """

    def validate(self, path: str | Path) -> FileCheck:
        try:
            text = Path(path).read_text(encoding="utf-8", errors="replace")
        except OSError as exc:
            return self.corrupt(path, f"unreadable: {exc}")
        good = bad = 0
        last_bad_is_tail = True
        lines = [ln for ln in text.splitlines() if ln.strip()]
        for i, line in enumerate(lines):
            _, status = durable.decode_jsonl_line(line.strip())
            if status in ("ok", "unchecked"):
                good += 1
                continue
            bad += 1
            if i != len(lines) - 1:
                last_bad_is_tail = False
        extra = {"records": good, "damaged": bad}
        if bad == 0:
            return self.ok(path, f"{good} intact records", extra=extra)
        where = "torn tail" if (bad == 1 and last_bad_is_tail) else "mid-file"
        return self.truncated(
            path,
            f"{bad} damaged line(s) ({where}), {good} intact",
            repair="rewrite-valid-records",
            extra=extra,
        )


class ObsManifestContract(JsonContract):
    name = "obs"
    schema = "repro-obs-manifest/1"
    required = {"run_id": str}


class ObsEventsContract(JsonlContract):
    name = "obs"
    schema = "repro-obs-manifest/1"


class JournalContract(JsonlContract):
    name = "harness"
    schema = "repro-checkpoint/1"


class CheckpointContract(JsonContract):
    name = "harness"
    schema = "repro-checkpoint/1"
    required = {"results": dict}
    #: a broken snapshot is not a loss — the journal is the arbiter and
    #: holds every finish, so the doctor regenerates instead of quarantines.
    corrupt_repair = "rebuild-from-journal"


class FrontierMetaContract(JsonContract):
    """``frontier.json`` plus the stamp over its sibling array.

    The metadata is written *after* the array, so a stamp that disagrees
    with ``frontier_succ.npy`` means the crash landed between the two:
    truncated-recoverable (resume falls back to re-enumeration), not
    corrupt.
    """

    name = "frontier"
    schema = "repro-frontier/1"
    required = {"n": int}

    def finish(self, path: str | Path, obj: dict) -> FileCheck:
        array_path = Path(path).with_name("frontier_succ.npy")
        stamp = obj.get("array")
        if not isinstance(stamp, dict):
            return self.ok(path, "no array stamp (pre-contract frontier)")
        if not array_path.exists():
            return self.truncated(
                path,
                "metadata stamps an array that is missing",
                repair="quarantine-frontier",
            )
        problem = _verify_array_stamp(array_path, stamp)
        if problem is not None:
            return self.truncated(
                path,
                f"array does not match its stamp ({problem}); resume "
                f"re-enumerates from scratch",
                repair="quarantine-frontier",
            )
        return self.ok(path, "array stamp verified")


class FrontierArrayContract(Contract):
    """``frontier_succ.npy`` — only meaningful next to valid metadata.

    The array carries no self-contained integrity; the durable protocol
    writes it first and stamps length + CRC into the atomically-replaced
    ``frontier.json`` after.  An array without (valid) metadata is the
    crash window between the two writes: recoverable by dropping it.
    """

    name = "frontier"
    schema = "repro-frontier/1"

    def validate(self, path: str | Path) -> FileCheck:
        meta_path = Path(path).with_name("frontier.json")
        meta, problem = load_json_object(meta_path)
        if meta is None:
            return self.truncated(
                path,
                f"orphaned array: no usable frontier.json ({problem})",
                repair="quarantine-frontier",
            )
        stamp = meta.get("array")
        if not isinstance(stamp, dict):
            return self.ok(path, "unstamped (pre-contract frontier)")
        problem = _verify_array_stamp(Path(path), stamp)
        if problem is not None:
            return self.truncated(
                path,
                f"does not match the metadata stamp ({problem})",
                repair="quarantine-frontier",
            )
        return self.ok(path, "matches the metadata stamp")


def _verify_array_stamp(array_path: Path, stamp: dict) -> str | None:
    """Compare one on-disk ``.npy`` against its metadata stamp."""
    import os

    import numpy as np

    nbytes = stamp.get("nbytes")
    if nbytes is not None:
        try:
            actual = os.path.getsize(array_path)
        except OSError as exc:
            return f"unreadable: {exc}"
        if int(nbytes) != actual:
            return f"size {actual} != stamped {nbytes}"
    try:
        succ = np.load(array_path, mmap_mode="r")
    except (OSError, ValueError) as exc:
        return f"unloadable: {exc}"
    rows = int(stamp.get("rows", 0))
    if rows > succ.shape[0]:
        return f"stamped rows {rows} exceed array length {succ.shape[0]}"
    crc = stamp.get("crc32")
    if crc is not None and durable.crc32_of_array_prefix(succ, rows) != crc:
        return "prefix CRC mismatch"
    return None


class BenchContract(JsonContract):
    name = "bench"
    schema = "repro-bench/1"
    required = {"module": str, "benchmarks": list}


class McContract(JsonContract):
    """``mc.json`` — a streaming Monte-Carlo estimate (``repro-mc/1``).

    Beyond the shape, cross-checks the counts ledger: classified lanes
    must partition into fixed-point / 2-cycle / undecided exactly, so a
    truncated-then-hand-edited artifact cannot masquerade as complete.
    """

    name = "mc"
    schema = "repro-mc/1"
    required = {"n": int, "samples": int, "counts": dict, "estimates": dict}

    def finish(self, path: str | Path, obj: dict) -> FileCheck:
        counts = obj["counts"]
        parts = ("fixed_point", "two_cycle", "undecided")
        try:
            classified = sum(int(counts[k]) for k in parts)
            total = int(counts["samples"])
        except (KeyError, TypeError, ValueError) as exc:
            return self.corrupt(
                path, f"counts ledger unreadable: {exc!r}", repair="quarantine"
            )
        if classified != total:
            return self.corrupt(
                path,
                f"counts ledger does not balance: "
                f"{classified} classified != {total} samples",
                repair="quarantine",
            )
        return self.ok(path)


class FindingContract(JsonContract):
    name = "finding"
    schema = "repro-finding/1"
    required = {"check": str, "spec": dict}

    def finish(self, path: str | Path, obj: dict) -> FileCheck:
        # Findings carry their own identity: the digest is recomputable
        # from the spec, so a mismatch proves the record was altered.
        from repro.qa.findings import spec_digest

        declared = obj.get("digest")
        if declared is not None and declared != spec_digest(obj["spec"]):
            return self.corrupt(
                path,
                f"digest {declared!r} does not match the spec",
                repair="quarantine",
            )
        return self.ok(path)


#: The six dialects and every contract each one comprises.
DIALECTS: dict[str, list[Contract]] = {
    "obs": [ObsManifestContract(), ObsEventsContract()],
    "harness": [JournalContract(), CheckpointContract()],
    "frontier": [FrontierMetaContract(), FrontierArrayContract()],
    "bench": [BenchContract()],
    "finding": [FindingContract()],
    "mc": [McContract()],
}

_BY_NAME: dict[str, Contract] = {
    "manifest.json": DIALECTS["obs"][0],
    "events.jsonl": DIALECTS["obs"][1],
    "journal.jsonl": DIALECTS["harness"][0],
    "checkpoint.json": DIALECTS["harness"][1],
    "frontier.json": DIALECTS["frontier"][0],
    "frontier_succ.npy": DIALECTS["frontier"][1],
    "mc.json": DIALECTS["mc"][0],
}


def contract_for(path: str | Path) -> Contract | None:
    """The contract governing ``path``, by filename convention."""
    name = Path(path).name
    exact = _BY_NAME.get(name)
    if exact is not None:
        return exact
    if name.startswith("BENCH_") and name.endswith(".json"):
        return DIALECTS["bench"][0]
    if name.startswith("finding") and name.endswith(".json"):
        return DIALECTS["finding"][0]
    if name.startswith("mc-") and name.endswith(".json"):
        return DIALECTS["mc"][0]
    return None
