"""ACA subsume classical CA and SCA — and strictly exceed them.

Section 4 of the paper argues that communication-asynchronous CA "subsume
all possible behaviors of classical and sequential CA with the same
[rule]".  These constructions make the claim executable:

* :func:`replay_parallel` — all nodes update at the same instants, with
  messages delivered strictly between rounds: the ACA trajectory equals the
  classical synchronous CA trajectory, configuration for configuration.
* :func:`replay_sequential` — updates one node per instant with zero
  delays: the ACA trajectory equals the SCA run under the same word.
* :func:`aca_exceeds_interleavings` — with *stale views*, an ACA can reach
  configurations that no sequential interleaving reaches.  The witness is
  the paper's own Fig. 1 automaton: from ``11``, the two-node XOR SCA can
  never reach ``00``, but an ACA whose two nodes update before either hears
  of the other's change lands exactly there.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.aca.aca import AsyncCA
from repro.aca.channels import FixedDelay, ZeroDelay
from repro.core.automaton import CellularAutomaton
from repro.core.nondet import NondetPhaseSpace
from repro.core.rules import XorRule
from repro.spaces.graph import GraphSpace

__all__ = [
    "replay_parallel",
    "replay_sequential",
    "aca_exceeds_interleavings",
    "ExceedsReport",
]


def replay_parallel(
    ca: CellularAutomaton, initial: np.ndarray, steps: int
) -> tuple[np.ndarray, np.ndarray]:
    """Run an ACA schedule that replays the synchronous CA exactly.

    Returns ``(aca_trajectory, ca_trajectory)``, both of shape
    ``(steps + 1, n)``; the subsumption claim is that they are equal.
    """
    aca = AsyncCA(
        ca.space, ca.rule, initial, delays=FixedDelay(0.5), memory=ca.memory
    )
    aca_traj = np.empty((steps + 1, ca.n), dtype=np.uint8)
    aca_traj[0] = aca.snapshot()
    for k in range(1, steps + 1):
        aca.schedule_synchronous_rounds([float(k)])
        aca.run_until(k + 0.75)  # round k's updates plus its deliveries
        aca_traj[k] = aca.snapshot()
    return aca_traj, ca.trajectory_steps(initial, steps)


def replay_sequential(
    ca: CellularAutomaton, initial: np.ndarray, word: list[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Run an ACA schedule that replays an SCA update word exactly.

    One node updates per unit of time with instantaneous delivery; the
    result is compared against the direct sequential simulation.
    """
    aca = AsyncCA(ca.space, ca.rule, initial, delays=ZeroDelay(), memory=ca.memory)
    aca.schedule_updates((float(t + 1), node) for t, node in enumerate(word))

    aca_traj = np.empty((len(word) + 1, ca.n), dtype=np.uint8)
    aca_traj[0] = aca.snapshot()
    for t in range(1, len(word) + 1):
        aca.run_until(float(t))
        aca_traj[t] = aca.snapshot()

    seq_traj = np.empty_like(aca_traj)
    state = np.array(initial, dtype=np.uint8, copy=True)
    seq_traj[0] = state
    for t, node in enumerate(word):
        ca.update_node_inplace(state, node)
        seq_traj[t + 1] = state
    return aca_traj, seq_traj


@dataclass(frozen=True)
class ExceedsReport:
    """Evidence that the ACA reached a sequentially unreachable configuration."""

    start: int
    reached: int
    sequentially_reachable: tuple[int, ...]
    exceeded: bool


def aca_exceeds_interleavings() -> ExceedsReport:
    """The Fig. 1 witness: ACA with stale views reach what no SCA can.

    Two-node XOR CA with memory, starting at ``11``.  Sequentially,
    ``00`` is unreachable (Fig. 1(b)): whichever node updates first flips
    to 0, and the other then XORs against the *new* 0 and stays 1.  In the
    ACA, node 0 updates at t=1 and node 1 at t=2, but the t=1 announcement
    is delayed until t=3 — node 1 computes against its stale view ``1`` and
    also flips, reproducing the parallel one-shot jump ``11 -> 00`` inside
    a purely sequential event order.
    """
    # A two-node ring would duplicate the single neighbor; the paper's
    # two-node automaton is the path graph on two nodes.
    space = GraphSpace(nx.path_graph(2))
    rule = XorRule()
    ca = CellularAutomaton(space, rule, memory=True)
    start_state = np.array([1, 1], dtype=np.uint8)
    start = ca.pack(start_state)

    nps = NondetPhaseSpace.from_automaton(ca)
    reachable = tuple(int(c) for c in nps.reachable_from(start))

    aca = AsyncCA(
        space,
        rule,
        start_state,
        delays=FixedDelay(5.0),  # announcements arrive only after both updates
        memory=True,
    )
    aca.schedule_update(1.0, 0)
    aca.schedule_update(2.0, 1)
    aca.run()
    reached = ca.pack(aca.snapshot())
    return ExceedsReport(
        start=start,
        reached=reached,
        sequentially_reachable=reachable,
        exceeded=reached not in reachable,
    )
