"""Discrete-event kernel.

A minimal, deterministic event queue: events fire in increasing timestamp
order, ties broken by insertion sequence number, so a given event schedule
always replays identically — which the subsumption proofs rely on.
Timestamps are arbitrary floats; nothing in the ACA semantics depends on
their absolute values, only on the order they induce (the "no global clock"
reading: the schedule is just one linear extension of the causal partial
order).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Event", "EventQueue"]


@dataclass(frozen=True, order=True)
class Event:
    """A timestamped event; ``payload`` is interpreted by the simulation."""

    time: float
    seq: int
    payload: Any = field(compare=False)


class EventQueue:
    """A priority queue of events with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Timestamp of the last event popped (0 before any pop)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, payload: Any) -> Event:
        """Schedule a payload; returns the queued event."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past: {time} < now {self._now}"
            )
        ev = Event(float(time), next(self._counter), payload)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        ev = heapq.heappop(self._heap)
        self._now = ev.time
        return ev

    def peek_time(self) -> float | None:
        """Timestamp of the next event, or None if the queue is empty."""
        return self._heap[0].time if self._heap else None
